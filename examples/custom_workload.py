"""Authoring and profiling a custom workload.

Shows the full user-facing pipeline: write a small Java-like program
with the bytecode assembler (a prime sieve that logs through native
I/O), wrap it as a :class:`~repro.workloads.base.Workload`, and measure
its native-code fraction with IPA.

Usage::

    python examples/custom_workload.py
"""

from repro import AgentSpec, RunConfig, execute
from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads.base import Workload, WorkloadResultCheck

LIMIT = 3000


def _build_sieve() -> ClassAssembler:
    c = ClassAssembler("demo.Sieve")
    with c.method("countPrimes", "(I)I", static=True) as m:
        # locals: 0=limit, 1=flags, 2=i, 3=j, 4=count
        m.iload(0).newarray(ArrayKind.INT).astore(1)
        m.iconst(2).istore(2)
        m.label("outer")
        m.iload(2).iload(0).if_icmpge("count")
        m.aload(1).iload(2).iaload().ifne("next")
        m.iload(2).iconst(2).imul().istore(3)
        m.label("inner")
        m.iload(3).iload(0).if_icmpge("next")
        m.aload(1).iload(3).iconst(1).iastore()
        m.iload(3).iload(2).iadd().istore(3)
        m.goto("inner")
        m.label("next")
        m.iinc(2, 1).goto("outer")
        m.label("count")
        m.iconst(0).istore(4)
        m.iconst(2).istore(2)
        m.label("scan")
        m.iload(2).iload(0).if_icmpge("done")
        m.aload(1).iload(2).iaload().ifne("skip")
        m.iinc(4, 1)
        m.label("skip")
        m.iinc(2, 1).goto("scan")
        m.label("done")
        m.iload(4).ireturn()

    with c.method("main", "()V", static=True) as m:
        m.getstatic("java.lang.System", "out")
        m.new("java.lang.StringBuilder").dup()
        m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
        m.ldc("primes=")
        m.invokevirtual(
            "java.lang.StringBuilder", "appendString",
            "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
        m.ldc(LIMIT)
        m.invokestatic("demo.Sieve", "countPrimes", "(I)I")
        m.invokevirtual("java.lang.StringBuilder", "appendInt",
                        "(I)Ljava.lang.StringBuilder;")
        m.invokevirtual("java.lang.StringBuilder", "toString",
                        "()Ljava.lang.String;")
        m.invokevirtual("java.io.PrintStream", "println",
                        "(Ljava.lang.String;)V")
        m.return_()
    return c


def _host_prime_count(limit: int) -> int:
    flags = [False] * limit
    count = 0
    for i in range(2, limit):
        if not flags[i]:
            count += 1
            for j in range(2 * i, limit, i):
                flags[j] = True
    return count


class SieveWorkload(Workload):
    """Prime sieve with string-built console output."""

    name = "sieve"
    main_class = "demo.Sieve"

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_sieve().build())
        return archive

    def validate(self, vm) -> WorkloadResultCheck:
        expected = f"primes={_host_prime_count(LIMIT)}"
        if expected not in vm.console:
            return WorkloadResultCheck(
                False, f"expected {expected!r}, got {vm.console}")
        return WorkloadResultCheck(True)


def main() -> None:
    workload = SieveWorkload()
    baseline = execute(workload, RunConfig(agent=AgentSpec.none()))
    profiled = execute(workload, RunConfig(agent=AgentSpec.ipa()))

    print("console:", baseline.console)
    print(f"cycles: {baseline.cycles:,} "
          f"({baseline.instructions:,} instructions)")
    print(f"ground-truth native fraction: "
          f"{baseline.ground_truth_native_fraction * 100:.2f}%")
    print(f"IPA measured native fraction: "
          f"{profiled.agent_report['percent_native']:.2f}%")
    print(f"IPA overhead: "
          f"{(profiled.cycles / baseline.cycles - 1) * 100:.2f}%")


if __name__ == "__main__":
    main()
