"""Sampling profiler vs. IPA — the paper's Section VI trade-off, live.

The paper contrasts its portable transition-tracking approach with
sampling profilers (IBM tprof): sampling is cheap and reasonably
accurate for the time split, but it is system-specific and "not able to
construct accurate counts of the number or frequency of JNI calls".

This example runs both over the same workload and prints the trade-off:
estimated native %, overhead, and what each tool can and cannot report.

Usage::

    python examples/sampling_vs_ipa.py [workload]
"""

import sys

from repro import AgentSpec, RunConfig, execute, get_workload
from repro.agents.sampling import SamplingProfiler


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jack"
    workload = get_workload(name)

    baseline = execute(workload, RunConfig(agent=AgentSpec.none()))
    sampled = execute(workload, RunConfig(
        agent=AgentSpec.none(),
        sampler=lambda: SamplingProfiler(interval=10_000)))
    profiled = execute(workload, RunConfig(agent=AgentSpec.ipa()))

    truth = baseline.ground_truth_native_fraction * 100
    samp = sampled.sampler_report
    ipa = profiled.agent_report

    def overhead(run):
        return (run.cycles / baseline.cycles - 1) * 100

    print(f"workload: {name}   ground-truth native time: "
          f"{truth:.2f}%\n")
    print(f"{'':24s} {'sampling (tprof-style)':>24s} "
          f"{'IPA (this paper)':>20s}")
    print(f"{'native % estimate':24s} "
          f"{samp['percent_native']:>23.2f}% {ipa['percent_native']:>19.2f}%")
    print(f"{'overhead':24s} {overhead(sampled):>23.2f}% "
          f"{overhead(profiled):>19.2f}%")
    jni = samp["jni_calls"]
    print(f"{'JNI call count':24s} "
          f"{'(not available)' if jni is None else jni:>24} "
          f"{ipa['jni_calls']:>20,}")
    nmc = samp["native_method_calls"]
    print(f"{'native method calls':24s} "
          f"{'(not available)' if nmc is None else nmc:>24} "
          f"{ipa['native_method_calls']:>20,}")
    print(f"{'portable (JVMTI-only)':24s} {'no':>24s} {'yes':>20s}")


if __name__ == "__main__":
    main()
