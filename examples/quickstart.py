"""Quickstart: profile one benchmark with the paper's IPA agent.

Runs the `compress` workload twice — unprofiled, then under the
Improved Profiling Agent — and prints what the paper's Table II reports
for it: the fraction of CPU time spent in native code and the
native/JNI call counts, next to the simulator's ground truth.

Usage::

    python examples/quickstart.py
"""

from repro import AgentSpec, RunConfig, execute, get_workload


def main() -> None:
    workload = get_workload("compress")

    baseline = execute(workload, RunConfig(agent=AgentSpec.none()))
    profiled = execute(workload, RunConfig(agent=AgentSpec.ipa()))

    report = profiled.agent_report
    truth = baseline.ground_truth_native_fraction * 100
    overhead = (profiled.cycles / baseline.cycles - 1) * 100

    print(f"workload:                {workload.name}")
    print(f"baseline cycles:         {baseline.cycles:,}")
    print(f"profiled cycles:         {profiled.cycles:,}")
    print(f"IPA overhead:            {overhead:.2f}%")
    print()
    print(f"IPA measured native %:   {report['percent_native']:.2f}")
    print(f"simulator ground truth:  {truth:.2f}")
    print(f"native method calls:     {report['native_method_calls']:,}")
    print(f"intercepted JNI calls:   {report['jni_calls']:,}")
    print(f"native methods wrapped:  {report['methods_wrapped']}")


if __name__ == "__main__":
    main()
