"""Mixed Java/native call-chain profiling — the paper's future work.

Section VII of the paper announces "an extension which consists in
tracking complete call chains including a mix of Java and native
methods ... not possible with current profilers, since they are either
Java-only or system-specific".  This example runs that extension (the
:class:`~repro.agents.callchain.CallChainAgent`) over the ``javac``
workload and prints the hottest chains that end in native code.

Usage::

    python examples/callchain_profiling.py
"""

from repro import AgentSpec, RunConfig, execute, get_workload
from repro.agents.callchain import CallChainAgent


def main() -> None:
    workload = get_workload("javac")
    agent = CallChainAgent()
    result = execute(workload, RunConfig(
        agent=AgentSpec("callchain", lambda: agent)))

    print(f"workload: {workload.name}  "
          f"(cycles with agent: {result.cycles:,})")
    print()
    print("hottest mixed Java/native call chains:")
    for chain, calls, cycles in agent.mixed_chains()[:8]:
        print(f"  {calls:6d} calls  {cycles:10,} cycles")
        for depth, frame in enumerate(chain):
            print("    " + "  " * depth + frame)
        print()
    deepest = agent.deepest_chain()
    print(f"deepest observed chain ({len(deepest)} frames):")
    for frame in deepest:
        print(f"  {frame}")


if __name__ == "__main__":
    main()
