"""Native-fraction study: regenerate the paper's Table II.

Profiles the full suite with IPA and prints, per benchmark: the
percentage of execution time spent in native code, the intercepted JNI
call count (native->Java transitions) and the native method invocation
count (Java->native transitions) — plus audit columns comparing the
agent's measurement against the simulator's tagged ground truth.

The paper's headline conclusion should be visible in the output:
native code stays within ~1-20 % everywhere, so bytecode-based analysis
tools see the overwhelming majority of executed code.

Usage::

    python examples/native_fraction_study.py [scale]
"""

import sys

from repro import build_table2, full_suite, render_table2


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    table = build_table2(full_suite(scale=scale))
    print(render_table2(table))
    print()
    high = max(table.rows, key=lambda row: row.percent_native)
    print(f"most native-heavy benchmark: {high.benchmark} "
          f"({high.percent_native:.2f}% of CPU time)")
    worst_error = max(row.measurement_error_points
                      for row in table.rows)
    print(f"worst IPA measurement error vs ground truth: "
          f"{worst_error:.2f} percentage points")


if __name__ == "__main__":
    main()
