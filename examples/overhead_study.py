"""Overhead study: regenerate the paper's Table I.

Runs every SPEC JVM98 equivalent plus JBB2005 under {no agent, SPA,
IPA} and prints the execution times / throughput and the two overhead
columns, exactly in the paper's layout.  Expect SPA overheads of
several thousand percent (its method-entry/exit events disable the JIT)
against IPA's 0-20 %.

Usage::

    python examples/overhead_study.py [scale]

``scale`` (default 1) multiplies every workload's problem size.
"""

import sys

from repro import build_table1, full_suite, render_table1


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    table = build_table1(full_suite(scale=scale))
    print(render_table1(table))
    print()
    worst = max(table.time_rows,
                key=lambda row: row.overhead_spa_percent)
    best = min(table.time_rows,
               key=lambda row: row.overhead_spa_percent)
    print(f"largest SPA overhead:  {worst.benchmark} "
          f"({worst.overhead_spa_percent:,.0f}%)")
    print(f"smallest SPA overhead: {best.benchmark} "
          f"({best.overhead_spa_percent:,.0f}%)")


if __name__ == "__main__":
    main()
