"""Runtime values of the simulated JVM.

* numbers — plain Python ints and floats (one slot each);
* ``null`` — Python ``None`` (exported as :data:`NULL` for readability);
* objects — :class:`JObject`: a class reference plus a field map.
  ``java.lang.String`` instances additionally carry an immutable Python
  ``str`` payload that only native code can touch (bytecode reaches it
  through native methods, mirroring how real string internals are opaque
  to our ISA);
* arrays — :class:`JArray` with an element :class:`ArrayKind`; stores are
  normalised per kind (byte arrays wrap to signed 8-bit, char arrays to
  unsigned 16-bit, int arrays to signed 32-bit like Java ``int``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.opcodes import ArrayKind
from repro.errors import VMError

#: The Java ``null`` reference.
NULL = None

_INT_MIN = -(1 << 31)
_INT_MASK = (1 << 32) - 1


def wrap_int32(value: int) -> int:
    """Wrap a Python int to Java 32-bit signed int semantics."""
    value &= _INT_MASK
    if value >= 1 << 31:
        value -= 1 << 32
    return value


def wrap_int8(value: int) -> int:
    """Wrap to Java ``byte`` (signed 8-bit)."""
    value &= 0xFF
    if value >= 0x80:
        value -= 0x100
    return value


def wrap_char(value: int) -> int:
    """Wrap to Java ``char`` (unsigned 16-bit)."""
    return value & 0xFFFF


class JObject:
    """One heap object: its class and its instance fields.

    ``fields`` is pre-populated with declared defaults by the heap.
    ``string_value`` is non-None only for ``java.lang.String`` instances.
    ``monitor_owner``/``monitor_count`` implement the object's monitor.
    """

    __slots__ = ("jclass", "fields", "string_value", "object_id",
                 "monitor_owner", "monitor_count", "monitor_waiters",
                 "shadow")

    def __init__(self, jclass, fields: dict, object_id: int,
                 string_value: Optional[str] = None):
        self.jclass = jclass
        self.fields = fields
        self.string_value = string_value
        self.object_id = object_id
        self.monitor_owner = None
        self.monitor_count = 0
        # FIFO of SimThreads blocked on this monitor; lazily created by
        # the preemptive scheduler (always None at cores=1)
        self.monitor_waiters = None
        # per-field shadow words, lazily created by the race sanitizer
        # (always None when --sanitize is off)
        self.shadow = None

    @property
    def class_name(self) -> str:
        return self.jclass.name

    def __repr__(self):  # pragma: no cover - debug aid
        if self.string_value is not None:
            return f"<JString {self.string_value!r}>"
        return f"<JObject {self.class_name}#{self.object_id}>"


class JArray:
    """One heap array: element kind plus backing storage."""

    __slots__ = ("kind", "data", "object_id", "monitor_owner",
                 "monitor_count", "monitor_waiters")

    def __init__(self, kind: ArrayKind, length: int, object_id: int):
        if length < 0:
            raise VMError(f"negative array length {length}")
        self.kind = kind
        if kind is ArrayKind.FLOAT:
            self.data: List = [0.0] * length
        elif kind is ArrayKind.REF:
            self.data = [NULL] * length
        else:
            self.data = [0] * length
        self.object_id = object_id
        self.monitor_owner = None
        self.monitor_count = 0
        self.monitor_waiters = None

    def __len__(self) -> int:
        return len(self.data)

    def normalize(self, value):
        """Coerce ``value`` to this array's element domain."""
        kind = self.kind
        if kind is ArrayKind.INT:
            return wrap_int32(int(value))
        if kind is ArrayKind.BYTE:
            return wrap_int8(int(value))
        if kind is ArrayKind.CHAR:
            return wrap_char(int(value))
        if kind is ArrayKind.FLOAT:
            return float(value)
        return value  # REF

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<JArray {self.kind.name.lower()}[{len(self.data)}]>"


def is_reference(value) -> bool:
    """True for values a reference slot may hold (objects, arrays, null)."""
    return value is NULL or isinstance(value, (JObject, JArray))


def java_truth(value) -> bool:
    """Truth of an int as used by IFEQ-family branches."""
    return value != 0
