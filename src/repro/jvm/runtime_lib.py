"""The runtime class library — the simulator's ``rt.jar``.

All core ``java.*`` classes, authored as bytecode via the assembler.
Native methods declared here are implemented by the core native library
(:func:`repro.jni.stdlib.build_java_library`), which is preloaded into
every VM.  The split mirrors the real JDK: thin Java wrappers around
native primitives (``FileInputStream.read`` -> ``readBytes``,
``StringBuilder`` building on ``System.arraycopy`` and string natives),
so realistic workloads generate realistic J2N traffic.

:func:`build_runtime_archive` serializes everything into a
:class:`~repro.classfile.archive.ClassArchive` — which is exactly what
the static instrumenter processes when an agent instruments "the JDK".
"""

from __future__ import annotations

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive

OBJECT = "java.lang.Object"
STRING = "java.lang.String"
SYSTEM = "java.lang.System"
SB = "java.lang.StringBuilder"
THROWABLE = "java.lang.Throwable"


def _object_class() -> ClassAssembler:
    c = ClassAssembler(OBJECT, super_name=None)
    with c.method("<init>", "()V") as m:
        m.return_()
    c.native_method("hashCode", "()I")
    c.native_method("toString", "()Ljava.lang.String;")
    with c.method("equals", "(Ljava.lang.Object;)I") as m:
        m.aload(0).aload(1).if_acmpeq("yes")
        m.iconst(0).ireturn()
        m.label("yes").iconst(1).ireturn()
    return c


def _string_class() -> ClassAssembler:
    c = ClassAssembler(STRING)
    c.native_method("length", "()I")
    c.native_method("charAt", "(I)I")
    c.native_method("equals", "(Ljava.lang.Object;)I")
    c.native_method("hashCode", "()I")
    c.native_method("intern", "()Ljava.lang.String;")
    c.native_method("substring", "(II)Ljava.lang.String;")
    c.native_method("concat",
                    "(Ljava.lang.String;)Ljava.lang.String;")
    c.native_method("compareTo", "(Ljava.lang.String;)I")
    c.native_method("indexOf", "(II)I")
    c.native_method("getChars", "(II[CI)V")
    c.native_method("toCharArray", "()[C")
    c.native_method("fromChars", "([CII)Ljava.lang.String;",
                    static=True)
    c.native_method("valueOfInt", "(I)Ljava.lang.String;", static=True)
    with c.method("isEmpty", "()I") as m:
        m.aload(0).invokevirtual(STRING, "length", "()I")
        m.ifne("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()
    return c


def _system_class() -> ClassAssembler:
    c = ClassAssembler(SYSTEM)
    c.field("out", static=True)
    c.native_method(
        "arraycopy", "(Ljava.lang.Object;ILjava.lang.Object;II)V",
        static=True)
    c.native_method("currentTimeMillis", "()I", static=True)
    c.native_method("loadLibrary0", "(Ljava.lang.String;)V", static=True)
    c.native_method("initOut", "()Ljava.io.PrintStream;", static=True)
    c.native_method("identityHashCode", "(Ljava.lang.Object;)I",
                    static=True)
    with c.method("<clinit>", "()V", static=True) as m:
        m.invokestatic(SYSTEM, "initOut", "()Ljava.io.PrintStream;")
        m.putstatic(SYSTEM, "out")
        m.return_()
    with c.method("loadLibrary", "(Ljava.lang.String;)V",
                  static=True) as m:
        m.aload(0)
        m.invokestatic(SYSTEM, "loadLibrary0", "(Ljava.lang.String;)V")
        m.return_()
    return c


def _string_builder_class() -> ClassAssembler:
    c = ClassAssembler(SB)
    c.field("value")
    c.field("count")
    with c.method("<init>", "()V") as m:
        m.aload(0).iconst(16).newarray(ArrayKind.CHAR)
        m.putfield(SB, "value")
        m.aload(0).iconst(0).putfield(SB, "count")
        m.return_()
    with c.method("ensureCapacity", "(I)V") as m:
        # locals: 0=this, 1=min, 2=cap, 3=newcap, 4=newarr
        m.aload(0).getfield(SB, "value").arraylength().istore(2)
        m.iload(1).iload(2).if_icmple("ok")
        m.iload(2).iconst(2).imul().istore(3)
        m.iload(3).iload(1).if_icmpge("alloc")
        m.iload(1).istore(3)
        m.label("alloc")
        m.iload(3).newarray(ArrayKind.CHAR).astore(4)
        m.aload(0).getfield(SB, "value").iconst(0)
        m.aload(4).iconst(0)
        m.aload(0).getfield(SB, "count")
        m.invokestatic(SYSTEM, "arraycopy",
                       "(Ljava.lang.Object;ILjava.lang.Object;II)V")
        m.aload(0).aload(4).putfield(SB, "value")
        m.label("ok").return_()
    with c.method("appendChar", "(I)Ljava.lang.StringBuilder;") as m:
        m.aload(0)
        m.aload(0).getfield(SB, "count").iconst(1).iadd()
        m.invokevirtual(SB, "ensureCapacity", "(I)V")
        m.aload(0).getfield(SB, "value")
        m.aload(0).getfield(SB, "count")
        m.iload(1).iastore()
        m.aload(0).dup().getfield(SB, "count").iconst(1).iadd()
        m.putfield(SB, "count")
        m.aload(0).areturn()
    with c.method("appendString",
                  "(Ljava.lang.String;)Ljava.lang.StringBuilder;") as m:
        # locals: 0=this, 1=s, 2=len
        m.aload(1).invokevirtual(STRING, "length", "()I").istore(2)
        m.aload(0)
        m.aload(0).getfield(SB, "count").iload(2).iadd()
        m.invokevirtual(SB, "ensureCapacity", "(I)V")
        m.aload(1).iconst(0).iload(2)
        m.aload(0).getfield(SB, "value")
        m.aload(0).getfield(SB, "count")
        m.invokevirtual(STRING, "getChars", "(II[CI)V")
        m.aload(0).dup().getfield(SB, "count").iload(2).iadd()
        m.putfield(SB, "count")
        m.aload(0).areturn()
    with c.method("appendChars", "([CII)Ljava.lang.StringBuilder;") as m:
        # append a char-array region: one arraycopy, no String detour
        # locals: 0=this, 1=src, 2=off, 3=len
        m.aload(0)
        m.aload(0).getfield(SB, "count").iload(3).iadd()
        m.invokevirtual(SB, "ensureCapacity", "(I)V")
        m.aload(1).iload(2)
        m.aload(0).getfield(SB, "value")
        m.aload(0).getfield(SB, "count")
        m.iload(3)
        m.invokestatic(SYSTEM, "arraycopy",
                       "(Ljava.lang.Object;ILjava.lang.Object;II)V")
        m.aload(0).dup().getfield(SB, "count").iload(3).iadd()
        m.putfield(SB, "count")
        m.aload(0).areturn()

    with c.method("appendInt", "(I)Ljava.lang.StringBuilder;") as m:
        m.aload(0)
        m.iload(1).invokestatic(STRING, "valueOfInt",
                                "(I)Ljava.lang.String;")
        m.invokevirtual(SB, "appendString",
                        "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
        m.areturn()
    with c.method("length", "()I") as m:
        m.aload(0).getfield(SB, "count").ireturn()
    with c.method("toString", "()Ljava.lang.String;") as m:
        m.aload(0).getfield(SB, "value")
        m.iconst(0)
        m.aload(0).getfield(SB, "count")
        m.invokestatic(STRING, "fromChars", "([CII)Ljava.lang.String;")
        m.areturn()
    return c


def _math_class() -> ClassAssembler:
    c = ClassAssembler("java.lang.Math")
    for name in ("sqrt", "sin", "cos", "log"):
        c.native_method(name, "(F)F", static=True)
    c.native_method("pow", "(FF)F", static=True)
    c.native_method("floor", "(F)F", static=True)
    with c.method("abs", "(I)I", static=True) as m:
        m.iload(0).ifge("pos")
        m.iload(0).ineg().ireturn()
        m.label("pos").iload(0).ireturn()
    with c.method("min", "(II)I", static=True) as m:
        m.iload(0).iload(1).if_icmpgt("other")
        m.iload(0).ireturn()
        m.label("other").iload(1).ireturn()
    with c.method("max", "(II)I", static=True) as m:
        m.iload(0).iload(1).if_icmplt("other")
        m.iload(0).ireturn()
        m.label("other").iload(1).ireturn()
    return c


def _integer_class() -> ClassAssembler:
    c = ClassAssembler("java.lang.Integer")
    c.native_method("parseInt", "(Ljava.lang.String;)I", static=True)
    c.native_method("toString", "(I)Ljava.lang.String;", static=True)
    return c


def _float_class() -> ClassAssembler:
    c = ClassAssembler("java.lang.Float")
    c.native_method("floatToIntBits", "(F)I", static=True)
    c.native_method("intBitsToFloat", "(I)F", static=True)
    return c


def _character_class() -> ClassAssembler:
    c = ClassAssembler("java.lang.Character")
    with c.method("isDigit", "(I)I", static=True) as m:
        m.iload(0).iconst(48).if_icmplt("no")
        m.iload(0).iconst(57).if_icmpgt("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()
    with c.method("isLetter", "(I)I", static=True) as m:
        m.iload(0).iconst(32).ior().istore(1)
        m.iload(1).iconst(97).if_icmplt("no")
        m.iload(1).iconst(122).if_icmpgt("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()
    with c.method("isWhitespace", "(I)I", static=True) as m:
        m.iload(0).iconst(32).if_icmpeq("yes")
        m.iload(0).iconst(9).if_icmplt("no")
        m.iload(0).iconst(13).if_icmple("yes")
        m.label("no").iconst(0).ireturn()
        m.label("yes").iconst(1).ireturn()
    with c.method("toLowerCase", "(I)I", static=True) as m:
        m.iload(0).iconst(65).if_icmplt("asis")
        m.iload(0).iconst(90).if_icmpgt("asis")
        m.iload(0).iconst(32).iadd().ireturn()
        m.label("asis").iload(0).ireturn()
    return c


def _thread_class() -> ClassAssembler:
    c = ClassAssembler("java.lang.Thread")
    c.field("name")
    with c.method("<init>", "()V") as m:
        m.return_()
    with c.method("setName", "(Ljava.lang.String;)V") as m:
        m.aload(0).aload(1).putfield("java.lang.Thread", "name")
        m.return_()
    with c.method("getName", "()Ljava.lang.String;") as m:
        m.aload(0).getfield("java.lang.Thread", "name").areturn()
    c.native_method("start0", "()V")
    with c.method("start", "()V") as m:
        m.aload(0).invokevirtual("java.lang.Thread", "start0", "()V")
        m.return_()
    with c.method("run", "()V") as m:
        m.return_()
    c.native_method("join", "()V")
    return c


def _throwable_classes():
    """Throwable and the standard exception hierarchy."""
    classes = []

    c = ClassAssembler(THROWABLE)
    c.field("message")
    with c.method("<init>", "()V") as m:
        m.return_()
    with c.method("<init>", "(Ljava.lang.String;)V") as m:
        m.aload(0).aload(1).putfield(THROWABLE, "message")
        m.return_()
    with c.method("getMessage", "()Ljava.lang.String;") as m:
        m.aload(0).getfield(THROWABLE, "message").areturn()
    classes.append(c)

    hierarchy = [
        ("java.lang.Exception", THROWABLE),
        ("java.lang.Error", THROWABLE),
        ("java.lang.RuntimeException", "java.lang.Exception"),
        ("java.lang.NullPointerException", "java.lang.RuntimeException"),
        ("java.lang.ArithmeticException", "java.lang.RuntimeException"),
        ("java.lang.ArrayIndexOutOfBoundsException",
         "java.lang.RuntimeException"),
        ("java.lang.ClassCastException", "java.lang.RuntimeException"),
        ("java.lang.NegativeArraySizeException",
         "java.lang.RuntimeException"),
        ("java.lang.IllegalMonitorStateException",
         "java.lang.RuntimeException"),
        ("java.lang.NumberFormatException",
         "java.lang.RuntimeException"),
        ("java.lang.ArrayStoreException", "java.lang.RuntimeException"),
        ("java.lang.IllegalStateException",
         "java.lang.RuntimeException"),
        ("java.lang.IllegalArgumentException",
         "java.lang.RuntimeException"),
        ("java.lang.UnsatisfiedLinkError", "java.lang.Error"),
        ("java.lang.StackOverflowError", "java.lang.Error"),
        ("java.io.IOException", "java.lang.Exception"),
        ("java.io.FileNotFoundException", "java.io.IOException"),
    ]
    for name, super_name in hierarchy:
        sub = ClassAssembler(name, super_name=super_name)
        classes.append(sub)
    return classes


def _random_class() -> ClassAssembler:
    c = ClassAssembler("java.util.Random")
    c.field("seed")
    with c.method("<init>", "(I)V") as m:
        m.aload(0).iload(1).putfield("java.util.Random", "seed")
        m.return_()
    with c.method("next", "()I") as m:
        m.aload(0).dup().getfield("java.util.Random", "seed")
        m.ldc(1103515245).imul().ldc(12345).iadd()
        m.ldc(0x7FFFFFFF).iand()
        m.putfield("java.util.Random", "seed")
        m.aload(0).getfield("java.util.Random", "seed").ireturn()
    with c.method("nextInt", "(I)I") as m:
        m.aload(0).invokevirtual("java.util.Random", "next", "()I")
        m.iload(1).irem().ireturn()
    return c


def _io_classes():
    classes = []

    fis = ClassAssembler("java.io.FileInputStream")
    fis.field("name")
    fis.field("pos")
    fis.native_method("open0", "(Ljava.lang.String;)V")
    fis.native_method("readBytes", "([BII)I")
    fis.native_method("read0", "()I")
    fis.native_method("available", "()I")
    fis.native_method("close", "()V")
    with fis.method("<init>", "(Ljava.lang.String;)V") as m:
        m.aload(0).aload(1)
        m.invokevirtual("java.io.FileInputStream", "open0",
                        "(Ljava.lang.String;)V")
        m.return_()
    with fis.method("read", "([BII)I") as m:
        m.aload(0).aload(1).iload(2).iload(3)
        m.invokevirtual("java.io.FileInputStream", "readBytes",
                        "([BII)I")
        m.ireturn()
    with fis.method("read", "()I") as m:
        m.aload(0)
        m.invokevirtual("java.io.FileInputStream", "read0", "()I")
        m.ireturn()
    classes.append(fis)

    fos = ClassAssembler("java.io.FileOutputStream")
    fos.field("name")
    fos.native_method("open0", "(Ljava.lang.String;)V")
    fos.native_method("writeBytes", "([BII)V")
    fos.native_method("close", "()V")
    with fos.method("<init>", "(Ljava.lang.String;)V") as m:
        m.aload(0).aload(1)
        m.invokevirtual("java.io.FileOutputStream", "open0",
                        "(Ljava.lang.String;)V")
        m.return_()
    with fos.method("write", "([BII)V") as m:
        m.aload(0).aload(1).iload(2).iload(3)
        m.invokevirtual("java.io.FileOutputStream", "writeBytes",
                        "([BII)V")
        m.return_()
    classes.append(fos)

    ps = ClassAssembler("java.io.PrintStream")
    ps.native_method("println", "(Ljava.lang.String;)V")
    ps.native_method("printlnInt", "(I)V")
    with ps.method("println", "(I)V") as m:
        m.aload(0).iload(1)
        m.invokevirtual("java.io.PrintStream", "printlnInt", "(I)V")
        m.return_()
    classes.append(ps)
    return classes


def _io_ext_classes():
    """Blocking-I/O classes (DESIGN.md §13): thin bytecode wrappers
    around natives that elapse time on per-device timelines rather
    than the caller's CPU clock.  Kept apart from :func:`_io_classes`
    — no suite workload touches these, so the paper's tables never see
    a device timeline."""
    classes = []

    raf = "java.io.RandomAccessFile"
    c = ClassAssembler(raf)
    c.field("name")
    c.field("pos")
    c.native_method("open0", "(Ljava.lang.String;)V")
    c.native_method("seek0", "(I)V")
    c.native_method("readBytes", "([BII)I")
    c.native_method("writeBytes", "([BII)V")
    c.native_method("length0", "()I")
    c.native_method("close0", "()V")
    with c.method("<init>", "(Ljava.lang.String;)V") as m:
        m.aload(0).aload(1)
        m.invokevirtual(raf, "open0", "(Ljava.lang.String;)V")
        m.return_()
    with c.method("seek", "(I)V") as m:
        m.aload(0).iload(1)
        m.invokevirtual(raf, "seek0", "(I)V")
        m.return_()
    with c.method("read", "([BII)I") as m:
        m.aload(0).aload(1).iload(2).iload(3)
        m.invokevirtual(raf, "readBytes", "([BII)I")
        m.ireturn()
    with c.method("write", "([BII)V") as m:
        m.aload(0).aload(1).iload(2).iload(3)
        m.invokevirtual(raf, "writeBytes", "([BII)V")
        m.return_()
    with c.method("length", "()I") as m:
        m.aload(0)
        m.invokevirtual(raf, "length0", "()I")
        m.ireturn()
    with c.method("close", "()V") as m:
        m.aload(0)
        m.invokevirtual(raf, "close0", "()V")
        m.return_()
    classes.append(c)

    sock = "java.net.Socket"
    c = ClassAssembler(sock)
    c.field("host")
    c.field("port")
    c.native_method("connect0", "(Ljava.lang.String;I)V")
    c.native_method("send0", "([BII)V")
    c.native_method("recv0", "([BII)I")
    c.native_method("close0", "()V")
    with c.method("<init>", "(Ljava.lang.String;I)V") as m:
        m.aload(0).aload(1).iload(2)
        m.invokevirtual(sock, "connect0", "(Ljava.lang.String;I)V")
        m.return_()
    with c.method("send", "([BII)V") as m:
        m.aload(0).aload(1).iload(2).iload(3)
        m.invokevirtual(sock, "send0", "([BII)V")
        m.return_()
    with c.method("recv", "([BII)I") as m:
        m.aload(0).aload(1).iload(2).iload(3)
        m.invokevirtual(sock, "recv0", "([BII)I")
        m.ireturn()
    with c.method("close", "()V") as m:
        m.aload(0)
        m.invokevirtual(sock, "close0", "()V")
        m.return_()
    classes.append(c)
    return classes


def _crc32_class() -> ClassAssembler:
    c = ClassAssembler("java.util.zip.CRC32")
    c.field("crc", default=0)
    with c.method("<init>", "()V") as m:
        m.return_()
    c.native_method("updateBytes", "([BII)V")
    with c.method("update", "([BII)V") as m:
        m.aload(0).aload(1).iload(2).iload(3)
        m.invokevirtual("java.util.zip.CRC32", "updateBytes", "([BII)V")
        m.return_()
    with c.method("getValue", "()I") as m:
        m.aload(0).getfield("java.util.zip.CRC32", "crc").ireturn()
    with c.method("reset", "()V") as m:
        m.aload(0).iconst(0).putfield("java.util.zip.CRC32", "crc")
        m.return_()
    return c


def _vector_class() -> ClassAssembler:
    """Growable object array, in the spirit of java.util.Vector:
    pure bytecode over the native ``System.arraycopy`` primitive."""
    vec = "java.util.Vector"
    c = ClassAssembler(vec)
    c.field("elems")
    c.field("count", default=0)

    with c.method("<init>", "(I)V") as m:
        m.aload(0).iload(1).newarray(ArrayKind.REF)
        m.putfield(vec, "elems")
        m.return_()

    with c.method("<init>", "()V") as m:
        m.aload(0).iconst(8)
        m.invokespecial(vec, "<init>", "(I)V")
        m.return_()

    with c.method("size", "()I") as m:
        m.aload(0).getfield(vec, "count").ireturn()

    with c.method("ensureCapacity", "(I)V") as m:
        # locals: 0=this,1=min,2=cap,3=newcap,4=newarr
        m.aload(0).getfield(vec, "elems").arraylength().istore(2)
        m.iload(1).iload(2).if_icmple("ok")
        m.iload(2).iconst(2).imul().istore(3)
        m.iload(3).iload(1).if_icmpge("alloc")
        m.iload(1).istore(3)
        m.label("alloc")
        m.iload(3).newarray(ArrayKind.REF).astore(4)
        m.aload(0).getfield(vec, "elems").iconst(0)
        m.aload(4).iconst(0)
        m.aload(0).getfield(vec, "count")
        m.invokestatic(SYSTEM, "arraycopy",
                       "(Ljava.lang.Object;ILjava.lang.Object;II)V")
        m.aload(0).aload(4).putfield(vec, "elems")
        m.label("ok").return_()

    with c.method("add", "(Ljava.lang.Object;)V") as m:
        m.aload(0)
        m.aload(0).getfield(vec, "count").iconst(1).iadd()
        m.invokevirtual(vec, "ensureCapacity", "(I)V")
        m.aload(0).getfield(vec, "elems")
        m.aload(0).getfield(vec, "count")
        m.aload(1).aastore()
        m.aload(0).dup().getfield(vec, "count").iconst(1).iadd()
        m.putfield(vec, "count")
        m.return_()

    with c.method("get", "(I)Ljava.lang.Object;") as m:
        m.iload(1).iflt("oob")
        m.iload(1).aload(0).getfield(vec, "count").if_icmpge("oob")
        m.aload(0).getfield(vec, "elems").iload(1).aaload()
        m.areturn()
        m.label("oob")
        m.new("java.lang.ArrayIndexOutOfBoundsException").dup()
        m.invokespecial("java.lang.ArrayIndexOutOfBoundsException",
                        "<init>", "()V")
        m.athrow()

    with c.method("set", "(ILjava.lang.Object;)V") as m:
        m.aload(0).getfield(vec, "elems").iload(1)
        m.aload(2).aastore()
        m.return_()

    with c.method("indexOf", "(Ljava.lang.Object;)I") as m:
        # virtual equals per probe (native for strings)
        # locals: 0=this,1=target,2=i,3=n
        m.aload(0).getfield(vec, "count").istore(3)
        m.iconst(0).istore(2)
        m.label("scan")
        m.iload(2).iload(3).if_icmpge("missing")
        m.aload(0).getfield(vec, "elems").iload(2).aaload()
        m.aload(1)
        m.invokevirtual(OBJECT, "equals", "(Ljava.lang.Object;)I")
        m.ifeq("next")
        m.iload(2).ireturn()
        m.label("next")
        m.iinc(2, 1).goto("scan")
        m.label("missing")
        m.iconst(-1).ireturn()
    return c


def _hashtable_class() -> ClassAssembler:
    """Open-addressing hash map, in the spirit of java.util.Hashtable:
    virtual hashCode/equals per probe (native for string keys)."""
    ht = "java.util.Hashtable"
    c = ClassAssembler(ht)
    c.field("keys")
    c.field("vals")
    c.field("count", default=0)
    c.field("cap", default=0)

    with c.method("<init>", "(I)V") as m:
        m.aload(0).iload(1).putfield(ht, "cap")
        m.aload(0).iload(1).newarray(ArrayKind.REF)
        m.putfield(ht, "keys")
        m.aload(0).iload(1).newarray(ArrayKind.REF)
        m.putfield(ht, "vals")
        m.return_()

    with c.method("<init>", "()V") as m:
        m.aload(0).iconst(64)
        m.invokespecial(ht, "<init>", "(I)V")
        m.return_()

    with c.method("size", "()I") as m:
        m.aload(0).getfield(ht, "count").ireturn()

    with c.method("slotFor", "(Ljava.lang.Object;)I") as m:
        # linear probe; returns the slot holding key or the first empty
        # locals: 0=this,1=key,2=h,3=k
        m.aload(1).invokevirtual(OBJECT, "hashCode", "()I")
        m.ldc(0x7FFFFFFF).iand()
        m.aload(0).getfield(ht, "cap").irem().istore(2)
        m.label("probe")
        m.aload(0).getfield(ht, "keys").iload(2).aaload().astore(3)
        m.aload(3).ifnull("found")
        m.aload(3).aload(1)
        m.invokevirtual(OBJECT, "equals", "(Ljava.lang.Object;)I")
        m.ifne("found")
        m.iload(2).iconst(1).iadd()
        m.aload(0).getfield(ht, "cap").irem().istore(2)
        m.goto("probe")
        m.label("found")
        m.iload(2).ireturn()

    with c.method("rehash", "()V") as m:
        # locals: 0=this,1=oldKeys,2=oldVals,3=oldCap,4=i,5=k
        m.aload(0).getfield(ht, "keys").astore(1)
        m.aload(0).getfield(ht, "vals").astore(2)
        m.aload(0).getfield(ht, "cap").istore(3)
        m.aload(0).iload(3).iconst(2).imul().putfield(ht, "cap")
        m.aload(0).aload(0).getfield(ht, "cap")
        m.newarray(ArrayKind.REF).putfield(ht, "keys")
        m.aload(0).aload(0).getfield(ht, "cap")
        m.newarray(ArrayKind.REF).putfield(ht, "vals")
        m.aload(0).iconst(0).putfield(ht, "count")
        m.iconst(0).istore(4)
        m.label("move")
        m.iload(4).iload(3).if_icmpge("done")
        m.aload(1).iload(4).aaload().astore(5)
        m.aload(5).ifnull("next")
        m.aload(0).aload(5)
        m.aload(2).iload(4).aaload()
        m.invokevirtual(ht, "put",
                        "(Ljava.lang.Object;Ljava.lang.Object;)V")
        m.label("next")
        m.iinc(4, 1).goto("move")
        m.label("done")
        m.return_()

    with c.method("put",
                  "(Ljava.lang.Object;Ljava.lang.Object;)V") as m:
        # locals: 0=this,1=key,2=val,3=slot
        m.aload(0).getfield(ht, "count").iconst(2).imul()
        m.aload(0).getfield(ht, "cap").if_icmplt("room")
        m.aload(0).invokevirtual(ht, "rehash", "()V")
        m.label("room")
        m.aload(0).aload(1)
        m.invokevirtual(ht, "slotFor", "(Ljava.lang.Object;)I")
        m.istore(3)
        m.aload(0).getfield(ht, "keys").iload(3).aaload()
        m.ifnonnull("overwrite")
        m.aload(0).dup().getfield(ht, "count").iconst(1).iadd()
        m.putfield(ht, "count")
        m.aload(0).getfield(ht, "keys").iload(3)
        m.aload(1).aastore()
        m.label("overwrite")
        m.aload(0).getfield(ht, "vals").iload(3)
        m.aload(2).aastore()
        m.return_()

    with c.method("get",
                  "(Ljava.lang.Object;)Ljava.lang.Object;") as m:
        m.aload(0).aload(1)
        m.invokevirtual(ht, "slotFor", "(Ljava.lang.Object;)I")
        m.istore(2)
        m.aload(0).getfield(ht, "vals").iload(2).aaload()
        m.areturn()

    with c.method("containsKey", "(Ljava.lang.Object;)I") as m:
        m.aload(0).aload(1)
        m.invokevirtual(ht, "slotFor", "(Ljava.lang.Object;)I")
        m.istore(2)
        m.aload(0).getfield(ht, "keys").iload(2).aaload()
        m.ifnull("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()
    return c


def build_runtime_archive() -> ClassArchive:
    """Build and serialize the full runtime library."""
    archive = ClassArchive()
    builders = [_object_class(), _string_class(), _system_class(),
                _string_builder_class(), _math_class(),
                _integer_class(), _float_class(), _character_class(),
                _thread_class(), _random_class(), _crc32_class(),
                _vector_class(), _hashtable_class()]
    builders.extend(_throwable_classes())
    builders.extend(_io_classes())
    builders.extend(_io_ext_classes())
    for builder in builders:
        archive.put_class(builder.build())
    return archive
