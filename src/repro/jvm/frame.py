"""Stack frames of the simulated Java call stack."""

from __future__ import annotations

from typing import List


class Frame:
    """One activation of a bytecode method.

    ``locals`` holds ``max_locals`` slots (arguments pre-stored at the
    low indices, receiver in slot 0 for instance methods); ``stack`` is
    the operand stack; ``pc`` indexes into the method's instruction list.
    """

    __slots__ = ("method", "locals", "stack", "pc", "deopted")

    def __init__(self, method, args: List):
        self.method = method
        n_locals = method.info.max_locals
        slots = list(args)
        if len(slots) < n_locals:
            slots.extend([None] * (n_locals - len(slots)))
        self.locals = slots
        self.stack: List = []
        self.pc = 0
        #: Set when a template deoptimized this activation back to the
        #: interpreter; the tier dispatch never re-enters a deopted
        #: frame (its template restarts only on a fresh activation).
        self.deopted = False

    def __repr__(self):  # pragma: no cover - debug aid
        return (f"<Frame {self.method.owner.name}."
                f"{self.method.info.name} pc={self.pc} "
                f"stack={len(self.stack)}>")
