"""The :class:`JavaVM` facade: wiring, launch protocol, and results.

Launch protocol (mirrors a real JVM run with ``-agentlib:``):

1. construct the VM with a :class:`VMConfig`;
2. attach agents (``Agent_OnLoad`` runs: capabilities, callbacks,
   events; agent native libraries and runtime classes are installed;
   static instrumentation rewrites the launch archives);
3. :meth:`JavaVM.launch` — creates the bootstrap (main) thread (which,
   per the JVMTI contract the paper leans on, gets **no** ThreadStart
   event), fires VMInit, runs ``main.main()V``, drains threads started
   but not yet joined, fires ThreadEnd for every thread, and finally
   VMDeath.

All results (cycle totals, ground-truth tags, agent reports) are read
off the VM afterwards.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import units
from repro.errors import DeadlockError, NoSuchMethodError, VMError
from repro.jit.compiler import JitCompiler
from repro.jit.policy import JitPolicy
from repro.jni.function_table import JNIEnv, JNIFunctionTable
from repro.jni.library import NativeRegistry
from repro.jvm.classloader import ClassLoader
from repro.jvm.costmodel import ChargeTag, CostModel
from repro.jvm.heap import Heap
from repro.jvm.interpreter import Interpreter, Unwind
from repro.jvm.scheduler import CoreScheduler, SchedulerAbort
from repro.jvm.threads import SimThread, ThreadManager, ThreadState
from repro.jvmti.host import (
    JVMTI_VERSION_1_1,
    JVMTIHost,
)
from repro.observability.sink import NULL_SINK
from repro.observability.tracer import HARNESS_TID
from repro.pcl.counters import PCL
from repro.sanitizer.race import RaceSanitizer

MAIN_DESCRIPTOR = "()V"


@dataclass
class VMConfig:
    """Launch configuration."""

    clock_hz: int = units.DEFAULT_CLOCK_HZ
    cost_model: CostModel = field(default_factory=CostModel)
    jit_policy: JitPolicy = field(default_factory=JitPolicy)
    #: JVMTI version exposed to agents: (1, 0) or (1, 1).
    jvmti_version: tuple = JVMTI_VERSION_1_1
    #: Bytecode verification at class load: ``"off"``, ``"structural"``
    #: (stack-discipline dataflow), or ``"typed"`` (abstract
    #: interpretation over the type lattice).  Verification runs on the
    #: host and charges no simulated cycles, so results are identical
    #: across modes for classes that verify.
    verify: str = "structural"
    #: Simulated CPU cores.  1 (the default) is the sequential
    #: run-to-completion model matching the paper's single-CPU testbed;
    #: N > 1 enables the preemptive :class:`~repro.jvm.scheduler.
    #: CoreScheduler` with per-core cycle clocks.
    cores: int = 1
    #: Dynamic sanitizer: ``"off"`` or ``"race"`` (FastTrack-style
    #: happens-before detector).  Pure host-side shadow state — cycle
    #: accounting and tables are bit-identical across modes.
    sanitize: str = "off"


class JavaVM:
    """One simulated JVM instance (single launch, then read results)."""

    def __init__(self, config: Optional[VMConfig] = None):
        self.config = config or VMConfig()
        self.cost_model = self.config.cost_model
        self.heap = Heap()
        self.threads = ThreadManager()
        self.loader = ClassLoader(self)
        self.jvmti = JVMTIHost(self, self.config.jvmti_version)
        self.jit = JitCompiler(self, self.config.jit_policy)
        if self.jit.policy.enabled and self.jit.policy.template_tier:
            # templates re-enter the interpreter recursively for Java
            # calls (a few host frames per simulated frame); the host
            # default limit sits far below max_frames.  Never lowered.
            needed = 4 * self.cost_model.max_frames + 1000
            if sys.getrecursionlimit() < needed:
                sys.setrecursionlimit(needed)
        self.native_registry = NativeRegistry(self)
        self.jni_table = JNIFunctionTable(self)
        self.interpreter = Interpreter(self)
        #: Happens-before race sanitizer; None unless ``--sanitize
        #: race``.  Constructed before the scheduler, which caches a
        #: reference for its slice-boundary handoff edges.
        self.sanitizer: Optional[RaceSanitizer] = (
            RaceSanitizer(self) if self.config.sanitize == "race"
            else None)
        #: Preemptive N-core scheduler; None under the sequential model
        #: (cores=1), which every hot path checks cheaply.
        self.scheduler: Optional[CoreScheduler] = (
            CoreScheduler(self, self.config.cores)
            if self.config.cores > 1 else None)
        self.pcl = PCL(self)
        self.console: List[str] = []
        self.agents: List = []
        self._launched = False
        self._dead = False
        #: Observability sink — a shared no-op by default; the harness
        #: installs a live sink before launch.  Hooks only *observe*
        #: per-thread cycle counters, so cycle accounting is identical
        #: whether the sink records or not.
        self.obs = NULL_SINK
        # statistics
        self.instructions_retired = 0
        self.method_invocations = 0
        self.native_invocations = 0
        self.jni_invocations = 0
        self.ic_hits = 0
        self.ic_misses = 0
        # polymorphic inline caches: hits served by a non-first PIC
        # entry, dispatches through megamorphic sites, and the two
        # state transitions (mono->poly on second receiver class,
        # poly->mega past JitPolicy.pic_depth)
        self.pic_hits = 0
        self.pic_megamorphic = 0
        self.pic_mono_to_poly = 0
        self.pic_poly_to_mega = 0
        self.methods_verified = 0
        #: Qualified names of native methods actually resolved by this
        #: VM (filled once per method at first invocation — zero cost
        #: on the hot path); the harness cross-checks this set against
        #: the static native-boundary analysis.
        self.native_methods_invoked: set = set()
        #: One entry per thread that died with an uncaught exception:
        #: the console line that reported it.  Surfaced through harness
        #: metrics, the run ledger, and table exit codes.
        self.thread_deaths: List[str] = []
        # simulated file system: name -> bytes (inputs) / bytearray (outputs)
        self.files: Dict[str, bytes] = {}
        #: Per-device completion clocks for blocking natives (DESIGN.md
        #: §13): ``device name -> device cycles``.  Empty unless a
        #: blocking native ran.
        self.device_clock: Dict[str, int] = {}
        #: Blocked cycles attributed per native method (``CLASS.METHOD
        #: -> cycles``) — the off-CPU analogue of ground-truth tags.
        self.blocked_by_native: Dict[str, int] = {}
        #: Active COZ-style causal experiment (see
        #: repro.harness.causal); None in normal runs.
        self.causal = None
        # trace lane ids for device timelines (negative, distinct from
        # the scheduler's per-core lanes)
        self._device_lanes: Dict[str, int] = {}

    def device_lane(self, device: str) -> int:
        """Trace lane (tid) for a device timeline, registering its name
        on first use.  Distinct negative range from the scheduler's
        per-core lanes (``-(core+1)``)."""
        tid = self._device_lanes.get(device)
        if tid is None:
            tid = -(100 + len(self._device_lanes))
            self._device_lanes[device] = tid
            self.obs.tracer.register_thread(tid, f"dev-{device}")
        return tid

    def block_on_device(self, thread: SimThread, device: str,
                        cycles: int, label: Optional[str] = None) -> int:
        """Elapse ``cycles`` of service time for ``thread`` on
        ``device``'s timeline; returns the blocked cycles charged.

        The device services requests in arrival order: the request
        starts at ``max(device clock, thread wall clock)`` and the
        thread is blocked from its own wall clock until completion.
        With a single thread the two clocks can never run ahead of each
        other, so blocked time equals service time exactly.
        """
        if cycles <= 0:
            return 0
        wall = thread.wall_cycles
        start = max(self.device_clock.get(device, 0), wall)
        completion = start + cycles
        self.device_clock[device] = completion
        blocked = completion - wall
        thread.block(blocked, device)
        if self.obs.enabled:
            self.obs.tracer.complete(
                label or device, "io", self.device_lane(device),
                start, completion,
                {"thread": thread.name, "blocked": blocked})
        return blocked

    # -- configuration ------------------------------------------------------------

    def attach_agent(self, agent) -> None:
        """Attach a profiling agent (before :meth:`launch`)."""
        if self._launched:
            raise VMError("cannot attach agents after launch")
        env = self.jvmti.attach(agent)
        agent.on_load(env)
        for library in agent.native_libraries():
            self.native_registry.register(library, preload=True)
        runtime = agent.runtime_classes()
        if runtime is not None:
            self.loader.prepend_boot_archive(runtime)
        self.agents.append(agent)

    def add_file(self, name: str, data: bytes) -> None:
        """Install an input file into the simulated file system."""
        self.files[name] = data

    def jni_env(self, thread) -> JNIEnv:
        return JNIEnv(self, thread)

    # -- string helper used across the VM ----------------------------------------------

    def intern_string(self, value: str):
        string_class = self.loader.load("java.lang.String")
        return self.heap.intern(string_class, value)

    def new_string(self, value: str):
        string_class = self.loader.load("java.lang.String")
        return self.heap.new_string(string_class, value)

    # -- launch -----------------------------------------------------------------------

    def launch(self, main_class_name: str) -> "JavaVM":
        """Run ``main_class_name.main()V`` to completion and shut down."""
        if self._launched:
            raise VMError("JavaVM instances are single-launch")
        self._launched = True

        main_thread = self.threads.create("main")
        main_thread.state = ThreadState.RUNNING
        self.threads.current = main_thread

        tracer = self.obs.tracer
        tracer.register_thread(main_thread.thread_id, main_thread.name)
        self.thread_state_instant(main_thread, "RUNNING")
        scheduler = self.scheduler
        if scheduler is not None:
            scheduler.attach_main(main_thread)
            scheduler.register_trace_lanes()

        self.jvmti.dispatch_vm_init()
        tracer.instant("VM_INIT", "vm", main_thread.thread_id,
                       main_thread.cycles_total)

        main_class = self.loader.load(main_class_name)
        main_method = main_class.resolve_method("main", MAIN_DESCRIPTOR)
        if main_method is None or not main_method.info.is_static:
            raise NoSuchMethodError(
                f"no static main{MAIN_DESCRIPTOR} in {main_class_name}")

        # like a real launcher, enter Java through the JNI invocation
        # interface — so agents intercepting the JNI function table see
        # the initial native->Java transition of the main thread
        main_start = main_thread.cycles_total
        if scheduler is None:
            try:
                self.jni_env(main_thread).call_static_void_method(
                    main_method)
            except Unwind as unwind:
                self._report_uncaught(main_thread, unwind.jobject)
            self._finish_thread(main_thread)
            tracer.complete(f"thread:{main_thread.name}", "thread",
                            main_thread.thread_id, main_start,
                            main_thread.cycles_total)

            # drain threads that were started but never joined
            while self.threads.has_queued:
                thread = self.threads.dequeue()
                self.run_thread(thread)
        else:
            try:
                try:
                    self.jni_env(main_thread).call_static_void_method(
                        main_method)
                except Unwind as unwind:
                    self._report_uncaught(main_thread, unwind.jobject)
                # wait for every started-but-never-joined thread
                scheduler.drain(main_thread)
            except SchedulerAbort:
                pass
            scheduler.shutdown()
            error = scheduler.abort_error
            if error is not None and not isinstance(error, SchedulerAbort):
                raise error
            self._finish_thread(main_thread)
            tracer.complete(f"thread:{main_thread.name}", "thread",
                            main_thread.thread_id, main_start,
                            main_thread.cycles_total)

        self.threads.current = None
        self._dead = True
        self.jvmti.dispatch_vm_death()
        tracer.instant("VM_DEATH", "vm", HARNESS_TID,
                       self.threads.total_cycles())
        return self

    def run_thread(self, thread: SimThread) -> None:
        """Execute a queued thread to completion (called by the drain
        loop and by ``Thread.join``)."""
        if thread.state is ThreadState.TERMINATED:
            return
        if thread.state is ThreadState.RUNNING:
            raise VMError(f"thread {thread.name!r} is already running "
                          f"(self-join?)")
        previous = self.threads.current
        self.threads.current = thread
        thread.state = ThreadState.RUNNING
        tracer = self.obs.tracer
        tracer.register_thread(thread.thread_id, thread.name)
        self.thread_state_instant(thread, "RUNNING")
        thread_start = thread.cycles_total
        self.jvmti.dispatch_thread_start(thread)
        run_method = None
        if thread.java_object is not None:
            run_method = thread.java_object.jclass.resolve_method(
                "run", "()V")
        if run_method is None:
            raise VMError(f"thread {thread.name!r} has no run()V")
        try:
            # thread bootstrap enters run() through the JNI interface,
            # so the initial N2J transition is interceptable
            self.jni_env(thread).call_void_method(
                thread.java_object, run_method)
        except Unwind as unwind:
            self._report_uncaught(thread, unwind.jobject)
        self._finish_thread(thread)
        tracer.complete(f"thread:{thread.name}", "thread",
                        thread.thread_id, thread_start,
                        thread.cycles_total)
        self.threads.current = previous

    def start_thread(self, thread: SimThread) -> None:
        """``Thread.start``: hand the thread to the scheduler, or queue
        it for sequential execution."""
        if self.sanitizer is not None:
            # HB edge: everything the parent did precedes the child
            self.sanitizer.on_start(self.threads.current, thread)
        if self.scheduler is not None:
            self.scheduler.start_thread(thread)
        else:
            self.threads.enqueue(thread)

    def join_thread(self, thread: SimThread) -> None:
        """``Thread.join``: block (scheduler) or run the target to
        completion now (sequential model)."""
        joiner = self.threads.current
        if self.scheduler is not None:
            self.scheduler.join(joiner, thread)
        else:
            self.ensure_thread_finished(thread)
        if self.sanitizer is not None:
            # HB edge: the joiner resumes after the joined thread's
            # entire execution (the target has terminated by now)
            self.sanitizer.on_join(joiner, thread)

    def ensure_thread_finished(self, thread: SimThread) -> None:
        """``Thread.join`` semantics under the sequential model: run the
        joined thread to completion now if it has not run yet."""
        current = self.threads.current
        if thread is current:
            cycle = [(thread.name, "join", thread.name)]
            raise DeadlockError(
                f"deadlock: {thread.name} joins itself: "
                + DeadlockError.render_cycle(cycle), cycle=cycle)
        if thread.state is ThreadState.QUEUED:
            self.threads.dequeue(thread)
            self.run_thread(thread)
        elif thread.state is ThreadState.RUNNING:
            # the target is suspended below us on the host stack; under
            # the sequential model it can only resume after the current
            # thread returns — a guaranteed wait-for cycle
            waiter = current.name if current is not None else "?"
            cycle = [(waiter, f"join {thread.name}", thread.name),
                     (thread.name, "host-stack resumption", waiter)]
            raise DeadlockError(
                "deadlock: join on running thread under the sequential "
                "model: " + DeadlockError.render_cycle(cycle),
                cycle=cycle)
        # NEW (never started) and TERMINATED both return immediately,
        # matching java.lang.Thread.join.

    def scheduled_thread_body(self, thread: SimThread) -> None:
        """Body of one scheduler-dispatched worker thread (runs on its
        own host thread; execution is serialized by the scheduler)."""
        tracer = self.obs.tracer
        tracer.register_thread(thread.thread_id, thread.name)
        thread_start = thread.cycles_total
        self.jvmti.dispatch_thread_start(thread)
        run_method = None
        if thread.java_object is not None:
            run_method = thread.java_object.jclass.resolve_method(
                "run", "()V")
        if run_method is None:
            raise VMError(f"thread {thread.name!r} has no run()V")
        try:
            self.jni_env(thread).call_void_method(
                thread.java_object, run_method)
        except Unwind as unwind:
            self._report_uncaught(thread, unwind.jobject)
        self.jvmti.dispatch_thread_end(thread)
        tracer.complete(f"thread:{thread.name}", "thread",
                        thread.thread_id, thread_start,
                        thread.cycles_total)

    def _finish_thread(self, thread: SimThread) -> None:
        self.jvmti.dispatch_thread_end(thread)
        thread.state = ThreadState.TERMINATED
        self.thread_state_instant(thread, "TERMINATED")

    def thread_state_instant(self, thread: SimThread,
                             state: str) -> None:
        """Emit a thread-state transition mark on the thread's trace
        lane (RUNNING/RUNNABLE/BLOCKED/PARKED/TERMINATED).  Host-side
        only — zero simulated cycles."""
        self.obs.tracer.instant("thread-state", "sched",
                                thread.thread_id, thread.cycles_total,
                                {"state": state})

    def _report_uncaught(self, thread: SimThread, jobject) -> None:
        thread.uncaught_exception = jobject
        message = ""
        msg_obj = getattr(jobject, "fields", {}).get("message")
        if msg_obj is not None and \
                getattr(msg_obj, "string_value", None) is not None:
            message = f": {msg_obj.string_value}"
        line = (f'Exception in thread "{thread.name}" '
                f"{getattr(jobject, 'class_name', '<exception>')}{message}")
        self.console.append(line)
        self.thread_deaths.append(line)

    # -- class-initializer support (called by the loader) --------------------------------

    def run_class_initializer(self, loaded_class, clinit) -> None:
        thread = self.threads.current
        if thread is None:
            raise VMError(
                f"<clinit> of {loaded_class.name} outside a thread")
        self.interpreter.call_method(thread, clinit, [])

    # -- results ---------------------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return self.threads.total_cycles()

    @property
    def total_blocked(self) -> int:
        """Off-CPU cycles spent blocked on devices, across all threads."""
        return self.threads.total_blocked()

    @property
    def wall_cycles(self) -> int:
        """Virtual wall clock of the run.

        Sequential model: one CPU, so wall time is CPU time plus the
        gaps the single thread spent blocked.  Under the preemptive
        scheduler it is the latest clock anywhere in the machine — the
        busiest core or the busiest device, whichever finished last
        (per-thread blocked gaps overlap with other threads running).
        """
        if self.scheduler is None:
            return self.total_cycles + self.total_blocked
        clocks = list(self.scheduler.core_clock)
        clocks.extend(self.device_clock.values())
        return max(clocks) if clocks else 0

    @property
    def elapsed_seconds(self) -> float:
        return units.cycles_to_seconds(self.total_cycles,
                                       self.config.clock_hz)

    def ground_truth(self) -> Dict[str, int]:
        """Tagged cycle totals across all threads (the oracle the agents
        are validated against)."""
        totals = self.threads.total_by_tag()
        return {tag.value: cycles for tag, cycles in totals.items()}

    def ground_truth_native_fraction(self) -> float:
        """Ground-truth fraction of application time spent in native
        code: native / (native + bytecode)."""
        totals = self.threads.total_by_tag()
        native = totals[ChargeTag.NATIVE]
        bytecode = totals[ChargeTag.BYTECODE]
        if native + bytecode == 0:
            return 0.0
        return native / (native + bytecode)

    def agent_reports(self) -> Dict[str, Dict]:
        return {agent.name: agent.report() for agent in self.agents}
