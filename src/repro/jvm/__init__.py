"""The virtual machine: heap, frames, threads, class loading, the
interpreter, and the :class:`~repro.jvm.machine.JavaVM` facade.

The VM executes the bytecode ISA of :mod:`repro.bytecode` over classes
loaded from :mod:`repro.classfile` archives, charging virtual cycles per
the cost model.  Execution is fully deterministic: threads are run one
at a time on a single simulated CPU (a valid serialization — see
DESIGN.md), and no wall-clock or OS state is consulted.

``JavaVM``/``VMConfig`` are lazy exports (PEP 562) because the machine
module pulls in the JNI layer, which depends on the eager part of this
package.
"""

from repro.jvm.values import JArray, JObject, NULL
from repro.jvm.costmodel import ChargeTag, CostModel

__all__ = [
    "JArray",
    "JObject",
    "NULL",
    "ChargeTag",
    "CostModel",
    "JavaVM",
    "VMConfig",
]

_LAZY = {
    "JavaVM": ("repro.jvm.machine", "JavaVM"),
    "VMConfig": ("repro.jvm.machine", "VMConfig"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
