"""Preemptive N-core simulated scheduler (``--cores N``, N > 1).

The sequential model (cores=1, the default) runs each thread to
completion on one virtual CPU; this module replaces it with a
deterministic preemptive scheduler over N *simulated* cores:

* **One host thread per simulated thread, but never two running at
  once.**  A suspended simulated thread's state lives on its host
  Python stack (interpreter frames, template-tier locals, nested
  native->Java re-entries), so suspension/resumption needs a real host
  stack per thread.  Execution is strictly serialized by handoff: the
  yielding thread picks the successor under the scheduler lock, sets
  the successor's event, and parks on its own event *after releasing
  the lock*.  There is no scheduler thread and no host parallelism —
  wall-clock is irrelevant to the simulation, so determinism costs
  nothing.

* **Per-core cycle clocks.**  ``core_clock[c]`` accumulates the cycles
  of every slice executed on core *c*.  Dispatch always picks the core
  with the lowest clock (lowest index breaking ties), i.e. the core
  that is free earliest on the virtual timeline — a classic list
  scheduler.  ``max(core_clock)`` is the simulated wall clock;
  ``sum(core_clock)`` stays equal to total CPU cycles.

* **Quantum preemption at safepoints.**  A dispatched thread runs
  until ``cycles_total >= preempt_at`` (quantum from the cost model),
  checked at the interpreter/template safepoints: loop backedges and
  call boundaries — exactly the points where the template tier can
  already reconstruct frame state.  If nothing else is ready the
  quantum is simply extended (no slice end, no context-switch charge),
  so a single-threaded program costs the same at any core count.

* **Blocking monitors and joins.**  Contended MONITORENTER parks the
  acquirer on the object's FIFO waiter queue (charging the contention
  cost, VM tag); MONITOREXIT hands the monitor directly to the first
  waiter.  ``Thread.join`` parks the joiner until the target
  terminates.  The main thread parks in a drain barrier until every
  started thread has terminated.

* **Deadlock detection.**  When nothing is ready and no dispatch can
  ever make progress, the scheduler walks the wait-for graph
  (monitor waiter -> owner, joiner -> target) and raises a structured
  :class:`~repro.errors.DeadlockError` naming the cycle.

Determinism: the successor choice is a pure function of the FIFO ready
queue, per-core clocks, and thread ids — all of which are functions of
the (deterministic) simulated execution.  Host thread scheduling never
influences any simulated outcome.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, VMError
from repro.jvm.costmodel import ChargeTag
from repro.jvm.threads import SimThread, ThreadState


class SchedulerAbort(BaseException):
    """Unwinds a parked simulated thread when the run is torn down.

    Deliberately a ``BaseException``: workload ``except``-all handlers
    (simulated or host-side) must not swallow it.
    """


class CoreScheduler:
    """Deterministic preemptive scheduler over N simulated cores."""

    def __init__(self, vm, cores: int):
        if cores < 2:
            raise VMError(f"CoreScheduler needs cores >= 2, got {cores}")
        self.vm = vm
        self.cores = cores
        #: Race sanitizer (constructed before the scheduler by the VM),
        #: or None; slice boundaries publish happens-before edges to it.
        self.san = vm.sanitizer
        #: Cycles executed so far on each simulated core.
        self.core_clock: List[int] = [0] * cores
        #: Runnable threads, FIFO.
        self.ready: Deque[SimThread] = deque()
        #: ``target.thread_id -> [joiners]`` parked in ``join``.
        self._join_waiters: Dict[int, List[SimThread]] = {}
        self._lock = threading.Lock()
        self._events: Dict[int, threading.Event] = {}
        self._host_threads: Dict[int, threading.Thread] = {}
        #: Cycle counter value when the running slice was dispatched.
        self._slice_start = 0
        self._running: Optional[SimThread] = None
        self._main: Optional[SimThread] = None
        #: Error that tears the run down (DeadlockError or a host error
        #: escaping a worker); checked by every thread on wake-up.
        self._abort: Optional[BaseException] = None
        # observability counters (surfaced via repro metrics)
        self.context_switches = 0
        self.monitor_contentions = 0
        self.deadlocks_detected = 0
        self.io_blocks = 0

    # ------------------------------------------------------------------
    # lifecycle

    def attach_main(self, main: SimThread) -> None:
        """Adopt the launching thread as the simulated main thread."""
        self._main = main
        self._running = main
        self._events[main.thread_id] = threading.Event()
        cost = self.vm.config.cost_model
        main.core = 0
        main.preempt_at = main.cycles_total + cost.scheduler_quantum
        self._slice_start = main.cycles_total
        self.vm.threads.current = main

    def start_thread(self, thread: SimThread) -> None:
        """``Thread.start``: make ``thread`` READY with its own host
        thread parked until first dispatch."""
        if thread.state is not ThreadState.NEW:
            raise VMError(
                f"thread {thread.name!r} started twice "
                f"(state {thread.state.value})")
        with self._lock:
            event = threading.Event()
            self._events[thread.thread_id] = event
            host = threading.Thread(
                target=self._worker_main, args=(thread,),
                name=f"sim-{thread.name}", daemon=True)
            self._host_threads[thread.thread_id] = host
            thread.state = ThreadState.READY
            self.ready.append(thread)
            self._state_instant(thread, "RUNNABLE")
        host.start()

    def shutdown(self) -> None:
        """Join every worker host thread (all have exited or will exit
        on their SchedulerAbort wake-up)."""
        with self._lock:
            if self._abort is None:
                self._abort = SchedulerAbort("vm shutdown")
            for tid, event in self._events.items():
                if self._main is not None and tid == self._main.thread_id:
                    continue
                event.set()
        for host in self._host_threads.values():
            host.join(timeout=10.0)

    def _worker_main(self, thread: SimThread) -> None:
        """Host-thread body of one simulated worker thread."""
        try:
            self._park(thread)  # until first dispatch
            self.vm.scheduled_thread_body(thread)
            self.finish(thread)
        except SchedulerAbort:
            pass
        except BaseException as exc:  # host-side failure: abort the run
            self._abort_run(exc)

    # ------------------------------------------------------------------
    # scheduling core

    def preempt(self, thread: SimThread) -> None:
        """Safepoint hit with ``cycles_total >= preempt_at``.

        With an empty ready queue the quantum is extended in place —
        no slice end, no charge — so lone threads are undisturbed.
        """
        cost = self.vm.config.cost_model
        with self._lock:
            if not self.ready:
                thread.preempt_at = thread.cycles_total + \
                    cost.scheduler_quantum
                return
            thread.charge(cost.context_switch_cycles, ChargeTag.VM)
            self.context_switches += 1
            self._end_slice(thread)
            thread.state = ThreadState.READY
            self.ready.append(thread)
            self._state_instant(thread, "RUNNABLE")
            successor = self._dispatch_next()
        self._handoff(thread, successor)

    def block_io(self, thread: SimThread, device: str, cycles: int,
                 label: Optional[str] = None) -> int:
        """Blocking native: elapse ``cycles`` on ``device``'s timeline
        with ``thread`` off-CPU, handing the core to the next runnable
        thread for the gap.  Returns the blocked cycles.

        With an empty ready queue there is nobody to run in the gap:
        the thread keeps its core (quantum extended in place, no slice
        end, no context-switch charge — mirroring :meth:`preempt`'s
        lone-thread fast path), so a single-threaded I/O program costs
        the same CPU cycles at any core count.
        """
        if cycles <= 0:
            return 0
        cost = self.vm.config.cost_model
        with self._lock:
            blocked = self.vm.block_on_device(thread, device, cycles,
                                              label=label)
            self.io_blocks += 1
            self._state_instant(thread, "BLOCKED")
            if not self.ready:
                thread.preempt_at = thread.cycles_total + \
                    cost.scheduler_quantum
                self._state_instant(thread, "RUNNING")
                return blocked
            thread.charge(cost.context_switch_cycles, ChargeTag.VM)
            self.context_switches += 1
            self._end_slice(thread)
            thread.state = ThreadState.READY
            self.ready.append(thread)
            self._state_instant(thread, "RUNNABLE")
            successor = self._dispatch_next()
        self._handoff(thread, successor)
        return blocked

    def acquire_contended(self, thread: SimThread, obj) -> None:
        """Block ``thread`` until it owns ``obj``'s monitor.

        Called from the interpreter/template MONITORENTER with the
        monitor observed held by another thread; on return the monitor
        belongs to ``thread`` (ownership is transferred directly by the
        releasing thread).
        """
        cost = self.vm.config.cost_model
        with self._lock:
            owner = obj.monitor_owner
            if owner is None or owner is thread:
                # released between the opcode's check and here — only
                # possible for re-dispatched waiters, not reachable in
                # the serialized protocol, but harmless to handle
                obj.monitor_owner = thread
                obj.monitor_count += 1
                if self.san is not None:
                    self.san.on_acquire(thread, obj)
                return
            thread.charge(cost.monitor_contention_cycles, ChargeTag.VM)
            self.monitor_contentions += 1
            if obj.monitor_waiters is None:
                obj.monitor_waiters = deque()
            obj.monitor_waiters.append(thread)
            self._end_slice(thread)
            thread.state = ThreadState.BLOCKED
            thread.waiting_on = ("monitor", obj)
            self._state_instant(thread, "BLOCKED")
            successor = self._dispatch_next()
        self._handoff(thread, successor)
        # woken as monitor owner (transfer done by the releaser)

    def release_monitor(self, thread: SimThread, obj) -> None:
        """MONITOREXIT dropped the count to zero with waiters queued:
        hand the monitor to the first waiter and make it READY."""
        with self._lock:
            if not obj.monitor_waiters:
                return
            waiter = obj.monitor_waiters.popleft()
            obj.monitor_owner = waiter
            obj.monitor_count = 1
            if self.san is not None:
                # direct transfer: the waiter acquires without
                # re-running the MONITORENTER hook
                self.san.on_acquire(waiter, obj)
            waiter.state = ThreadState.READY
            waiter.waiting_on = None
            self.ready.append(waiter)
            self._state_instant(waiter, "RUNNABLE")

    def join(self, thread: SimThread, target: SimThread) -> None:
        """``Thread.join``: park ``thread`` until ``target`` terminates."""
        if target is thread:
            raise DeadlockError(
                f"{thread.name} joins itself: "
                + DeadlockError.render_cycle(
                    [(thread.name, "join", thread.name)]),
                cycle=[(thread.name, "join", thread.name)])
        with self._lock:
            if target.state in (ThreadState.TERMINATED, ThreadState.NEW):
                return
            self._join_waiters.setdefault(target.thread_id, []).append(
                thread)
            self._end_slice(thread)
            thread.state = ThreadState.WAITING
            thread.waiting_on = ("join", target)
            self._state_instant(thread, "PARKED")
            successor = self._dispatch_next()
        self._handoff(thread, successor)

    def drain(self, main: SimThread) -> None:
        """Park main until every started thread has terminated."""
        while True:
            with self._lock:
                if not self._live_workers():
                    return
                self._end_slice(main)
                main.state = ThreadState.WAITING
                main.waiting_on = ("drain", None)
                self._state_instant(main, "PARKED")
                successor = self._dispatch_next()
            self._handoff(main, successor)

    def finish(self, thread: SimThread) -> None:
        """Terminating thread: wake joiners (and a draining main),
        dispatch a successor, and let the host thread exit."""
        with self._lock:
            self._end_slice(thread)
            thread.state = ThreadState.TERMINATED
            self._state_instant(thread, "TERMINATED")
            for joiner in self._join_waiters.pop(thread.thread_id, ()):
                joiner.state = ThreadState.READY
                joiner.waiting_on = None
                self.ready.append(joiner)
                self._state_instant(joiner, "RUNNABLE")
            main = self._main
            if (main is not None and main.waiting_on == ("drain", None)
                    and not self._live_workers()):
                main.state = ThreadState.READY
                main.waiting_on = None
                self.ready.append(main)
                self._state_instant(main, "RUNNABLE")
            successor = self._dispatch_next()
        if successor is not None:
            self._events[successor.thread_id].set()
        # no park: the host thread returns and exits

    # ------------------------------------------------------------------
    # internals

    def _live_workers(self) -> List[SimThread]:
        """Non-main threads that have been started but not terminated."""
        main_id = self._main.thread_id if self._main else -1
        return [t for t in self.vm.threads.all_threads
                if t.thread_id != main_id
                and t.state not in (ThreadState.NEW,
                                    ThreadState.TERMINATED)]

    def _end_slice(self, thread: SimThread) -> None:
        """Account the finished slice to the thread's core clock."""
        if self.san is not None:
            # core handoff is a real synchronization point: the
            # scheduler serializes execution, so the outgoing thread
            # publishes into the global scheduler-token clock
            self.san.token_release(thread)
        core = thread.core if thread.core is not None else 0
        start = self._slice_start
        end = thread.cycles_total
        if end > start:
            self.core_clock[core] += end - start
            obs = self.vm.obs
            if obs.tracer.enabled:
                clock = self.core_clock[core]
                obs.tracer.complete(
                    f"slice:{thread.name}", "core", -(core + 1),
                    clock - (end - start), clock)
        self._running = None

    def _dispatch_next(self) -> Optional[SimThread]:
        """Pick the next thread and core (lock held).  Returns the
        successor, or None when the ready queue is empty (after
        checking for deadlock)."""
        if not self.ready:
            self._check_deadlock()
            return None
        thread = self.ready.popleft()
        if self.san is not None:
            self.san.token_acquire(thread)
        core = min(range(self.cores), key=lambda c: self.core_clock[c])
        cost = self.vm.config.cost_model
        thread.core = core
        thread.state = ThreadState.RUNNING
        thread.preempt_at = thread.cycles_total + cost.scheduler_quantum
        self._slice_start = thread.cycles_total
        self._running = thread
        self.vm.threads.current = thread
        self._state_instant(thread, "RUNNING")
        return thread

    def _handoff(self, thread: SimThread, successor: Optional[SimThread]
                 ) -> None:
        """Wake ``successor`` (if any) and park ``thread`` until its
        next dispatch.  Must be called WITHOUT the lock held: parking
        inside the lock would deadlock the handoff."""
        event = self._events[thread.thread_id]
        event.clear()
        if successor is not None and successor is not thread:
            self._events[successor.thread_id].set()
        if successor is thread:
            return
        self._park(thread)

    def _park(self, thread: SimThread) -> None:
        event = self._events[thread.thread_id]
        # abort may have set (and _handoff cleared) the event already;
        # checking the flag first avoids parking through a teardown
        if self._abort is None:
            event.wait()
        event.clear()
        if self._abort is not None:
            raise SchedulerAbort(str(self._abort))
        self.vm.threads.current = thread

    def _abort_run(self, exc: BaseException) -> None:
        """Tear the run down: every parked thread wakes into
        SchedulerAbort; main re-raises ``exc`` out of ``launch``."""
        with self._lock:
            if self._abort is None:
                self._abort = exc
            for event in self._events.values():
                event.set()

    @property
    def abort_error(self) -> Optional[BaseException]:
        return self._abort

    # ------------------------------------------------------------------
    # deadlock detection

    def _check_deadlock(self) -> None:
        """Ready queue is empty: decide whether any dispatch can ever
        happen again (lock held).  Raises via abort if not."""
        workers = self._live_workers()
        blocked = [t for t in workers
                   if t.state in (ThreadState.BLOCKED, ThreadState.WAITING)]
        if not blocked:
            return  # workers still running down finish(); progress possible
        main = self._main
        if (main is not None and main.waiting_on == ("drain", None)
                and len(blocked) < len(workers)):
            return
        # every live thread is blocked/waiting and none can be woken:
        # find and report a wait-for cycle
        cycle = self._find_cycle(blocked if main is None
                                 or main.waiting_on in (None, ("drain", None))
                                 else blocked + [main])
        self.deadlocks_detected += 1
        names = DeadlockError.render_cycle(cycle) if cycle else ", ".join(
            t.name for t in blocked)
        error = DeadlockError(
            f"deadlock: no runnable thread; wait-for cycle: {names}",
            cycle=cycle)
        self._abort = error
        for event in self._events.values():
            event.set()
        raise SchedulerAbort(str(error))

    def _find_cycle(self, threads: List[SimThread]
                    ) -> List[Tuple[str, str, str]]:
        """Walk waiting_on edges from each blocked thread; return the
        first cycle found as (waiter, resource, holder) name triples."""
        def edge(t: SimThread):
            if t.waiting_on is None:
                return None, None
            kind, what = t.waiting_on
            if kind == "monitor":
                owner = what.monitor_owner
                return owner, f"monitor of {what!r}"
            if kind == "join":
                return what, f"join {what.name}"
            return None, None

        for start in threads:
            seen: Dict[int, int] = {}
            path: List[Tuple[SimThread, str, SimThread]] = []
            node = start
            while node is not None:
                if node.thread_id in seen:
                    idx = seen[node.thread_id]
                    return [(w.name, res, h.name)
                            for w, res, h in path[idx:]]
                seen[node.thread_id] = len(path)
                nxt, resource = edge(node)
                if nxt is None:
                    break
                path.append((node, resource, nxt))
                node = nxt
        # no proper cycle (e.g. blocked on a monitor whose owner
        # terminated without releasing — impossible in valid bytecode,
        # or joining a never-started thread): report the wait edges
        out = []
        for t in threads:
            nxt, resource = edge(t)
            if nxt is not None:
                out.append((t.name, resource, nxt.name))
        return out

    # ------------------------------------------------------------------
    # observability

    def _state_instant(self, thread: SimThread, state: str) -> None:
        """Thread-state transition mark on the thread's trace lane
        (host-side; zero simulated cycles)."""
        tracer = self.vm.obs.tracer
        if tracer.enabled:
            tracer.instant("thread-state", "sched", thread.thread_id,
                           thread.cycles_total, {"state": state})

    def register_trace_lanes(self) -> None:
        """Name the per-core trace lanes (negative tids, stable)."""
        tracer = self.vm.obs.tracer
        if not tracer.enabled:
            return
        for core in range(self.cores):
            tracer.register_thread(-(core + 1), f"core-{core}")
