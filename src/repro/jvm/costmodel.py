"""Cycle-cost model of the simulated CPU.

All work is charged in integer cycles.  Each opcode cost class has an
*interpreted* and a *compiled* cost; the gap between them is the
JIT-compilation speedup the paper's SPA destroys by enabling the
``MethodEntry``/``MethodExit`` events.  VM services (event dispatch,
JIT compilation, class loading) and the measurement substrate (cycle
counter reads) have explicit costs too, so measurement perturbation is a
first-class phenomenon in the simulator.

Every charge carries a :class:`ChargeTag` recording *why* the cycles were
spent.  The tags are the simulator's ground truth: profiling agents must
recover the BYTECODE/NATIVE split through JVMTI and PCL alone, and the
test suite compares what they report against the tagged totals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class ChargeTag(enum.Enum):
    """Ground-truth classification of a cycle charge."""

    BYTECODE = "bytecode"   # executing (interpreted or compiled) bytecode
    NATIVE = "native"       # executing native library code
    AGENT = "agent"         # profiling-agent work (events, counters, TLS)
    VM = "vm"               # VM services: JIT compilation, class loading

    # Members are singletons and compare by identity, so identity
    # hashing is equivalent to Enum's value-string hash — and C-level
    # fast.  SimThread.charge indexes cycles_by_tag on every simulated
    # charge; this takes the two hash computations off that path.
    __hash__ = object.__hash__


#: Cost classes used by :data:`repro.bytecode.opcodes.SPECS`.
_INTERP_COSTS: Dict[str, int] = {
    "simple": 6,
    "const": 8,
    "load": 10,
    "store": 10,
    "alu": 12,
    "mul": 22,
    "div": 44,
    "branch": 14,
    "field": 22,
    "array": 18,
    "alloc": 70,
    "invoke": 90,
    "return": 45,
    "throw": 160,
    "monitor": 40,
}

_COMPILED_COSTS: Dict[str, int] = {
    "simple": 1,
    "const": 1,
    "load": 1,
    "store": 1,
    "alu": 1,
    "mul": 4,
    "div": 20,
    "branch": 2,
    "field": 3,
    "array": 3,
    "alloc": 25,
    "invoke": 14,
    "return": 7,
    "throw": 90,
    "monitor": 14,
}


@dataclass
class CostModel:
    """All tunable cycle costs.

    The defaults are calibrated so that the reproduction lands in the
    paper's bands; ablation benchmarks vary individual knobs.
    """

    #: Per-cost-class cycles when a method runs interpreted.
    interp_costs: Dict[str, int] = field(
        default_factory=lambda: dict(_INTERP_COSTS))
    #: Per-cost-class cycles when a method has been JIT-compiled.
    compiled_costs: Dict[str, int] = field(
        default_factory=lambda: dict(_COMPILED_COSTS))

    #: Dispatching one JVMTI event to one agent callback.  Method
    #: entry/exit events are notoriously expensive on real VMs (the
    #: interpreter must materialise the method/thread handles and cross
    #: into the agent); ~0.8 microseconds at 2.66 GHz.
    jvmti_event_dispatch: int = 2200

    #: Reading a per-thread hardware cycle counter through PCL
    #: (rdtsc + per-thread virtualization).
    pcl_read: int = 70

    #: Thread-local-storage get/put through JVMTI.
    jvmti_tls_access: int = 25

    #: Entering/leaving a JVMTI raw monitor (uncontended).
    raw_monitor: int = 60

    #: Fixed C-side cost of one intercepted JNI function wrapper
    #: (argument shuffling around the original call).
    jni_wrapper_overhead: int = 40

    #: JIT compilation cost, charged once per compiled method,
    #: proportional to its code length.  Kept low relative to a real
    #: server compiler because workload runs are ~1000x shorter than
    #: the paper's; a proportionally honest one-time cost keeps the
    #: compile fraction of total cycles realistic at this scale.
    jit_compile_per_instruction: int = 60

    #: Base cost of any JNI ``Call*Method*`` function (native->Java
    #: transition machinery), charged as NATIVE.
    jni_call_base: int = 120

    #: Cost of invoking a native method from bytecode (stub dispatch,
    #: argument marshalling), charged as NATIVE on top of the invoke
    #: instruction's bytecode cost.
    native_invoke_base: int = 80

    #: Class loading/linking, per method of the loaded class (VM tag).
    class_load_per_method: int = 900

    #: Instruction-budget-free sanity bound: maximum Java frames a
    #: thread may stack before StackOverflowSimError.
    max_frames: int = 2000

    #: Preemptive scheduler time slice in cycles (``--cores N``, N > 1
    #: only — the sequential model never preempts).  Quanta expire at
    #: safepoints (backedges and call boundaries), so actual slices run
    #: slightly long; ~19 microseconds at 2.66 GHz.
    scheduler_quantum: int = 50_000

    #: Charged (VM tag) to a thread when the scheduler preempts it at
    #: an expired quantum with other threads ready — state save/restore
    #: plus cache disturbance.  Never charged at ``cores=1``.
    context_switch_cycles: int = 900

    #: Charged (VM tag) to a thread that blocks on a contended object
    #: monitor — the inflate/park path.  Never charged at ``cores=1``
    #: because the sequential model cannot observe contention.
    monitor_contention_cycles: int = 400

    # -- simulated device latencies (DESIGN.md §13) --------------------
    # Blocking natives (java.io.RandomAccessFile, java.net.Socket)
    # request service from a per-device timeline; these knobs set the
    # *device* cycles per operation.  They are never charged to a
    # thread's CPU clock — the thread blocks while the device works.
    # ~11 microseconds base disk access at 2.66 GHz; bytes stream at 4
    # bytes per device cycle (disk) / 2 bytes per device cycle (net).

    #: Disk seek/rotational base latency per read or write request.
    disk_access_cycles: int = 30_000
    #: Device cycles per byte transferred, divided out: ``len // 4``.
    disk_byte_divisor: int = 4
    #: Network round-trip base latency per send or receive.
    net_rtt_cycles: int = 52_000
    #: Device cycles per byte on the wire, divided out: ``len // 2``.
    net_byte_divisor: int = 2

    def interp_cost(self, cost_class: str) -> int:
        return self.interp_costs[cost_class]

    def compiled_cost(self, cost_class: str) -> int:
        return self.compiled_costs[cost_class]
