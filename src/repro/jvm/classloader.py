"""Class loading and linking.

:class:`ClassLoader` searches, in order:

1. the **bootclasspath prepend** archives (the simulator's
   ``-Xbootclasspath/p:`` — how the paper loads statically instrumented
   JDK classes ahead of ``rt.jar``),
2. the bootclasspath archives (the runtime library),
3. the application classpath archives (workload classes).

Loading deserializes class bytes, offers them to the JVMTI
``ClassFileLoadHook`` (which may rewrite them — dynamic instrumentation),
links the class (superclass resolution, merged instance-field defaults,
per-instruction cost arrays), and finally runs ``<clinit>``.

:class:`LoadedMethod` is the runtime view of a method: it owns the JIT
state (invocation/backedge counters, compiled flag, active cost array)
and the lazily resolved native implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.typed_verifier import typed_verify_class
from repro.bytecode.opcodes import SPECS
from repro.bytecode.verifier import verify_class
from repro.classfile.classfile import OBJECT_CLASS, ClassFile
from repro.classfile.serializer import load_class
from repro.errors import ClassNotFoundError, LinkageError, VMError
from repro.jvm.costmodel import ChargeTag

CLINIT = ("<clinit>", "()V")


class LoadedMethod:
    """Runtime state of one method."""

    __slots__ = ("info", "owner", "interp_cost_list", "compiled_cost_list",
                 "active_costs", "invocation_count", "backedge_count",
                 "compiled", "native_impl", "native_resolved",
                 "ops", "operands", "template", "template_deopt_count",
                 "osr_map", "osr_entry_count", "is_native")

    def __init__(self, info, owner, cost_model):
        self.info = info
        self.owner = owner
        # flattened from the two-property chain (info.flags test): the
        # interpreter and every template consult this on each INVOKE
        self.is_native = info.is_native
        if info.code is not None:
            self.interp_cost_list = tuple(
                cost_model.interp_cost(SPECS[ins.op].cost_class)
                for ins in info.code)
            self.compiled_cost_list = tuple(
                cost_model.compiled_cost(SPECS[ins.op].cost_class)
                for ins in info.code)
            # pre-decoded dispatch streams: the interpreter indexes
            # these tuples instead of touching Instruction attributes
            # on its hot path (opcodes as plain ints, operands as-is)
            self.ops = tuple(int(ins.op) for ins in info.code)
            self.operands = tuple(ins.operand for ins in info.code)
        else:
            self.interp_cost_list = ()
            self.compiled_cost_list = ()
            self.ops = ()
            self.operands = ()
        self.active_costs = self.interp_cost_list
        self.invocation_count = 0
        self.backedge_count = 0
        self.compiled = False
        self.native_impl = None
        self.native_resolved = False
        # template tier: the specialized Python function the JIT
        # installed for this method (None = dispatch loop), and how
        # often it has deoptimized (the policy disable threshold)
        self.template = None
        self.template_deopt_count = 0
        # OSR: loop-header pc -> entry-stub block id in the template
        # (installed with the template), and how many live frames have
        # entered mid-method through those stubs
        self.osr_map = None
        self.osr_entry_count = 0

    @property
    def qualified_name(self) -> str:
        return f"{self.owner.name}.{self.info.name}{self.info.descriptor}"

    def mark_compiled(self) -> None:
        self.compiled = True
        self.active_costs = self.compiled_cost_list

    def __repr__(self):  # pragma: no cover - debug aid
        state = "native" if self.is_native else (
            "compiled" if self.compiled else "interpreted")
        return f"<LoadedMethod {self.qualified_name} [{state}]>"


class LoadedClass:
    """Runtime state of one class: linked members, statics, dispatch."""

    def __init__(self, cf: ClassFile, super_class: Optional["LoadedClass"],
                 cost_model):
        self.cf = cf
        self.name = cf.name
        self.super_class = super_class
        self.methods: Dict[Tuple[str, str], LoadedMethod] = {
            m.key: LoadedMethod(m, self, cost_model) for m in cf.methods}
        self.statics: Dict[str, object] = {
            f.name: f.default for f in cf.fields if f.is_static}
        merged: Dict[str, object] = {}
        if super_class is not None:
            merged.update(super_class.instance_field_defaults)
        for f in cf.fields:
            if not f.is_static:
                merged[f.name] = f.default
        self.instance_field_defaults = merged
        self.initialized = False
        self._virtual_cache: Dict[Tuple[str, str],
                                  Optional[LoadedMethod]] = {}

    @property
    def constant_pool(self):
        return self.cf.constant_pool

    def find_declared(self, name: str, descriptor: str
                      ) -> Optional[LoadedMethod]:
        return self.methods.get((name, descriptor))

    def resolve_method(self, name: str, descriptor: str
                       ) -> Optional[LoadedMethod]:
        """Resolve a method against this class and its superclasses."""
        key = (name, descriptor)
        cached = self._virtual_cache.get(key, False)
        if cached is not False:
            return cached
        cls: Optional[LoadedClass] = self
        found = None
        while cls is not None:
            found = cls.methods.get(key)
            if found is not None:
                break
            cls = cls.super_class
        self._virtual_cache[key] = found
        return found

    def resolve_static_holder(self, field_name: str
                              ) -> Optional["LoadedClass"]:
        """Find the class in the hierarchy declaring static ``field_name``."""
        cls: Optional[LoadedClass] = self
        while cls is not None:
            if field_name in cls.statics:
                return cls
            cls = cls.super_class
        return None

    def is_subclass_of(self, class_name: str) -> bool:
        cls: Optional[LoadedClass] = self
        while cls is not None:
            if cls.name == class_name:
                return True
            cls = cls.super_class
        return False

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<LoadedClass {self.name}>"


class ClassLoader:
    """Loads and links classes from archives for one VM instance."""

    def __init__(self, vm):
        self._vm = vm
        self.bootclasspath_prepend: List = []
        self.bootclasspath: List = []
        self.classpath: List = []
        self._loaded: Dict[str, LoadedClass] = {}
        self._loading: List[str] = []
        self.classes_loaded = 0

    # -- path configuration ---------------------------------------------------

    def add_boot_archive(self, archive) -> None:
        self.bootclasspath.append(archive)

    def prepend_boot_archive(self, archive) -> None:
        """The ``-Xbootclasspath/p:`` equivalent."""
        self.bootclasspath_prepend.append(archive)

    def add_classpath_archive(self, archive) -> None:
        self.classpath.append(archive)

    # -- queries --------------------------------------------------------------

    def loaded_class(self, name: str) -> Optional[LoadedClass]:
        return self._loaded.get(name)

    def loaded_classes(self) -> List[LoadedClass]:
        return list(self._loaded.values())

    def _find_bytes(self, name: str) -> Optional[bytes]:
        for group in (self.bootclasspath_prepend, self.bootclasspath,
                      self.classpath):
            for archive in group:
                if name in archive:
                    return archive.get_bytes(name)
        return None

    # -- loading ---------------------------------------------------------------

    def load(self, name: str) -> LoadedClass:
        """Load, link, and initialize class ``name`` (idempotent)."""
        existing = self._loaded.get(name)
        if existing is not None:
            return existing
        if name in self._loading:
            # Cyclic initialization: return the partially linked class.
            # (Mirrors the JVM, where a class in the middle of <clinit>
            # is visible to code it triggers.)
            partial = self._loaded.get(name)
            if partial is not None:
                return partial
            raise LinkageError(f"circular loading of class {name}")

        data = self._find_bytes(name)
        if data is None:
            raise ClassNotFoundError(f"class not found: {name}")

        self._loading.append(name)
        tracer = self._vm.obs.tracer
        trace_thread = self._vm.threads.current \
            if tracer.enabled else None
        load_started = trace_thread.cycles_total \
            if trace_thread is not None else 0
        try:
            hooked = self._vm.jvmti.dispatch_class_file_load_hook(name, data)
            cf = load_class(hooked if hooked is not None else data)
            if cf.name != name:
                raise LinkageError(
                    f"archive entry {name!r} defines class {cf.name!r}")
            self._verify(cf)
            super_class = None
            if cf.super_name is not None:
                super_class = self.load(cf.super_name)
            elif name != OBJECT_CLASS:
                raise LinkageError(
                    f"class {name} has no superclass")
            loaded = LoadedClass(cf, super_class, self._vm.cost_model)
            self._loaded[name] = loaded
            self.classes_loaded += 1
            self._charge_load(loaded)
            self._initialize(loaded)
            if trace_thread is not None:
                tracer.complete(name, "classload",
                                trace_thread.thread_id, load_started,
                                trace_thread.cycles_total)
            return loaded
        finally:
            self._loading.remove(name)

    def _verify(self, cf: ClassFile) -> None:
        """Fail-fast bytecode verification per ``VMConfig.verify``.

        Runs on the host before linking — a class that fails never
        loads, and the raised :class:`~repro.errors.VerifyError` names
        the class, method, and instruction index.  No simulated cycles
        are charged, so verified and unverified runs produce identical
        measurements.
        """
        mode = self._vm.config.verify
        if mode == "off":
            return
        if mode == "structural":
            self._vm.methods_verified += verify_class(cf)
        elif mode == "typed":
            self._vm.methods_verified += typed_verify_class(cf)
        else:
            raise VMError(f"unknown verify mode {mode!r} "
                          f"(expected off, structural, or typed)")

    def _charge_load(self, loaded: LoadedClass) -> None:
        thread = self._vm.threads.current
        if thread is not None:
            cost = (self._vm.cost_model.class_load_per_method
                    * max(1, len(loaded.methods)))
            thread.charge(cost, ChargeTag.VM)

    def _initialize(self, loaded: LoadedClass) -> None:
        if loaded.initialized:
            return
        loaded.initialized = True
        clinit = loaded.methods.get(CLINIT)
        if clinit is not None:
            self._vm.run_class_initializer(loaded, clinit)
