"""The bytecode interpreter.

Execution model
---------------

Each thread owns an explicit frame stack; :meth:`Interpreter.call_method`
pushes a frame and drives the inner loop until the stack returns to its
entry depth, so Java-to-Java calls never consume Python stack.  The loop
re-enters Python recursion only at native boundaries: a ``native`` method
runs as a host callable, and if that callable invokes Java code through a
JNI ``Call*Method*`` function, a nested :meth:`call_method` runs on the
same thread's frame stack.

Cycle accounting
----------------

Per-instruction costs come from the executing method's *active* cost
array (interpreted or compiled — the JIT swaps it).  Costs accumulate in
a loop-local counter and are flushed to the thread — tagged
``BYTECODE`` — at every boundary where simulated time becomes
observable: method entry/exit, native calls, JVMTI event dispatch, and
exception dispatch.  This guarantees that any PCL timestamp read inside
an agent callback or native function sees an up-to-date counter.

Exceptions
----------

Java exceptions unwind frame by frame, honouring exception tables and
firing ``MethodExit`` events for every popped frame (the JVMTI contract
the paper's SPA depends on).  An exception that unwinds past the entry
depth of a :meth:`call_method` activation is surfaced to the host caller
as an :class:`Unwind`; at the thread's top level the machine records it
as the thread's uncaught exception.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.opcodes import ArrayKind, Op
from repro.classfile.constant_pool import (
    CpClass,
    CpFieldRef,
    CpFloat,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.errors import (
    DeadlockError,
    NoSuchFieldError,
    NoSuchMethodError,
    StackOverflowSimError,
    VMError,
)
from repro.jvm.costmodel import ChargeTag
from repro.jvm.frame import Frame
from repro.jvm.values import NULL, JArray, JObject, wrap_int32

_THROWABLE = "java.lang.Throwable"
_NPE = "java.lang.NullPointerException"
_AIOOBE = "java.lang.ArrayIndexOutOfBoundsException"
_ARITH = "java.lang.ArithmeticException"
_CCE = "java.lang.ClassCastException"
_NASE = "java.lang.NegativeArraySizeException"
_IMSE = "java.lang.IllegalMonitorStateException"


class Unwind(Exception):
    """A Java exception crossing a host (native/JNI) boundary."""

    def __init__(self, jobject):
        super().__init__(getattr(jobject, "class_name", "<exception>"))
        self.jobject = jobject


class Interpreter:
    """Executes bytecode for one :class:`~repro.jvm.machine.JavaVM`."""

    def __init__(self, vm):
        self._vm = vm

    # -- public entry points -----------------------------------------------------

    def call_method(self, thread, method, args: List):
        """Invoke ``method`` with ``args`` on ``thread``; return its result.

        Fires the same events a bytecode-level invocation would.  Raises
        :class:`Unwind` if a Java exception escapes the call.
        """
        if method.is_native:
            return self._invoke_native(thread, method, args)
        self._enter_bytecode_method(thread, method, args)
        return self._run(thread, len(thread.frames) - 1)

    def synthesize_exception(self, thread, class_name: str,
                             message: str = "") -> JObject:
        """Allocate a VM-synthesized exception object (no constructor)."""
        vm = self._vm
        cls = vm.loader.load(class_name)
        obj = vm.heap.alloc_object(cls)
        if message:
            obj.fields["message"] = vm.intern_string(message)
        return obj

    def throw(self, thread, class_name: str, message: str = ""):
        """Raise a Java exception from host code (native implementations)."""
        raise Unwind(self.synthesize_exception(thread, class_name, message))

    # -- method entry/exit helpers ----------------------------------------------

    def _enter_bytecode_method(self, thread, method, args: List) -> None:
        vm = self._vm
        if len(thread.frames) >= vm.cost_model.max_frames:
            raise StackOverflowSimError(
                f"simulated stack overflow in {method.qualified_name}")
        method.invocation_count += 1
        jit = vm.jit
        if (jit.enabled and not method.compiled
                and method.invocation_count >= jit.policy.invoke_threshold):
            jit.compile(thread, method)
        if vm.jvmti.method_entry_enabled:
            vm.jvmti.dispatch_method_entry(thread, method)
        thread.frames.append(Frame(method, args))
        vm.method_invocations += 1

    def _exit_method_event(self, thread, method,
                           by_exception: bool) -> None:
        vm = self._vm
        if vm.jvmti.method_exit_enabled:
            vm.jvmti.dispatch_method_exit(thread, method, by_exception)

    def _invoke_native(self, thread, method, args: List):
        """Run a native method to completion on the host."""
        vm = self._vm
        if vm.jvmti.method_entry_enabled:
            vm.jvmti.dispatch_method_entry(thread, method)
        impl = method.native_impl
        if not method.native_resolved:
            impl = vm.native_registry.resolve(method)
            if impl is None:
                exc = self.synthesize_exception(
                    thread, "java.lang.UnsatisfiedLinkError",
                    method.qualified_name)
                self._exit_method_event(thread, method, by_exception=True)
                raise Unwind(exc)
            method.native_impl = impl
            method.native_resolved = True
        thread.charge(vm.cost_model.native_invoke_base, ChargeTag.NATIVE)
        vm.native_invocations += 1
        env = vm.jni_env(thread)
        try:
            result = impl(env, *args)
        except Unwind:
            self._exit_method_event(thread, method, by_exception=True)
            raise
        self._exit_method_event(thread, method, by_exception=False)
        return result

    # -- the interpreter loop --------------------------------------------------------

    def _run(self, thread, base: int):  # noqa: C901 - the dispatch loop
        vm = self._vm
        jvmti = vm.jvmti
        loader = vm.loader
        heap = vm.heap
        jit = vm.jit
        frames = thread.frames
        charge = thread.charge
        tag_bytecode = ChargeTag.BYTECODE

        # cached per-frame state; reloaded whenever `refresh` is set
        frame = frames[-1]
        method = frame.method
        code = method.info.code
        costs = method.active_costs
        cp = method.owner.constant_pool
        stack = frame.stack
        locals_ = frame.locals
        pc = frame.pc
        pending = 0
        icount = 0

        def flush():
            nonlocal pending, icount
            if pending:
                charge(pending, tag_bytecode)
                pending = 0
            if icount:
                vm.instructions_retired += icount
                icount = 0

        def refresh():
            nonlocal frame, method, code, costs, cp, stack, locals_, pc
            frame = frames[-1]
            method = frame.method
            code = method.info.code
            costs = method.active_costs
            cp = method.owner.constant_pool
            stack = frame.stack
            locals_ = frame.locals
            pc = frame.pc

        def dispatch_exception(exc_obj):
            """Unwind until a handler is found; returns True if handled
            within this activation, else raises Unwind."""
            nonlocal pc
            flush()
            while True:
                current = frames[-1]
                m = current.method
                handler_pc = self._find_handler(m, current.pc, exc_obj)
                if handler_pc is not None:
                    current.stack.clear()
                    current.stack.append(exc_obj)
                    current.pc = handler_pc
                    refresh()
                    return True
                self._exit_method_event(thread, m, by_exception=True)
                frames.pop()
                if len(frames) == base:
                    raise Unwind(exc_obj)
                refresh()

        def throw_vm(class_name, message=""):
            frame.pc = pc
            exc_obj = self.synthesize_exception(thread, class_name, message)
            return dispatch_exception(exc_obj)

        while True:
            ins = code[pc]
            op = ins.op
            pending += costs[pc]
            icount += 1

            if op is Op.ILOAD or op is Op.ALOAD:
                stack.append(locals_[ins.operand])
                pc += 1
            elif op is Op.ISTORE or op is Op.ASTORE:
                locals_[ins.operand] = stack.pop()
                pc += 1
            elif op is Op.ICONST:
                stack.append(ins.operand)
                pc += 1
            elif op is Op.IINC:
                idx, delta = ins.operand
                locals_[idx] = wrap_int32(locals_[idx] + delta)
                pc += 1
            elif op is Op.IADD:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] + b) \
                    if type(b) is int and type(stack[-1]) is int \
                    else stack[-1] + b
                pc += 1
            elif op is Op.ISUB:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] - b) \
                    if type(b) is int and type(stack[-1]) is int \
                    else stack[-1] - b
                pc += 1
            elif op is Op.IMUL:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] * b) \
                    if type(b) is int and type(stack[-1]) is int \
                    else stack[-1] * b
                pc += 1
            elif Op.GOTO <= op <= Op.IF_ACMPNE:
                taken = False
                target = ins.operand
                if op is Op.GOTO:
                    taken = True
                elif op is Op.IFEQ:
                    taken = stack.pop() == 0
                elif op is Op.IFNE:
                    taken = stack.pop() != 0
                elif op is Op.IFLT:
                    taken = stack.pop() < 0
                elif op is Op.IFLE:
                    taken = stack.pop() <= 0
                elif op is Op.IFGT:
                    taken = stack.pop() > 0
                elif op is Op.IFGE:
                    taken = stack.pop() >= 0
                elif op is Op.IFNULL:
                    taken = stack.pop() is NULL
                elif op is Op.IFNONNULL:
                    taken = stack.pop() is not NULL
                elif op is Op.IF_ACMPEQ:
                    b = stack.pop()
                    taken = stack.pop() is b
                elif op is Op.IF_ACMPNE:
                    b = stack.pop()
                    taken = stack.pop() is not b
                else:  # integer comparisons
                    b = stack.pop()
                    a = stack.pop()
                    if op is Op.IF_ICMPEQ:
                        taken = a == b
                    elif op is Op.IF_ICMPNE:
                        taken = a != b
                    elif op is Op.IF_ICMPLT:
                        taken = a < b
                    elif op is Op.IF_ICMPLE:
                        taken = a <= b
                    elif op is Op.IF_ICMPGT:
                        taken = a > b
                    else:  # IF_ICMPGE
                        taken = a >= b
                if taken:
                    if target <= pc and not method.compiled:
                        method.backedge_count += 1
                        if (jit.enabled and method.backedge_count
                                >= jit.policy.backedge_threshold):
                            flush()
                            jit.compile(thread, method)
                            costs = method.active_costs
                    pc = target
                else:
                    pc += 1
            elif op is Op.IALOAD or op is Op.AALOAD:
                index = stack.pop()
                array = stack.pop()
                if array is NULL:
                    throw_vm(_NPE, "array load")
                    continue
                if index < 0 or index >= len(array.data):
                    throw_vm(_AIOOBE, str(index))
                    continue
                stack.append(array.data[index])
                pc += 1
            elif op is Op.IASTORE or op is Op.AASTORE:
                value = stack.pop()
                index = stack.pop()
                array = stack.pop()
                if array is NULL:
                    throw_vm(_NPE, "array store")
                    continue
                if index < 0 or index >= len(array.data):
                    throw_vm(_AIOOBE, str(index))
                    continue
                array.data[index] = array.normalize(value)
                pc += 1
            elif op is Op.GETFIELD:
                ref = cp.get_typed(ins.operand, CpFieldRef)
                obj = stack.pop()
                if obj is NULL:
                    throw_vm(_NPE, f"getfield {ref.field_name}")
                    continue
                try:
                    stack.append(obj.fields[ref.field_name])
                except (KeyError, AttributeError):
                    raise NoSuchFieldError(
                        f"{obj!r} has no field {ref.field_name}")
                pc += 1
            elif op is Op.PUTFIELD:
                ref = cp.get_typed(ins.operand, CpFieldRef)
                value = stack.pop()
                obj = stack.pop()
                if obj is NULL:
                    throw_vm(_NPE, f"putfield {ref.field_name}")
                    continue
                if ref.field_name not in obj.fields:
                    raise NoSuchFieldError(
                        f"{obj!r} has no field {ref.field_name}")
                obj.fields[ref.field_name] = value
                pc += 1
            elif op is Op.GETSTATIC or op is Op.PUTSTATIC:
                ref = cp.get_typed(ins.operand, CpFieldRef)
                frame.pc = pc
                flush()
                cls = loader.load(ref.class_name)
                holder = cls.resolve_static_holder(ref.field_name)
                if holder is None:
                    raise NoSuchFieldError(
                        f"{ref.class_name} has no static "
                        f"{ref.field_name}")
                if op is Op.GETSTATIC:
                    stack.append(holder.statics[ref.field_name])
                else:
                    holder.statics[ref.field_name] = stack.pop()
                pc += 1
            elif op in (Op.INVOKESTATIC, Op.INVOKEVIRTUAL,
                        Op.INVOKESPECIAL):
                ref = cp.get_typed(ins.operand, CpMethodRef)
                # the frame stays at the invoke pc so exception-table
                # ranges cover in-flight calls; RETURN advances past it
                frame.pc = pc
                flush()
                target_class = loader.load(ref.class_name)
                resolved = target_class.resolve_method(
                    ref.method_name, ref.descriptor)
                if resolved is None:
                    raise NoSuchMethodError(
                        f"{ref.class_name}.{ref.method_name}"
                        f"{ref.descriptor}")
                n_args = resolved.info.arg_slots
                if op is not Op.INVOKESTATIC and resolved.info.is_static:
                    raise NoSuchMethodError(
                        f"instance invoke of static "
                        f"{resolved.qualified_name}")
                if op is Op.INVOKESTATIC and not resolved.info.is_static:
                    raise NoSuchMethodError(
                        f"static invoke of instance "
                        f"{resolved.qualified_name}")
                if n_args:
                    args = stack[-n_args:]
                    del stack[-n_args:]
                else:
                    args = []
                if op is not Op.INVOKESTATIC:
                    receiver = args[0]
                    if receiver is NULL:
                        frame.pc = pc
                        throw_vm(_NPE,
                                 f"invoke {ref.method_name} on null")
                        continue
                    if op is Op.INVOKEVIRTUAL:
                        receiver_class = getattr(receiver, "jclass", None)
                        if receiver_class is None:  # array receiver
                            receiver_class = loader.load(
                                "java.lang.Object")
                        dispatched = receiver_class.resolve_method(
                            ref.method_name, ref.descriptor)
                        if dispatched is not None:
                            resolved = dispatched
                if resolved.is_native:
                    try:
                        result = self._invoke_native(thread, resolved,
                                                     args)
                    except Unwind as unwind:
                        frame.pc = pc
                        dispatch_exception(unwind.jobject)
                        continue
                    if resolved.info.returns_value:
                        stack.append(result)
                    pc += 1
                else:
                    self._enter_bytecode_method(thread, resolved, args)
                    refresh()
            elif op is Op.RETURN or op is Op.IRETURN or op is Op.ARETURN:
                result = stack.pop() if op is not Op.RETURN else None
                has_result = op is not Op.RETURN
                flush()
                self._exit_method_event(thread, method,
                                        by_exception=False)
                frames.pop()
                if len(frames) == base:
                    return result
                refresh()
                pc += 1  # resume the caller after its invoke instruction
                if has_result:
                    stack.append(result)
            elif op is Op.LDC:
                entry = cp.get(ins.operand)
                if type(entry) is CpInt or type(entry) is CpFloat:
                    stack.append(entry.value)
                elif type(entry) is CpString:
                    frame.pc = pc
                    flush()
                    stack.append(vm.intern_string(entry.value))
                else:
                    raise VMError(f"ldc of unsupported constant {entry!r}")
                pc += 1
            elif op is Op.IDIV or op is Op.IREM:
                b = stack.pop()
                a = stack.pop()
                if type(a) is int and type(b) is int:
                    if b == 0:
                        throw_vm(_ARITH, "/ by zero")
                        continue
                    quotient = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        quotient = -quotient
                    if op is Op.IDIV:
                        stack.append(wrap_int32(quotient))
                    else:
                        stack.append(wrap_int32(a - quotient * b))
                else:
                    if b == 0:
                        throw_vm(_ARITH, "/ by zero")
                        continue
                    stack.append(a / b if op is Op.IDIV else a % b)
                pc += 1
            elif op is Op.FDIV:
                b = stack.pop()
                a = stack.pop()
                if b == 0:
                    throw_vm(_ARITH, "/ by zero")
                    continue
                stack.append(a / b)
                pc += 1
            elif op is Op.INEG:
                stack[-1] = wrap_int32(-stack[-1]) \
                    if type(stack[-1]) is int else -stack[-1]
                pc += 1
            elif op is Op.ISHL:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] << (b & 31))
                pc += 1
            elif op is Op.ISHR:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] >> (b & 31))
                pc += 1
            elif op is Op.IUSHR:
                b = stack.pop()
                stack[-1] = wrap_int32(
                    (stack[-1] & 0xFFFFFFFF) >> (b & 31))
                pc += 1
            elif op is Op.IAND:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] & b)
                pc += 1
            elif op is Op.IOR:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] | b)
                pc += 1
            elif op is Op.IXOR:
                b = stack.pop()
                stack[-1] = wrap_int32(stack[-1] ^ b)
                pc += 1
            elif op is Op.I2F:
                stack[-1] = float(stack[-1])
                pc += 1
            elif op is Op.F2I:
                stack[-1] = wrap_int32(int(stack[-1]))
                pc += 1
            elif op is Op.FCMP:
                b = stack.pop()
                a = stack.pop()
                stack.append(-1 if a < b else (1 if a > b else 0))
                pc += 1
            elif op is Op.POP:
                stack.pop()
                pc += 1
            elif op is Op.DUP:
                stack.append(stack[-1])
                pc += 1
            elif op is Op.DUP_X1:
                top = stack[-1]
                stack.insert(-2, top)
                pc += 1
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
                pc += 1
            elif op is Op.ACONST_NULL:
                stack.append(NULL)
                pc += 1
            elif op is Op.NEW:
                ref = cp.get_typed(ins.operand, CpClass)
                frame.pc = pc
                flush()
                cls = loader.load(ref.name)
                stack.append(heap.alloc_object(cls))
                pc += 1
            elif op is Op.NEWARRAY:
                length = stack.pop()
                if length < 0:
                    throw_vm(_NASE, str(length))
                    continue
                stack.append(heap.alloc_array(ins.operand, length))
                pc += 1
            elif op is Op.ARRAYLENGTH:
                array = stack.pop()
                if array is NULL:
                    throw_vm(_NPE, "arraylength")
                    continue
                stack.append(len(array.data))
                pc += 1
            elif op is Op.INSTANCEOF:
                ref = cp.get_typed(ins.operand, CpClass)
                obj = stack.pop()
                if obj is NULL:
                    stack.append(0)
                elif isinstance(obj, JArray):
                    stack.append(
                        1 if ref.name == "java.lang.Object" else 0)
                else:
                    stack.append(
                        1 if obj.jclass.is_subclass_of(ref.name) else 0)
                pc += 1
            elif op is Op.CHECKCAST:
                ref = cp.get_typed(ins.operand, CpClass)
                obj = stack[-1]
                if obj is not NULL and not isinstance(obj, JArray) and \
                        not obj.jclass.is_subclass_of(ref.name):
                    throw_vm(_CCE,
                             f"{obj.class_name} -> {ref.name}")
                    continue
                pc += 1
            elif op is Op.ATHROW:
                exc_obj = stack.pop()
                if exc_obj is NULL:
                    throw_vm(_NPE, "throw null")
                    continue
                frame.pc = pc
                dispatch_exception(exc_obj)
            elif op is Op.MONITORENTER:
                obj = stack.pop()
                if obj is NULL:
                    throw_vm(_NPE, "monitorenter")
                    continue
                if obj.monitor_owner is None or obj.monitor_owner is thread:
                    obj.monitor_owner = thread
                    obj.monitor_count += 1
                else:
                    raise DeadlockError(
                        f"monitor of {obj!r} held by "
                        f"{obj.monitor_owner.name} while "
                        f"{thread.name} runs (sequential model)")
                pc += 1
            elif op is Op.MONITOREXIT:
                obj = stack.pop()
                if obj is NULL:
                    throw_vm(_NPE, "monitorexit")
                    continue
                if obj.monitor_owner is not thread:
                    throw_vm(_IMSE, "not monitor owner")
                    continue
                obj.monitor_count -= 1
                if obj.monitor_count == 0:
                    obj.monitor_owner = None
                pc += 1
            elif op is Op.NOP:
                pc += 1
            else:  # pragma: no cover - exhaustive over the ISA
                raise VMError(f"unhandled opcode {op!r}")

    # -- exception-table search -------------------------------------------------------

    def _find_handler(self, method, pc: int, exc_obj) -> Optional[int]:
        for entry in method.info.exception_table:
            if entry.start <= pc < entry.end:
                if entry.catch_type is None:
                    return entry.handler
                jclass = getattr(exc_obj, "jclass", None)
                if jclass is not None and \
                        jclass.is_subclass_of(entry.catch_type):
                    return entry.handler
        return None
