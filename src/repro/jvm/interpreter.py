"""The bytecode interpreter.

Execution model
---------------

Each thread owns an explicit frame stack; :meth:`Interpreter.call_method`
pushes a frame and drives the inner loop until the stack returns to its
entry depth, so Java-to-Java calls never consume Python stack.  The loop
re-enters Python recursion only at native boundaries: a ``native`` method
runs as a host callable, and if that callable invokes Java code through a
JNI ``Call*Method*`` function, a nested :meth:`call_method` runs on the
same thread's frame stack.

Host-speed engineering (accounting-invariant)
---------------------------------------------

The dispatch loop is written for host throughput, under one hard rule:
**wall-clock optimizations must leave simulated cycle accounting
bit-identical.**  Concretely:

* The loop dispatches over pre-decoded per-method opcode/operand tuples
  (:class:`~repro.jvm.classloader.LoadedMethod` ``ops``/``operands``)
  with plain-int comparisons ordered by measured dynamic frequency, and
  keeps all loop state in function locals (no closures, so no cell
  variables on the hot path).
* Constant-pool operands are **quickened**: the first execution of a
  ``GETFIELD``/``PUTFIELD``/``GETSTATIC``/``PUTSTATIC``/``INVOKE*``/
  ``NEW``/``LDC``/``CHECKCAST``/``INSTANCEOF`` site resolves through the
  constant pool, class loader, and method tables, then parks the result
  on the instruction (``Instruction.quick``); later executions reuse it.
  ``INVOKEVIRTUAL`` additionally keeps a polymorphic inline cache keyed
  by receiver class (identity fast path on the first entry, up to
  ``JitPolicy.pic_depth`` entries, megamorphic fallback to the class's
  memoized method table — see :meth:`Interpreter._pic_miss`).  Classes
  are immutable after link, so no invalidation is ever needed.
* Resolution work (pool lookups, ``loader.load`` of already-loaded
  classes, method-table walks) charges **zero** simulated cycles in the
  cost model, so skipping it on cache hits cannot change any simulated
  number.  Every ``flush()`` boundary of the original interpreter is
  preserved verbatim — including on cache hits — so the *sequence* of
  ``thread.charge`` calls (observable by host-side samplers) is
  unchanged, not just the totals.

Cycle accounting
----------------

Per-instruction costs come from the executing method's *active* cost
array (interpreted or compiled — the JIT swaps it).  Costs accumulate in
a loop-local counter and are flushed to the thread — tagged
``BYTECODE`` — at every boundary where simulated time becomes
observable: method entry/exit, native calls, JVMTI event dispatch, and
exception dispatch.  This guarantees that any PCL timestamp read inside
an agent callback or native function sees an up-to-date counter.

Exceptions
----------

Java exceptions unwind frame by frame, honouring exception tables and
firing ``MethodExit`` events for every popped frame (the JVMTI contract
the paper's SPA depends on).  An exception that unwinds past the entry
depth of a :meth:`call_method` activation is surfaced to the host caller
as an :class:`Unwind`; at the thread's top level the machine records it
as the thread's uncaught exception.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.bytecode.opcodes import ArrayKind, Op
from repro.classfile.constant_pool import (
    CpClass,
    CpFieldRef,
    CpFloat,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.errors import (
    DeadlockError,
    NoSuchFieldError,
    NoSuchMethodError,
    StackOverflowSimError,
    VMError,
)
from repro.jvm.costmodel import ChargeTag
from repro.jvm.frame import Frame
from repro.jvm.values import NULL, JArray, JObject, wrap_int32

_THROWABLE = "java.lang.Throwable"
_NPE = "java.lang.NullPointerException"
_AIOOBE = "java.lang.ArrayIndexOutOfBoundsException"
_ARITH = "java.lang.ArithmeticException"
_CCE = "java.lang.ClassCastException"
_NASE = "java.lang.NegativeArraySizeException"
_IMSE = "java.lang.IllegalMonitorStateException"

# Opcodes as plain ints: int equality against a local is the cheapest
# comparison the dispatch loop can make (enum attribute access would be
# a global + attribute load per test).
_NOP = int(Op.NOP)
_ICONST = int(Op.ICONST)
_LDC = int(Op.LDC)
_ACONST_NULL = int(Op.ACONST_NULL)
_ILOAD = int(Op.ILOAD)
_ISTORE = int(Op.ISTORE)
_ALOAD = int(Op.ALOAD)
_ASTORE = int(Op.ASTORE)
_IINC = int(Op.IINC)
_POP = int(Op.POP)
_DUP = int(Op.DUP)
_DUP_X1 = int(Op.DUP_X1)
_SWAP = int(Op.SWAP)
_IADD = int(Op.IADD)
_ISUB = int(Op.ISUB)
_IMUL = int(Op.IMUL)
_IDIV = int(Op.IDIV)
_IREM = int(Op.IREM)
_INEG = int(Op.INEG)
_ISHL = int(Op.ISHL)
_ISHR = int(Op.ISHR)
_IUSHR = int(Op.IUSHR)
_IAND = int(Op.IAND)
_IOR = int(Op.IOR)
_IXOR = int(Op.IXOR)
_FDIV = int(Op.FDIV)
_I2F = int(Op.I2F)
_F2I = int(Op.F2I)
_FCMP = int(Op.FCMP)
_GOTO = int(Op.GOTO)
_IFEQ = int(Op.IFEQ)
_IFNE = int(Op.IFNE)
_IFLT = int(Op.IFLT)
_IFLE = int(Op.IFLE)
_IFGT = int(Op.IFGT)
_IFGE = int(Op.IFGE)
_IF_ICMPEQ = int(Op.IF_ICMPEQ)
_IF_ICMPNE = int(Op.IF_ICMPNE)
_IF_ICMPLT = int(Op.IF_ICMPLT)
_IF_ICMPLE = int(Op.IF_ICMPLE)
_IF_ICMPGT = int(Op.IF_ICMPGT)
_IF_ICMPGE = int(Op.IF_ICMPGE)
_IFNULL = int(Op.IFNULL)
_IFNONNULL = int(Op.IFNONNULL)
_IF_ACMPEQ = int(Op.IF_ACMPEQ)
_IF_ACMPNE = int(Op.IF_ACMPNE)
_NEW = int(Op.NEW)
_GETFIELD = int(Op.GETFIELD)
_PUTFIELD = int(Op.PUTFIELD)
_GETSTATIC = int(Op.GETSTATIC)
_PUTSTATIC = int(Op.PUTSTATIC)
_INSTANCEOF = int(Op.INSTANCEOF)
_CHECKCAST = int(Op.CHECKCAST)
_NEWARRAY = int(Op.NEWARRAY)
_IALOAD = int(Op.IALOAD)
_IASTORE = int(Op.IASTORE)
_AALOAD = int(Op.AALOAD)
_AASTORE = int(Op.AASTORE)
_ARRAYLENGTH = int(Op.ARRAYLENGTH)
_INVOKESTATIC = int(Op.INVOKESTATIC)
_INVOKEVIRTUAL = int(Op.INVOKEVIRTUAL)
_INVOKESPECIAL = int(Op.INVOKESPECIAL)
_RETURN = int(Op.RETURN)
_IRETURN = int(Op.IRETURN)
_ARETURN = int(Op.ARETURN)
_ATHROW = int(Op.ATHROW)
_MONITORENTER = int(Op.MONITORENTER)
_MONITOREXIT = int(Op.MONITOREXIT)

_INT_MAX = 2147483647
_INT_MIN_ = -2147483648
_U32 = 4294967295
_BIAS = 2147483648


class Unwind(Exception):
    """A Java exception crossing a host (native/JNI) boundary."""

    def __init__(self, jobject):
        super().__init__(getattr(jobject, "class_name", "<exception>"))
        self.jobject = jobject


class _Throw(Exception):
    """Internal signal: a handler raised a Java exception.

    ``exc_obj`` carries an existing throwable (ATHROW, native Unwind);
    when it is None the dispatcher synthesizes ``class_name`` with
    ``message`` — exactly what ``throw_vm`` did in the closure-based
    loop, but without forcing the hot path's locals into cells.
    """

    __slots__ = ("exc_obj", "class_name", "message")

    def __init__(self, exc_obj, class_name=None, message=""):
        self.exc_obj = exc_obj
        self.class_name = class_name
        self.message = message


class Interpreter:
    """Executes bytecode for one :class:`~repro.jvm.machine.JavaVM`."""

    def __init__(self, vm):
        self._vm = vm

    # -- public entry points -----------------------------------------------------

    def call_method(self, thread, method, args: List):
        """Invoke ``method`` with ``args`` on ``thread``; return its result.

        Fires the same events a bytecode-level invocation would.  Raises
        :class:`Unwind` if a Java exception escapes the call.
        """
        if method.is_native:
            return self._invoke_native(thread, method, args)
        self._enter_bytecode_method(thread, method, args)
        return self._run(thread, len(thread.frames) - 1)

    def synthesize_exception(self, thread, class_name: str,
                             message: str = "") -> JObject:
        """Allocate a VM-synthesized exception object (no constructor)."""
        vm = self._vm
        cls = vm.loader.load(class_name)
        obj = vm.heap.alloc_object(cls)
        if message:
            obj.fields["message"] = vm.intern_string(message)
        return obj

    def throw(self, thread, class_name: str, message: str = ""):
        """Raise a Java exception from host code (native implementations)."""
        raise Unwind(self.synthesize_exception(thread, class_name, message))

    # -- method entry/exit helpers ----------------------------------------------

    def _enter_bytecode_method(self, thread, method, args: List) -> None:
        vm = self._vm
        if len(thread.frames) >= vm.cost_model.max_frames:
            raise StackOverflowSimError(
                f"simulated stack overflow in {method.qualified_name}")
        method.invocation_count += 1
        jit = vm.jit
        # cheapest test first: hot methods are compiled, which skips
        # the jit.enabled property call on the dominant path
        if (not method.compiled
                and method.invocation_count >= jit.policy.invoke_threshold
                and jit.enabled):
            jit.compile(thread, method)
        if vm.jvmti.method_entry_enabled:
            vm.jvmti.dispatch_method_entry(thread, method)
        thread.frames.append(Frame(method, args))
        vm.method_invocations += 1

    def _exit_method_event(self, thread, method,
                           by_exception: bool) -> None:
        vm = self._vm
        if vm.jvmti.method_exit_enabled:
            vm.jvmti.dispatch_method_exit(thread, method, by_exception)

    def _invoke_native(self, thread, method, args: List):
        """Run a native method to completion on the host."""
        vm = self._vm
        if vm.jvmti.method_entry_enabled:
            vm.jvmti.dispatch_method_entry(thread, method)
        impl = method.native_impl
        if not method.native_resolved:
            impl = vm.native_registry.resolve(method)
            if impl is None:
                exc = self.synthesize_exception(
                    thread, "java.lang.UnsatisfiedLinkError",
                    method.qualified_name)
                self._exit_method_event(thread, method, by_exception=True)
                raise Unwind(exc)
            method.native_impl = impl
            method.native_resolved = True
            vm.native_methods_invoked.add(method.qualified_name)
        thread.charge(vm.cost_model.native_invoke_base, ChargeTag.NATIVE)
        vm.native_invocations += 1
        env = vm.jni_env(thread)
        # attribution key for blocked-time and causal rescaling; envs
        # are per-call, so nested natives each carry their own name
        env.native_name = method.qualified_name
        obs = vm.obs
        entered = thread.cycles_total if obs.enabled else 0
        try:
            result = impl(env, *args)
        except Unwind:
            if obs.enabled:
                self._observe_j2n(obs, thread, method, entered)
            self._exit_method_event(thread, method, by_exception=True)
            raise
        if obs.enabled:
            self._observe_j2n(obs, thread, method, entered)
        self._exit_method_event(thread, method, by_exception=False)
        return result

    @staticmethod
    def _observe_j2n(obs, thread, method, entered: int) -> None:
        """Record one J2N (bytecode -> native) span; observes the
        per-thread cycle counter without charging it."""
        now = thread.cycles_total
        obs.tracer.complete(method.qualified_name, "j2n",
                            thread.thread_id, entered, now)
        obs.metrics.observe("j2n_span_cycles", now - entered)

    # -- template-tier throw helpers ---------------------------------------------

    def _template_throw(self, thread, frame, pc: int, class_name: str,
                        message: str, pending: int, icount: int):
        """Raise a VM-synthesized exception from template code.

        Mirrors the ``_Throw`` handler of :meth:`_run` exactly: sync the
        pc, synthesize (which may load classes and charge VM cycles)
        *before* flushing pending bytecode cycles, then hand the object
        back for dispatch."""
        frame.pc = pc
        exc_obj = self.synthesize_exception(thread, class_name, message)
        if pending:
            thread.charge(pending, ChargeTag.BYTECODE)
        if icount:
            self._vm.instructions_retired += icount
        return (2, exc_obj)

    def _template_raise(self, thread, frame, pc: int, exc_obj,
                        pending: int, icount: int):
        """ATHROW of an existing throwable from template code."""
        frame.pc = pc
        if pending:
            thread.charge(pending, ChargeTag.BYTECODE)
        if icount:
            self._vm.instructions_retired += icount
        return (2, exc_obj)

    def _template_call_finish(self, thread, outcome, base: int):
        """Finish a template-to-template direct call that did not
        return normally.

        ``base`` is the callee frame's index.  Deopt (``outcome[0] ==
        1``): the reconstructed frame reinterprets under :meth:`_run`.
        Exception (``outcome[0] == 2``): dispatch from the callee — a
        handler inside it resumes interpreting there; an escaping
        exception raises :class:`Unwind` for the calling template's
        handler arm.  Either way :meth:`_run` carries the activation to
        its return, exactly as if the call had gone through it from the
        start."""
        if outcome[0] == 2:
            self._dispatch_exception(thread, thread.frames, base,
                                     outcome[1])
        return self._run(thread, base)

    # -- invokevirtual polymorphic inline cache -----------------------------------

    def _pic_miss(self, q, receiver_class):
        """Slow path of the invokevirtual PIC (both tiers share it).

        The caller already failed the first-entry identity test
        (``receiver_class is q[4]``) — the monomorphic fast path stays a
        single comparison.  ``q[6]``/``q[7]`` extend the cache to
        :attr:`~repro.jit.policy.JitPolicy.pic_depth` entries:

        * ``q[6] is None`` — monomorphic (or unseeded): only ``q[4]``/
          ``q[5]`` are populated;
        * ``q[6]`` is a list — polymorphic: up to ``pic_depth - 1``
          overflow (class, method) pairs in ``q[6]``/``q[7]``;
        * ``q[6] is False`` — megamorphic: the cache gave up and every
          dispatch walks the receiver class's (memoized) method table.

        All resolution here is host-only work charging zero simulated
        cycles, exactly like the monomorphic miss path it replaces, so
        cycle accounting is bit-identical across cache states.
        """
        vm = self._vm
        rest = q[6]
        if rest:
            methods = q[7]
            for i, cls in enumerate(rest):
                if cls is receiver_class:
                    vm.pic_hits += 1
                    return methods[i]
        vm.ic_misses += 1
        dispatched = receiver_class.resolve_method(q[2], q[3])
        resolved = dispatched if dispatched is not None else q[0]
        if rest is False:  # megamorphic: caching abandoned for good
            vm.pic_megamorphic += 1
            return resolved
        if q[4] is None:  # first execution: seed the monomorphic entry
            q[4] = receiver_class
            q[5] = resolved
            return resolved
        extra = vm.jit.policy.pic_depth - 1
        if rest is None:
            if extra > 0:
                q[6] = [receiver_class]
                q[7] = [resolved]
                vm.pic_mono_to_poly += 1
            else:  # pic_depth == 1: the old monomorphic cache, which
                # goes straight to megamorphic on a second class
                q[6] = False
                vm.pic_poly_to_mega += 1
        elif len(rest) < extra:
            rest.append(receiver_class)
            q[7].append(resolved)
        else:  # all pic_depth entries taken: go megamorphic
            q[6] = False
            q[7] = None
            vm.pic_poly_to_mega += 1
        return resolved

    # -- the interpreter loop --------------------------------------------------------

    def _run(self, thread, base: int):  # noqa: C901 - the dispatch loop
        vm = self._vm
        loader = vm.loader
        heap = vm.heap
        jit = vm.jit
        frames = thread.frames
        charge = thread.charge
        tag_bytecode = ChargeTag.BYTECODE
        # preemptive scheduler, or None under the sequential model;
        # hoisted so safepoint checks are one local load
        sched = vm.scheduler
        # race sanitizer (host-side shadow state), or None when off
        san = vm.sanitizer
        # on-stack replacement gate, hoisted for the backedge hot path
        osr_on = jit.enabled and jit.policy.osr

        # opcode constants as fast locals (module globals cost a dict
        # lookup per comparison; locals are array slots)
        ILOAD = _ILOAD
        ALOAD = _ALOAD
        ICONST = _ICONST
        ISTORE = _ISTORE
        ASTORE = _ASTORE
        IINC = _IINC
        GETFIELD = _GETFIELD
        PUTFIELD = _PUTFIELD
        IALOAD = _IALOAD
        AALOAD = _AALOAD
        IASTORE = _IASTORE
        AASTORE = _AASTORE
        IAND = _IAND
        IOR = _IOR
        IXOR = _IXOR
        IADD = _IADD
        ISUB = _ISUB
        IMUL = _IMUL
        IDIV = _IDIV
        IREM = _IREM
        INEG = _INEG
        ISHL = _ISHL
        ISHR = _ISHR
        IUSHR = _IUSHR
        FDIV = _FDIV
        I2F = _I2F
        F2I = _F2I
        FCMP = _FCMP
        GOTO = _GOTO
        IFEQ = _IFEQ
        IFNE = _IFNE
        IFLT = _IFLT
        IFLE = _IFLE
        IFGT = _IFGT
        IFGE = _IFGE
        IF_ICMPEQ = _IF_ICMPEQ
        IF_ICMPNE = _IF_ICMPNE
        IF_ICMPLT = _IF_ICMPLT
        IF_ICMPLE = _IF_ICMPLE
        IF_ICMPGT = _IF_ICMPGT
        IF_ICMPGE = _IF_ICMPGE
        IFNULL = _IFNULL
        IFNONNULL = _IFNONNULL
        IF_ACMPEQ = _IF_ACMPEQ
        LDC = _LDC
        ICONST_NULL = _ACONST_NULL
        POP_ = _POP
        DUP = _DUP
        DUP_X1 = _DUP_X1
        SWAP = _SWAP
        NEW = _NEW
        GETSTATIC = _GETSTATIC
        PUTSTATIC = _PUTSTATIC
        INSTANCEOF = _INSTANCEOF
        CHECKCAST = _CHECKCAST
        NEWARRAY = _NEWARRAY
        ARRAYLENGTH = _ARRAYLENGTH
        INVOKESTATIC = _INVOKESTATIC
        RETURN = _RETURN
        ATHROW = _ATHROW
        MONITORENTER = _MONITORENTER
        NOP = _NOP
        INT_MAX = _INT_MAX
        INT_MIN = _INT_MIN_
        U32 = _U32
        BIAS = _BIAS
        AK_INT = ArrayKind.INT

        while True:
            # (re)load per-frame state; one outer iteration per
            # call/return/exception boundary
            frame = frames[-1]
            method = frame.method
            # tier dispatch: a fresh activation of a method with an
            # installed template runs specialized Python instead of the
            # dispatch loop.  Mid-method frames (handler resumption,
            # deopt restarts, returns into a caller) always interpret.
            tfunc = method.template
            if tfunc is not None and frame.pc == 0 and not frame.stack \
                    and not frame.deopted:
                jit.template_entries += 1
                outcome = tfunc(self, thread, frame)
                k = outcome[0]
                if k == 1:
                    continue  # deopt: reinterpret this activation
                if k == 0:  # return: accounting flushed, MethodExit fired
                    frames.pop()
                    if len(frames) == base:
                        return outcome[2]
                    caller = frames[-1]
                    caller.pc += 1
                    if outcome[1]:
                        caller.stack.append(outcome[2])
                    continue
                # k == 2: thrown — frame.pc synced and accounting
                # flushed by the template; unwind like the except arm
                self._dispatch_exception(thread, frames, base,
                                         outcome[1])
                continue
            code = method.info.code
            ops = method.ops
            operands = method.operands
            costs = method.active_costs
            stack = frame.stack
            locals_ = frame.locals
            push = stack.append
            pop = stack.pop
            pc = frame.pc
            pending = 0
            icount = 0
            try:
                while True:
                    op = ops[pc]
                    pending += costs[pc]
                    icount += 1

                    if op == ILOAD or op == ALOAD:
                        push(locals_[operands[pc]])
                        pc += 1
                    elif op == ICONST:
                        push(operands[pc])
                        pc += 1
                    elif op == ISTORE or op == ASTORE:
                        locals_[operands[pc]] = pop()
                        pc += 1
                    elif 0x50 <= op <= 0x60:  # branch family
                        if op == GOTO:
                            taken = True
                        elif op == IF_ICMPGE:
                            b = pop()
                            taken = pop() >= b
                        elif op == IF_ICMPNE:
                            b = pop()
                            taken = pop() != b
                        elif op == IFNE:
                            taken = pop() != 0
                        elif op == IF_ICMPLT:
                            b = pop()
                            taken = pop() < b
                        elif op == IF_ICMPLE:
                            b = pop()
                            taken = pop() <= b
                        elif op == IFEQ:
                            taken = pop() == 0
                        elif op == IFGE:
                            taken = pop() >= 0
                        elif op == IFLT:
                            taken = pop() < 0
                        elif op == IFLE:
                            taken = pop() <= 0
                        elif op == IFGT:
                            taken = pop() > 0
                        elif op == IF_ICMPEQ:
                            b = pop()
                            taken = pop() == b
                        elif op == IF_ICMPGT:
                            b = pop()
                            taken = pop() > b
                        elif op == IFNULL:
                            taken = pop() is NULL
                        elif op == IFNONNULL:
                            taken = pop() is not NULL
                        elif op == IF_ACMPEQ:
                            b = pop()
                            taken = pop() is b
                        else:  # IF_ACMPNE
                            b = pop()
                            taken = pop() is not b
                        if taken:
                            target = operands[pc]
                            if target <= pc:  # backedge: JIT + safepoint
                                if not method.compiled:
                                    method.backedge_count += 1
                                    if (jit.enabled
                                            and method.backedge_count >=
                                            jit.policy.backedge_threshold):
                                        if pending:
                                            charge(pending, tag_bytecode)
                                            pending = 0
                                        if icount:
                                            vm.instructions_retired += \
                                                icount
                                            icount = 0
                                        jit.compile(thread, method)
                                        costs = method.active_costs
                                if sched is not None and \
                                        thread.cycles_total + pending >= \
                                        thread.preempt_at:
                                    frame.pc = target
                                    if pending:
                                        charge(pending, tag_bytecode)
                                        pending = 0
                                    if icount:
                                        vm.instructions_retired += icount
                                        icount = 0
                                    sched.preempt(thread)
                                # on-stack replacement: a template with
                                # an entry stub for this loop header
                                # takes over the live frame mid-method.
                                # The flush splits one pending charge in
                                # two; totals and safepoint decisions
                                # (cycles_total + pending at instruction
                                # positions) are unchanged, so goldens
                                # stay bit-identical.
                                # A deopted frame may re-enter: deopts
                                # heal (the interpreter quickens the
                                # cold site before the next backedge),
                                # and a template that keeps deopting is
                                # invalidated at the disable threshold,
                                # which clears osr_map and ends the
                                # cycle — ping-pong is bounded.
                                osr_map = method.osr_map
                                if osr_map is not None and osr_on \
                                        and osr_map.get(target) == \
                                        len(stack):
                                    frame.pc = target
                                    if pending:
                                        charge(pending, tag_bytecode)
                                        pending = 0
                                    if icount:
                                        vm.instructions_retired += icount
                                        icount = 0
                                    method.osr_entry_count += 1
                                    jit.osr_entries += 1
                                    outcome = method.template(
                                        self, thread, frame, target)
                                    k = outcome[0]
                                    if k == 0:
                                        # templated activation returned
                                        # (accounting flushed,
                                        # MethodExit fired)
                                        frames.pop()
                                        if len(frames) == base:
                                            return outcome[2]
                                        caller = frames[-1]
                                        caller.pc += 1
                                        if outcome[1]:
                                            caller.stack.append(
                                                outcome[2])
                                    elif k == 2:
                                        self._dispatch_exception(
                                            thread, frames, base,
                                            outcome[1])
                                    # k == 1 (deopt): the frame was
                                    # reconstructed and marked deopted;
                                    # the outer loop reinterprets it
                                    break
                            pc = target
                        else:
                            pc += 1
                    elif op == GETFIELD:
                        ins = code[pc]
                        name = ins.quick
                        if name is None:
                            name = method.owner.constant_pool.get_typed(
                                operands[pc], CpFieldRef).field_name
                            ins.quick = name
                        obj = pop()
                        if obj is NULL:
                            raise _Throw(None, _NPE, f"getfield {name}")
                        try:
                            push(obj.fields[name])
                        except (KeyError, AttributeError):
                            raise NoSuchFieldError(
                                f"{obj!r} has no field {name}")
                        if san is not None:
                            frame.pc = pc  # accurate race stacks
                            san.read_field(thread, obj, name)
                        pc += 1
                    elif op == IALOAD or op == AALOAD:
                        index = pop()
                        array = pop()
                        if array is NULL:
                            raise _Throw(None, _NPE, "array load")
                        data = array.data
                        if index < 0 or index >= len(data):
                            raise _Throw(None, _AIOOBE, str(index))
                        push(data[index])
                        pc += 1
                    elif op == IAND:
                        b = pop()
                        r = stack[-1] & b
                        if r > INT_MAX or r < INT_MIN:
                            r = (r + BIAS & U32) - BIAS
                        stack[-1] = r
                        pc += 1
                    elif op == IADD:
                        b = pop()
                        a = stack[-1]
                        if type(b) is int and type(a) is int:
                            r = a + b
                            if r > INT_MAX or r < INT_MIN:
                                r = (r + BIAS & U32) - BIAS
                            stack[-1] = r
                        else:
                            stack[-1] = a + b
                        pc += 1
                    elif op == IINC:
                        idx, delta = operands[pc]
                        r = locals_[idx] + delta
                        if type(r) is int:
                            if r > INT_MAX or r < INT_MIN:
                                r = (r + BIAS & U32) - BIAS
                            locals_[idx] = r
                        else:
                            locals_[idx] = wrap_int32(r)
                        pc += 1
                    elif 0x93 <= op <= 0x95:  # RETURN / IRETURN / ARETURN
                        has_result = op != RETURN
                        result = pop() if has_result else None
                        if pending:
                            charge(pending, tag_bytecode)
                            pending = 0
                        if icount:
                            vm.instructions_retired += icount
                            icount = 0
                        self._exit_method_event(thread, method,
                                                by_exception=False)
                        frames.pop()
                        if len(frames) == base:
                            return result
                        caller = frames[-1]
                        # resume the caller after its invoke instruction
                        caller.pc += 1
                        if has_result:
                            caller.stack.append(result)
                        break
                    elif 0x90 <= op <= 0x92:  # INVOKE family
                        ins = code[pc]
                        q = ins.quick
                        # the frame stays at the invoke pc so
                        # exception-table ranges cover in-flight calls;
                        # RETURN advances past it
                        frame.pc = pc
                        if pending:
                            charge(pending, tag_bytecode)
                            pending = 0
                        if icount:
                            vm.instructions_retired += icount
                            icount = 0
                        if sched is not None and \
                                thread.cycles_total >= thread.preempt_at:
                            sched.preempt(thread)
                        if q is None:
                            ref = method.owner.constant_pool.get_typed(
                                operands[pc], CpMethodRef)
                            target_class = loader.load(ref.class_name)
                            resolved = target_class.resolve_method(
                                ref.method_name, ref.descriptor)
                            if resolved is None:
                                raise NoSuchMethodError(
                                    f"{ref.class_name}.{ref.method_name}"
                                    f"{ref.descriptor}")
                            if op != INVOKESTATIC and \
                                    resolved.info.is_static:
                                raise NoSuchMethodError(
                                    f"instance invoke of static "
                                    f"{resolved.qualified_name}")
                            if op == INVOKESTATIC and \
                                    not resolved.info.is_static:
                                raise NoSuchMethodError(
                                    f"static invoke of instance "
                                    f"{resolved.qualified_name}")
                            # [resolved, arg slots, name, descriptor,
                            #  PIC entry-0 class, PIC entry-0 method,
                            #  PIC overflow classes, PIC overflow
                            #  methods] — see _pic_miss for the cache
                            # state machine on slots 6/7
                            q = [resolved, resolved.info.arg_slots,
                                 ref.method_name, ref.descriptor,
                                 None, None, None, None]
                            ins.quick = q
                        resolved = q[0]
                        n_args = q[1]
                        if n_args:
                            args = stack[-n_args:]
                            del stack[-n_args:]
                        else:
                            args = []
                        if op != INVOKESTATIC:
                            receiver = args[0]
                            if receiver is NULL:
                                raise _Throw(
                                    None, _NPE,
                                    f"invoke {q[2]} on null")
                            if op == _INVOKEVIRTUAL:
                                receiver_class = getattr(
                                    receiver, "jclass", None)
                                if receiver_class is None:  # array
                                    receiver_class = loader.load(
                                        "java.lang.Object")
                                if receiver_class is q[4]:
                                    resolved = q[5]
                                    vm.ic_hits += 1
                                else:  # PIC slow path (shared helper)
                                    resolved = self._pic_miss(
                                        q, receiver_class)
                        if resolved.is_native:
                            try:
                                result = self._invoke_native(
                                    thread, resolved, args)
                            except Unwind as unwind:
                                raise _Throw(unwind.jobject) from None
                            if resolved.info.returns_value:
                                push(result)
                            pc += 1
                        else:
                            self._enter_bytecode_method(
                                thread, resolved, args)
                            break
                    elif op == IMUL:
                        b = pop()
                        a = stack[-1]
                        if type(b) is int and type(a) is int:
                            r = a * b
                            if r > INT_MAX or r < INT_MIN:
                                r = (r + BIAS & U32) - BIAS
                            stack[-1] = r
                        else:
                            stack[-1] = a * b
                        pc += 1
                    elif op == ISHR:
                        b = pop()
                        r = stack[-1] >> (b & 31)
                        if r > INT_MAX or r < INT_MIN:
                            r = (r + BIAS & U32) - BIAS
                        stack[-1] = r
                        pc += 1
                    elif op == ISHL:
                        b = pop()
                        r = stack[-1] << (b & 31)
                        if r > INT_MAX or r < INT_MIN:
                            r = (r + BIAS & U32) - BIAS
                        stack[-1] = r
                        pc += 1
                    elif op == IXOR:
                        b = pop()
                        r = stack[-1] ^ b
                        if r > INT_MAX or r < INT_MIN:
                            r = (r + BIAS & U32) - BIAS
                        stack[-1] = r
                        pc += 1
                    elif op == IASTORE or op == AASTORE:
                        value = pop()
                        index = pop()
                        array = pop()
                        if array is NULL:
                            raise _Throw(None, _NPE, "array store")
                        data = array.data
                        if index < 0 or index >= len(data):
                            raise _Throw(None, _AIOOBE, str(index))
                        if array.kind is AK_INT and type(value) is int \
                                and INT_MIN <= value <= INT_MAX:
                            data[index] = value
                        else:
                            data[index] = array.normalize(value)
                        pc += 1
                    elif op == ISUB:
                        b = pop()
                        a = stack[-1]
                        if type(b) is int and type(a) is int:
                            r = a - b
                            if r > INT_MAX or r < INT_MIN:
                                r = (r + BIAS & U32) - BIAS
                            stack[-1] = r
                        else:
                            stack[-1] = a - b
                        pc += 1
                    elif op == LDC:
                        ins = code[pc]
                        q = ins.quick
                        if q is None:
                            entry = method.owner.constant_pool.get(
                                operands[pc])
                            te = type(entry)
                            if te is CpInt or te is CpFloat:
                                q = (False, entry.value)
                            elif te is CpString:
                                frame.pc = pc
                                if pending:
                                    charge(pending, tag_bytecode)
                                    pending = 0
                                if icount:
                                    vm.instructions_retired += icount
                                    icount = 0
                                q = (True, vm.intern_string(entry.value))
                            else:
                                raise VMError(
                                    f"ldc of unsupported constant "
                                    f"{entry!r}")
                            ins.quick = q
                        if q[0]:  # string: interning is a VM boundary
                            frame.pc = pc
                            if pending:
                                charge(pending, tag_bytecode)
                                pending = 0
                            if icount:
                                vm.instructions_retired += icount
                                icount = 0
                        push(q[1])
                        pc += 1
                    elif op == PUTFIELD:
                        ins = code[pc]
                        name = ins.quick
                        if name is None:
                            name = method.owner.constant_pool.get_typed(
                                operands[pc], CpFieldRef).field_name
                            ins.quick = name
                        value = pop()
                        obj = pop()
                        if obj is NULL:
                            raise _Throw(None, _NPE, f"putfield {name}")
                        if name not in obj.fields:
                            raise NoSuchFieldError(
                                f"{obj!r} has no field {name}")
                        obj.fields[name] = value
                        if san is not None:
                            frame.pc = pc  # accurate race stacks
                            san.write_field(thread, obj, name)
                        pc += 1
                    elif op == GETSTATIC or op == PUTSTATIC:
                        ins = code[pc]
                        q = ins.quick
                        frame.pc = pc
                        if pending:
                            charge(pending, tag_bytecode)
                            pending = 0
                        if icount:
                            vm.instructions_retired += icount
                            icount = 0
                        if q is None:
                            ref = method.owner.constant_pool.get_typed(
                                operands[pc], CpFieldRef)
                            cls = loader.load(ref.class_name)
                            holder = cls.resolve_static_holder(
                                ref.field_name)
                            if holder is None:
                                raise NoSuchFieldError(
                                    f"{ref.class_name} has no static "
                                    f"{ref.field_name}")
                            q = (holder, ref.field_name)
                            ins.quick = q
                        if op == GETSTATIC:
                            push(q[0].statics[q[1]])
                            if san is not None:
                                san.read_static(thread, q[0], q[1])
                        else:
                            q[0].statics[q[1]] = pop()
                            if san is not None:
                                san.write_static(thread, q[0], q[1])
                        pc += 1
                    elif op == IDIV or op == IREM:
                        b = pop()
                        a = pop()
                        if type(a) is int and type(b) is int:
                            if b == 0:
                                raise _Throw(None, _ARITH, "/ by zero")
                            quotient = abs(a) // abs(b)
                            if (a < 0) != (b < 0):
                                quotient = -quotient
                            if op == IDIV:
                                r = quotient
                            else:
                                r = a - quotient * b
                            if r > INT_MAX or r < INT_MIN:
                                r = (r + BIAS & U32) - BIAS
                            push(r)
                        else:
                            if b == 0:
                                raise _Throw(None, _ARITH, "/ by zero")
                            push(a / b if op == IDIV else a % b)
                        pc += 1
                    elif op == FDIV:
                        b = pop()
                        a = pop()
                        if b == 0:
                            # IEEE-754 (JVM fdiv): x/±0.0 is ±Infinity
                            # with the XOR of the operand signs;
                            # 0.0/0.0 is NaN.  Never ArithmeticException.
                            if a == 0:
                                push(math.nan)
                            else:
                                sign = (math.copysign(1.0, float(a))
                                        * math.copysign(1.0, float(b)))
                                push(math.inf if sign > 0 else -math.inf)
                        else:
                            push(a / b)
                        pc += 1
                    elif op == INEG:
                        v = stack[-1]
                        if type(v) is int:
                            r = -v
                            if r > INT_MAX or r < INT_MIN:
                                r = (r + BIAS & U32) - BIAS
                            stack[-1] = r
                        else:
                            stack[-1] = -v
                        pc += 1
                    elif op == IUSHR:
                        b = pop()
                        r = (stack[-1] & U32) >> (b & 31)
                        if r > INT_MAX:
                            r -= 4294967296
                        stack[-1] = r
                        pc += 1
                    elif op == IOR:
                        b = pop()
                        r = stack[-1] | b
                        if r > INT_MAX or r < INT_MIN:
                            r = (r + BIAS & U32) - BIAS
                        stack[-1] = r
                        pc += 1
                    elif op == I2F:
                        stack[-1] = float(stack[-1])
                        pc += 1
                    elif op == F2I:
                        r = int(stack[-1])
                        if r > INT_MAX or r < INT_MIN:
                            r = (r + BIAS & U32) - BIAS
                        stack[-1] = r
                        pc += 1
                    elif op == FCMP:
                        b = pop()
                        a = pop()
                        push(-1 if a < b else (1 if a > b else 0))
                        pc += 1
                    elif op == POP_:
                        pop()
                        pc += 1
                    elif op == DUP:
                        push(stack[-1])
                        pc += 1
                    elif op == DUP_X1:
                        stack.insert(-2, stack[-1])
                        pc += 1
                    elif op == SWAP:
                        stack[-1], stack[-2] = stack[-2], stack[-1]
                        pc += 1
                    elif op == ICONST_NULL:
                        push(NULL)
                        pc += 1
                    elif op == NEW:
                        ins = code[pc]
                        cls = ins.quick
                        frame.pc = pc
                        if pending:
                            charge(pending, tag_bytecode)
                            pending = 0
                        if icount:
                            vm.instructions_retired += icount
                            icount = 0
                        if cls is None:
                            ref = method.owner.constant_pool.get_typed(
                                operands[pc], CpClass)
                            cls = loader.load(ref.name)
                            ins.quick = cls
                        push(heap.alloc_object(cls))
                        pc += 1
                    elif op == NEWARRAY:
                        length = pop()
                        if length < 0:
                            raise _Throw(None, _NASE, str(length))
                        push(heap.alloc_array(operands[pc], length))
                        pc += 1
                    elif op == ARRAYLENGTH:
                        array = pop()
                        if array is NULL:
                            raise _Throw(None, _NPE, "arraylength")
                        push(len(array.data))
                        pc += 1
                    elif op == INSTANCEOF:
                        ins = code[pc]
                        cname = ins.quick
                        if cname is None:
                            cname = method.owner.constant_pool.get_typed(
                                operands[pc], CpClass).name
                            ins.quick = cname
                        obj = pop()
                        if obj is NULL:
                            push(0)
                        elif isinstance(obj, JArray):
                            push(1 if cname == "java.lang.Object" else 0)
                        else:
                            push(1 if obj.jclass.is_subclass_of(cname)
                                 else 0)
                        pc += 1
                    elif op == CHECKCAST:
                        ins = code[pc]
                        cname = ins.quick
                        if cname is None:
                            cname = method.owner.constant_pool.get_typed(
                                operands[pc], CpClass).name
                            ins.quick = cname
                        obj = stack[-1]
                        if obj is not NULL and \
                                not isinstance(obj, JArray) and \
                                not obj.jclass.is_subclass_of(cname):
                            raise _Throw(
                                None, _CCE,
                                f"{obj.class_name} -> {cname}")
                        pc += 1
                    elif op == ATHROW:
                        exc_obj = pop()
                        if exc_obj is NULL:
                            raise _Throw(None, _NPE, "throw null")
                        raise _Throw(exc_obj)
                    elif op == MONITORENTER:
                        obj = pop()
                        if obj is NULL:
                            raise _Throw(None, _NPE, "monitorenter")
                        if obj.monitor_owner is None or \
                                obj.monitor_owner is thread:
                            obj.monitor_owner = thread
                            obj.monitor_count += 1
                            if san is not None:
                                san.on_acquire(thread, obj)
                        elif sched is not None:
                            # contended: block until the owner hands
                            # the monitor over (charges are flushed —
                            # the thread parks mid-opcode)
                            frame.pc = pc
                            if pending:
                                charge(pending, tag_bytecode)
                                pending = 0
                            if icount:
                                vm.instructions_retired += icount
                                icount = 0
                            sched.acquire_contended(thread, obj)
                        else:
                            raise self._sequential_monitor_deadlock(
                                thread, obj)
                        pc += 1
                    elif op == _MONITOREXIT:
                        obj = pop()
                        if obj is NULL:
                            raise _Throw(None, _NPE, "monitorexit")
                        if obj.monitor_owner is not thread or \
                                obj.monitor_count <= 0:
                            raise _Throw(None, _IMSE, "not monitor owner")
                        obj.monitor_count -= 1
                        if obj.monitor_count == 0:
                            obj.monitor_owner = None
                            if san is not None:
                                san.on_release(thread, obj)
                            if sched is not None and obj.monitor_waiters:
                                sched.release_monitor(thread, obj)
                        pc += 1
                    elif op == NOP:
                        pc += 1
                    else:  # pragma: no cover - exhaustive over the ISA
                        raise VMError(f"unhandled opcode {Op(op)!r}")
            except _Throw as signal:
                frame.pc = pc
                exc_obj = signal.exc_obj
                if exc_obj is None:
                    exc_obj = self.synthesize_exception(
                        thread, signal.class_name, signal.message)
                if pending:
                    charge(pending, tag_bytecode)
                if icount:
                    vm.instructions_retired += icount
                self._dispatch_exception(thread, frames, base, exc_obj)
                # fall through to the outer loop, which reloads the
                # handler frame's state (pc set by the dispatcher)

    # -- monitor support --------------------------------------------------------------

    def _sequential_monitor_deadlock(self, thread, obj) -> DeadlockError:
        """Contended MONITORENTER under the sequential model: the owner
        is suspended below us on the host stack and can only release
        after we return — a guaranteed wait-for cycle."""
        owner = obj.monitor_owner
        cycle = [(thread.name, f"monitor of {obj!r}", owner.name),
                 (owner.name, "host-stack resumption", thread.name)]
        return DeadlockError(
            f"deadlock: monitor of {obj!r} held by {owner.name} while "
            f"{thread.name} runs (sequential model): "
            + DeadlockError.render_cycle(cycle), cycle=cycle)

    # -- exception dispatch -----------------------------------------------------------

    def _dispatch_exception(self, thread, frames, base: int,
                            exc_obj) -> None:
        """Unwind until a handler is found; leaves the handler frame on
        top with its pc at the handler.  Raises :class:`Unwind` when the
        exception escapes this activation."""
        while True:
            current = frames[-1]
            m = current.method
            handler_pc = self._find_handler(m, current.pc, exc_obj)
            if handler_pc is not None:
                current.stack.clear()
                current.stack.append(exc_obj)
                current.pc = handler_pc
                return
            self._exit_method_event(thread, m, by_exception=True)
            frames.pop()
            if len(frames) == base:
                raise Unwind(exc_obj)

    # -- exception-table search -------------------------------------------------------

    def _find_handler(self, method, pc: int, exc_obj) -> Optional[int]:
        for entry in method.info.exception_table:
            if entry.start <= pc < entry.end:
                if entry.catch_type is None:
                    return entry.handler
                jclass = getattr(exc_obj, "jclass", None)
                if jclass is not None and \
                        jclass.is_subclass_of(entry.catch_type):
                    return entry.handler
        return None
