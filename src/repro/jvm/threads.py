"""Simulated threads.

By default (``cores=1``) the simulator runs threads **sequentially** on
one virtual CPU: a started thread is queued and executed to completion
either when the starter joins it or when the current thread finishes.
This is a valid serialization of the program (workloads are written so
that any serialization is correct), keeps the machine fully
deterministic, and matches the paper's single-CPU Pentium 4 testbed
where total CPU time is the sum of per-thread times.

With ``cores=N`` (N > 1) the :mod:`repro.jvm.scheduler` runs the same
threads preemptively on N simulated cores with per-core cycle clocks;
the extra :class:`ThreadState` values (READY/BLOCKED/WAITING) belong to
that mode.

Each thread carries its own virtual cycle counter — exactly the
per-thread hardware counter PCL virtualizes — plus the tagged
ground-truth breakdown used by the test suite.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.jvm.costmodel import ChargeTag
from repro.errors import VMError


class ThreadState(enum.Enum):
    NEW = "new"
    #: Started but not yet run (sequential model's run queue).
    QUEUED = "queued"
    #: Runnable, waiting for a core (preemptive scheduler).
    READY = "ready"
    RUNNING = "running"
    #: Blocked acquiring a contended object monitor.
    BLOCKED = "blocked"
    #: Waiting on another thread (``Thread.join``) or the drain barrier.
    WAITING = "waiting"
    TERMINATED = "terminated"


class SimThread:
    """One simulated Java thread."""

    _HPC_TAGS = (ChargeTag.BYTECODE, ChargeTag.NATIVE, ChargeTag.AGENT,
                 ChargeTag.VM)

    def __init__(self, thread_id: int, name: str, java_object=None,
                 samplers: Optional[List] = None):
        self.thread_id = thread_id
        self.name = name
        #: The ``java.lang.Thread`` instance this thread executes (None
        #: for the bootstrap/main thread until the runtime creates one).
        self.java_object = java_object
        self.state = ThreadState.NEW
        self.frames: List = []
        #: Per-thread hardware cycle counter (what PCL reads).
        self.cycles_total = 0
        #: Ground truth: cycles by charge tag.
        self.cycles_by_tag: Dict[ChargeTag, int] = {
            tag: 0 for tag in self._HPC_TAGS}
        #: Uncaught Java exception that terminated the thread, if any.
        self.uncaught_exception = None
        #: Core the thread is (or was last) dispatched on; ``None``
        #: under the sequential model.
        self.core: Optional[int] = None
        #: Cycle threshold at which the preemptive scheduler considers
        #: a quantum expired (consulted at safepoints only; never under
        #: the sequential model).
        self.preempt_at = 0
        #: What a BLOCKED/WAITING thread waits for:
        #: ``("monitor", obj)`` / ``("join", thread)`` /
        #: ``("drain", None)`` / ``("io", device)``; ``None`` when
        #: runnable.
        self.waiting_on = None
        #: Off-CPU cycles spent blocked on simulated devices.  Kept
        #: strictly apart from :attr:`cycles_total` (the CPU counter
        #: PCL reads): blocked time elapses on a device timeline, not
        #: on this thread's CPU clock.
        self.blocked_total = 0
        #: Ground truth: blocked cycles by device name.
        self.blocked_by_device: Dict[str, int] = {}
        #: Host-side PC samplers (shared list owned by ThreadManager);
        #: empty in normal runs — see repro.agents.sampling.
        self._samplers = samplers if samplers is not None else []

    def charge(self, cycles: int, tag: ChargeTag) -> None:
        """Consume ``cycles`` on this thread, tagged with ground truth."""
        self.cycles_total += cycles
        self.cycles_by_tag[tag] += cycles
        if self._samplers:
            for sampler in self._samplers:
                extra = sampler.on_charge(self, cycles, tag)
                if extra:
                    # interrupt handling itself: VM time, applied
                    # directly so it cannot re-trigger sampling
                    self.cycles_total += extra
                    self.cycles_by_tag[ChargeTag.VM] += extra

    def block(self, cycles: int, device: str) -> None:
        """Account ``cycles`` of off-CPU time blocked on ``device``.

        Deliberately *not* routed through :meth:`charge`: blocked time
        never advances :attr:`cycles_total`, never carries a
        :class:`ChargeTag`, and never drives PC samplers — the CPU is
        idle (or running someone else) while this thread waits.
        """
        self.blocked_total += cycles
        self.blocked_by_device[device] = \
            self.blocked_by_device.get(device, 0) + cycles

    @property
    def wall_cycles(self) -> int:
        """This thread's wall clock: CPU cycles plus blocked cycles."""
        return self.cycles_total + self.blocked_total

    @property
    def depth(self) -> int:
        return len(self.frames)

    def __repr__(self):  # pragma: no cover - debug aid
        return (f"<SimThread #{self.thread_id} {self.name!r} "
                f"{self.state.value} cycles={self.cycles_total}>")


class ThreadManager:
    """Registry and run queue for simulated threads."""

    def __init__(self):
        self._threads: List[SimThread] = []
        self._queue: Deque[SimThread] = deque()
        #: ``id(java_object) -> SimThread`` so ``Thread.join`` does not
        #: scan the registry per call (hot under N cores).
        self._by_java_object: Dict[int, SimThread] = {}
        self._next_id = 1
        self.current: Optional[SimThread] = None
        #: Host-side PC samplers shared by every thread (see
        #: repro.agents.sampling.SamplingProfiler.install).
        self.samplers: List = []

    def create(self, name: str, java_object=None) -> SimThread:
        thread = SimThread(self._next_id, name, java_object,
                           samplers=self.samplers)
        self._next_id += 1
        self._threads.append(thread)
        if java_object is not None:
            self._by_java_object[id(java_object)] = thread
        return thread

    def enqueue(self, thread: SimThread) -> None:
        """Queue a NEW thread for execution (``Thread.start``)."""
        if thread.state is not ThreadState.NEW:
            raise VMError(
                f"thread {thread.name!r} started twice "
                f"(state {thread.state.value})")
        thread.state = ThreadState.QUEUED
        self._queue.append(thread)

    def dequeue(self, thread: Optional[SimThread] = None
                ) -> Optional[SimThread]:
        """Pop ``thread`` (or the oldest queued thread) from the queue."""
        if thread is None:
            return self._queue.popleft() if self._queue else None
        try:
            self._queue.remove(thread)
        except ValueError:
            return None
        return thread

    def find_by_java_object(self, java_object) -> Optional[SimThread]:
        return self._by_java_object.get(id(java_object))

    @property
    def all_threads(self) -> List[SimThread]:
        return list(self._threads)

    @property
    def has_queued(self) -> bool:
        return bool(self._queue)

    def total_cycles(self) -> int:
        """Sum of all per-thread counters (= total CPU time across the
        simulated cores; equal to the virtual wall clock when there is
        a single CPU)."""
        return sum(t.cycles_total for t in self._threads)

    def total_by_tag(self) -> Dict[ChargeTag, int]:
        """Ground-truth cycle totals across all threads."""
        totals = {tag: 0 for tag in SimThread._HPC_TAGS}
        for thread in self._threads:
            for tag, cycles in thread.cycles_by_tag.items():
                totals[tag] += cycles
        return totals

    def total_blocked(self) -> int:
        """Sum of off-CPU (device-blocked) cycles across all threads."""
        return sum(t.blocked_total for t in self._threads)

    def total_blocked_by_device(self) -> Dict[str, int]:
        """Blocked-cycle totals per device across all threads."""
        totals: Dict[str, int] = {}
        for thread in self._threads:
            for device, cycles in thread.blocked_by_device.items():
                totals[device] = totals.get(device, 0) + cycles
        return totals
