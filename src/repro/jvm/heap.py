"""Heap: object and array allocation, string interning, statistics."""

from __future__ import annotations

from typing import Dict

from repro.bytecode.opcodes import ArrayKind
from repro.errors import VMError
from repro.jvm.values import JArray, JObject

STRING_CLASS = "java.lang.String"


class Heap:
    """Allocates simulated objects.  Purely bookkeeping — there is no
    garbage collector (workloads are sized to fit comfortably in host
    memory; the paper's phenomena do not involve GC)."""

    def __init__(self):
        self._next_id = 1
        self._intern_table: Dict[str, JObject] = {}
        self.objects_allocated = 0
        self.arrays_allocated = 0
        self.strings_allocated = 0

    def _take_id(self) -> int:
        object_id = self._next_id
        self._next_id += 1
        return object_id

    def alloc_object(self, loaded_class) -> JObject:
        """Allocate an instance of ``loaded_class`` with default fields."""
        fields = dict(loaded_class.instance_field_defaults)
        self.objects_allocated += 1
        return JObject(loaded_class, fields, self._take_id())

    def alloc_array(self, kind: ArrayKind, length: int) -> JArray:
        """Allocate an array.  Raises for negative lengths (the
        interpreter converts that into ``NegativeArraySizeException``)."""
        if length < 0:
            raise VMError(f"negative array length {length}")
        self.arrays_allocated += 1
        return JArray(kind, length, self._take_id())

    def new_string(self, string_class, value: str) -> JObject:
        """Allocate a ``java.lang.String`` with payload ``value``."""
        if string_class.name != STRING_CLASS:
            raise VMError(
                f"new_string requires {STRING_CLASS}, got "
                f"{string_class.name}")
        fields = dict(string_class.instance_field_defaults)
        self.strings_allocated += 1
        return JObject(string_class, fields, self._take_id(),
                       string_value=value)

    def intern(self, string_class, value: str) -> JObject:
        """Return the canonical string object for ``value``."""
        interned = self._intern_table.get(value)
        if interned is None:
            interned = self.new_string(string_class, value)
            self._intern_table[value] = interned
        return interned

    @property
    def intern_table_size(self) -> int:
        return len(self._intern_table)

    def reset(self) -> None:
        """Forget per-run allocations; keep the intern table.

        Used by the warm-VM service between requests.  The heap is pure
        bookkeeping (objects live as long as something references them),
        so resetting **in place** is what matters: template-tier code
        binds this very ``Heap`` instance into its generated closures,
        and interned strings are bound by identity at ``LDC`` sites —
        both must survive a reset.  Allocation counters restart, so a
        warm request observes the same allocation statistics as the
        first; ``object_id``s restart too.  They are debug labels with
        one exception: the race sanitizer keys monitor release clocks
        by ``object_id`` — safe only because warm-pool VMs are always
        built with ``sanitize="off"`` (a sanitizing request runs cold,
        like ``cores > 1``).
        """
        self._next_id = 1
        self.objects_allocated = 0
        self.arrays_allocated = 0
        self.strings_allocated = 0
