"""repro — a reproduction of *"A Quantitative Evaluation of the
Contribution of Native Code to Java Workloads"* (Binder, Hulaas, Moret;
IISWC 2006).

The package contains a deterministic JVM simulator (bytecode ISA,
interpreter, JIT model, JNI layer, JVMTI layer, PCL cycle counters),
the paper's two profiling agents (SPA and IPA), the bytecode
instrumentation toolchain, synthetic SPEC JVM98 / JBB2005 workloads,
and a benchmark harness that regenerates the paper's Tables I and II.

Quickstart::

    from repro import AgentSpec, RunConfig, execute, get_workload

    workload = get_workload("compress")
    baseline = execute(workload, RunConfig(agent=AgentSpec.none()))
    profiled = execute(workload, RunConfig(agent=AgentSpec.ipa()))
    print(profiled.agent_report["percent_native"])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.errors import ReproError
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.overhead import Table1, build_table1
from repro.harness.report import render_table1, render_table2
from repro.harness.runner import RunResult, execute, execute_many
from repro.harness.statistics import Table2, build_table2
from repro.launcher import create_vm, runtime_archive
from repro.observability import (
    ObservabilityConfig,
    chrome_trace_doc,
    folded_lines,
    write_chrome_trace,
    write_folded,
)
from repro.workloads import (
    Workload,
    full_suite,
    get_workload,
    jvm98_suite,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "AgentSpec",
    "RunConfig",
    "RunResult",
    "execute",
    "execute_many",
    "Table1",
    "Table2",
    "build_table1",
    "build_table2",
    "render_table1",
    "render_table2",
    "create_vm",
    "runtime_archive",
    "ObservabilityConfig",
    "chrome_trace_doc",
    "folded_lines",
    "write_chrome_trace",
    "write_folded",
    "Workload",
    "full_suite",
    "get_workload",
    "jvm98_suite",
    "workload_names",
    "__version__",
]
