"""VM factory: wires a :class:`~repro.jvm.machine.JavaVM` with the
runtime class library and the core native library — the equivalent of
pointing a JVM at its ``rt.jar`` and JDK native libraries.
"""

from __future__ import annotations

from typing import Optional

from repro.classfile.archive import ClassArchive
from repro.jni.stdlib import build_java_library
from repro.jvm.machine import JavaVM, VMConfig
from repro.jvm.runtime_lib import build_runtime_archive

_runtime_archive_cache: Optional[ClassArchive] = None


def runtime_archive() -> ClassArchive:
    """The (cached) serialized runtime library.

    The archive is read-only for class loading, so one instance is
    shared across VMs; instrumenters copy entries rather than mutating.
    """
    global _runtime_archive_cache
    if _runtime_archive_cache is None:
        _runtime_archive_cache = build_runtime_archive()
    return _runtime_archive_cache


def create_vm(config: Optional[VMConfig] = None,
              with_runtime: bool = True) -> JavaVM:
    """Create a VM with the standard runtime and core natives installed."""
    vm = JavaVM(config)
    if with_runtime:
        vm.loader.add_boot_archive(runtime_archive())
        vm.native_registry.register(build_java_library(), preload=True)
    return vm
