"""JNI symbol-name mangling.

A native method ``pkg.Cls.foo`` resolves to the library symbol
``Java_pkg_Cls_foo`` (dots become underscores).  Unlike real JNI we do
not escape embedded underscores — simulator method names that matter for
resolution avoid ambiguous underscores, and instrumentation prefixes are
*stripped before mangling* (the JVMTI retry), so no escaping is needed.
"""

from __future__ import annotations


def mangle(class_name: str, method_name: str) -> str:
    """Return the library symbol for a native method."""
    return f"Java_{class_name.replace('.', '_')}_{method_name}"
