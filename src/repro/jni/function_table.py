"""The JNI environment and function table.

``JNIEnv`` is what native implementations receive: utilities for
touching the simulated heap, plus the **function table** through which
all native-to-Java method invocation flows.  The table contains the full
JNI matrix of 90 invocation functions::

    Call{,Static,Nonvirtual}{Object,Boolean,Byte,Char,Short,Int,Long,
                             Float,Double,Void}Method{,A,V}

(3 dispatch kinds x 10 return types x 3 argument-passing variants —
the "A"/"V" variants take the same Python argument tuple here, but each
has its own table slot because the paper's IPA intercepts every slot).

JVMTI *JNI function interception* swaps table entries; native code must
therefore always call through :meth:`JNIEnv.call_jni` (the typed helpers
like :meth:`call_int_method` do) so that interception wrappers are hit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.bytecode.opcodes import ArrayKind
from repro.errors import JNIError
from repro.jvm.costmodel import ChargeTag
from repro.jvm.values import JArray, JObject

_RETURN_TYPES = ("Object", "Boolean", "Byte", "Char", "Short", "Int",
                 "Long", "Float", "Double", "Void")
_DISPATCH_KINDS = ("", "Static", "Nonvirtual")
_VARIANTS = ("", "A", "V")

#: All 90 JNI method-invocation function names.
CALL_FUNCTION_NAMES: Tuple[str, ...] = tuple(
    f"Call{kind}{ret}Method{variant}"
    for kind in _DISPATCH_KINDS
    for ret in _RETURN_TYPES
    for variant in _VARIANTS
)


class JNIFunctionTable:
    """The (interceptable) JNI function table of one VM."""

    def __init__(self, vm):
        self._vm = vm
        self._functions: Dict[str, Callable] = {}
        for name in CALL_FUNCTION_NAMES:
            kind, void = _parse_call_name(name)
            self._functions[name] = _make_call_function(kind, void)

    def get(self, name: str) -> Callable:
        try:
            return self._functions[name]
        except KeyError:
            raise JNIError(f"no JNI function {name!r}")

    def snapshot(self) -> Dict[str, Callable]:
        """A copy of the current table (JVMTI ``GetJNIFunctionTable``)."""
        return dict(self._functions)

    def replace(self, name: str, fn: Callable) -> Callable:
        """Swap one entry; returns the previous implementation."""
        if name not in self._functions:
            raise JNIError(f"no JNI function {name!r}")
        previous = self._functions[name]
        self._functions[name] = fn
        return previous

    def install(self, table: Dict[str, Callable]) -> None:
        """Install a full table (JVMTI ``SetJNIFunctionTable``)."""
        unknown = set(table) - set(self._functions)
        if unknown:
            raise JNIError(f"unknown JNI functions {sorted(unknown)}")
        self._functions.update(table)

    @property
    def names(self) -> List[str]:
        return list(self._functions)


def _parse_call_name(name: str) -> Tuple[str, bool]:
    body = name[len("Call"):]
    if body.endswith(("MethodA", "MethodV")):
        body = body[:-len("MethodA")]
    else:
        body = body[:-len("Method")]
    for kind in ("Static", "Nonvirtual"):
        if body.startswith(kind):
            return kind, body[len(kind):] == "Void"
    return "", body == "Void"


def _make_call_function(kind: str, void: bool) -> Callable:
    """Build the shared implementation for one table slot."""

    def call(env: "JNIEnv", *call_args):
        vm = env.vm
        thread = env.thread
        thread.charge(vm.cost_model.jni_call_base, ChargeTag.NATIVE)
        vm.jni_invocations += 1
        if kind == "Static":
            method_id = call_args[0]
            args = list(call_args[1:])
            if not method_id.info.is_static:
                raise JNIError(
                    f"CallStatic* on instance method "
                    f"{method_id.qualified_name}")
            target = method_id
        else:
            receiver = call_args[0]
            method_id = call_args[1]
            args = [receiver] + list(call_args[2:])
            if method_id.info.is_static:
                raise JNIError(
                    f"Call*Method on static method "
                    f"{method_id.qualified_name}")
            if receiver is None:
                env.throw("java.lang.NullPointerException",
                          "JNI call on null receiver")
            if kind == "Nonvirtual":
                target = method_id
            else:
                dispatched = receiver.jclass.resolve_method(
                    method_id.info.name, method_id.info.descriptor)
                target = dispatched if dispatched is not None \
                    else method_id
        result = vm.interpreter.call_method(thread, target, args)
        return None if void else result

    return call


class JNIEnv:
    """The environment handed to native implementations.

    One instance is bound to (vm, thread); create via
    :meth:`repro.jvm.machine.JavaVM.jni_env`.
    """

    __slots__ = ("vm", "thread", "native_name")

    def __init__(self, vm, thread):
        self.vm = vm
        self.thread = thread
        #: Qualified ``CLASS.METHOD`` of the native this env was handed
        #: to (set by the interpreter's invoke stub); None for envs used
        #: outside a native frame.  Keys causal rescaling and
        #: blocked-time attribution.
        self.native_name: Optional[str] = None

    # -- accounting -----------------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Consume ``cycles`` of native execution time."""
        causal = self.vm.causal
        if causal is not None and self.native_name is not None:
            cycles = causal.cpu_charge(self.native_name, cycles)
        self.thread.charge(cycles, ChargeTag.NATIVE)

    def charge_blocked(self, device: str, cycles: int) -> int:
        """Elapse ``cycles`` of service time on ``device`` with the
        calling thread blocked (off-CPU) until the device completes.

        Never touches the thread's CPU cycle counter: the service time
        lands on the device timeline, the wait on the thread's blocked
        counter.  Under the preemptive scheduler the core is handed to
        another runnable thread for the gap.  Returns the blocked
        cycles.
        """
        vm = self.vm
        name = self.native_name
        causal = vm.causal
        if causal is not None and name is not None:
            cycles = causal.device_charge(name, cycles)
        scheduler = vm.scheduler
        if scheduler is None:
            blocked = vm.block_on_device(self.thread, device, cycles,
                                         label=name)
            if blocked:
                vm.thread_state_instant(self.thread, "BLOCKED")
                vm.thread_state_instant(self.thread, "RUNNING")
        else:
            blocked = scheduler.block_io(self.thread, device, cycles,
                                         label=name)
        if blocked and name is not None:
            vm.blocked_by_native[name] = \
                vm.blocked_by_native.get(name, 0) + blocked
        return blocked

    # -- class/method lookup ----------------------------------------------------

    def find_class(self, name: str):
        """JNI ``FindClass``."""
        self.charge(60)
        return self.vm.loader.load(name)

    def get_method_id(self, class_name: str, name: str, descriptor: str):
        """JNI ``GetMethodID`` (instance methods)."""
        self.charge(40)
        method = self.vm.loader.load(class_name).resolve_method(
            name, descriptor)
        if method is None or method.info.is_static:
            raise JNIError(
                f"GetMethodID: no instance method "
                f"{class_name}.{name}{descriptor}")
        return method

    def get_static_method_id(self, class_name: str, name: str,
                             descriptor: str):
        """JNI ``GetStaticMethodID``."""
        self.charge(40)
        method = self.vm.loader.load(class_name).resolve_method(
            name, descriptor)
        if method is None or not method.info.is_static:
            raise JNIError(
                f"GetStaticMethodID: no static method "
                f"{class_name}.{name}{descriptor}")
        return method

    # -- invocation ---------------------------------------------------------------

    def call_jni(self, function_name: str, *args):
        """Invoke a JNI function table entry by name (interceptable)."""
        fn = self.vm.jni_table.get(function_name)
        return fn(self, *args)

    def call_int_method(self, obj, method_id, *args):
        return self.call_jni("CallIntMethod", obj, method_id, *args)

    def call_object_method(self, obj, method_id, *args):
        return self.call_jni("CallObjectMethod", obj, method_id, *args)

    def call_void_method(self, obj, method_id, *args):
        return self.call_jni("CallVoidMethod", obj, method_id, *args)

    def call_static_int_method(self, method_id, *args):
        return self.call_jni("CallStaticIntMethod", method_id, *args)

    def call_static_object_method(self, method_id, *args):
        return self.call_jni("CallStaticObjectMethod", method_id, *args)

    def call_static_void_method(self, method_id, *args):
        return self.call_jni("CallStaticVoidMethod", method_id, *args)

    def call_nonvirtual_void_method(self, obj, method_id, *args):
        return self.call_jni("CallNonvirtualVoidMethod", obj, method_id,
                             *args)

    # -- strings --------------------------------------------------------------------

    def new_string(self, value: str) -> JObject:
        """JNI ``NewStringUTF``: allocate a fresh (non-interned) string."""
        self.charge(30 + len(value) // 4)
        string_class = self.vm.loader.load("java.lang.String")
        return self.vm.heap.new_string(string_class, value)

    def get_string(self, jstring: Optional[JObject]) -> str:
        """JNI ``GetStringUTFChars``."""
        if jstring is None:
            self.throw("java.lang.NullPointerException", "null string")
        if jstring.string_value is None:
            raise JNIError(f"{jstring!r} is not a java.lang.String")
        self.charge(20 + len(jstring.string_value) // 4)
        return jstring.string_value

    def intern_string(self, value: str) -> JObject:
        return self.vm.intern_string(value)

    # -- arrays ----------------------------------------------------------------------

    def new_array(self, kind: ArrayKind, length: int) -> JArray:
        self.charge(30 + length // 8)
        return self.vm.heap.alloc_array(kind, length)

    def array_region(self, array: JArray, start: int, length: int) -> list:
        """JNI ``Get<Type>ArrayRegion`` (returns a Python list copy)."""
        if array is None:
            self.throw("java.lang.NullPointerException", "null array")
        if start < 0 or length < 0 or start + length > len(array.data):
            self.throw("java.lang.ArrayIndexOutOfBoundsException",
                       f"region [{start}, {start + length})")
        self.charge(10 + length // 4)
        return array.data[start:start + length]

    def set_array_region(self, array: JArray, start: int,
                         values: list) -> None:
        """JNI ``Set<Type>ArrayRegion``."""
        if array is None:
            self.throw("java.lang.NullPointerException", "null array")
        if start < 0 or start + len(values) > len(array.data):
            self.throw("java.lang.ArrayIndexOutOfBoundsException",
                       f"region [{start}, {start + len(values)})")
        self.charge(10 + len(values) // 4)
        normalize = array.normalize
        array.data[start:start + len(values)] = [
            normalize(v) for v in values]

    # -- objects and exceptions -----------------------------------------------------------

    def alloc_object(self, loaded_class) -> JObject:
        """JNI ``AllocObject`` (no constructor call)."""
        self.charge(40)
        return self.vm.heap.alloc_object(loaded_class)

    def throw(self, class_name: str, message: str = ""):
        """Throw a Java exception from native code (does not return)."""
        self.vm.interpreter.throw(self.thread, class_name, message)
