"""The core native library ("java") — the simulator's JDK natives.

Every function here is the implementation of a ``native`` method
declared by the runtime library (:mod:`repro.jvm.runtime_lib`).  As in
the real JDK, the natives cluster around: array/memory primitives
(``System.arraycopy``), string internals, math, I/O streams, CRC32,
threads, and reflection-ish odds and ends.  Each implementation charges
simulated cycles proportional to the work it models.

The library is **preloaded** (linked at VM creation), mirroring how core
JDK natives are available before any ``System.loadLibrary`` call.
"""

from __future__ import annotations

import math
import zlib

from repro.bytecode.opcodes import ArrayKind
from repro.errors import JNIError
from repro.jni.library import NativeLibrary
from repro.jvm.values import JArray, JObject

_IOE = "java.io.IOException"
_FNF = "java.io.FileNotFoundException"


def _string_of(env, obj) -> str:
    if obj is None:
        env.throw("java.lang.NullPointerException", "null string")
    value = getattr(obj, "string_value", None)
    if value is None:
        raise JNIError(f"expected a java.lang.String, got {obj!r}")
    return value


def build_java_library() -> NativeLibrary:
    """Construct the core native library."""
    lib = NativeLibrary("java")

    # -- java.lang.Object ----------------------------------------------------

    @lib.native_method("java.lang.Object", "hashCode")
    def object_hash_code(env, this):
        env.charge(90)
        return this.object_id

    @lib.native_method("java.lang.Object", "toString")
    def object_to_string(env, this):
        env.charge(180)
        return env.new_string(
            f"{this.class_name}@{this.object_id:x}")

    # -- java.lang.String ----------------------------------------------------------

    @lib.native_method("java.lang.String", "length")
    def string_length(env, this):
        env.charge(120)
        return len(_string_of(env, this))

    @lib.native_method("java.lang.String", "charAt")
    def string_char_at(env, this, index):
        value = _string_of(env, this)
        env.charge(110)
        if index < 0 or index >= len(value):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      f"string index {index}")
        return ord(value[index])

    @lib.native_method("java.lang.String", "equals")
    def string_equals(env, this, other):
        value = _string_of(env, this)
        other_value = getattr(other, "string_value", None)
        env.charge(180 + min(len(value),
                             len(other_value or "")) // 2)
        return 1 if value == other_value else 0

    @lib.native_method("java.lang.String", "hashCode")
    def string_hash_code(env, this):
        value = _string_of(env, this)
        env.charge(160 + len(value))
        h = 0
        for ch in value:
            h = (h * 31 + ord(ch)) & 0xFFFFFFFF
        if h >= 1 << 31:
            h -= 1 << 32
        return h

    @lib.native_method("java.lang.String", "intern")
    def string_intern(env, this):
        value = _string_of(env, this)
        env.charge(260)
        return env.intern_string(value)

    @lib.native_method("java.lang.String", "substring")
    def string_substring(env, this, begin, end):
        value = _string_of(env, this)
        if begin < 0 or end > len(value) or begin > end:
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      f"substring [{begin}, {end})")
        env.charge(220 + (end - begin) // 2)
        return env.new_string(value[begin:end])

    @lib.native_method("java.lang.String", "concat")
    def string_concat(env, this, other):
        value = _string_of(env, this)
        other_value = _string_of(env, other)
        env.charge(240 + (len(value) + len(other_value)) // 2)
        return env.new_string(value + other_value)

    @lib.native_method("java.lang.String", "compareTo")
    def string_compare_to(env, this, other):
        value = _string_of(env, this)
        other_value = _string_of(env, other)
        env.charge(190 + min(len(value), len(other_value)) // 2)
        if value < other_value:
            return -1
        return 1 if value > other_value else 0

    @lib.native_method("java.lang.String", "indexOf")
    def string_index_of(env, this, ch, from_index):
        value = _string_of(env, this)
        env.charge(200 + len(value) // 2)
        return value.find(chr(ch), max(0, from_index))

    @lib.native_method("java.lang.String", "getChars")
    def string_get_chars(env, this, src_begin, src_end, dst, dst_begin):
        value = _string_of(env, this)
        if src_begin < 0 or src_end > len(value) or src_begin > src_end:
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      f"getChars [{src_begin}, {src_end})")
        count = src_end - src_begin
        env.charge(260 + count // 2)
        env.set_array_region(
            dst, dst_begin,
            [ord(c) for c in value[src_begin:src_end]])
        return None

    @lib.native_method("java.lang.String", "toCharArray")
    def string_to_char_array(env, this):
        value = _string_of(env, this)
        env.charge(190 + len(value) // 2)
        array = env.vm.heap.alloc_array(ArrayKind.CHAR, len(value))
        array.data[:] = [ord(c) for c in value]
        return array

    @lib.native_method("java.lang.String", "fromChars")
    def string_from_chars(env, chars, offset, count):
        if chars is None:
            env.throw("java.lang.NullPointerException", "null chars")
        if offset < 0 or count < 0 or offset + count > len(chars.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      f"fromChars [{offset}, {offset + count})")
        env.charge(210 + count // 2)
        return env.new_string(
            "".join(chr(c) for c in chars.data[offset:offset + count]))

    @lib.native_method("java.lang.String", "valueOfInt")
    def string_value_of_int(env, value):
        env.charge(240)
        return env.new_string(str(value))

    # -- java.lang.System ---------------------------------------------------------------

    @lib.native_method("java.lang.System", "arraycopy")
    def system_arraycopy(env, src, src_pos, dst, dst_pos, length):
        if src is None or dst is None:
            env.throw("java.lang.NullPointerException", "arraycopy")
        if not isinstance(src, JArray) or not isinstance(dst, JArray):
            env.throw("java.lang.ArrayStoreException",
                      "arraycopy of non-arrays")
        if (length < 0 or src_pos < 0 or dst_pos < 0
                or src_pos + length > len(src.data)
                or dst_pos + length > len(dst.data)):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      f"arraycopy length {length}")
        env.charge(220 + length // 2)
        dst.data[dst_pos:dst_pos + length] = \
            src.data[src_pos:src_pos + length]
        return None

    @lib.native_method("java.lang.System", "currentTimeMillis")
    def system_current_time_millis(env):
        env.charge(120)
        total = env.vm.threads.total_cycles()
        return total * 1000 // env.vm.config.clock_hz

    @lib.native_method("java.lang.System", "loadLibrary0")
    def system_load_library(env, name):
        env.charge(2500)
        env.vm.native_registry.load_library(_string_of(env, name))
        return None

    @lib.native_method("java.lang.System", "initOut")
    def system_init_out(env):
        env.charge(150)
        stream_class = env.find_class("java.io.PrintStream")
        return env.vm.heap.alloc_object(stream_class)

    @lib.native_method("java.lang.System", "identityHashCode")
    def system_identity_hash_code(env, obj):
        env.charge(60)
        return 0 if obj is None else obj.object_id

    # -- java.lang.Math --------------------------------------------------------------------

    @lib.native_method("java.lang.Math", "sqrt")
    def math_sqrt(env, value):
        env.charge(130)
        if value < 0:
            return float("nan")
        return math.sqrt(value)

    @lib.native_method("java.lang.Math", "sin")
    def math_sin(env, value):
        env.charge(170)
        return math.sin(value)

    @lib.native_method("java.lang.Math", "cos")
    def math_cos(env, value):
        env.charge(170)
        return math.cos(value)

    @lib.native_method("java.lang.Math", "log")
    def math_log(env, value):
        env.charge(190)
        if value <= 0:
            return float("nan") if value < 0 else float("-inf")
        return math.log(value)

    @lib.native_method("java.lang.Math", "pow")
    def math_pow(env, base, exponent):
        env.charge(260)
        return float(base) ** float(exponent)

    @lib.native_method("java.lang.Math", "floor")
    def math_floor(env, value):
        env.charge(90)
        return float(math.floor(value))

    # -- java.lang.Integer --------------------------------------------------------------------

    @lib.native_method("java.lang.Integer", "parseInt")
    def integer_parse_int(env, text):
        value = _string_of(env, text)
        env.charge(260 + 2 * len(value))
        try:
            return int(value.strip())
        except ValueError:
            env.throw("java.lang.NumberFormatException", value)

    @lib.native_method("java.lang.Integer", "toString")
    def integer_to_string(env, value):
        env.charge(240)
        return env.new_string(str(value))

    # -- java.lang.Float -----------------------------------------------------------------------

    @lib.native_method("java.lang.Float", "floatToIntBits")
    def float_to_int_bits(env, value):
        env.charge(60)
        import struct
        bits = struct.unpack(">i", struct.pack(">f", value))[0]
        return bits

    @lib.native_method("java.lang.Float", "intBitsToFloat")
    def int_bits_to_float(env, bits):
        env.charge(60)
        import struct
        return struct.unpack(">f", struct.pack(">i", bits))[0]

    # -- java.lang.Thread --------------------------------------------------------------------------

    @lib.native_method("java.lang.Thread", "start0")
    def thread_start0(env, this):
        env.charge(350)
        vm = env.vm
        name_obj = this.fields.get("name")
        name = getattr(name_obj, "string_value", None) or \
            f"Thread-{this.object_id}"
        sim = vm.threads.create(name, java_object=this)
        vm.start_thread(sim)
        return None

    @lib.native_method("java.lang.Thread", "join")
    def thread_join(env, this):
        env.charge(220)
        sim = env.vm.threads.find_by_java_object(this)
        if sim is not None:
            env.vm.join_thread(sim)
        return None

    # -- java.io streams ------------------------------------------------------------------------------

    @lib.native_method("java.io.FileInputStream", "open0")
    def fis_open(env, this, name):
        env.charge(5000)
        file_name = _string_of(env, name)
        if file_name not in env.vm.files:
            env.throw(_FNF, file_name)
        this.fields["name"] = name
        this.fields["pos"] = 0
        return None

    @lib.native_method("java.io.FileInputStream", "readBytes")
    def fis_read_bytes(env, this, buffer, offset, length):
        name = _string_of(env, this.fields.get("name"))
        data = env.vm.files.get(name)
        if data is None:
            env.throw(_IOE, f"closed: {name}")
        pos = this.fields["pos"]
        if pos >= len(data):
            env.charge(800)
            return -1
        count = min(length, len(data) - pos)
        if offset < 0 or length < 0 or \
                offset + length > len(buffer.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      "read buffer")
        env.charge(4500 + count // 2)
        chunk = data[pos:pos + count]
        normalize = buffer.normalize
        buffer.data[offset:offset + count] = [
            normalize(b) for b in chunk]
        this.fields["pos"] = pos + count
        return count

    @lib.native_method("java.io.FileInputStream", "read0")
    def fis_read0(env, this):
        name = _string_of(env, this.fields.get("name"))
        data = env.vm.files.get(name)
        if data is None:
            env.throw(_IOE, f"closed: {name}")
        pos = this.fields["pos"]
        env.charge(850)
        if pos >= len(data):
            return -1
        this.fields["pos"] = pos + 1
        return data[pos]

    @lib.native_method("java.io.FileInputStream", "available")
    def fis_available(env, this):
        name = _string_of(env, this.fields.get("name"))
        data = env.vm.files.get(name)
        if data is None:
            env.throw(_IOE, f"closed: {name}")
        env.charge(400)
        return max(0, len(data) - this.fields["pos"])

    @lib.native_method("java.io.FileInputStream", "close")
    def fis_close(env, this):
        env.charge(600)
        return None

    @lib.native_method("java.io.FileOutputStream", "open0")
    def fos_open(env, this, name):
        env.charge(5200)
        file_name = _string_of(env, name)
        env.vm.files[file_name] = bytearray()
        this.fields["name"] = name
        return None

    @lib.native_method("java.io.FileOutputStream", "writeBytes")
    def fos_write_bytes(env, this, buffer, offset, length):
        name = _string_of(env, this.fields.get("name"))
        sink = env.vm.files.get(name)
        if sink is None or not isinstance(sink, bytearray):
            env.throw(_IOE, f"not open for write: {name}")
        if offset < 0 or length < 0 or \
                offset + length > len(buffer.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      "write buffer")
        env.charge(4500 + length // 2)
        sink.extend((b & 0xFF) for b in
                    buffer.data[offset:offset + length])
        return None

    @lib.native_method("java.io.FileOutputStream", "close")
    def fos_close(env, this):
        env.charge(650)
        return None

    # -- blocking device natives (DESIGN.md §13) ----------------------------
    # CPU marshalling is charged with env.charge (NATIVE tag, on the
    # caller's clock); the device service time goes through
    # env.charge_blocked and elapses on the per-device timeline while
    # the thread is parked.  java.io.* stream natives above stay fully
    # on-CPU — the paper's workloads never block.

    @lib.native_method("java.io.RandomAccessFile", "open0")
    def raf_open(env, this, name):
        env.charge(900)
        file_name = _string_of(env, name)
        vm = env.vm
        data = vm.files.get(file_name)
        if data is None:
            vm.files[file_name] = bytearray()
        elif not isinstance(data, bytearray):
            vm.files[file_name] = bytearray(data)
        this.fields["name"] = name
        this.fields["pos"] = 0
        cm = vm.cost_model
        env.charge_blocked("disk", cm.disk_access_cycles)
        return None

    @lib.native_method("java.io.RandomAccessFile", "seek0")
    def raf_seek(env, this, pos):
        env.charge(250)
        if pos < 0:
            env.throw(_IOE, f"negative seek {pos}")
        this.fields["pos"] = pos
        return None

    @lib.native_method("java.io.RandomAccessFile", "readBytes")
    def raf_read_bytes(env, this, buffer, offset, length):
        name = _string_of(env, this.fields.get("name"))
        data = env.vm.files.get(name)
        if data is None:
            env.throw(_IOE, f"closed: {name}")
        if offset < 0 or length < 0 or \
                offset + length > len(buffer.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      "read buffer")
        pos = this.fields["pos"]
        cm = env.vm.cost_model
        if pos >= len(data):
            env.charge(300)
            env.charge_blocked("disk", cm.disk_access_cycles)
            return -1
        count = min(length, len(data) - pos)
        env.charge(700 + count // 2)
        env.charge_blocked(
            "disk",
            cm.disk_access_cycles + count // cm.disk_byte_divisor)
        chunk = data[pos:pos + count]
        normalize = buffer.normalize
        buffer.data[offset:offset + count] = [
            normalize(b) for b in chunk]
        this.fields["pos"] = pos + count
        return count

    @lib.native_method("java.io.RandomAccessFile", "writeBytes")
    def raf_write_bytes(env, this, buffer, offset, length):
        name = _string_of(env, this.fields.get("name"))
        data = env.vm.files.get(name)
        if data is None or not isinstance(data, bytearray):
            env.throw(_IOE, f"closed: {name}")
        if offset < 0 or length < 0 or \
                offset + length > len(buffer.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      "write buffer")
        pos = this.fields["pos"]
        env.charge(700 + length // 2)
        cm = env.vm.cost_model
        env.charge_blocked(
            "disk",
            cm.disk_access_cycles + length // cm.disk_byte_divisor)
        if pos > len(data):
            data.extend(b"\x00" * (pos - len(data)))
        chunk = bytes((b & 0xFF) for b in
                      buffer.data[offset:offset + length])
        data[pos:pos + length] = chunk
        this.fields["pos"] = pos + length
        return None

    @lib.native_method("java.io.RandomAccessFile", "length0")
    def raf_length(env, this):
        name = _string_of(env, this.fields.get("name"))
        data = env.vm.files.get(name)
        if data is None:
            env.throw(_IOE, f"closed: {name}")
        env.charge(300)
        return len(data)

    @lib.native_method("java.io.RandomAccessFile", "close0")
    def raf_close(env, this):
        env.charge(400)
        return None

    @lib.native_method("java.net.Socket", "connect0")
    def socket_connect(env, this, host, port):
        env.charge(1200)
        _string_of(env, host)  # null check, as a real connect would
        this.fields["host"] = host
        this.fields["port"] = port
        this.fields["pending"] = []
        cm = env.vm.cost_model
        env.charge_blocked("net", cm.net_rtt_cycles)
        return None

    @lib.native_method("java.net.Socket", "send0")
    def socket_send(env, this, buffer, offset, length):
        pending = this.fields.get("pending")
        if pending is None:
            env.throw(_IOE, "socket not connected")
        if offset < 0 or length < 0 or \
                offset + length > len(buffer.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      "send buffer")
        env.charge(500 + length // 2)
        cm = env.vm.cost_model
        env.charge_blocked(
            "net",
            cm.net_rtt_cycles // 2 + length // cm.net_byte_divisor)
        # the simulated peer is an echo server: sent bytes become
        # receivable
        pending.extend(b & 0xFF for b in
                       buffer.data[offset:offset + length])
        return None

    @lib.native_method("java.net.Socket", "recv0")
    def socket_recv(env, this, buffer, offset, length):
        pending = this.fields.get("pending")
        if pending is None:
            env.throw(_IOE, "socket not connected")
        if offset < 0 or length < 0 or \
                offset + length > len(buffer.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      "recv buffer")
        cm = env.vm.cost_model
        if not pending:
            env.charge(300)
            env.charge_blocked("net", cm.net_rtt_cycles)
            return -1
        count = min(length, len(pending))
        env.charge(500 + count // 2)
        env.charge_blocked(
            "net",
            cm.net_rtt_cycles // 2 + count // cm.net_byte_divisor)
        chunk = pending[:count]
        del pending[:count]
        normalize = buffer.normalize
        buffer.data[offset:offset + count] = [
            normalize(b) for b in chunk]
        return count

    @lib.native_method("java.net.Socket", "close0")
    def socket_close(env, this):
        env.charge(500)
        this.fields["pending"] = None
        return None

    @lib.native_method("java.io.PrintStream", "println")
    def ps_println(env, this, text):
        value = "" if text is None else _string_of(env, text)
        env.charge(110 + len(value) // 2)
        env.vm.console.append(value)
        return None

    @lib.native_method("java.io.PrintStream", "printlnInt")
    def ps_println_int(env, this, value):
        env.charge(120)
        env.vm.console.append(str(value))
        return None

    # -- java.util.zip.CRC32 ---------------------------------------------------------------------------------

    @lib.native_method("java.util.zip.CRC32", "updateBytes")
    def crc32_update_bytes(env, this, buffer, offset, length):
        if buffer is None:
            env.throw("java.lang.NullPointerException", "crc buffer")
        if offset < 0 or length < 0 or \
                offset + length > len(buffer.data):
            env.throw("java.lang.ArrayIndexOutOfBoundsException",
                      "crc region")
        env.charge(60 + length)
        chunk = bytes((b & 0xFF) for b in
                      buffer.data[offset:offset + length])
        this.fields["crc"] = zlib.crc32(chunk, this.fields["crc"])
        return None

    return lib
