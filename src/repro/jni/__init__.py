"""JNI layer: native libraries, name mangling, and the JNI function
table through which native code re-enters Java.

The pieces the paper's IPA depends on live here:

* :func:`~repro.jni.mangling.mangle` and prefix-aware resolution
  (:class:`~repro.jni.library.NativeRegistry.resolve`) implement native
  method linking including the JVMTI 1.1 *native method prefixing* retry;
* :class:`~repro.jni.function_table.JNIFunctionTable` holds the 90
  ``Call<Ret><Kind>Method<Variant>`` entries that JVMTI *JNI function
  interception* can wrap.
"""

from repro.jni.mangling import mangle
from repro.jni.library import NativeLibrary, NativeRegistry
from repro.jni.function_table import (
    JNIEnv,
    JNIFunctionTable,
    CALL_FUNCTION_NAMES,
)

__all__ = [
    "mangle",
    "NativeLibrary",
    "NativeRegistry",
    "JNIEnv",
    "JNIFunctionTable",
    "CALL_FUNCTION_NAMES",
]
