"""Native libraries and the per-VM native registry.

A :class:`NativeLibrary` is a named bag of host callables keyed by
mangled JNI symbol.  Implementations have the signature
``fn(env, *args)`` where ``env`` is a :class:`~repro.jni.function_table.JNIEnv`
bound to the invoking thread; for instance methods ``args[0]`` is the
receiver.  Implementations are responsible for charging their own
simulated cycles through ``env.charge(...)``.

The :class:`NativeRegistry` models ``System.loadLibrary`` plus native
method resolution, including the JVMTI 1.1 *native method prefixing*
retry: if direct resolution of a (renamed) method like ``_ipa_foo``
fails, each registered prefix is stripped in turn and resolution is
retried — this is how instrumented wrappers link against unchanged
library symbols.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import JNIError, UnsatisfiedLinkError
from repro.jni.mangling import mangle


class NativeLibrary:
    """One loadable native library."""

    def __init__(self, name: str):
        if not name:
            raise JNIError("library name must be non-empty")
        self.name = name
        self._symbols: Dict[str, Callable] = {}

    def export(self, symbol: str, fn: Callable) -> Callable:
        """Register ``fn`` under a raw mangled ``symbol``."""
        if symbol in self._symbols:
            raise JNIError(
                f"duplicate symbol {symbol!r} in library {self.name!r}")
        self._symbols[symbol] = fn
        return fn

    def native_method(self, class_name: str,
                      method_name: str) -> Callable:
        """Decorator: export the implementation of
        ``class_name.method_name``.

        >>> lib = NativeLibrary("demo")
        >>> @lib.native_method("demo.Main", "nativeAdd")
        ... def native_add(env, a, b):
        ...     env.charge(10)
        ...     return a + b
        """
        symbol = mangle(class_name, method_name)

        def decorator(fn: Callable) -> Callable:
            return self.export(symbol, fn)

        return decorator

    def lookup(self, symbol: str) -> Optional[Callable]:
        return self._symbols.get(symbol)

    def symbols(self) -> List[str]:
        return list(self._symbols)

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<NativeLibrary {self.name!r} ({len(self._symbols)} syms)>"


class NativeRegistry:
    """Per-VM registry of available and loaded native libraries."""

    def __init__(self, vm):
        self._vm = vm
        self._available: Dict[str, NativeLibrary] = {}
        self._loaded: List[NativeLibrary] = []
        #: Count of successful resolutions (diagnostics).
        self.resolutions = 0

    # -- configuration (host side, before/at launch) ---------------------------

    def register(self, library: NativeLibrary,
                 preload: bool = False) -> None:
        """Make ``library`` available for ``System.loadLibrary``;
        ``preload=True`` links it immediately (core JDK natives)."""
        if library.name in self._available:
            raise JNIError(f"library {library.name!r} already registered")
        self._available[library.name] = library
        if preload:
            self._loaded.append(library)

    # -- runtime behaviour --------------------------------------------------------

    def load_library(self, name: str) -> None:
        """``System.loadLibrary(name)``."""
        library = self._available.get(name)
        if library is None:
            raise UnsatisfiedLinkError(f"no library {name!r} available")
        if library not in self._loaded:
            self._loaded.append(library)

    def is_loaded(self, name: str) -> bool:
        return any(lib.name == name for lib in self._loaded)

    def _lookup(self, symbol: str) -> Optional[Callable]:
        for library in self._loaded:
            fn = library.lookup(symbol)
            if fn is not None:
                return fn
        return None

    def resolve(self, method) -> Optional[Callable]:
        """Resolve a native :class:`~repro.jvm.classloader.LoadedMethod`.

        Tries the direct mangled name first; on failure retries with each
        JVMTI-registered prefix stripped from the method name (most
        recently registered prefix first, per the JVMTI contract).
        Returns ``None`` when unresolved (the interpreter turns that into
        ``UnsatisfiedLinkError`` at the Java level).
        """
        class_name = method.owner.name
        method_name = method.info.name
        fn = self._lookup(mangle(class_name, method_name))
        if fn is not None:
            self.resolutions += 1
            return fn
        for prefix in reversed(self._vm.jvmti.native_method_prefixes):
            if prefix and method_name.startswith(prefix):
                stripped = method_name[len(prefix):]
                fn = self._lookup(mangle(class_name, stripped))
                if fn is not None:
                    self.resolutions += 1
                    return fn
        return None

    @property
    def loaded_names(self) -> List[str]:
        return [lib.name for lib in self._loaded]
