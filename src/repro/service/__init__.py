"""Service mode: a persistent pool of pre-warmed VMs behind an
asyncio request queue.

The batch harness builds a fresh :class:`~repro.jvm.machine.JavaVM`
per run; this package keeps VMs alive across requests so class
loading, verification, and template-tier compilation are paid once
(the tiered-execution startup question — see DESIGN.md §10):

* :mod:`repro.service.warm` — one warm VM: eager class loading,
  statics snapshot/restore, per-request in-place reset;
* :mod:`repro.service.pool` — the asyncio :class:`VMPool`: bounded
  admission, per-request timeout, crashed-worker replacement;
* :mod:`repro.service.loadgen` — open-/closed-loop load generator
  with latency/throughput reporting (``repro loadgen``);
* :mod:`repro.service.server` — the JSON-lines socket front end
  (``repro serve``).
"""

from repro.errors import AdmissionError, ServiceError
from repro.service.pool import (
    RequestOutcome,
    ServiceConfig,
    VMPool,
    WorkloadRequest,
)
from repro.service.warm import WarmVM, run_cold

__all__ = [
    "AdmissionError",
    "RequestOutcome",
    "ServiceConfig",
    "ServiceError",
    "VMPool",
    "WarmVM",
    "WorkloadRequest",
    "run_cold",
]
