"""The warm-VM pool: asyncio request queue + worker replacement.

``VMPool`` owns N workers.  Each worker is an asyncio task holding a
dedicated single-thread executor (warm VMs have host-thread affinity
for the lifetime of a request) and a cache of :class:`WarmVM`
instances keyed by request configuration.  Requests flow through one
shared queue:

* **admission** — the queue is bounded; a submit against a full queue
  raises a structured 429-style
  :class:`~repro.errors.AdmissionError` immediately (callers never
  block on an overloaded pool) and is counted in the metrics registry;
* **timeout** — a submit with a deadline returns a 504-style outcome
  when it expires.  A request still queued is simply skipped; a
  request already running cannot be interrupted (host threads), so
  its worker is retired — a replacement worker is spawned at once and
  the old one exits when (if) the stuck run returns;
* **crash isolation** — a host-level exception escaping request
  execution yields a 500-style outcome for that request only; the
  worker's VMs are considered poisoned, the worker is replaced, and
  subsequent requests succeed on the replacement.

Warm execution requires ``cores == 1`` (see
:mod:`repro.service.warm`); multi-core requests transparently take the
cold path.  All counters flow through an injected
:class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import AdmissionError, ServiceError, WorkloadError
from repro.observability import logging as obs_logging
from repro.observability.metrics import MetricsRegistry
from repro.service.warm import WarmVM, run_cold
from repro.workloads import workload_names

log = obs_logging.get_logger("service")


@dataclass
class ServiceConfig:
    """Pool-level configuration."""

    workers: int = 2
    queue_limit: int = 64            # 0 = unbounded
    timeout_seconds: Optional[float] = None
    tier: str = "template"
    verify: str = "structural"
    cores: int = 1
    #: Serve requests from warm VMs (False = every request cold — the
    #: ``--cold-start-baseline`` mode).
    warm: bool = True
    #: Honor ``WorkloadRequest.fault`` (tests and chaos smoke only).
    allow_fault_injection: bool = False


@dataclass
class WorkloadRequest:
    """One unit of work submitted to the pool."""

    workload: str
    scale: int = 1
    request_id: int = 0
    #: Fault injection (``"host-error"`` raises inside the worker);
    #: ignored unless the pool allows it.
    fault: Optional[str] = None


@dataclass
class RequestOutcome:
    """What the pool returns for every admitted request."""

    request_id: int
    workload: str
    ok: bool
    status: int                      # 200 | 400 | 500 | 504
    error: str = ""
    warm: bool = False
    cycles: int = 0
    instructions: int = 0
    operations: Optional[int] = None
    checksum: str = ""
    classes_loaded: int = 0
    methods_verified: int = 0
    templates_translated: int = 0
    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    latency_seconds: float = 0.0
    worker: str = ""

    def to_json(self) -> Dict:
        doc = {key: getattr(self, key) for key in (
            "request_id", "workload", "ok", "status", "warm",
            "cycles", "instructions", "operations", "checksum",
            "classes_loaded", "methods_verified",
            "templates_translated", "worker")}
        if self.error:
            doc["error"] = self.error
        doc["latency_ms"] = round(self.latency_seconds * 1000.0, 3)
        return doc


class _Ticket:
    """A queued request plus its delivery future."""

    __slots__ = ("request", "future", "enqueued_at", "started",
                 "timed_out", "worker")

    def __init__(self, request: WorkloadRequest, future):
        self.request = request
        self.future = future
        self.enqueued_at = time.perf_counter()
        self.started = False
        self.timed_out = False
        self.worker: Optional[_Worker] = None


class _Worker:
    """One pool worker: an asyncio task + a single-thread executor +
    a cache of warm VMs."""

    def __init__(self, pool: "VMPool", worker_id: int):
        self.pool = pool
        self.name = f"w{worker_id:02d}"
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"vmpool-{self.name}")
        self.vms: Dict[tuple, WarmVM] = {}
        self.retired = False
        self.task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"vmpool-worker-{self.name}")

    async def _run(self) -> None:
        pool = self.pool
        while not self.retired:
            ticket = await pool._queue.get()
            if ticket is None:          # shutdown sentinel
                break
            if ticket.timed_out or ticket.future.cancelled():
                continue                # expired while queued
            ticket.started = True
            ticket.worker = self
            queue_seconds = time.perf_counter() - ticket.enqueued_at
            pool.metrics.observe("service_queue_wait_us",
                                 int(queue_seconds * 1e6))
            try:
                outcome = await asyncio.get_running_loop() \
                    .run_in_executor(self.executor, self._execute,
                                     ticket.request)
                crashed = False
            except Exception as exc:    # noqa: BLE001 — crash isolation
                outcome = RequestOutcome(
                    request_id=ticket.request.request_id,
                    workload=ticket.request.workload,
                    ok=False, status=500,
                    error=f"{type(exc).__name__}: {exc}",
                    worker=self.name)
                crashed = True
            outcome.queue_seconds = queue_seconds
            outcome.latency_seconds = (time.perf_counter()
                                       - ticket.enqueued_at)
            pool._finish(ticket, outcome)
            if crashed:
                pool._replace(self, reason="crash")
                break
            if self.retired:            # retired mid-run by a timeout
                break
        self.executor.shutdown(wait=False)

    def _execute(self, request: WorkloadRequest) -> RequestOutcome:
        """Runs on the worker's own host thread."""
        pool = self.pool
        config = pool.config
        if request.fault and config.allow_fault_injection:
            raise RuntimeError(
                f"injected fault {request.fault!r} "
                f"(request {request.request_id})")
        started = time.perf_counter()
        try:
            if config.warm and config.cores == 1:
                key = (request.workload, request.scale)
                warm_vm = self.vms.get(key)
                if warm_vm is None:
                    warm_vm = WarmVM(
                        request.workload, scale=request.scale,
                        tier=config.tier,
                        verify=config.verify).warmup()
                    self.vms[key] = warm_vm
                    pool.metrics.inc("service_vms_warmed")
                raw = warm_vm.run()
            else:
                raw = run_cold(request.workload, scale=request.scale,
                               tier=config.tier, verify=config.verify,
                               cores=config.cores)
        except WorkloadError as exc:
            return RequestOutcome(
                request_id=request.request_id,
                workload=request.workload, ok=False, status=400,
                error=str(exc), worker=self.name)
        return RequestOutcome(
            request_id=request.request_id,
            workload=raw["workload"],
            ok=raw["ok"],
            status=200 if raw["ok"] else 500,
            error="" if raw["ok"] else raw["detail"],
            warm=raw["warm"],
            cycles=raw["cycles"],
            instructions=raw["instructions"],
            operations=raw["operations"],
            checksum=raw["checksum"],
            classes_loaded=raw["classes_loaded"],
            methods_verified=raw["methods_verified"],
            templates_translated=raw["templates_translated"],
            run_seconds=time.perf_counter() - started,
            worker=self.name)


class VMPool:
    """The service front door: admission, dispatch, replacement."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ServiceError("pool needs at least one worker")
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self._queue: Optional[asyncio.Queue] = None
        self._workers: Dict[str, _Worker] = {}
        self._next_worker_id = 0
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "VMPool":
        if self._started:
            raise ServiceError("pool already started")
        self._started = True
        self._queue = asyncio.Queue()
        for _ in range(self.config.workers):
            self._spawn()
        return self

    async def stop(self) -> None:
        """Drain nothing, just stop: sentinel every live worker and
        wait for their tasks."""
        if not self._started:
            return
        workers = list(self._workers.values())
        for _ in workers:
            self._queue.put_nowait(None)
        for worker in workers:
            worker.retired = True
        await asyncio.gather(
            *(worker.task for worker in workers if worker.task),
            return_exceptions=True)
        self._started = False

    async def preheat(self, workloads, scale: int = 1) -> int:
        """Warm every worker's VM for each named workload before
        taking traffic (so steady-state latency is measured, not
        warm-up).  No-op in cold mode.  Returns VMs warmed."""
        if not self.config.warm or self.config.cores != 1:
            return 0
        loop = asyncio.get_running_loop()
        before = self.metrics.counter("service_vms_warmed").value

        def warm_worker(worker: _Worker) -> None:
            for name in workloads:
                key = (name, scale)
                if key not in worker.vms:
                    worker.vms[key] = WarmVM(
                        name, scale=scale, tier=self.config.tier,
                        verify=self.config.verify).warmup()
                    self.metrics.inc("service_vms_warmed")

        await asyncio.gather(*(
            loop.run_in_executor(worker.executor, warm_worker, worker)
            for worker in self._workers.values()))
        return self.metrics.counter("service_vms_warmed").value - before

    # -- request path ---------------------------------------------------------

    async def submit(self, request: WorkloadRequest) -> RequestOutcome:
        """Admit, execute, and return one request's outcome.

        Raises :class:`AdmissionError` when the queue is full; every
        other failure mode is reported in the returned outcome.
        """
        if not self._started:
            raise ServiceError("pool is not running")
        if request.workload not in workload_names():
            self.metrics.inc("service_requests_failed")
            return RequestOutcome(
                request_id=request.request_id,
                workload=request.workload, ok=False, status=400,
                error=(f"unknown workload {request.workload!r}; "
                       f"valid: {', '.join(sorted(workload_names()))}"))
        depth = self._queue.qsize()
        limit = self.config.queue_limit
        if limit and depth >= limit:
            self.metrics.inc("service_requests_rejected")
            raise AdmissionError(
                f"queue full ({depth}/{limit}); request "
                f"{request.request_id} rejected", queue_depth=depth,
                queue_limit=limit)
        self.metrics.inc("service_requests_admitted")
        self.metrics.observe("service_queue_depth", depth)
        peak = self.metrics.gauge("service_queue_depth_peak")
        if depth > peak.value:
            peak.set(depth)

        future = asyncio.get_running_loop().create_future()
        ticket = _Ticket(request, future)
        self._queue.put_nowait(ticket)
        try:
            outcome = await asyncio.wait_for(
                future, self.config.timeout_seconds)
        except asyncio.TimeoutError:
            self.metrics.inc("service_requests_timeout")
            ticket.timed_out = True
            if ticket.started and ticket.worker is not None:
                # the run cannot be interrupted: retire its worker and
                # restore capacity immediately
                self._replace(ticket.worker, reason="timeout")
            return RequestOutcome(
                request_id=request.request_id,
                workload=request.workload, ok=False, status=504,
                error=(f"request {request.request_id} timed out after "
                       f"{self.config.timeout_seconds}s"),
                latency_seconds=(time.perf_counter()
                                 - ticket.enqueued_at))
        self._record(outcome)
        return outcome

    # -- internals ------------------------------------------------------------

    def _spawn(self) -> _Worker:
        worker = _Worker(self, self._next_worker_id)
        self._next_worker_id += 1
        self._workers[worker.name] = worker
        worker.start()
        return worker

    def _replace(self, worker: _Worker, reason: str) -> None:
        """Retire ``worker`` (its warm VMs are presumed poisoned) and
        spawn a fresh one so pool capacity is preserved."""
        if worker.retired:
            return
        worker.retired = True
        self._workers.pop(worker.name, None)
        if reason == "crash":
            self.metrics.inc("service_worker_crashes")
        self.metrics.inc("service_workers_replaced")
        replacement = self._spawn()
        log.warning("worker replaced", old=worker.name,
                    new=replacement.name, reason=reason)

    def _finish(self, ticket: _Ticket, outcome: RequestOutcome) -> None:
        if not ticket.future.done():
            ticket.future.set_result(outcome)
        # a timed-out request's caller is gone; account for the
        # late completion here instead
        elif ticket.timed_out:
            self._record(outcome, late=True)

    def _record(self, outcome: RequestOutcome, late: bool = False) -> None:
        metrics = self.metrics
        if late:
            metrics.inc("service_requests_late_completions")
        if outcome.ok:
            metrics.inc("service_requests_completed")
        else:
            metrics.inc("service_requests_failed")
        metrics.inc("service_requests_warm" if outcome.warm
                    else "service_requests_cold")
        metrics.observe("service_latency_us",
                        int(outcome.latency_seconds * 1e6))
        metrics.inc("service_classes_loaded", outcome.classes_loaded)
        metrics.inc("service_methods_verified",
                    outcome.methods_verified)
        metrics.inc("service_templates_translated",
                    outcome.templates_translated)
        metrics.inc("service_cycles_total", outcome.cycles)

    def stats(self) -> Dict:
        """Counter snapshot for the stats endpoint / ledger."""
        rows = {}
        for record in self.metrics.as_records():
            if record["type"] == "counter":
                rows[record["name"]] = record["value"]
            elif record["type"] == "gauge":
                rows[record["name"]] = record["value"]
        rows["workers"] = len(self._workers)
        rows["queue_depth"] = (self._queue.qsize()
                               if self._queue is not None else 0)
        return rows
