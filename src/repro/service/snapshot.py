"""Deep copy of class statics for per-request isolation.

A warm VM shares immutable class metadata across requests but must not
leak *mutable state* from one request into the next.  The only mutable
class-level state in the simulator is the per-class ``statics`` dict
(plus whatever object graph it references), populated by ``<clinit>``
and mutated freely by running code.  :func:`snapshot_statics` captures
a pristine deep copy right after eager loading (post-``<clinit>``,
pre-main); :func:`restore_statics` writes it back before each request.

Two identity rules matter (both are load-bearing for the template
tier, which binds objects into generated closures):

* the per-class ``statics`` **dict object** is bound at GETSTATIC/
  PUTSTATIC sites — restore mutates it in place (``clear``/``update``),
  never replaces it;
* interned ``java.lang.String`` objects are bound at LDC sites — they
  are immutable payloads, so the copier returns them as-is, preserving
  identity with the heap's intern table.

Aliasing inside the snapshot is preserved with a shared memo (two
statics referencing the same object still do after a restore), and the
memo also terminates cyclic object graphs.
"""

from __future__ import annotations

from typing import Dict

from repro.jvm.values import JArray, JObject

#: ``{class_name: {field_name: value}}`` — values are private copies.
StaticsSnapshot = Dict[str, Dict[str, object]]


def _copy_value(value, memo: dict):
    if isinstance(value, JObject):
        if value.string_value is not None:
            # strings are immutable payloads; interned ones are bound
            # by identity in templates and the intern table
            return value
        key = id(value)
        clone = memo.get(key)
        if clone is None:
            clone = JObject(value.jclass, {}, value.object_id)
            memo[key] = clone  # before recursing: terminates cycles
            clone.fields = {name: _copy_value(field, memo)
                            for name, field in value.fields.items()}
        return clone
    if isinstance(value, JArray):
        key = id(value)
        clone = memo.get(key)
        if clone is None:
            clone = JArray(value.kind, 0, value.object_id)
            memo[key] = clone
            clone.data = [_copy_value(item, memo)
                          for item in value.data]
        return clone
    return value  # ints, floats, None, host-side odds and ends


def snapshot_statics(loader) -> StaticsSnapshot:
    """Deep-copy every loaded class's statics (one shared memo, so
    cross-class aliasing survives the round trip)."""
    memo: dict = {}
    return {cls.name: {name: _copy_value(value, memo)
                       for name, value in cls.statics.items()}
            for cls in loader.loaded_classes()}


def restore_statics(loader, snapshot: StaticsSnapshot) -> None:
    """Reset every snapshotted class's statics **in place** from fresh
    copies (the snapshot itself is never handed to running code)."""
    memo: dict = {}
    for cls in loader.loaded_classes():
        saved = snapshot.get(cls.name)
        if saved is None:
            continue
        statics = cls.statics
        statics.clear()
        statics.update({name: _copy_value(value, memo)
                        for name, value in saved.items()})
