"""``repro serve``: a JSON-lines front end over the warm-VM pool.

The server listens on a local unix socket (``--socket PATH``) or TCP
port (``--port N``) and speaks one JSON object per line:

* ``{"workload": "db", "scale": 1, "id": 7}`` — run a request; the
  response is the request outcome (429-style rejections come back as
  ``{"status": 429, ...}`` without closing the connection);
* ``{"op": "stats"}`` — pool counters;
* ``{"op": "shutdown"}`` — graceful stop (also SIGINT/SIGTERM).

A busy port or an existing socket path is refused up front with a
clear error (:class:`~repro.errors.ServiceError`) instead of a bind
traceback.  On shutdown — graceful or interrupted — the caller
receives the final pool stats for the run ledger.
"""

from __future__ import annotations

import asyncio
import errno
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AdmissionError, ServiceError
from repro.observability import logging as obs_logging
from repro.observability.metrics import MetricsRegistry
from repro.service.pool import ServiceConfig, VMPool, WorkloadRequest

log = obs_logging.get_logger("serve")


@dataclass
class ServeConfig:
    """Where to listen and what pool to run."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Workloads to pre-warm in every worker before accepting traffic.
    preheat: List[str] = field(default_factory=list)
    scale: int = 1

    def endpoint(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"


async def _handle_client(pool: VMPool, stop: asyncio.Event,
                         reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
    try:
        while not stop.is_set():
            line = await reader.readline()
            if not line:
                break
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                response = {"status": 400, "ok": False,
                            "error": f"bad request: {exc}"}
            else:
                response = await _dispatch(pool, stop, message)
            writer.write((json.dumps(response, sort_keys=True)
                          + "\n").encode("utf-8"))
            await writer.drain()
            if response.get("op") == "shutdown":
                break
    finally:
        writer.close()


async def _dispatch(pool: VMPool, stop: asyncio.Event,
                    message: Dict) -> Dict:
    op = message.get("op")
    if op == "stats":
        return {"op": "stats", "status": 200, "stats": pool.stats()}
    if op == "shutdown":
        stop.set()
        return {"op": "shutdown", "status": 200}
    if op is not None:
        return {"status": 400, "ok": False,
                "error": f"unknown op {op!r} (valid: stats, shutdown)"}
    workload = message.get("workload")
    if not isinstance(workload, str):
        return {"status": 400, "ok": False,
                "error": "request needs a 'workload' string"}
    request = WorkloadRequest(
        workload, scale=int(message.get("scale", 1)),
        request_id=int(message.get("id", 0)))
    try:
        outcome = await pool.submit(request)
    except AdmissionError as exc:
        return {"status": exc.status, "ok": False, "error": str(exc),
                "queue_depth": exc.queue_depth,
                "queue_limit": exc.queue_limit}
    return dict(outcome.to_json(), status=outcome.status)


async def _start_listener(config: ServeConfig, handler):
    """Bind, translating the busy-endpoint errors into clear
    :class:`ServiceError` messages."""
    if config.socket_path:
        if os.path.exists(config.socket_path):
            raise ServiceError(
                f"socket path {config.socket_path!r} already exists "
                f"(another server running? remove the file if stale)")
        try:
            return await asyncio.start_unix_server(
                handler, path=config.socket_path)
        except OSError as exc:
            raise ServiceError(
                f"cannot bind socket {config.socket_path!r}: {exc}")
    if config.port is None:
        raise ServiceError("serve needs --socket PATH or --port N")
    try:
        return await asyncio.start_server(
            handler, host=config.host, port=config.port)
    except OSError as exc:
        if exc.errno == errno.EADDRINUSE:
            raise ServiceError(
                f"port {config.port} on {config.host} is already in "
                f"use; pick another --port or stop the other server")
        raise ServiceError(
            f"cannot bind {config.host}:{config.port}: {exc}")


async def _serve_async(config: ServeConfig, metrics: MetricsRegistry,
                       state: Dict) -> None:
    pool = VMPool(config.service, metrics=metrics)
    stop = asyncio.Event()
    server = await _start_listener(
        config,
        lambda reader, writer: _handle_client(pool, stop, reader,
                                              writer))
    await pool.start()
    try:
        if config.preheat:
            warmed = await pool.preheat(config.preheat,
                                        scale=config.scale)
            log.info("pool preheated", vms=warmed,
                     workloads=",".join(config.preheat))
        state["listening"] = config.endpoint()
        log.info("serving", endpoint=config.endpoint(),
                 workers=config.service.workers,
                 queue_limit=config.service.queue_limit)
        print(f"serving on {config.endpoint()} "
              f"({config.service.workers} workers); "
              f"Ctrl-C to stop", flush=True)
        await stop.wait()
        log.info("shutdown requested")
    finally:
        server.close()
        await server.wait_closed()
        state["stats"] = pool.stats()
        await pool.stop()
        if config.socket_path and os.path.exists(config.socket_path):
            os.unlink(config.socket_path)


def run_server(config: ServeConfig,
               metrics: Optional[MetricsRegistry] = None) -> Dict:
    """Serve until shutdown/interrupt; returns final state (listening
    endpoint, pool stats, interrupted flag) for the run ledger."""
    metrics = metrics if metrics is not None else MetricsRegistry()
    state: Dict = {"interrupted": False}
    try:
        asyncio.run(_serve_async(config, metrics, state))
    except KeyboardInterrupt:
        state["interrupted"] = True
        log.warning("interrupted; flushing final stats")
        if config.socket_path and os.path.exists(config.socket_path):
            os.unlink(config.socket_path)
    return state
