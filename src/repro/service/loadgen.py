"""Open- and closed-loop load generation against the warm-VM pool.

**Open loop** (``--rps N``): request *i* of a precomputed schedule is
released at ``t0 + i/rps``, independent of completions — the
arrival process the paper's server-class workloads face in practice.
The schedule (request count, per-request workload choice) is a pure
function of ``(rps, duration, workloads, seed)``, so the *simulated*
outcome of every request — cycle cost, instructions, console
checksum — is reproducible across repeats; only host-side latency
varies.  A bounded queue or timeout can make the *admitted subset*
wall-clock-dependent (documented determinism caveat; both default
off for loadgen).

**Closed loop** (no ``--rps``): C loopers issue back-to-back requests
until the deadline — the measured completion rate *is* the pool's
saturation throughput.  The per-looper request sequence is seeded,
but the request *count* depends on host speed (second caveat).

The report carries p50/p95/p99/max latency, achieved vs offered RPS,
queue and rejection counters, a latency histogram, a per-second
throughput timeline (both rendered in the HTML report), and a digest
over all simulated outcomes — the compact reproducibility witness.
A ``--cold-start-baseline`` run replays the same schedule against a
cold pool and attaches the warm-vs-cold comparison.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, List, Optional

from repro.errors import AdmissionError, ServiceError
from repro.observability import logging as obs_logging
from repro.observability.metrics import MetricsRegistry
from repro.service.pool import ServiceConfig, VMPool, WorkloadRequest

log = obs_logging.get_logger("loadgen")

#: Log-scaled latency-histogram bucket bounds, milliseconds.
LATENCY_BUCKETS_MS = tuple(2 ** p for p in range(-1, 15))

#: Per-request rows embedded in the ledger manifest are capped (the
#: digest still covers every request).
MANIFEST_REQUEST_CAP = 200


@dataclass
class LoadgenConfig:
    """One load-generation experiment."""

    workloads: List[str] = field(default_factory=lambda: ["db"])
    duration: float = 5.0
    rps: Optional[float] = None      # None = closed loop
    concurrency: int = 4             # loopers (closed loop only)
    scale: int = 1
    seed: int = 0
    tier: str = "template"
    verify: str = "structural"
    cores: int = 1
    workers: int = 2
    queue_limit: int = 0             # 0 = unbounded (deterministic)
    timeout_seconds: Optional[float] = None
    warm: bool = True
    cold_baseline: bool = False

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            workers=self.workers, queue_limit=self.queue_limit,
            timeout_seconds=self.timeout_seconds, tier=self.tier,
            verify=self.verify, cores=self.cores, warm=self.warm)


def build_schedule(config: LoadgenConfig) -> List[Dict]:
    """The open-loop arrival schedule: deterministic in the seed."""
    if config.rps is None:
        raise ServiceError("closed-loop runs have no fixed schedule")
    count = max(1, round(config.rps * config.duration))
    rng = Random(config.seed)
    return [{"id": i, "at": i / config.rps,
             "workload": config.workloads[
                 rng.randrange(len(config.workloads))]}
            for i in range(count)]


async def _drive_open_loop(pool: VMPool, config: LoadgenConfig,
                           records: List[Dict]) -> None:
    schedule = build_schedule(config)
    loop = asyncio.get_running_loop()
    t0 = loop.time()

    async def one(entry: Dict) -> None:
        delay = entry["at"] - (loop.time() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        await _issue(pool, entry["id"], entry["workload"],
                     config.scale, loop.time() - t0, records)

    await asyncio.gather(*(one(entry) for entry in schedule))


async def _drive_closed_loop(pool: VMPool, config: LoadgenConfig,
                             records: List[Dict]) -> None:
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    counter = {"next": 0}

    async def looper(index: int) -> None:
        rng = Random((config.seed << 8) | index)
        while loop.time() - t0 < config.duration:
            request_id = counter["next"]
            counter["next"] += 1
            name = config.workloads[
                rng.randrange(len(config.workloads))]
            await _issue(pool, request_id, name, config.scale,
                         loop.time() - t0, records)

    await asyncio.gather(*(looper(i)
                           for i in range(config.concurrency)))


async def _issue(pool: VMPool, request_id: int, workload: str,
                 scale: int, offset: float,
                 records: List[Dict]) -> None:
    try:
        outcome = await pool.submit(WorkloadRequest(
            workload, scale=scale, request_id=request_id))
    except AdmissionError as exc:
        records.append({"id": request_id, "workload": workload,
                        "at": round(offset, 4), "status": 429,
                        "ok": False,
                        "error": str(exc),
                        "queue_depth": exc.queue_depth})
        return
    row = outcome.to_json()
    row["id"] = request_id
    row["at"] = round(offset, 4)
    row["done_at"] = round(offset + outcome.latency_seconds, 4)
    records.append(row)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank-with-interpolation percentile over raw samples."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = rank - lower
    return (sorted_values[lower] * (1 - weight)
            + sorted_values[upper] * weight)


def _latency_stats(latencies_ms: List[float]) -> Dict:
    ordered = sorted(latencies_ms)
    if not ordered:
        return {"count": 0}
    return {
        "count": len(ordered),
        "mean": round(sum(ordered) / len(ordered), 3),
        "p50": round(_percentile(ordered, 0.50), 3),
        "p95": round(_percentile(ordered, 0.95), 3),
        "p99": round(_percentile(ordered, 0.99), 3),
        "max": round(ordered[-1], 3),
    }


def _latency_histogram(latencies_ms: List[float]) -> Dict:
    counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
    for value in latencies_ms:
        for i, bound in enumerate(LATENCY_BUCKETS_MS):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return {"bounds_ms": list(LATENCY_BUCKETS_MS), "counts": counts}


def _timeline(records: List[Dict], duration: float) -> List[Dict]:
    """Offered and completed requests per whole second."""
    seconds = max(1, int(duration) + 1)
    offered = [0] * seconds
    completed = [0] * seconds
    for row in records:
        at = int(row.get("at", 0))
        if 0 <= at < seconds:
            offered[at] += 1
        if row.get("status") == 200:
            done = int(row.get("done_at", row.get("at", 0)))
            if done >= seconds:
                done = seconds - 1
            completed[done] += 1
    return [{"second": s, "offered": offered[s],
             "completed": completed[s]} for s in range(seconds)]


def outcome_digest(records: List[Dict]) -> str:
    """Digest over every completed request's *simulated* outcome
    (request id, workload, cycle cost, console checksum) — identical
    across repeats of the same seeded run, whatever the wall clock
    did."""
    lines = [f"{row['id']} {row['workload']} {row.get('cycles', 0)} "
             f"{row.get('checksum', '')}"
             for row in sorted(records, key=lambda r: r["id"])
             if row.get("status") == 200]
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()[:16]


def summarize(config: LoadgenConfig, records: List[Dict],
              wall_seconds: float, pool_stats: Dict,
              interrupted: bool = False) -> Dict:
    completed = [r for r in records if r.get("status") == 200]
    latencies = [r["latency_ms"] for r in completed]
    statuses: Dict[str, int] = {}
    for row in records:
        key = str(row.get("status"))
        statuses[key] = statuses.get(key, 0) + 1
    offered_rps = (config.rps if config.rps is not None
                   else round(len(records) / wall_seconds, 2)
                   if wall_seconds > 0 else 0)
    achieved = round(len(completed) / wall_seconds, 2) \
        if wall_seconds > 0 else 0.0
    doc = {
        "mode": "open" if config.rps is not None else "closed",
        "workloads": list(config.workloads),
        "seed": config.seed,
        "duration_seconds": config.duration,
        "wall_seconds": round(wall_seconds, 3),
        "offered_rps": offered_rps,
        "achieved_rps": achieved,
        "requests": {
            "issued": len(records),
            "completed": len(completed),
            "failed": statuses.get("500", 0) + statuses.get("400", 0),
            "rejected": statuses.get("429", 0),
            "timeout": statuses.get("504", 0),
        },
        "warm": {
            "warm_requests": sum(1 for r in completed if r.get("warm")),
            "cold_requests": sum(1 for r in completed
                                 if not r.get("warm")),
        },
        "queue": {
            "limit": config.queue_limit,
            "peak_depth": pool_stats.get("service_queue_depth_peak", 0),
        },
        "latency_ms": _latency_stats(latencies),
        "latency_histogram": _latency_histogram(latencies),
        "timeline": _timeline(records, max(config.duration,
                                           wall_seconds)),
        "outcome_digest": outcome_digest(records),
        "cycles_total": sum(r.get("cycles", 0) for r in completed),
    }
    if config.rps is None:
        doc["saturation_rps"] = achieved
    doc["interrupted"] = bool(interrupted)
    return doc


async def _run_async(config: LoadgenConfig,
                     metrics: MetricsRegistry) -> Dict:
    pool = VMPool(config.service_config(), metrics=metrics)
    await pool.start()
    records: List[Dict] = []
    interrupted = False
    started = time.perf_counter()
    try:
        if config.warm:
            warmed = await pool.preheat(config.workloads,
                                        scale=config.scale)
            log.info("pool preheated", vms=warmed,
                     workers=config.workers)
        started = time.perf_counter()
        if config.rps is not None:
            await _drive_open_loop(pool, config, records)
        else:
            await _drive_closed_loop(pool, config, records)
    except (KeyboardInterrupt, asyncio.CancelledError):
        interrupted = True
        log.warning("load generation interrupted; summarizing the "
                    "requests completed so far", issued=len(records))
    finally:
        wall = time.perf_counter() - started
        stats = pool.stats()
        await pool.stop()
    doc = summarize(config, records, wall, stats,
                    interrupted=interrupted)
    doc["per_request"] = sorted(records, key=lambda r: r["id"])
    return doc


def run_loadgen(config: LoadgenConfig,
                metrics: Optional[MetricsRegistry] = None) -> Dict:
    """Run one load-generation experiment; returns the report doc.

    With ``cold_baseline`` set, the same schedule is replayed against
    a cold pool (every request builds a fresh VM) and the comparison
    is attached under ``"cold_baseline"``.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    try:
        doc = asyncio.run(_run_async(config, metrics))
    except KeyboardInterrupt:
        # interrupt landed outside the driver's own handler (e.g.
        # during pool start); report an empty-but-valid interrupted doc
        doc = summarize(config, [], 0.0, {}, interrupted=True)
        doc["per_request"] = []
        return doc
    if config.cold_baseline and not doc.get("interrupted"):
        cold_config = replace(config, cold_baseline=False, warm=False)
        cold = asyncio.run(_run_async(cold_config, MetricsRegistry()))
        doc["cold_baseline"] = {
            "latency_ms": cold["latency_ms"],
            "achieved_rps": cold["achieved_rps"],
            "requests": cold["requests"],
            "outcome_digest": cold["outcome_digest"],
        }
    return doc


def format_loadgen(doc: Dict) -> str:
    """Terminal rendering of a loadgen report."""
    requests = doc["requests"]
    latency = doc["latency_ms"]
    lines = [
        f"mode:          {doc['mode']} loop "
        f"({', '.join(doc['workloads'])}, seed {doc['seed']})",
        f"offered:       {doc['offered_rps']} rps for "
        f"{doc['duration_seconds']}s",
        f"achieved:      {doc['achieved_rps']} rps "
        f"({requests['completed']}/{requests['issued']} completed, "
        f"{requests['rejected']} rejected, "
        f"{requests['timeout']} timed out, "
        f"{requests['failed']} failed)",
        f"warm/cold:     {doc['warm']['warm_requests']}/"
        f"{doc['warm']['cold_requests']}",
        f"queue:         peak depth {doc['queue']['peak_depth']}"
        + (f" (limit {doc['queue']['limit']})"
           if doc['queue']['limit'] else " (unbounded)"),
    ]
    if latency.get("count"):
        lines.append(
            f"latency ms:    p50={latency['p50']} p95={latency['p95']} "
            f"p99={latency['p99']} max={latency['max']} "
            f"mean={latency['mean']}")
    if "saturation_rps" in doc:
        lines.append(f"saturation:    {doc['saturation_rps']} rps")
    lines.append(f"digest:        {doc['outcome_digest']} "
                 f"(simulated outcomes; stable across repeats)")
    cold = doc.get("cold_baseline")
    if cold:
        cold_latency = cold["latency_ms"]
        if cold_latency.get("count"):
            lines.append(
                f"cold baseline: p50={cold_latency['p50']} "
                f"p95={cold_latency['p95']} "
                f"max={cold_latency['max']} ms at "
                f"{cold['achieved_rps']} rps "
                f"(digest {cold['outcome_digest']})")
    if doc.get("interrupted"):
        lines.append("INTERRUPTED: partial results above")
    return "\n".join(lines)
