"""One pre-warmed VM: load/verify/compile once, run many requests.

Warm-up protocol (once per ``WarmVM``):

1. build the VM exactly as the batch harness does (runtime + workload
   archives, stdlib + workload native libraries, no agents);
2. **eager-load** every class in every archive on a throwaway
   bootstrap thread — all ``<clinit>`` initializers run here, and the
   loading/verification cycles are charged to a thread that is
   discarded before the first request;
3. snapshot the statics (:mod:`repro.service.snapshot`) — the pristine
   post-``<clinit>`` state every request starts from;
4. run **priming rounds** of the workload (each preceded by a request
   reset) until the JIT state settles: no new methods compiled, no new
   templates translated or invalidated between consecutive rounds.
   After settling, every subsequent request executes identically.

Per-request reset (:meth:`WarmVM._reset`) restores isolation without
discarding warmth.  The identity invariants are strict because the
template tier binds objects into generated closures: the ``Heap``
resets *in place* (same object, intern table kept), per-class statics
dicts are mutated, never replaced, and loaded classes / compiled
methods / resolved natives are reused as-is.  Fresh per request: the
thread manager (and thus every cycle counter), the console, the
simulated file system, the JVMTI host, and all VM statistics.

Warm reuse is restricted to ``cores=1``: the preemptive scheduler is
created at VM construction and bound into template closures, so
multi-core requests take the cold path (:func:`run_cold`).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Optional

from repro.errors import ServiceError
from repro.jit.policy import JitPolicy
from repro.jni.stdlib import build_java_library
from repro.jvm.machine import JavaVM, VMConfig
from repro.jvm.threads import ThreadState
from repro.jvmti.host import JVMTIHost
from repro.launcher import runtime_archive
from repro.observability import logging as obs_logging
from repro.workloads import get_workload
from repro.workloads.base import MetricKind, Workload

log = obs_logging.get_logger("service")

#: Priming rounds before giving up on JIT settlement (each round is
#: one full workload run; two rounds suffice for every shipped
#: workload — the cap only guards against pathological archives).
MAX_PRIMING_ROUNDS = 6


def _console_checksum(console) -> str:
    """Digest of the run's console output — the per-request
    determinism witness (workloads print their checksums here)."""
    digest = hashlib.sha256("\n".join(console).encode("utf-8"))
    return digest.hexdigest()[:16]


def _jit_state(vm: JavaVM) -> tuple:
    return (vm.jit.compile_count, vm.jit.templates_translated,
            vm.jit.code_cache.invalidated)


def _collect_outcome(vm: JavaVM, workload: Workload, warm: bool,
                     host_seconds: float,
                     templates_delta: int,
                     compiles_delta: int) -> Dict:
    """The JSON-safe per-request result document."""
    check = workload.validate(vm)
    operations = None
    if workload.metric is MetricKind.THROUGHPUT:
        operations = workload.operations(vm)
    ok = check.ok and not vm.thread_deaths
    detail = check.detail
    if vm.thread_deaths:
        detail = "; ".join(vm.thread_deaths)
    return {
        "workload": workload.name,
        "ok": ok,
        "detail": detail,
        "warm": warm,
        "cycles": vm.total_cycles,
        "instructions": vm.instructions_retired,
        "operations": operations,
        "checksum": _console_checksum(vm.console),
        "classes_loaded": vm.loader.classes_loaded,
        "methods_verified": vm.methods_verified,
        "templates_translated": templates_delta,
        "methods_compiled": compiles_delta,
        "host_seconds": round(host_seconds, 6),
    }


def _build_vm(workload: Workload, tier: str, verify: str,
              cores: int = 1) -> JavaVM:
    vm = JavaVM(VMConfig(
        jit_policy=JitPolicy(template_tier=(tier == "template")),
        verify=verify, cores=cores))
    vm.native_registry.register(build_java_library(), preload=True)
    for library in workload.native_libraries():
        vm.native_registry.register(library)
    vm.loader.add_boot_archive(runtime_archive())
    vm.loader.add_classpath_archive(workload.archive)
    workload.install_files(vm)
    return vm


def run_cold(name: str, scale: int = 1, tier: str = "template",
             verify: str = "structural", cores: int = 1,
             workload: Optional[Workload] = None) -> Dict:
    """One cold request: fresh VM, lazy loading, discarded afterwards.

    The pool's path for multi-core requests and for the
    ``--cold-start-baseline`` experiment; produces the same outcome
    document as :meth:`WarmVM.run` so the two are directly comparable.
    """
    workload = workload or get_workload(name, scale=scale)
    started = time.perf_counter()
    vm = _build_vm(workload, tier, verify, cores)
    vm.launch(workload.main_class)
    return _collect_outcome(
        vm, workload, warm=False,
        host_seconds=time.perf_counter() - started,
        templates_delta=vm.jit.templates_translated,
        compiles_delta=vm.jit.compile_count)


class WarmVM:
    """A single pre-warmed VM serving one (workload, scale, tier,
    verify) configuration, one request at a time."""

    def __init__(self, name: str, scale: int = 1,
                 tier: str = "template", verify: str = "structural"):
        self.name = name
        self.scale = scale
        self.tier = tier
        self.verify = verify
        self.workload = get_workload(name, scale=scale)
        self.requests_served = 0
        self.priming_rounds = 0
        self.settled = False
        self._vm: Optional[JavaVM] = None
        self._statics = None

    # -- warm-up --------------------------------------------------------------

    def warmup(self) -> "WarmVM":
        """Build, eager-load, snapshot, and prime; returns self."""
        vm = _build_vm(self.workload, self.tier, self.verify, cores=1)
        self._vm = vm
        self._eager_load(vm)
        from repro.service.snapshot import snapshot_statics
        self._statics = snapshot_statics(vm.loader)
        self._prime(vm)
        return self

    def _eager_load(self, vm: JavaVM) -> None:
        """Load every archive class on a throwaway bootstrap thread.

        After this, no request can trigger a class load: anything the
        classpath can resolve (including VM-synthesized exception
        classes) is already loaded, verified, and initialized.
        """
        bootstrap = vm.threads.create("warmup")
        bootstrap.state = ThreadState.RUNNING
        vm.threads.current = bootstrap
        for group in (vm.loader.bootclasspath_prepend,
                      vm.loader.bootclasspath, vm.loader.classpath):
            for archive in group:
                for class_name in archive.names():
                    vm.loader.load(class_name)
        # a <clinit> could in principle start threads; drain them so
        # the warm state is quiescent
        while vm.threads.has_queued:
            vm.run_thread(vm.threads.dequeue())
        vm.threads.current = None

    def _prime(self, vm: JavaVM) -> None:
        """Run the workload until the JIT stops changing state.

        Each round starts from a request reset, so the rounds are the
        same runs requests will perform; once a round compiles or
        translates nothing new, every later request is uniform.
        """
        previous = None
        for round_number in range(1, MAX_PRIMING_ROUNDS + 1):
            self.priming_rounds = round_number
            outcome = self.run(primed=False)
            if not outcome["ok"]:
                raise ServiceError(
                    f"warm-up run of {self.name!r} failed validation: "
                    f"{outcome['detail']}")
            state = _jit_state(vm)
            if state == previous:
                self.settled = True
                break
            previous = state
        if not self.settled:
            log.warning("warm VM did not settle", workload=self.name,
                        rounds=self.priming_rounds)

    # -- per-request execution ------------------------------------------------

    def _reset(self) -> None:
        """Per-request isolation: fresh mutable state, shared warmth.

        In-place resets (template closures bind these objects): heap,
        per-class statics dicts.  Replaced wholesale (nothing binds
        them): thread manager, JVMTI host, file system content.
        Retained: loaded classes, verified methods, compiled flags and
        cost arrays, installed templates, quickened call-site caches,
        resolved natives, the intern table.
        """
        from repro.jvm.threads import ThreadManager
        from repro.service.snapshot import restore_statics

        vm = self._vm
        vm._launched = False
        vm._dead = False
        vm.heap.reset()
        restore_statics(vm.loader, self._statics)
        vm.threads = ThreadManager()
        vm.console.clear()
        vm.files.clear()
        self.workload.install_files(vm)
        vm.thread_deaths.clear()
        vm.native_methods_invoked = set()
        vm.jvmti = JVMTIHost(vm, vm.config.jvmti_version)
        vm.instructions_retired = 0
        vm.method_invocations = 0
        vm.native_invocations = 0
        vm.jni_invocations = 0
        vm.ic_hits = 0
        vm.ic_misses = 0
        vm.pic_hits = 0
        vm.pic_megamorphic = 0
        vm.pic_mono_to_poly = 0
        vm.pic_poly_to_mega = 0
        vm.methods_verified = 0
        vm.pcl.reads = 0
        vm.loader.classes_loaded = 0
        # per-method hotness counters restart so every request crosses
        # (or does not cross) JIT thresholds identically
        for cls in vm.loader.loaded_classes():
            for method in cls.methods.values():
                method.invocation_count = 0
                method.backedge_count = 0
                method.template_deopt_count = 0
                method.osr_entry_count = 0

    def run(self, primed: bool = True) -> Dict:
        """Serve one request on the warm VM."""
        vm = self._vm
        if vm is None:
            raise ServiceError(
                f"WarmVM for {self.name!r} was never warmed up")
        started = time.perf_counter()
        self._reset()
        templates_before = vm.jit.templates_translated
        compiles_before = vm.jit.compile_count
        vm.launch(self.workload.main_class)
        outcome = _collect_outcome(
            vm, self.workload, warm=primed,
            host_seconds=time.perf_counter() - started,
            templates_delta=(vm.jit.templates_translated
                             - templates_before),
            compiles_delta=vm.jit.compile_count - compiles_before)
        if primed:
            self.requests_served += 1
        return outcome
