"""Structural bytecode verifier.

Checks, per method:

* branch targets and exception-table ranges are valid instruction indices;
* control flow cannot fall off the end of the code;
* operand-stack depth is consistent: a dataflow pass over the code proves
  every instruction has enough operands and that all paths reaching an
  instruction agree on stack depth (exception handlers start at depth 1 —
  the thrown object);
* return opcodes match the method descriptor (value vs ``void``);
* local indices stay below ``max_locals``.

Types are not tracked here (the typed abstract-interpretation pass lives
in :mod:`repro.analysis.typed_verifier`); this is a stack-discipline
verifier in the spirit of the JVM's, scaled to the ISA.  Every failure
raises a structured :class:`~repro.errors.VerifyError` naming the owning
class, method, instruction index, and mnemonic where known.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode.instructions import Instruction
from repro.bytecode.opcodes import INVOKE_OPS, Op, OperandKind, VARIABLE
from repro.classfile.constant_pool import CpMethodRef
from repro.errors import VerifyError


def _stack_effect(ins: Instruction, method, constant_pool,
                  pc: Optional[int] = None,
                  class_name: Optional[str] = None):
    """Return (pops, pushes) for ``ins``, resolving variable effects."""
    spec = ins.spec
    if spec.pops != VARIABLE:
        return spec.pops, spec.pushes
    if ins.op in INVOKE_OPS:
        entry = constant_pool.get_typed(ins.operand, CpMethodRef)
        from repro.classfile.members import arg_slot_count, returns_value
        pops = arg_slot_count(entry.descriptor)
        if ins.op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL):
            pops += 1
        pushes = 1 if returns_value(entry.descriptor) else 0
        return pops, pushes
    raise VerifyError(
        "cannot compute stack effect",
        class_name=class_name,
        method=f"{method.name}{method.descriptor}",
        pc=pc,
        mnemonic=spec.mnemonic)


def verify_method(method, constant_pool,
                  class_name: Optional[str] = None) -> int:
    """Verify one method; returns the maximum operand-stack depth.

    ``method`` is a :class:`~repro.classfile.members.MethodInfo` whose
    branch operands are already resolved; ``constant_pool`` is the owning
    class's pool and ``class_name`` the owning class (named in
    diagnostics when given).  Raises :class:`~repro.errors.VerifyError`
    on failure.
    """
    where = f"{method.name}{method.descriptor}"

    def fail(reason, pc=None, mnemonic=None):
        raise VerifyError(reason, class_name=class_name, method=where,
                          pc=pc, mnemonic=mnemonic)

    if method.is_native:
        return 0
    code = method.code
    if not code:
        fail("method has empty code")
    n = len(code)

    def check_target(index, what, pc=None):
        if not isinstance(index, int) or index < 0 or index >= n:
            fail(f"{what} {index!r} out of range", pc=pc)

    # structural checks -----------------------------------------------------
    for pc, ins in enumerate(code):
        mnemonic = ins.spec.mnemonic
        if ins.spec.operand is OperandKind.LABEL:
            if isinstance(ins.operand, str):
                fail(f"unresolved label {ins.operand!r}", pc=pc,
                     mnemonic=mnemonic)
            check_target(ins.operand, "branch target", pc=pc)
        if ins.spec.operand is OperandKind.LOCAL and \
                ins.operand >= method.max_locals:
            fail(f"local index {ins.operand} >= max_locals "
                 f"{method.max_locals}", pc=pc, mnemonic=mnemonic)
        if ins.spec.operand is OperandKind.IINC and \
                ins.operand[0] >= method.max_locals:
            fail(f"iinc index {ins.operand[0]} >= max_locals "
                 f"{method.max_locals}", pc=pc, mnemonic=mnemonic)
        if ins.op in (Op.IRETURN, Op.ARETURN) and not method.returns_value:
            fail("value return from void method", pc=pc, mnemonic=mnemonic)
        if ins.op is Op.RETURN and method.returns_value:
            fail("void return from value-returning method", pc=pc,
                 mnemonic=mnemonic)
    if not code[-1].spec.ends_block:
        fail("control falls off the end of the method", pc=n - 1)

    for entry in method.exception_table:
        check_target(entry.start, "exception-table start")
        check_target(entry.handler, "exception-table handler")
        if not isinstance(entry.end, int) or entry.end < entry.start or \
                entry.end > n:
            fail(f"bad exception-table range [{entry.start}, {entry.end})")

    # stack dataflow ---------------------------------------------------------
    depth_at: Dict[int, int] = {0: 0}
    worklist: List[int] = [0]
    for entry in method.exception_table:
        if entry.handler not in depth_at:
            depth_at[entry.handler] = 1
            worklist.append(entry.handler)
    max_depth = 1 if method.exception_table else 0

    def flow_to(target: int, depth: int, pc=None):
        known = depth_at.get(target)
        if known is None:
            depth_at[target] = depth
            worklist.append(target)
        elif known != depth:
            fail(f"inconsistent stack depth at pc {target} "
                 f"({known} vs {depth})", pc=pc)

    visited = set()
    while worklist:
        pc = worklist.pop()
        if pc in visited:
            continue
        visited.add(pc)
        depth = depth_at[pc]
        while True:
            ins = code[pc]
            pops, pushes = _stack_effect(ins, method, constant_pool,
                                         pc=pc, class_name=class_name)
            if depth < pops:
                fail(f"stack underflow ({ins.spec.mnemonic}: needs "
                     f"{pops}, have {depth})", pc=pc,
                     mnemonic=ins.spec.mnemonic)
            depth = depth - pops + pushes
            if depth > max_depth:
                max_depth = depth
            if ins.spec.operand is OperandKind.LABEL:
                flow_to(ins.operand, depth, pc=pc)
            if ins.spec.ends_block:
                break
            next_pc = pc + 1
            if next_pc >= n:
                fail("control falls off the end of the method", pc=pc)
            # fall through to the next instruction
            known = depth_at.get(next_pc)
            if known is None:
                depth_at[next_pc] = depth
            elif known != depth:
                fail(f"inconsistent stack depth at pc {next_pc} "
                     f"({known} vs {depth})", pc=pc)
            if next_pc in visited:
                break
            visited.add(next_pc)
            pc = next_pc

    return max_depth


def verify_class(cf) -> int:
    """Verify every non-native method of a class file; returns the
    number of methods checked."""
    checked = 0
    for method in cf.methods:
        verify_method(method, cf.constant_pool, class_name=cf.name)
        checked += 1
    return checked
