"""The instruction set of the simulated virtual machine.

The ISA is a compact, JVM-flavoured stack machine.  Deliberate
simplifications relative to the real JVM (documented here so the rest of
the system can rely on them):

* Every value occupies **one** operand-stack slot and one local-variable
  slot; there are no two-slot ``long``/``double`` values.  Numeric values
  are Python ints and floats.
* Arithmetic opcodes in the ``I`` family are polymorphic over ints and
  floats, except :attr:`Op.IDIV` / :attr:`Op.IREM` which implement Java
  integer semantics (truncation toward zero, ``ArithmeticException`` on
  division by zero).  :attr:`Op.FDIV` is true division.
* There are no interfaces; :attr:`Op.INVOKEVIRTUAL` performs dynamic
  dispatch over the single-inheritance class hierarchy.
* Array element kinds are declared at allocation time via
  :class:`ArrayKind`; stores are normalised per kind (e.g. byte arrays
  wrap to the signed 8-bit range, as in Java).

Each opcode has an :class:`OpcodeSpec` describing its mnemonic, operand
kind, static stack effect and cost class.  Variable stack effects
(invokes and returns) are marked with ``pops=VARIABLE``; the verifier
resolves them from the method descriptor in the constant pool.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Sentinel stack effect for opcodes whose pops/pushes depend on operands.
VARIABLE = -1


class Op(enum.IntEnum):
    """Opcode numbering; values are stable and used by the serializer."""

    NOP = 0x00
    ICONST = 0x01        # push immediate int (s4 operand)
    LDC = 0x02           # push constant-pool constant (int/float/string)
    ACONST_NULL = 0x03

    ILOAD = 0x10         # push numeric local
    ISTORE = 0x11
    ALOAD = 0x12         # push reference local
    ASTORE = 0x13
    IINC = 0x14          # locals[idx] += delta; operand packs (idx, delta)

    POP = 0x20
    DUP = 0x21
    DUP_X1 = 0x22
    SWAP = 0x23

    IADD = 0x30
    ISUB = 0x31
    IMUL = 0x32
    IDIV = 0x33          # Java int division
    IREM = 0x34
    INEG = 0x35
    ISHL = 0x36
    ISHR = 0x37
    IUSHR = 0x38
    IAND = 0x39
    IOR = 0x3A
    IXOR = 0x3B
    FDIV = 0x3C          # true (float) division
    I2F = 0x3D
    F2I = 0x3E           # truncate toward zero
    FCMP = 0x3F          # push -1/0/1

    GOTO = 0x50
    IFEQ = 0x51
    IFNE = 0x52
    IFLT = 0x53
    IFLE = 0x54
    IFGT = 0x55
    IFGE = 0x56
    IF_ICMPEQ = 0x57
    IF_ICMPNE = 0x58
    IF_ICMPLT = 0x59
    IF_ICMPLE = 0x5A
    IF_ICMPGT = 0x5B
    IF_ICMPGE = 0x5C
    IFNULL = 0x5D
    IFNONNULL = 0x5E
    IF_ACMPEQ = 0x5F
    IF_ACMPNE = 0x60

    NEW = 0x70           # cp class ref
    GETFIELD = 0x71      # cp field ref
    PUTFIELD = 0x72
    GETSTATIC = 0x73
    PUTSTATIC = 0x74
    INSTANCEOF = 0x75
    CHECKCAST = 0x76

    NEWARRAY = 0x80      # ArrayKind operand; length popped
    IALOAD = 0x81        # numeric array load
    IASTORE = 0x82
    AALOAD = 0x83        # reference array load
    AASTORE = 0x84
    ARRAYLENGTH = 0x85

    INVOKESTATIC = 0x90  # cp method ref
    INVOKEVIRTUAL = 0x91
    INVOKESPECIAL = 0x92
    RETURN = 0x93
    IRETURN = 0x94
    ARETURN = 0x95

    ATHROW = 0xA0
    MONITORENTER = 0xA1
    MONITOREXIT = 0xA2


class OperandKind(enum.Enum):
    """What, if anything, follows the opcode."""

    NONE = "none"
    IMM = "imm"          # signed 32-bit immediate
    LOCAL = "local"      # local-variable index (u2)
    CP = "cp"            # constant-pool index (u2)
    LABEL = "label"      # branch target (label name pre-assembly, pc after)
    ARRAY_KIND = "array_kind"
    IINC = "iinc"        # (local index, signed delta) pair


class ArrayKind(enum.IntEnum):
    """Element kind of a simulated array."""

    INT = 0
    FLOAT = 1
    BYTE = 2
    CHAR = 3
    REF = 4


@dataclass(frozen=True)
class OpcodeSpec:
    """Static metadata for one opcode."""

    op: "Op"
    mnemonic: str
    operand: OperandKind
    pops: int
    pushes: int
    cost_class: str
    is_branch: bool = False
    ends_block: bool = False  # unconditional control transfer (no fallthrough)


def _spec(op, operand, pops, pushes, cost, branch=False, ends=False):
    return OpcodeSpec(op, op.name.lower(), operand, pops, pushes, cost,
                      is_branch=branch, ends_block=ends)


#: Per-opcode metadata, keyed by :class:`Op`.
SPECS = {
    Op.NOP: _spec(Op.NOP, OperandKind.NONE, 0, 0, "simple"),
    Op.ICONST: _spec(Op.ICONST, OperandKind.IMM, 0, 1, "const"),
    Op.LDC: _spec(Op.LDC, OperandKind.CP, 0, 1, "const"),
    Op.ACONST_NULL: _spec(Op.ACONST_NULL, OperandKind.NONE, 0, 1, "const"),

    Op.ILOAD: _spec(Op.ILOAD, OperandKind.LOCAL, 0, 1, "load"),
    Op.ISTORE: _spec(Op.ISTORE, OperandKind.LOCAL, 1, 0, "store"),
    Op.ALOAD: _spec(Op.ALOAD, OperandKind.LOCAL, 0, 1, "load"),
    Op.ASTORE: _spec(Op.ASTORE, OperandKind.LOCAL, 1, 0, "store"),
    Op.IINC: _spec(Op.IINC, OperandKind.IINC, 0, 0, "simple"),

    Op.POP: _spec(Op.POP, OperandKind.NONE, 1, 0, "simple"),
    Op.DUP: _spec(Op.DUP, OperandKind.NONE, 1, 2, "simple"),
    Op.DUP_X1: _spec(Op.DUP_X1, OperandKind.NONE, 2, 3, "simple"),
    Op.SWAP: _spec(Op.SWAP, OperandKind.NONE, 2, 2, "simple"),

    Op.IADD: _spec(Op.IADD, OperandKind.NONE, 2, 1, "alu"),
    Op.ISUB: _spec(Op.ISUB, OperandKind.NONE, 2, 1, "alu"),
    Op.IMUL: _spec(Op.IMUL, OperandKind.NONE, 2, 1, "mul"),
    Op.IDIV: _spec(Op.IDIV, OperandKind.NONE, 2, 1, "div"),
    Op.IREM: _spec(Op.IREM, OperandKind.NONE, 2, 1, "div"),
    Op.INEG: _spec(Op.INEG, OperandKind.NONE, 1, 1, "alu"),
    Op.ISHL: _spec(Op.ISHL, OperandKind.NONE, 2, 1, "alu"),
    Op.ISHR: _spec(Op.ISHR, OperandKind.NONE, 2, 1, "alu"),
    Op.IUSHR: _spec(Op.IUSHR, OperandKind.NONE, 2, 1, "alu"),
    Op.IAND: _spec(Op.IAND, OperandKind.NONE, 2, 1, "alu"),
    Op.IOR: _spec(Op.IOR, OperandKind.NONE, 2, 1, "alu"),
    Op.IXOR: _spec(Op.IXOR, OperandKind.NONE, 2, 1, "alu"),
    Op.FDIV: _spec(Op.FDIV, OperandKind.NONE, 2, 1, "div"),
    Op.I2F: _spec(Op.I2F, OperandKind.NONE, 1, 1, "alu"),
    Op.F2I: _spec(Op.F2I, OperandKind.NONE, 1, 1, "alu"),
    Op.FCMP: _spec(Op.FCMP, OperandKind.NONE, 2, 1, "alu"),

    Op.GOTO: _spec(Op.GOTO, OperandKind.LABEL, 0, 0, "branch",
                   branch=True, ends=True),
    Op.IFEQ: _spec(Op.IFEQ, OperandKind.LABEL, 1, 0, "branch", branch=True),
    Op.IFNE: _spec(Op.IFNE, OperandKind.LABEL, 1, 0, "branch", branch=True),
    Op.IFLT: _spec(Op.IFLT, OperandKind.LABEL, 1, 0, "branch", branch=True),
    Op.IFLE: _spec(Op.IFLE, OperandKind.LABEL, 1, 0, "branch", branch=True),
    Op.IFGT: _spec(Op.IFGT, OperandKind.LABEL, 1, 0, "branch", branch=True),
    Op.IFGE: _spec(Op.IFGE, OperandKind.LABEL, 1, 0, "branch", branch=True),
    Op.IF_ICMPEQ: _spec(Op.IF_ICMPEQ, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),
    Op.IF_ICMPNE: _spec(Op.IF_ICMPNE, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),
    Op.IF_ICMPLT: _spec(Op.IF_ICMPLT, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),
    Op.IF_ICMPLE: _spec(Op.IF_ICMPLE, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),
    Op.IF_ICMPGT: _spec(Op.IF_ICMPGT, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),
    Op.IF_ICMPGE: _spec(Op.IF_ICMPGE, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),
    Op.IFNULL: _spec(Op.IFNULL, OperandKind.LABEL, 1, 0, "branch",
                     branch=True),
    Op.IFNONNULL: _spec(Op.IFNONNULL, OperandKind.LABEL, 1, 0, "branch",
                        branch=True),
    Op.IF_ACMPEQ: _spec(Op.IF_ACMPEQ, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),
    Op.IF_ACMPNE: _spec(Op.IF_ACMPNE, OperandKind.LABEL, 2, 0, "branch",
                        branch=True),

    Op.NEW: _spec(Op.NEW, OperandKind.CP, 0, 1, "alloc"),
    Op.GETFIELD: _spec(Op.GETFIELD, OperandKind.CP, 1, 1, "field"),
    Op.PUTFIELD: _spec(Op.PUTFIELD, OperandKind.CP, 2, 0, "field"),
    Op.GETSTATIC: _spec(Op.GETSTATIC, OperandKind.CP, 0, 1, "field"),
    Op.PUTSTATIC: _spec(Op.PUTSTATIC, OperandKind.CP, 1, 0, "field"),
    Op.INSTANCEOF: _spec(Op.INSTANCEOF, OperandKind.CP, 1, 1, "field"),
    Op.CHECKCAST: _spec(Op.CHECKCAST, OperandKind.CP, 1, 1, "field"),

    Op.NEWARRAY: _spec(Op.NEWARRAY, OperandKind.ARRAY_KIND, 1, 1, "alloc"),
    Op.IALOAD: _spec(Op.IALOAD, OperandKind.NONE, 2, 1, "array"),
    Op.IASTORE: _spec(Op.IASTORE, OperandKind.NONE, 3, 0, "array"),
    Op.AALOAD: _spec(Op.AALOAD, OperandKind.NONE, 2, 1, "array"),
    Op.AASTORE: _spec(Op.AASTORE, OperandKind.NONE, 3, 0, "array"),
    Op.ARRAYLENGTH: _spec(Op.ARRAYLENGTH, OperandKind.NONE, 1, 1, "array"),

    Op.INVOKESTATIC: _spec(Op.INVOKESTATIC, OperandKind.CP, VARIABLE,
                           VARIABLE, "invoke"),
    Op.INVOKEVIRTUAL: _spec(Op.INVOKEVIRTUAL, OperandKind.CP, VARIABLE,
                            VARIABLE, "invoke"),
    Op.INVOKESPECIAL: _spec(Op.INVOKESPECIAL, OperandKind.CP, VARIABLE,
                            VARIABLE, "invoke"),
    Op.RETURN: _spec(Op.RETURN, OperandKind.NONE, 0, 0, "return", ends=True),
    Op.IRETURN: _spec(Op.IRETURN, OperandKind.NONE, 1, 0, "return",
                      ends=True),
    Op.ARETURN: _spec(Op.ARETURN, OperandKind.NONE, 1, 0, "return",
                      ends=True),

    Op.ATHROW: _spec(Op.ATHROW, OperandKind.NONE, 1, 0, "throw", ends=True),
    Op.MONITORENTER: _spec(Op.MONITORENTER, OperandKind.NONE, 1, 0,
                           "monitor"),
    Op.MONITOREXIT: _spec(Op.MONITOREXIT, OperandKind.NONE, 1, 0, "monitor"),
}

#: Opcodes that invoke a method (share resolution/dispatch machinery).
INVOKE_OPS = frozenset({Op.INVOKESTATIC, Op.INVOKEVIRTUAL, Op.INVOKESPECIAL})

#: Opcodes that conditionally branch (have both a target and fallthrough).
CONDITIONAL_BRANCHES = frozenset(
    op for op, spec in SPECS.items() if spec.is_branch and not spec.ends_block
)


def spec_for(op: Op) -> OpcodeSpec:
    """Return the :class:`OpcodeSpec` for ``op``."""
    return SPECS[op]
