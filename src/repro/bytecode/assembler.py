"""Builder API for authoring bytecode.

:class:`ClassAssembler` builds a :class:`~repro.classfile.classfile.ClassFile`;
:class:`MethodAssembler` (usually obtained as a context manager) builds one
method's code with symbolic labels.

Example::

    casm = ClassAssembler("demo.Counter")
    casm.field("count", static=True, default=0)
    with casm.method("bump", "(I)I", static=True) as m:
        m.getstatic("demo.Counter", "count")
        m.iload(0)
        m.iadd()
        m.dup()
        m.putstatic("demo.Counter", "count")
        m.ireturn()
    cf = casm.build()

Labels are plain strings: :meth:`MethodAssembler.label` marks the *next*
emitted instruction; branch helpers accept label names, which are resolved
to instruction indices when the method is finished.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.bytecode.instructions import ExceptionEntry, Instruction
from repro.bytecode.opcodes import ArrayKind, Op
from repro.classfile.classfile import ClassFile
from repro.classfile.constant_pool import (
    CpClass,
    CpFieldRef,
    CpFloat,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.classfile.members import (
    ACC_NATIVE,
    ACC_PUBLIC,
    ACC_STATIC,
    ACC_SYNCHRONIZED,
    FieldInfo,
    MethodInfo,
    parse_descriptor,
)
from repro.errors import BytecodeError


class MethodAssembler:
    """Accumulates instructions for one method.

    Usually used via ``with ClassAssembler.method(...) as m:``; on normal
    exit the method is finished (labels resolved, ``max_locals`` computed)
    and added to the class.
    """

    def __init__(self, owner: "ClassAssembler", name: str, descriptor: str,
                 flags: int):
        self._owner = owner
        self._name = name
        self._descriptor = descriptor
        self._flags = flags
        self._code: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._exception_entries: List[ExceptionEntry] = []
        self._max_local_seen = -1
        self._finished = False
        params, _ = parse_descriptor(descriptor)
        self._arg_slots = len(params) + (0 if flags & ACC_STATIC else 1)

    # -- low-level emission --------------------------------------------------

    def emit(self, op: Op, operand=None) -> "MethodAssembler":
        """Append one instruction; returns self for chaining."""
        if self._finished:
            raise BytecodeError(
                f"method {self._name} already finished")
        self._code.append(Instruction(op, operand))
        return self

    def label(self, name: str) -> "MethodAssembler":
        """Bind ``name`` to the position of the next instruction."""
        if name in self._labels:
            raise BytecodeError(
                f"duplicate label {name!r} in method {self._name}")
        self._labels[name] = len(self._code)
        return self

    def _track_local(self, index: int) -> None:
        if index > self._max_local_seen:
            self._max_local_seen = index

    # -- constants -------------------------------------------------------------

    def iconst(self, value: int) -> "MethodAssembler":
        """Push an integer immediate."""
        return self.emit(Op.ICONST, value)

    def ldc(self, value: Union[int, float, str]) -> "MethodAssembler":
        """Push a constant-pool constant (int, float, or string)."""
        if isinstance(value, bool):
            raise BytecodeError("ldc does not accept bool")
        if isinstance(value, int):
            index = self._owner.cp(CpInt(value))
        elif isinstance(value, float):
            index = self._owner.cp(CpFloat(value))
        elif isinstance(value, str):
            index = self._owner.cp(CpString(value))
        else:
            raise BytecodeError(f"ldc cannot load {value!r}")
        return self.emit(Op.LDC, index)

    def aconst_null(self) -> "MethodAssembler":
        return self.emit(Op.ACONST_NULL)

    # -- locals ------------------------------------------------------------------

    def iload(self, index: int) -> "MethodAssembler":
        self._track_local(index)
        return self.emit(Op.ILOAD, index)

    def istore(self, index: int) -> "MethodAssembler":
        self._track_local(index)
        return self.emit(Op.ISTORE, index)

    def aload(self, index: int) -> "MethodAssembler":
        self._track_local(index)
        return self.emit(Op.ALOAD, index)

    def astore(self, index: int) -> "MethodAssembler":
        self._track_local(index)
        return self.emit(Op.ASTORE, index)

    def iinc(self, index: int, delta: int) -> "MethodAssembler":
        self._track_local(index)
        return self.emit(Op.IINC, (index, delta))

    # -- stack ------------------------------------------------------------------

    def pop(self) -> "MethodAssembler":
        return self.emit(Op.POP)

    def dup(self) -> "MethodAssembler":
        return self.emit(Op.DUP)

    def dup_x1(self) -> "MethodAssembler":
        return self.emit(Op.DUP_X1)

    def swap(self) -> "MethodAssembler":
        return self.emit(Op.SWAP)

    # -- arithmetic ---------------------------------------------------------------

    def iadd(self) -> "MethodAssembler":
        return self.emit(Op.IADD)

    def isub(self) -> "MethodAssembler":
        return self.emit(Op.ISUB)

    def imul(self) -> "MethodAssembler":
        return self.emit(Op.IMUL)

    def idiv(self) -> "MethodAssembler":
        return self.emit(Op.IDIV)

    def irem(self) -> "MethodAssembler":
        return self.emit(Op.IREM)

    def ineg(self) -> "MethodAssembler":
        return self.emit(Op.INEG)

    def ishl(self) -> "MethodAssembler":
        return self.emit(Op.ISHL)

    def ishr(self) -> "MethodAssembler":
        return self.emit(Op.ISHR)

    def iushr(self) -> "MethodAssembler":
        return self.emit(Op.IUSHR)

    def iand(self) -> "MethodAssembler":
        return self.emit(Op.IAND)

    def ior(self) -> "MethodAssembler":
        return self.emit(Op.IOR)

    def ixor(self) -> "MethodAssembler":
        return self.emit(Op.IXOR)

    def fdiv(self) -> "MethodAssembler":
        return self.emit(Op.FDIV)

    def i2f(self) -> "MethodAssembler":
        return self.emit(Op.I2F)

    def f2i(self) -> "MethodAssembler":
        return self.emit(Op.F2I)

    def fcmp(self) -> "MethodAssembler":
        return self.emit(Op.FCMP)

    # -- control flow ---------------------------------------------------------------

    def goto(self, target: str) -> "MethodAssembler":
        return self.emit(Op.GOTO, target)

    def ifeq(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFEQ, target)

    def ifne(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFNE, target)

    def iflt(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFLT, target)

    def ifle(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFLE, target)

    def ifgt(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFGT, target)

    def ifge(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFGE, target)

    def if_icmpeq(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ICMPEQ, target)

    def if_icmpne(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ICMPNE, target)

    def if_icmplt(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ICMPLT, target)

    def if_icmple(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ICMPLE, target)

    def if_icmpgt(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ICMPGT, target)

    def if_icmpge(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ICMPGE, target)

    def ifnull(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFNULL, target)

    def ifnonnull(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IFNONNULL, target)

    def if_acmpeq(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ACMPEQ, target)

    def if_acmpne(self, target: str) -> "MethodAssembler":
        return self.emit(Op.IF_ACMPNE, target)

    # -- objects and fields -------------------------------------------------------------

    def new(self, class_name: str) -> "MethodAssembler":
        return self.emit(Op.NEW, self._owner.cp(CpClass(class_name)))

    def getfield(self, class_name: str, field_name: str) -> "MethodAssembler":
        return self.emit(Op.GETFIELD,
                         self._owner.cp(CpFieldRef(class_name, field_name)))

    def putfield(self, class_name: str, field_name: str) -> "MethodAssembler":
        return self.emit(Op.PUTFIELD,
                         self._owner.cp(CpFieldRef(class_name, field_name)))

    def getstatic(self, class_name: str,
                  field_name: str) -> "MethodAssembler":
        return self.emit(Op.GETSTATIC,
                         self._owner.cp(CpFieldRef(class_name, field_name)))

    def putstatic(self, class_name: str,
                  field_name: str) -> "MethodAssembler":
        return self.emit(Op.PUTSTATIC,
                         self._owner.cp(CpFieldRef(class_name, field_name)))

    def instanceof(self, class_name: str) -> "MethodAssembler":
        return self.emit(Op.INSTANCEOF, self._owner.cp(CpClass(class_name)))

    def checkcast(self, class_name: str) -> "MethodAssembler":
        return self.emit(Op.CHECKCAST, self._owner.cp(CpClass(class_name)))

    # -- arrays ------------------------------------------------------------------------

    def newarray(self, kind: ArrayKind) -> "MethodAssembler":
        return self.emit(Op.NEWARRAY, kind)

    def iaload(self) -> "MethodAssembler":
        return self.emit(Op.IALOAD)

    def iastore(self) -> "MethodAssembler":
        return self.emit(Op.IASTORE)

    def aaload(self) -> "MethodAssembler":
        return self.emit(Op.AALOAD)

    def aastore(self) -> "MethodAssembler":
        return self.emit(Op.AASTORE)

    def arraylength(self) -> "MethodAssembler":
        return self.emit(Op.ARRAYLENGTH)

    # -- calls --------------------------------------------------------------------------

    def invokestatic(self, class_name: str, name: str,
                     descriptor: str) -> "MethodAssembler":
        ref = CpMethodRef(class_name, name, descriptor)
        return self.emit(Op.INVOKESTATIC, self._owner.cp(ref))

    def invokevirtual(self, class_name: str, name: str,
                      descriptor: str) -> "MethodAssembler":
        ref = CpMethodRef(class_name, name, descriptor)
        return self.emit(Op.INVOKEVIRTUAL, self._owner.cp(ref))

    def invokespecial(self, class_name: str, name: str,
                      descriptor: str) -> "MethodAssembler":
        ref = CpMethodRef(class_name, name, descriptor)
        return self.emit(Op.INVOKESPECIAL, self._owner.cp(ref))

    def return_(self) -> "MethodAssembler":
        return self.emit(Op.RETURN)

    def ireturn(self) -> "MethodAssembler":
        return self.emit(Op.IRETURN)

    def areturn(self) -> "MethodAssembler":
        return self.emit(Op.ARETURN)

    # -- exceptions and monitors -------------------------------------------------------

    def athrow(self) -> "MethodAssembler":
        return self.emit(Op.ATHROW)

    def monitorenter(self) -> "MethodAssembler":
        return self.emit(Op.MONITORENTER)

    def monitorexit(self) -> "MethodAssembler":
        return self.emit(Op.MONITOREXIT)

    def try_catch(self, start: str, end: str, handler: str,
                  catch_type: Optional[str] = None) -> "MethodAssembler":
        """Register an exception-table row over label range
        [``start``, ``end``) with handler ``handler``.  ``catch_type`` of
        ``None`` catches any throwable (used for ``finally`` blocks)."""
        self._exception_entries.append(
            ExceptionEntry(start, end, handler, catch_type))
        return self

    # -- finishing ----------------------------------------------------------------------

    def _resolve_label(self, name) -> int:
        if isinstance(name, int):
            return name
        try:
            return self._labels[name]
        except KeyError:
            raise BytecodeError(
                f"undefined label {name!r} in method {self._name}")

    def finish(self) -> MethodInfo:
        """Resolve labels and produce the :class:`MethodInfo`."""
        if self._finished:
            raise BytecodeError(f"method {self._name} already finished")
        self._finished = True
        code = []
        for ins in self._code:
            if ins.spec.operand.name == "LABEL" and \
                    isinstance(ins.operand, str):
                code.append(Instruction(ins.op,
                                        self._resolve_label(ins.operand)))
            else:
                code.append(ins)
        table = [
            ExceptionEntry(self._resolve_label(e.start),
                           self._resolve_label(e.end),
                           self._resolve_label(e.handler),
                           e.catch_type)
            for e in self._exception_entries
        ]
        max_locals = max(self._arg_slots, self._max_local_seen + 1)
        method = MethodInfo(self._name, self._descriptor, self._flags,
                            max_locals=max_locals, code=code,
                            exception_table=table)
        self._owner._install(method)
        return method

    # -- context-manager protocol ----------------------------------------------------

    def __enter__(self) -> "MethodAssembler":
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.finish()
        return False


class ClassAssembler:
    """Builds one :class:`ClassFile`."""

    def __init__(self, name: str, super_name: str = "java.lang.Object",
                 flags: int = ACC_PUBLIC):
        self._cf = ClassFile(name, super_name, flags)

    @property
    def name(self) -> str:
        return self._cf.name

    def cp(self, entry) -> int:
        """Add ``entry`` to the constant pool; return its index."""
        return self._cf.constant_pool.add(entry)

    def field(self, name: str, static: bool = False, default=None,
              flags: int = ACC_PUBLIC) -> FieldInfo:
        """Declare a field."""
        if static:
            flags |= ACC_STATIC
        return self._cf.add_field(FieldInfo(name, flags, default))

    def method(self, name: str, descriptor: str, static: bool = False,
               flags: int = ACC_PUBLIC,
               synchronized: bool = False) -> MethodAssembler:
        """Start assembling a bytecode method; use as a context manager."""
        if static:
            flags |= ACC_STATIC
        if synchronized:
            flags |= ACC_SYNCHRONIZED
        return MethodAssembler(self, name, descriptor, flags)

    def native_method(self, name: str, descriptor: str, static: bool = False,
                      flags: int = ACC_PUBLIC) -> MethodInfo:
        """Declare a ``native`` method (no code)."""
        if static:
            flags |= ACC_STATIC
        flags |= ACC_NATIVE
        params, _ = parse_descriptor(descriptor)
        max_locals = len(params) + (0 if flags & ACC_STATIC else 1)
        method = MethodInfo(name, descriptor, flags, max_locals=max_locals,
                            code=None)
        self._cf.add_method(method)
        return method

    def _install(self, method: MethodInfo) -> None:
        self._cf.add_method(method)

    def build(self, verify: bool = True) -> ClassFile:
        """Return the finished :class:`ClassFile` (verified by default)."""
        if verify:
            from repro.bytecode.verifier import verify_class
            verify_class(self._cf)
        return self._cf
