"""Instruction representation.

An :class:`Instruction` is one decoded opcode plus its operand.  Before
assembly, branch operands are label *names* (strings); the assembler
resolves them to integer instruction indices (the interpreter addresses
code by instruction index, not byte offset — the serializer re-encodes
indices as it writes code attributes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.bytecode.opcodes import Op, OperandKind, SPECS
from repro.errors import BytecodeError


@dataclass
class Instruction:
    """One instruction: ``op`` plus an operand whose meaning depends on
    the opcode's :class:`~repro.bytecode.opcodes.OperandKind`.

    * ``IMM`` — int immediate
    * ``LOCAL`` — int local index
    * ``CP`` — int constant-pool index
    * ``LABEL`` — str label (unresolved) or int target index (resolved)
    * ``ARRAY_KIND`` — :class:`~repro.bytecode.opcodes.ArrayKind`
    * ``IINC`` — ``(local_index, delta)`` tuple
    * ``NONE`` — must be ``None``
    """

    op: Op
    operand: Any = None
    #: Interpreter quickening cache: the resolved form of a constant-pool
    #: operand (field name, method ref + inline cache, loaded class,
    #: constant value), filled on first execution of this call site.
    #: Classes are immutable after link, so the cache is never
    #: invalidated.  Not part of the instruction's identity and never
    #: serialized.
    quick: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        spec = SPECS.get(self.op)
        if spec is None:
            raise BytecodeError(f"unknown opcode {self.op!r}")
        kind = spec.operand
        if kind is OperandKind.NONE and self.operand is not None:
            raise BytecodeError(
                f"{spec.mnemonic} takes no operand, got {self.operand!r}")
        if kind is not OperandKind.NONE and self.operand is None:
            raise BytecodeError(f"{spec.mnemonic} requires an operand")
        if kind is OperandKind.IINC:
            ok = (isinstance(self.operand, tuple) and len(self.operand) == 2
                  and all(isinstance(x, int) for x in self.operand))
            if not ok:
                raise BytecodeError(
                    f"iinc operand must be (local, delta), got "
                    f"{self.operand!r}")
        elif kind in (OperandKind.IMM, OperandKind.LOCAL, OperandKind.CP):
            if not isinstance(self.operand, int) or isinstance(
                    self.operand, bool):
                raise BytecodeError(
                    f"{spec.mnemonic} operand must be int, got "
                    f"{self.operand!r}")
            if kind in (OperandKind.LOCAL, OperandKind.CP) and \
                    self.operand < 0:
                raise BytecodeError(
                    f"{spec.mnemonic} operand must be non-negative, got "
                    f"{self.operand}")

    @property
    def spec(self):
        """The opcode's static metadata."""
        return SPECS[self.op]

    @property
    def is_resolved_branch(self) -> bool:
        """True when a LABEL operand has been resolved to an index."""
        return (self.spec.operand is OperandKind.LABEL
                and isinstance(self.operand, int))

    def __repr__(self):  # pragma: no cover - debug aid
        if self.operand is None:
            return f"<{self.spec.mnemonic}>"
        return f"<{self.spec.mnemonic} {self.operand!r}>"


@dataclass(frozen=True)
class ExceptionEntry:
    """One row of a method's exception table.

    ``start``/``end`` delimit the protected instruction range
    (``start`` inclusive, ``end`` exclusive, as instruction indices once
    resolved), ``handler`` is the handler entry point, and ``catch_type``
    is the class name of the caught exception (``None`` catches
    everything — used for the synthetic ``finally`` in instrumentation
    wrappers).
    """

    start: Any   # label name pre-assembly, int index after
    end: Any
    handler: Any
    catch_type: Optional[str] = None
