"""Human-readable bytecode listings, for debugging and documentation."""

from __future__ import annotations

from typing import List

from repro.bytecode.opcodes import OperandKind
from repro.classfile.constant_pool import (
    CpClass,
    CpFieldRef,
    CpFloat,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.classfile.members import flags_to_string


def _format_cp_entry(entry) -> str:
    if isinstance(entry, CpInt) or isinstance(entry, CpFloat):
        return repr(entry.value)
    if isinstance(entry, CpString):
        return repr(entry.value)
    if isinstance(entry, CpClass):
        return entry.name
    if isinstance(entry, CpFieldRef):
        return f"{entry.class_name}.{entry.field_name}"
    if isinstance(entry, CpMethodRef):
        return f"{entry.class_name}.{entry.method_name}{entry.descriptor}"
    return repr(entry)


def disassemble_method(method, constant_pool) -> str:
    """Return a listing of one method."""
    header = (f"{flags_to_string(method.flags)} "
              f"{method.name}{method.descriptor}  "
              f"(max_locals={method.max_locals})")
    if method.is_native:
        return header + "\n    <native>"
    lines: List[str] = [header]
    for pc, ins in enumerate(method.code):
        kind = ins.spec.operand
        if kind is OperandKind.NONE:
            operand_text = ""
        elif kind is OperandKind.CP:
            entry = constant_pool.get(ins.operand)
            operand_text = f" #{ins.operand} <{_format_cp_entry(entry)}>"
        elif kind is OperandKind.LABEL:
            operand_text = f" -> {ins.operand}"
        elif kind is OperandKind.IINC:
            operand_text = f" {ins.operand[0]}, {ins.operand[1]:+d}"
        elif kind is OperandKind.ARRAY_KIND:
            operand_text = f" {ins.operand.name.lower()}"
        else:
            operand_text = f" {ins.operand}"
        lines.append(f"  {pc:4d}: {ins.spec.mnemonic}{operand_text}")
    for entry in method.exception_table:
        catch = entry.catch_type or "<any>"
        lines.append(
            f"  catch {catch}: [{entry.start}, {entry.end}) -> "
            f"{entry.handler}")
    return "\n".join(lines)


def disassemble(cf) -> str:
    """Return a listing of a whole class file."""
    lines = [f"class {cf.name} extends {cf.super_name or '<root>'}"]
    for field in cf.fields:
        lines.append(
            f"  field {flags_to_string(field.flags)} {field.name} = "
            f"{field.default!r}")
    for method in cf.methods:
        body = disassemble_method(method, cf.constant_pool)
        lines.extend("  " + line for line in body.splitlines())
    return "\n".join(lines)
