"""Bytecode layer: the simulator's JVM-like instruction set.

Public surface:

* :mod:`repro.bytecode.opcodes` — the :class:`~repro.bytecode.opcodes.Op`
  enumeration and per-opcode metadata (:data:`~repro.bytecode.opcodes.SPECS`).
* :class:`~repro.bytecode.instructions.Instruction` — one decoded instruction.
* :class:`~repro.bytecode.assembler.MethodAssembler` /
  :class:`~repro.bytecode.assembler.ClassAssembler` — the builder API used by
  the runtime library and the workloads to author bytecode.
* :func:`~repro.bytecode.disassembler.disassemble` — human-readable listings.
* :func:`~repro.bytecode.verifier.verify_method` — structural verification.

The assembler/disassembler/verifier exports are lazy (PEP 562): they
depend on :mod:`repro.classfile`, which itself depends on the eager part
of this package.
"""

from repro.bytecode.opcodes import Op, OperandKind, SPECS, ArrayKind
from repro.bytecode.instructions import Instruction

__all__ = [
    "Op",
    "OperandKind",
    "SPECS",
    "ArrayKind",
    "Instruction",
    "ClassAssembler",
    "MethodAssembler",
    "disassemble",
    "verify_method",
]

_LAZY = {
    "ClassAssembler": ("repro.bytecode.assembler", "ClassAssembler"),
    "MethodAssembler": ("repro.bytecode.assembler", "MethodAssembler"),
    "disassemble": ("repro.bytecode.disassembler", "disassemble"),
    "verify_method": ("repro.bytecode.verifier", "verify_method"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
