"""Renaissance-style concurrency workload family.

Three benchmarks exercise the preemptive N-core scheduler
(``--cores N``) the way the Renaissance suite exercises a real JVM's
concurrency machinery:

``fj-kmeans``
    Fork-join data parallelism: worker threads each classify a private
    stream of points against K fixed centroids and merge partial sums
    into one shared accumulator under a monitor.  The merge helper is
    called *inside* the critical section, so at ``--cores N`` a worker
    can be preempted while holding the lock and the other workers take
    the contended-``MONITORENTER`` path.

``actors``
    Message passing over a complete binary tree of seven actor threads.
    Each actor drains its inbox, hashes every message, and forwards the
    hash to both children.  Every inbox has a single producer and the
    driver starts each tree level only after joining the previous one,
    so message order — and therefore every checksum — is independent
    of the interleaving the scheduler picks.

``reactors``
    A linear event pipeline: stage 0 is seeded before any thread
    starts, and each stage forwards transformed events downstream.  At
    ``--cores 1`` the stages run to completion in start order; at
    ``--cores N`` a stage that outruns its producer spin-waits, which
    the quantum preemption at loop backedges keeps live and fair.

All three follow the Renaissance warm-up protocol: each repetition
spawns *fresh* thread objects (simulated threads are single-start),
the warm-up repetitions exercise the JIT but are excluded from the
reported operation count and checksum, and only the steady-state
repetitions are measured.  Checksums are order-independent by
construction (commutative merges, single-producer inboxes), so runs
are bit-identical across core counts and tiers.  The host mirror
replays every repetition and must agree exactly.

The family is registered for ``--workloads``/``get_workload`` but is
*not* part of :func:`repro.workloads.suite.full_suite`: the Table I/II
goldens predate the scheduler and must stay byte-identical.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads.base import (
    MetricKind,
    Workload,
    WorkloadResultCheck,
)
from repro.workloads.suite import register

WARMUP_REPS = 1
STEADY_REPS = 2
TOTAL_REPS = WARMUP_REPS + STEADY_REPS


def _wrap32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v >= 1 << 31 else v


def _lcg(seed: int):
    state = seed

    def rng() -> int:
        nonlocal state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        return state

    return rng


def _emit_console(m, slots: List[Tuple[str, int]]) -> None:
    """Print ``key=value`` lines from integer locals (jbb idiom)."""
    for key, slot in slots:
        m.getstatic("java.lang.System", "out")
        m.new("java.lang.StringBuilder").dup()
        m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
        m.ldc(f"{key}=")
        m.invokevirtual(
            "java.lang.StringBuilder", "appendString",
            "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
        m.iload(slot)
        m.invokevirtual("java.lang.StringBuilder", "appendInt",
                        "(I)Ljava.lang.StringBuilder;")
        m.invokevirtual("java.lang.StringBuilder", "toString",
                        "()Ljava.lang.String;")
        m.invokevirtual("java.io.PrintStream", "println",
                        "(Ljava.lang.String;)V")


class _ConcurrencyWorkload(Workload):
    """Shared ops=/checksum= plumbing for the family."""

    metric = MetricKind.THROUGHPUT

    def operations(self, vm) -> int:
        value = self.console_value(vm, "ops")
        return int(value) if value is not None else 0

    def _mirror(self) -> Tuple[int, int]:
        raise NotImplementedError

    def validate(self, vm) -> WorkloadResultCheck:
        expected_ops, expected_checksum = self._mirror()
        ops = self.console_value(vm, "ops")
        checksum = self.console_value(vm, "checksum")
        if ops is None or checksum is None:
            return WorkloadResultCheck(False, "missing console output")
        if int(ops) != expected_ops:
            return WorkloadResultCheck(
                False, f"ops {ops} != {expected_ops}")
        if int(checksum) != expected_checksum:
            return WorkloadResultCheck(
                False, f"checksum {checksum} != {expected_checksum}")
        return WorkloadResultCheck(True)


# ---------------------------------------------------------------------------
# fj-kmeans: fork-join classification with a contended accumulator
# ---------------------------------------------------------------------------

KM_MAIN = "conc.kmeans.Main"
KM_WORKER = "conc.kmeans.Worker"
KM_ACC = "conc.kmeans.Accumulator"

KM_WORKERS = 4
KM_CENTROIDS = 8
KM_POINTS_PER_SCALE = 96
KM_VALUE_RANGE = KM_CENTROIDS * 16


def _km_build_accumulator() -> ClassAssembler:
    c = ClassAssembler(KM_ACC)
    c.field("sums")
    c.field("counts")
    c.field("total", default=0)
    with c.method("<init>", "()V") as m:
        m.aload(0).ldc(KM_CENTROIDS).newarray(ArrayKind.INT)
        m.putfield(KM_ACC, "sums")
        m.aload(0).ldc(KM_CENTROIDS).newarray(ArrayKind.INT)
        m.putfield(KM_ACC, "counts")
        m.return_()
    # merge() runs under the monitor; the nested call and its roll-up
    # loop give the scheduler safepoints *inside* the critical section,
    # so at cores > 1 a worker can be preempted while holding the lock
    # and the other workers take the contended-MONITORENTER path
    with c.method("add", "(II)V") as m:
        m.aload(0).monitorenter()
        m.aload(0).iload(1).iload(2)
        m.invokevirtual(KM_ACC, "merge", "(II)V")
        m.aload(0).monitorexit()
        m.return_()
    with c.method("merge", "(II)V") as m:
        # locals: 3=k, 4=rollup
        m.aload(0).getfield(KM_ACC, "sums").iload(1)
        m.aload(0).getfield(KM_ACC, "sums").iload(1).iaload()
        m.iload(2).iadd().iastore()
        m.aload(0).getfield(KM_ACC, "counts").iload(1)
        m.aload(0).getfield(KM_ACC, "counts").iload(1).iaload()
        m.iconst(1).iadd().iastore()
        # roll the cluster sums up into `total`: the serialized merges
        # make the last writer see every update, so the final value is
        # order-independent
        m.iconst(0).istore(4)
        m.iconst(0).istore(3)
        m.label("rollup")
        m.iload(3).ldc(KM_CENTROIDS).if_icmpge("rolled")
        m.iload(4)
        m.aload(0).getfield(KM_ACC, "sums").iload(3).iaload()
        m.iadd().istore(4)
        m.iinc(3, 1).goto("rollup")
        m.label("rolled")
        m.aload(0).iload(4).putfield(KM_ACC, "total")
        m.return_()
    return c


def _km_build_worker(points: int) -> ClassAssembler:
    c = ClassAssembler(KM_WORKER, super_name="java.lang.Thread")
    c.field("wid", default=0)
    c.field("acc")
    c.field("rng")
    with c.method("<init>", f"(IL{KM_ACC};)V") as m:
        m.aload(0).iload(1).putfield(KM_WORKER, "wid")
        m.aload(0).aload(2).putfield(KM_WORKER, "acc")
        m.new("java.util.Random").dup()
        m.iload(1).ldc(7919).imul().ldc(13).iadd()
        m.invokespecial("java.util.Random", "<init>", "(I)V")
        m.aload(0).swap().putfield(KM_WORKER, "rng")
        m.return_()
    with c.method("run", "()V") as m:
        # locals: 1=point, 2=value, 3=best, 4=bestDist, 5=c, 6=d
        m.iconst(0).istore(1)
        m.label("points")
        m.iload(1).ldc(points).if_icmpge("done")
        m.aload(0).getfield(KM_WORKER, "rng")
        m.ldc(KM_VALUE_RANGE)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.istore(2)
        # argmin over the fixed centroids 8, 24, 40, ...
        m.iconst(0).istore(3)
        m.ldc(1 << 30).istore(4)
        m.iconst(0).istore(5)
        m.label("cloop")
        m.iload(5).ldc(KM_CENTROIDS).if_icmpge("cdone")
        m.iload(2)
        m.iload(5).ldc(16).imul().ldc(8).iadd()
        m.isub().istore(6)
        m.iload(6).ifge("abs_ok")
        m.iload(6).ineg().istore(6)
        m.label("abs_ok")
        m.iload(6).iload(4).if_icmpge("not_best")
        m.iload(6).istore(4)
        m.iload(5).istore(3)
        m.label("not_best")
        m.iinc(5, 1).goto("cloop")
        m.label("cdone")
        m.aload(0).getfield(KM_WORKER, "acc")
        m.iload(3).iload(2)
        m.invokevirtual(KM_ACC, "add", "(II)V")
        m.iinc(1, 1).goto("points")
        m.label("done")
        m.return_()
    return c


def _km_build_main(points: int) -> ClassAssembler:
    c = ClassAssembler(KM_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=acc, 1=ops, 2=checksum, 3=workers, 5=k
        m.iconst(0).istore(1)
        m.iconst(0).istore(2)
        for rep in range(TOTAL_REPS):
            steady = rep >= WARMUP_REPS
            m.new(KM_ACC).dup()
            m.invokespecial(KM_ACC, "<init>", "()V").astore(0)
            m.iconst(KM_WORKERS).newarray(ArrayKind.REF).astore(3)
            for w in range(KM_WORKERS):
                m.aload(3).iconst(w)
                m.new(KM_WORKER).dup().iconst(w).aload(0)
                m.invokespecial(KM_WORKER, "<init>", f"(IL{KM_ACC};)V")
                m.aastore()
            for w in range(KM_WORKERS):
                m.aload(3).iconst(w).aaload().checkcast(KM_WORKER)
                m.invokevirtual(KM_WORKER, "start", "()V")
            for w in range(KM_WORKERS):
                m.aload(3).iconst(w).aaload().checkcast(KM_WORKER)
                m.invokevirtual(KM_WORKER, "join", "()V")
            if steady:
                m.iconst(0).istore(5)
                m.label(f"r{rep}_fold")
                m.iload(5).ldc(KM_CENTROIDS).if_icmpge(f"r{rep}_done")
                m.iload(2).ldc(31).imul()
                m.aload(0).getfield(KM_ACC, "sums")
                m.iload(5).iaload().iadd()
                m.aload(0).getfield(KM_ACC, "counts")
                m.iload(5).iaload().iadd()
                m.istore(2)
                m.iinc(5, 1).goto(f"r{rep}_fold")
                m.label(f"r{rep}_done")
                m.iload(2).ldc(31).imul()
                m.aload(0).getfield(KM_ACC, "total").iadd()
                m.istore(2)
                m.iload(1).ldc(KM_WORKERS * points).iadd().istore(1)
        _emit_console(m, [("ops", 1), ("checksum", 2)])
        m.return_()
    return c


@register
class FjKmeansWorkload(_ConcurrencyWorkload):
    """Fork-join k-means classification with a shared accumulator."""

    name = "fj-kmeans"
    description = ("fork-join point classification; worker threads "
                   "merge into a monitor-guarded accumulator")

    main_class = KM_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.points = KM_POINTS_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_km_build_accumulator().build())
        archive.put_class(_km_build_worker(self.points).build())
        archive.put_class(_km_build_main(self.points).build())
        return archive

    def _mirror(self) -> Tuple[int, int]:
        ops = 0
        checksum = 0
        for rep in range(TOTAL_REPS):
            sums = [0] * KM_CENTROIDS
            counts = [0] * KM_CENTROIDS
            for wid in range(KM_WORKERS):
                rng = _lcg(wid * 7919 + 13)
                for _point in range(self.points):
                    value = rng() % KM_VALUE_RANGE
                    best, best_dist = 0, 1 << 30
                    for k in range(KM_CENTROIDS):
                        dist = abs(value - (k * 16 + 8))
                        if dist < best_dist:
                            best, best_dist = k, dist
                    sums[best] = _wrap32(sums[best] + value)
                    counts[best] += 1
            if rep >= WARMUP_REPS:
                for k in range(KM_CENTROIDS):
                    checksum = _wrap32(
                        checksum * 31 + sums[k] + counts[k])
                checksum = _wrap32(checksum * 31 + _wrap32(sum(sums)))
                ops += KM_WORKERS * self.points
        return ops, checksum


# ---------------------------------------------------------------------------
# actors: message passing over a binary tree of threads
# ---------------------------------------------------------------------------

AC_MAIN = "conc.actors.Main"
AC_ACTOR = "conc.actors.Actor"

AC_COUNT = 7                       # complete binary tree, depth 3
AC_LEVELS = ((0,), (1, 2), (3, 4, 5, 6))
AC_MESSAGES_PER_SCALE = 12
AC_SEED_RANGE = 1 << 16


def _ac_build_actor() -> ClassAssembler:
    c = ClassAssembler(AC_ACTOR, super_name="java.lang.Thread")
    c.field("idx", default=0)
    c.field("inbox")
    c.field("inCount", default=0)
    c.field("left")
    c.field("right")
    c.field("checksum", default=0)
    with c.method("<init>", "(II)V") as m:
        m.aload(0).iload(1).putfield(AC_ACTOR, "idx")
        m.aload(0).iload(2).newarray(ArrayKind.INT)
        m.putfield(AC_ACTOR, "inbox")
        m.return_()
    with c.method("push", "(I)V") as m:
        m.aload(0).getfield(AC_ACTOR, "inbox")
        m.aload(0).getfield(AC_ACTOR, "inCount")
        m.iload(1).iastore()
        m.aload(0).dup().getfield(AC_ACTOR, "inCount")
        m.iconst(1).iadd().putfield(AC_ACTOR, "inCount")
        m.return_()
    with c.method("run", "()V") as m:
        # locals: 1=i, 2=value, 3=hash
        m.iconst(0).istore(1)
        m.label("loop")
        m.iload(1).aload(0).getfield(AC_ACTOR, "inCount")
        m.if_icmpge("done")
        m.aload(0).getfield(AC_ACTOR, "inbox")
        m.iload(1).iaload().istore(2)
        m.iload(2).ldc(31).imul()
        m.aload(0).getfield(AC_ACTOR, "idx").ldc(7).imul().iadd()
        m.iload(1).iadd().istore(3)
        m.aload(0).dup().getfield(AC_ACTOR, "checksum")
        m.ldc(31).imul().iload(3).iadd()
        m.putfield(AC_ACTOR, "checksum")
        m.aload(0).getfield(AC_ACTOR, "left").ifnull("leaf")
        m.aload(0).getfield(AC_ACTOR, "left")
        m.iload(3).invokevirtual(AC_ACTOR, "push", "(I)V")
        m.aload(0).getfield(AC_ACTOR, "right")
        m.iload(3).invokevirtual(AC_ACTOR, "push", "(I)V")
        m.label("leaf")
        m.iinc(1, 1).goto("loop")
        m.label("done")
        m.return_()
    return c


def _ac_build_main(messages: int) -> ClassAssembler:
    c = ClassAssembler(AC_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 1=ops, 2=checksum, 3=actors, 4=rng, 5=i
        m.iconst(0).istore(1)
        m.iconst(0).istore(2)
        for rep in range(TOTAL_REPS):
            steady = rep >= WARMUP_REPS
            m.iconst(AC_COUNT).newarray(ArrayKind.REF).astore(3)
            for i in range(AC_COUNT):
                m.aload(3).iconst(i)
                m.new(AC_ACTOR).dup().iconst(i).ldc(messages)
                m.invokespecial(AC_ACTOR, "<init>", "(II)V")
                m.aastore()
            for parent in range(AC_COUNT // 2):
                for field_name, child in (("left", 2 * parent + 1),
                                          ("right", 2 * parent + 2)):
                    m.aload(3).iconst(parent).aaload()
                    m.checkcast(AC_ACTOR)
                    m.aload(3).iconst(child).aaload()
                    m.checkcast(AC_ACTOR)
                    m.putfield(AC_ACTOR, field_name)
            m.new("java.util.Random").dup().ldc(rep * 1000003 + 42)
            m.invokespecial("java.util.Random", "<init>", "(I)V")
            m.astore(4)
            m.iconst(0).istore(5)
            m.label(f"r{rep}_seed")
            m.iload(5).ldc(messages).if_icmpge(f"r{rep}_seeded")
            m.aload(3).iconst(0).aaload().checkcast(AC_ACTOR)
            m.aload(4).ldc(AC_SEED_RANGE)
            m.invokevirtual("java.util.Random", "nextInt", "(I)I")
            m.invokevirtual(AC_ACTOR, "push", "(I)V")
            m.iinc(5, 1).goto(f"r{rep}_seed")
            m.label(f"r{rep}_seeded")
            # start a tree level only once its producer level joined:
            # every inbox is complete before its owner runs, so the
            # protocol is feed-forward under both scheduler models
            for level in AC_LEVELS:
                for i in level:
                    m.aload(3).iconst(i).aaload().checkcast(AC_ACTOR)
                    m.invokevirtual(AC_ACTOR, "start", "()V")
                for i in level:
                    m.aload(3).iconst(i).aaload().checkcast(AC_ACTOR)
                    m.invokevirtual(AC_ACTOR, "join", "()V")
            if steady:
                for i in range(AC_COUNT):
                    m.iload(2).ldc(31).imul()
                    m.aload(3).iconst(i).aaload().checkcast(AC_ACTOR)
                    m.getfield(AC_ACTOR, "checksum").iadd()
                    m.istore(2)
                m.iload(1).ldc(AC_COUNT * messages).iadd().istore(1)
        _emit_console(m, [("ops", 1), ("checksum", 2)])
        m.return_()
    return c


@register
class ActorsWorkload(_ConcurrencyWorkload):
    """Binary-tree actor message passing."""

    name = "actors"
    description = ("seven actor threads in a binary tree hash and "
                   "forward messages level by level")

    main_class = AC_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.messages = AC_MESSAGES_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_ac_build_actor().build())
        archive.put_class(_ac_build_main(self.messages).build())
        return archive

    def _mirror(self) -> Tuple[int, int]:
        ops = 0
        checksum = 0
        for rep in range(TOTAL_REPS):
            inboxes: List[List[int]] = [[] for _ in range(AC_COUNT)]
            checksums = [0] * AC_COUNT
            rng = _lcg(rep * 1000003 + 42)
            for _msg in range(self.messages):
                inboxes[0].append(rng() % AC_SEED_RANGE)
            for i in range(AC_COUNT):
                for slot, value in enumerate(inboxes[i]):
                    hashed = _wrap32(value * 31 + i * 7 + slot)
                    checksums[i] = _wrap32(checksums[i] * 31 + hashed)
                    if 2 * i + 1 < AC_COUNT:
                        inboxes[2 * i + 1].append(hashed)
                        inboxes[2 * i + 2].append(hashed)
            if rep >= WARMUP_REPS:
                for i in range(AC_COUNT):
                    checksum = _wrap32(checksum * 31 + checksums[i])
                ops += AC_COUNT * self.messages
        return ops, checksum


# ---------------------------------------------------------------------------
# reactors: a linear event pipeline with spin-wait backpressure
# ---------------------------------------------------------------------------

RE_MAIN = "conc.reactors.Main"
RE_STAGE = "conc.reactors.Stage"

RE_STAGES = 4
RE_EVENTS_PER_SCALE = 16
RE_SEED_RANGE = 1 << 16


def _re_build_stage() -> ClassAssembler:
    c = ClassAssembler(RE_STAGE, super_name="java.lang.Thread")
    c.field("sid", default=0)
    c.field("inbox")
    c.field("inCount", default=0)
    c.field("expected", default=0)
    c.field("next")
    c.field("checksum", default=0)
    with c.method("<init>", "(II)V") as m:
        m.aload(0).iload(1).putfield(RE_STAGE, "sid")
        m.aload(0).iload(2).newarray(ArrayKind.INT)
        m.putfield(RE_STAGE, "inbox")
        m.aload(0).iload(2).putfield(RE_STAGE, "expected")
        m.return_()
    with c.method("push", "(I)V") as m:
        m.aload(0).getfield(RE_STAGE, "inbox")
        m.aload(0).getfield(RE_STAGE, "inCount")
        m.iload(1).iastore()
        m.aload(0).dup().getfield(RE_STAGE, "inCount")
        m.iconst(1).iadd().putfield(RE_STAGE, "inCount")
        m.return_()
    with c.method("run", "()V") as m:
        # locals: 1=i, 2=value, 3=hash.  The spin loop's backward goto
        # is a safepoint, so at cores > 1 a stage that outruns its
        # producer is preempted each quantum until input arrives; at
        # cores = 1 stages run in start order and never spin.
        m.iconst(0).istore(1)
        m.label("loop")
        m.iload(1).aload(0).getfield(RE_STAGE, "expected")
        m.if_icmpge("done")
        m.label("spin")
        m.aload(0).getfield(RE_STAGE, "inCount")
        m.iload(1).if_icmpgt("have")
        m.goto("spin")
        m.label("have")
        m.aload(0).getfield(RE_STAGE, "inbox")
        m.iload(1).iaload().istore(2)
        m.iload(2).ldc(17).imul()
        m.aload(0).getfield(RE_STAGE, "sid").ldc(5).imul().iadd()
        m.iload(1).iadd().istore(3)
        m.aload(0).dup().getfield(RE_STAGE, "checksum")
        m.ldc(31).imul().iload(3).iadd()
        m.putfield(RE_STAGE, "checksum")
        m.aload(0).getfield(RE_STAGE, "next").ifnull("sink")
        m.aload(0).getfield(RE_STAGE, "next")
        m.iload(3).invokevirtual(RE_STAGE, "push", "(I)V")
        m.label("sink")
        m.iinc(1, 1).goto("loop")
        m.label("done")
        m.return_()
    return c


def _re_build_main(events: int) -> ClassAssembler:
    c = ClassAssembler(RE_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 1=ops, 2=checksum, 3=stages, 4=rng, 5=i
        m.iconst(0).istore(1)
        m.iconst(0).istore(2)
        for rep in range(TOTAL_REPS):
            steady = rep >= WARMUP_REPS
            m.iconst(RE_STAGES).newarray(ArrayKind.REF).astore(3)
            for s in range(RE_STAGES):
                m.aload(3).iconst(s)
                m.new(RE_STAGE).dup().iconst(s).ldc(events)
                m.invokespecial(RE_STAGE, "<init>", "(II)V")
                m.aastore()
            for s in range(RE_STAGES - 1):
                m.aload(3).iconst(s).aaload().checkcast(RE_STAGE)
                m.aload(3).iconst(s + 1).aaload().checkcast(RE_STAGE)
                m.putfield(RE_STAGE, "next")
            m.new("java.util.Random").dup().ldc(rep * 65537 + 29)
            m.invokespecial("java.util.Random", "<init>", "(I)V")
            m.astore(4)
            # seed stage 0 completely before any stage starts
            m.iconst(0).istore(5)
            m.label(f"r{rep}_seed")
            m.iload(5).ldc(events).if_icmpge(f"r{rep}_seeded")
            m.aload(3).iconst(0).aaload().checkcast(RE_STAGE)
            m.aload(4).ldc(RE_SEED_RANGE)
            m.invokevirtual("java.util.Random", "nextInt", "(I)I")
            m.invokevirtual(RE_STAGE, "push", "(I)V")
            m.iinc(5, 1).goto(f"r{rep}_seed")
            m.label(f"r{rep}_seeded")
            for s in range(RE_STAGES):
                m.aload(3).iconst(s).aaload().checkcast(RE_STAGE)
                m.invokevirtual(RE_STAGE, "start", "()V")
            for s in range(RE_STAGES):
                m.aload(3).iconst(s).aaload().checkcast(RE_STAGE)
                m.invokevirtual(RE_STAGE, "join", "()V")
            if steady:
                for s in range(RE_STAGES):
                    m.iload(2).ldc(31).imul()
                    m.aload(3).iconst(s).aaload().checkcast(RE_STAGE)
                    m.getfield(RE_STAGE, "checksum").iadd()
                    m.istore(2)
                m.iload(1).ldc(RE_STAGES * events).iadd().istore(1)
        _emit_console(m, [("ops", 1), ("checksum", 2)])
        m.return_()
    return c


@register
class ReactorsWorkload(_ConcurrencyWorkload):
    """Linear reactor pipeline with spin-wait backpressure."""

    name = "reactors"
    description = ("four pipeline stages forward hashed events; "
                   "consumers spin-wait on their producer")

    main_class = RE_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.events = RE_EVENTS_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_re_build_stage().build())
        archive.put_class(_re_build_main(self.events).build())
        return archive

    def _mirror(self) -> Tuple[int, int]:
        ops = 0
        checksum = 0
        for rep in range(TOTAL_REPS):
            inboxes: List[List[int]] = [[] for _ in range(RE_STAGES)]
            checksums = [0] * RE_STAGES
            rng = _lcg(rep * 65537 + 29)
            for _event in range(self.events):
                inboxes[0].append(rng() % RE_SEED_RANGE)
            for sid in range(RE_STAGES):
                for slot, value in enumerate(inboxes[sid]):
                    hashed = _wrap32(value * 17 + sid * 5 + slot)
                    checksums[sid] = _wrap32(
                        checksums[sid] * 31 + hashed)
                    if sid + 1 < RE_STAGES:
                        inboxes[sid + 1].append(hashed)
            if rep >= WARMUP_REPS:
                for sid in range(RE_STAGES):
                    checksum = _wrap32(checksum * 31 + checksums[sid])
                ops += RE_STAGES * self.events
        return ops, checksum


def concurrency_suite(scale: int = 1) -> List[Workload]:
    """The three concurrency workloads, in registry order."""
    return [FjKmeansWorkload(scale), ActorsWorkload(scale),
            ReactorsWorkload(scale)]
