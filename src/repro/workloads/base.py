"""Workload abstraction.

A workload owns: its application classes (built with the assembler),
any input files for the simulated file system, optional extra native
libraries, its metric kind, and a self-check that the run produced the
expected output (so benchmark numbers are never reported off a broken
run)."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.classfile.archive import ClassArchive
from repro.errors import WorkloadError


class MetricKind(enum.Enum):
    """How Table I reports this workload."""

    TIME = "time"              # SPEC JVM98: execution time
    THROUGHPUT = "throughput"  # SPEC JBB2005: operations/second


@dataclass
class WorkloadResultCheck:
    """Outcome of a workload's self-validation."""

    ok: bool
    detail: str = ""


class Workload(abc.ABC):
    """Base class for all benchmarks."""

    #: Registry/reporting name, e.g. ``"compress"``.
    name: str = "workload"
    #: One-line description.
    description: str = ""
    metric: MetricKind = MetricKind.TIME

    def __init__(self, scale: int = 1):
        if scale < 1:
            raise WorkloadError(f"scale must be >= 1, got {scale}")
        self.scale = scale
        self._archive: Optional[ClassArchive] = None

    # -- mandatory pieces ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def main_class(self) -> str:
        """Class whose ``main()V`` drives the benchmark."""

    @abc.abstractmethod
    def build_classes(self) -> ClassArchive:
        """Author and serialize the workload's classes."""

    # -- optional pieces --------------------------------------------------------------

    def install_files(self, vm) -> None:
        """Install input files into the VM's simulated file system."""

    def native_libraries(self) -> List:
        """Workload-specific native libraries (loaded by the workload
        via ``System.loadLibrary``)."""
        return []

    def validate(self, vm) -> WorkloadResultCheck:
        """Check the run produced the expected result."""
        return WorkloadResultCheck(True)

    def operations(self, vm) -> int:
        """Completed operations, for THROUGHPUT workloads."""
        raise WorkloadError(
            f"workload {self.name} does not report operations")

    # -- shared plumbing -------------------------------------------------------------------

    @property
    def archive(self) -> ClassArchive:
        """The (cached) serialized application classes."""
        if self._archive is None:
            self._archive = self.build_classes()
        return self._archive

    def console_value(self, vm, key: str) -> Optional[str]:
        """Find ``key=value`` in the VM console (workloads print their
        checksums this way)."""
        prefix = f"{key}="
        for line in vm.console:
            if line.startswith(prefix):
                return line[len(prefix):]
        return None

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<Workload {self.name} scale={self.scale}>"
