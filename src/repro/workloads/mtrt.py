"""``mtrt`` — multi-threaded ray tracer (the SPEC ``_227_mtrt``
analogue).

Two worker threads (``java.lang.Thread`` subclasses) each render half
of the image over a sphere scene.  The intersection path is maximally
object-oriented — fresh ``Vec`` objects from every subtraction, dot
products and component accessors as virtual methods — reproducing
mtrt's standing as the most call-dense benchmark of JVM98 (the paper's
largest SPA overhead, 41 775 %).  Native work is almost absent: ray
normalisation uses a bytecode Newton inverse-sqrt, and only confirmed
hits pay a native ``Math.sqrt`` — mtrt's 0.00 % IPA overhead row.

Float arithmetic is IEEE double on both sides, so the host mirror is
bit-exact; the per-thread pixel checksums must match.
"""

from __future__ import annotations

import math
from typing import List

from repro.bytecode.assembler import ClassAssembler
from repro.classfile.archive import ClassArchive
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

MAIN = "spec.jvm98.mtrt.Main"
VEC = "spec.jvm98.mtrt.Vec"
SPHERE = "spec.jvm98.mtrt.Sphere"
WORKER = "spec.jvm98.mtrt.Worker"

WIDTH_PER_SCALE = 24
HEIGHT = 16
N_SPHERES = 6
THREADS = 2

#: Scene spheres: (cx, cy, cz, r) — floats, chosen so a minority of
#: rays hit (native sqrt only on hits).
SPHERES = [
    (-1.2, -0.6, 4.0, 0.9),
    (0.9, 0.3, 5.0, 1.1),
    (0.0, 0.0, 6.0, 1.4),
    (1.5, -0.9, 7.0, 1.0),
    (-0.8, 0.8, 5.5, 0.8),
    (0.4, -0.3, 4.5, 0.7),
]


def _inv_sqrt(value: float) -> float:
    """Newton inverse square root, exactly as the bytecode computes it:
    3 iterations from a fixed 0.5 starting guess."""
    guess = 0.5
    for _ in range(3):
        guess = guess * (1.5 - 0.5 * value * guess * guess)
    return guess


class _Mirror:
    """Host-side renderer, operation-for-operation identical."""

    def __init__(self, width: int):
        self.width = width

    def render_rows(self, y0: int, y1: int) -> int:
        width = self.width
        checksum = 0
        for y in range(y0, y1):
            for x in range(width):
                dx = (float(x) - float(width) / 2.0) / float(width)
                dy = (float(y) - float(HEIGHT) / 2.0) / float(HEIGHT)
                dz = 1.0
                norm2 = dx * dx + dy * dy + dz * dz
                inv = _inv_sqrt(norm2)
                dx, dy, dz = dx * inv, dy * inv, dz * inv
                best = 1.0e9
                for cx, cy, cz, r in SPHERES:
                    ox, oy, oz = -cx, -cy, -cz  # origin - center
                    b = ox * dx + oy * dy + oz * dz
                    cc = (ox * ox + oy * oy + oz * oz) - r * r
                    disc = b * b - cc
                    if disc > 0.0:
                        dist = -b - math.sqrt(disc)
                        if dist > 0.0 and dist < best:
                            best = dist
                if best < 1.0e9:
                    color = int(255.0 / (1.0 + best))
                else:
                    color = 0
                checksum = ((checksum * 31 + color) & 0xFFFFFFFF)
                if checksum >= 1 << 31:
                    checksum -= 1 << 32
        return checksum

    def run(self) -> List[int]:
        half = HEIGHT // 2
        return [self.render_rows(0, half),
                self.render_rows(half, HEIGHT)]


def _build_vec() -> ClassAssembler:
    c = ClassAssembler(VEC)
    for field in ("x", "y", "z"):
        c.field(field, default=0.0)
    with c.method("<init>", "(FFF)V") as m:
        m.aload(0).iload(1).putfield(VEC, "x")
        m.aload(0).iload(2).putfield(VEC, "y")
        m.aload(0).iload(3).putfield(VEC, "z")
        m.return_()
    for field, getter in (("x", "getX"), ("y", "getY"), ("z", "getZ")):
        with c.method(getter, "()F") as m:
            m.aload(0).getfield(VEC, field).ireturn()
    with c.method("dot", f"(L{VEC};)F") as m:
        m.aload(0).invokevirtual(VEC, "getX", "()F")
        m.aload(1).invokevirtual(VEC, "getX", "()F")
        m.imul()
        m.aload(0).invokevirtual(VEC, "getY", "()F")
        m.aload(1).invokevirtual(VEC, "getY", "()F")
        m.imul().iadd()
        m.aload(0).invokevirtual(VEC, "getZ", "()F")
        m.aload(1).invokevirtual(VEC, "getZ", "()F")
        m.imul().iadd()
        m.ireturn()
    with c.method("sub", f"(L{VEC};)L{VEC};") as m:
        m.new(VEC).dup()
        m.aload(0).invokevirtual(VEC, "getX", "()F")
        m.aload(1).invokevirtual(VEC, "getX", "()F").isub()
        m.aload(0).invokevirtual(VEC, "getY", "()F")
        m.aload(1).invokevirtual(VEC, "getY", "()F").isub()
        m.aload(0).invokevirtual(VEC, "getZ", "()F")
        m.aload(1).invokevirtual(VEC, "getZ", "()F").isub()
        m.invokespecial(VEC, "<init>", "(FFF)V")
        m.areturn()
    with c.method("scale", f"(F)L{VEC};") as m:
        m.new(VEC).dup()
        m.aload(0).invokevirtual(VEC, "getX", "()F").iload(1).imul()
        m.aload(0).invokevirtual(VEC, "getY", "()F").iload(1).imul()
        m.aload(0).invokevirtual(VEC, "getZ", "()F").iload(1).imul()
        m.invokespecial(VEC, "<init>", "(FFF)V")
        m.areturn()
    return c


def _build_sphere() -> ClassAssembler:
    c = ClassAssembler(SPHERE)
    c.field("center")
    c.field("radius", default=0.0)
    with c.method("<init>", f"(L{VEC};F)V") as m:
        m.aload(0).aload(1).putfield(SPHERE, "center")
        m.aload(0).iload(2).putfield(SPHERE, "radius")
        m.return_()
    with c.method("getCenter", f"()L{VEC};") as m:
        m.aload(0).getfield(SPHERE, "center").areturn()
    with c.method("getRadius", "()F") as m:
        m.aload(0).getfield(SPHERE, "radius").ireturn()
    with c.method("intersect", f"(L{VEC};L{VEC};)F") as m:
        # args: 1=origin, 2=dir; returns distance or -1.0
        # locals: 3=oc, 4=b, 5=cc, 6=disc
        m.aload(1)
        m.aload(0).invokevirtual(SPHERE, "getCenter", f"()L{VEC};")
        m.invokevirtual(VEC, "sub", f"(L{VEC};)L{VEC};").astore(3)
        m.aload(3).aload(2)
        m.invokevirtual(VEC, "dot", f"(L{VEC};)F").istore(4)
        m.aload(3).aload(3)
        m.invokevirtual(VEC, "dot", f"(L{VEC};)F")
        m.aload(0).invokevirtual(SPHERE, "getRadius", "()F")
        m.aload(0).invokevirtual(SPHERE, "getRadius", "()F")
        m.imul().isub().istore(5)
        m.iload(4).iload(4).imul().iload(5).isub().istore(6)
        m.iload(6).ldc(0.0).fcmp().ifgt("hit")
        m.ldc(-1.0).ireturn()
        m.label("hit")
        m.iload(4).ineg()
        m.iload(6).invokestatic("java.lang.Math", "sqrt", "(F)F")
        m.isub().ireturn()
    return c


def _build_worker(width: int) -> ClassAssembler:
    c = ClassAssembler(WORKER, super_name="java.lang.Thread")
    c.field("y0", default=0)
    c.field("y1", default=0)
    c.field("spheres")
    c.field("result", default=0)

    with c.method("<init>", f"(II[L{SPHERE};)V") as m:
        m.aload(0).iload(1).putfield(WORKER, "y0")
        m.aload(0).iload(2).putfield(WORKER, "y1")
        m.aload(0).aload(3).putfield(WORKER, "spheres")
        m.return_()

    with c.method("invSqrt", "(F)F", static=True) as m:
        # Newton iterations from guess 0.5 (bytecode, no native)
        # locals: 0=v, 1=guess, 2=i
        m.ldc(0.5).istore(1)
        m.iconst(0).istore(2)
        m.label("iter")
        m.iload(2).iconst(3).if_icmpge("done")
        m.iload(1)
        m.ldc(1.5)
        m.ldc(0.5).iload(0).imul().iload(1).imul().iload(1).imul()
        m.isub()
        m.imul().istore(1)
        m.iinc(2, 1).goto("iter")
        m.label("done")
        m.iload(1).ireturn()

    with c.method("tracePixel", "(II)I") as m:
        # locals: 1=x, 2=y, 3=dx, 4=dy, 5=dz, 6=inv, 7=dir, 8=origin,
        #         9=best, 10=i, 11=dist, 12=n
        m.iload(1).i2f().ldc(float(width)).ldc(2.0).fdiv().isub()
        m.ldc(float(width)).fdiv().istore(3)
        m.iload(2).i2f().ldc(float(HEIGHT)).ldc(2.0).fdiv().isub()
        m.ldc(float(HEIGHT)).fdiv().istore(4)
        m.ldc(1.0).istore(5)
        m.iload(3).iload(3).imul()
        m.iload(4).iload(4).imul().iadd()
        m.iload(5).iload(5).imul().iadd()
        m.invokestatic(WORKER, "invSqrt", "(F)F").istore(6)
        m.new(VEC).dup()
        m.iload(3).iload(6).imul()
        m.iload(4).iload(6).imul()
        m.iload(5).iload(6).imul()
        m.invokespecial(VEC, "<init>", "(FFF)V").astore(7)
        m.new(VEC).dup().ldc(0.0).ldc(0.0).ldc(0.0)
        m.invokespecial(VEC, "<init>", "(FFF)V").astore(8)
        m.ldc(1.0e9).istore(9)
        m.iconst(0).istore(10)
        m.aload(0).getfield(WORKER, "spheres").arraylength()
        m.istore(12)
        m.label("sph")
        m.iload(10).iload(12).if_icmpge("shade")
        m.aload(0).getfield(WORKER, "spheres").iload(10).aaload()
        m.checkcast(SPHERE)
        m.aload(8).aload(7)
        m.invokevirtual(SPHERE, "intersect",
                        f"(L{VEC};L{VEC};)F").istore(11)
        m.iload(11).ldc(0.0).fcmp().ifle("next")
        m.iload(11).iload(9).fcmp().ifge("next")
        m.iload(11).istore(9)
        m.label("next")
        m.iinc(10, 1).goto("sph")
        m.label("shade")
        m.iload(9).ldc(1.0e9).fcmp().ifge("miss")
        m.ldc(255.0).ldc(1.0).iload(9).iadd().fdiv().f2i().ireturn()
        m.label("miss")
        m.iconst(0).ireturn()

    with c.method("run", "()V") as m:
        # locals: 1=y, 2=x, 3=cs
        m.iconst(0).istore(3)
        m.aload(0).getfield(WORKER, "y0").istore(1)
        m.label("rows")
        m.iload(1).aload(0).getfield(WORKER, "y1").if_icmpge("done")
        m.iconst(0).istore(2)
        m.label("cols")
        m.iload(2).ldc(width).if_icmpge("row_done")
        m.iload(3).iconst(31).imul()
        m.aload(0).iload(2).iload(1)
        m.invokevirtual(WORKER, "tracePixel", "(II)I")
        m.iadd().istore(3)
        m.iinc(2, 1).goto("cols")
        m.label("row_done")
        m.iinc(1, 1).goto("rows")
        m.label("done")
        m.aload(0).iload(3).putfield(WORKER, "result")
        m.return_()
    return c


def _build_main(width: int) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    with c.method("makeScene", f"()[L{SPHERE};", static=True) as m:
        from repro.bytecode.opcodes import ArrayKind

        m.iconst(N_SPHERES).newarray(ArrayKind.REF).astore(0)
        for i, (cx, cy, cz, r) in enumerate(SPHERES):
            m.aload(0).iconst(i)
            m.new(SPHERE).dup()
            m.new(VEC).dup().ldc(cx).ldc(cy).ldc(cz)
            m.invokespecial(VEC, "<init>", "(FFF)V")
            m.ldc(r)
            m.invokespecial(SPHERE, "<init>", f"(L{VEC};F)V")
            m.aastore()
        m.aload(0).areturn()

    with c.method("main", "()V", static=True) as m:
        # locals: 0=scene,1=w1,2=w2,3=combined
        m.invokestatic(MAIN, "makeScene", f"()[L{SPHERE};").astore(0)
        half = HEIGHT // 2
        m.new(WORKER).dup().iconst(0).iconst(half).aload(0)
        m.invokespecial(WORKER, "<init>", f"(II[L{SPHERE};)V")
        m.astore(1)
        m.new(WORKER).dup().iconst(half).iconst(HEIGHT).aload(0)
        m.invokespecial(WORKER, "<init>", f"(II[L{SPHERE};)V")
        m.astore(2)
        m.aload(1).invokevirtual(WORKER, "start", "()V")
        m.aload(2).invokevirtual(WORKER, "start", "()V")
        m.aload(1).invokevirtual(WORKER, "join", "()V")
        m.aload(2).invokevirtual(WORKER, "join", "()V")
        for key, slot in (("cs0", 1), ("cs1", 2)):
            m.getstatic("java.lang.System", "out")
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc(f"{key}=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            m.aload(slot).getfield(WORKER, "result")
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.io.PrintStream", "println",
                            "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class MtrtWorkload(Workload):
    """Two-thread object-oriented ray tracer."""

    name = "mtrt"
    description = ("multithreaded ray tracer: the most call-dense "
                   "benchmark; native sqrt only on confirmed hits")

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.width = WIDTH_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_vec().build())
        archive.put_class(_build_sphere().build())
        archive.put_class(_build_worker(self.width).build())
        archive.put_class(_build_main(self.width).build())
        return archive

    def validate(self, vm) -> WorkloadResultCheck:
        expected = _Mirror(self.width).run()
        for index, key in enumerate(("cs0", "cs1")):
            got = self.console_value(vm, key)
            if got is None:
                return WorkloadResultCheck(False, f"missing {key}=")
            if int(got) != expected[index]:
                return WorkloadResultCheck(
                    False, f"{key} {got} != {expected[index]}")
        return WorkloadResultCheck(True)
