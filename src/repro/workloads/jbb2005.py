"""``jbb2005`` — warehouse transaction throughput (the SPEC JBB2005
analogue).

Runs the paper's "warehouse sequence 1, 2, 3, 4": for each point the
company spawns that many warehouse threads (``java.lang.Thread``
subclasses), each executing a fixed count of order transactions —
stock-level updates through accessor methods (call density), order
record allocation, periodic customer-name verification
(``String.equals``, native) and district roll-ups
(``System.arraycopy``, native).  The metric is **operations per
second** of virtual time, and Table I's JBB overhead formula divides
baseline by profiled throughput.

Each warehouse seeds its own PRNG from its warehouse id, so results are
independent of thread scheduling; the host mirror replays all four
sequence points and must agree on total operations and checksum.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads import data
from repro.workloads.base import (
    MetricKind,
    Workload,
    WorkloadResultCheck,
)
from repro.workloads.suite import register

MAIN = "spec.jbb.Main"
WAREHOUSE = "spec.jbb.Warehouse"
ORDER = "spec.jbb.Order"

WAREHOUSE_SEQUENCE = (1, 2, 3, 4)
TX_PER_SCALE = 60
STOCK_ITEMS = 512
CUSTOMER_POOL = 32
LINES_PER_ORDER = 4
EQUALS_EVERY = 2       # customer verification every Nth transaction
ROLLUP_EVERY = 8       # district arraycopy every Nth transaction


class _Mirror:
    """Replays every warehouse of every sequence point."""

    def __init__(self, names: List[str], tx_count: int):
        self.names = names
        self.tx_count = tx_count

    def run_warehouse(self, warehouse_id: int) -> int:
        def wrap32(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v >= 1 << 31 else v

        seed = (warehouse_id * 1000 + 17) & 0x7FFFFFFF

        def rng():
            nonlocal seed
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
            return seed

        stock = [100] * STOCK_ITEMS
        checksum = 0
        for tx in range(self.tx_count):
            order_total = 0
            for _line in range(LINES_PER_ORDER):
                item = rng() % STOCK_ITEMS
                qty = rng() % 10 + 1
                level = stock[item]
                if level < qty:
                    level += 91
                stock[item] = level - qty
                order_total = wrap32(order_total + qty * (item + 1))
            checksum = wrap32(checksum * 31 + order_total)
            if tx % EQUALS_EVERY == 0:
                name = self.names[rng() % len(self.names)]
                if name == name:  # the native equals the bytecode runs
                    checksum = wrap32(checksum + len(name))
            if tx % ROLLUP_EVERY == 0:
                checksum = wrap32(checksum + stock[0])
        return checksum

    def run(self) -> Tuple[int, int]:
        total_ops = 0
        checksum = 0
        def wrap32(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v >= 1 << 31 else v

        for warehouses in WAREHOUSE_SEQUENCE:
            for warehouse_id in range(1, warehouses + 1):
                checksum = wrap32(
                    checksum * 31 + self.run_warehouse(warehouse_id))
                total_ops += self.tx_count
        return total_ops, checksum


def _build_order() -> ClassAssembler:
    c = ClassAssembler(ORDER)
    c.field("total", default=0)
    c.field("lines", default=0)
    with c.method("<init>", "()V") as m:
        m.return_()
    with c.method("addLine", "(I)V") as m:
        m.aload(0).dup().getfield(ORDER, "total")
        m.iload(1).iadd().putfield(ORDER, "total")
        m.aload(0).dup().getfield(ORDER, "lines")
        m.iconst(1).iadd().putfield(ORDER, "lines")
        m.return_()
    with c.method("getTotal", "()I") as m:
        m.aload(0).getfield(ORDER, "total").ireturn()
    return c


def _build_warehouse(names: List[str], tx_count: int) -> ClassAssembler:
    c = ClassAssembler(WAREHOUSE, super_name="java.lang.Thread")
    c.field("wid", default=0)
    c.field("stock")
    c.field("customers")
    c.field("districts")
    c.field("rng")
    c.field("checksum", default=0)
    c.field("ops", default=0)

    with c.method("<init>", "(I[Ljava.lang.String;)V") as m:
        m.aload(0).iload(1).putfield(WAREHOUSE, "wid")
        m.aload(0).aload(2).putfield(WAREHOUSE, "customers")
        m.aload(0).ldc(STOCK_ITEMS).newarray(ArrayKind.INT)
        m.putfield(WAREHOUSE, "stock")
        m.aload(0).ldc(STOCK_ITEMS).newarray(ArrayKind.INT)
        m.putfield(WAREHOUSE, "districts")
        m.new("java.util.Random").dup()
        m.iload(1).ldc(1000).imul().ldc(17).iadd()
        m.invokespecial("java.util.Random", "<init>", "(I)V")
        m.aload(0).swap().putfield(WAREHOUSE, "rng")
        # initial stock level 100 everywhere
        m.iconst(0).istore(3)
        m.label("fill")
        m.iload(3).ldc(STOCK_ITEMS).if_icmpge("done")
        m.aload(0).getfield(WAREHOUSE, "stock").iload(3)
        m.ldc(100).iastore()
        m.iinc(3, 1).goto("fill")
        m.label("done")
        m.return_()

    with c.method("getStock", "(I)I") as m:
        m.aload(0).getfield(WAREHOUSE, "stock").iload(1)
        m.iaload().ireturn()

    with c.method("setStock", "(II)V") as m:
        m.aload(0).getfield(WAREHOUSE, "stock").iload(1)
        m.iload(2).iastore()
        m.return_()

    with c.method("pickItem", "()I") as m:
        m.aload(0).getfield(WAREHOUSE, "rng")
        m.ldc(STOCK_ITEMS)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.ireturn()

    with c.method("pickQty", "()I") as m:
        m.aload(0).getfield(WAREHOUSE, "rng")
        m.ldc(10)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.iconst(1).iadd().ireturn()

    with c.method("newOrder", f"()L{ORDER};") as m:
        # locals: 1=order,2=line,3=item,4=qty,5=level
        m.new(ORDER).dup()
        m.invokespecial(ORDER, "<init>", "()V").astore(1)
        m.iconst(0).istore(2)
        m.label("lines")
        m.iload(2).iconst(LINES_PER_ORDER).if_icmpge("done")
        m.aload(0).invokevirtual(WAREHOUSE, "pickItem", "()I")
        m.istore(3)
        m.aload(0).invokevirtual(WAREHOUSE, "pickQty", "()I")
        m.istore(4)
        m.aload(0).iload(3)
        m.invokevirtual(WAREHOUSE, "getStock", "(I)I").istore(5)
        m.iload(5).iload(4).if_icmpge("enough")
        m.iload(5).ldc(91).iadd().istore(5)
        m.label("enough")
        m.aload(0).iload(3)
        m.iload(5).iload(4).isub()
        m.invokevirtual(WAREHOUSE, "setStock", "(II)V")
        m.aload(1)
        m.iload(4).iload(3).iconst(1).iadd().imul()
        m.invokevirtual(ORDER, "addLine", "(I)V")
        m.iinc(2, 1).goto("lines")
        m.label("done")
        m.aload(1).areturn()

    with c.method("run", "()V") as m:
        # locals: 1=tx,2=order,3=cs,4=name
        m.iconst(0).istore(3)
        m.iconst(0).istore(1)
        m.label("tx_loop")
        m.iload(1).ldc(tx_count).if_icmpge("done")
        m.aload(0).invokevirtual(WAREHOUSE, "newOrder", f"()L{ORDER};")
        m.astore(2)
        m.iload(3).iconst(31).imul()
        m.aload(2).invokevirtual(ORDER, "getTotal", "()I")
        m.iadd().istore(3)
        # customer verification (native String.equals)
        m.iload(1).iconst(EQUALS_EVERY).irem().ifne("no_cust")
        m.aload(0).getfield(WAREHOUSE, "customers")
        m.aload(0).getfield(WAREHOUSE, "rng")
        m.iconst(len(names))
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.aaload().astore(4)
        m.aload(4).aload(4)
        m.invokevirtual("java.lang.String", "equals",
                        "(Ljava.lang.Object;)I")
        m.ifeq("no_cust")
        m.iload(3)
        m.aload(4).invokevirtual("java.lang.String", "length", "()I")
        m.iadd().istore(3)
        m.label("no_cust")
        # district roll-up (native arraycopy)
        m.iload(1).iconst(ROLLUP_EVERY).irem().ifne("no_rollup")
        m.aload(0).getfield(WAREHOUSE, "stock").iconst(0)
        m.aload(0).getfield(WAREHOUSE, "districts").iconst(0)
        m.ldc(STOCK_ITEMS)
        m.invokestatic("java.lang.System", "arraycopy",
                       "(Ljava.lang.Object;ILjava.lang.Object;II)V")
        m.iload(3)
        m.aload(0).iconst(0)
        m.invokevirtual(WAREHOUSE, "getStock", "(I)I")
        m.iadd().istore(3)
        m.label("no_rollup")
        m.aload(0).dup().getfield(WAREHOUSE, "ops")
        m.iconst(1).iadd().putfield(WAREHOUSE, "ops")
        m.iinc(1, 1).goto("tx_loop")
        m.label("done")
        m.aload(0).iload(3).putfield(WAREHOUSE, "checksum")
        m.return_()
    return c


def _build_main(names: List[str]) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    c.field("customerNames", static=True)

    with c.method("<clinit>", "()V", static=True) as m:
        m.iconst(len(names)).newarray(ArrayKind.REF).astore(0)
        for i, name in enumerate(names):
            m.aload(0).iconst(i).ldc(name).aastore()
        m.aload(0).putstatic(MAIN, "customerNames")
        m.return_()

    with c.method("main", "()V", static=True) as m:
        # locals: 0=warehouses(point),1=wid,2=w,3=ops,4=checksum,5=arr
        m.iconst(0).istore(3)
        m.iconst(0).istore(4)
        for point in WAREHOUSE_SEQUENCE:
            # spawn `point` warehouses, start all, then join in order
            m.iconst(point).newarray(ArrayKind.REF).astore(5)
            for wid in range(1, point + 1):
                m.aload(5).iconst(wid - 1)
                m.new(WAREHOUSE).dup().iconst(wid)
                m.getstatic(MAIN, "customerNames")
                m.invokespecial(WAREHOUSE, "<init>",
                                "(I[Ljava.lang.String;)V")
                m.aastore()
            for wid in range(1, point + 1):
                m.aload(5).iconst(wid - 1).aaload().checkcast(WAREHOUSE)
                m.invokevirtual(WAREHOUSE, "start", "()V")
            for wid in range(1, point + 1):
                m.aload(5).iconst(wid - 1).aaload().checkcast(WAREHOUSE)
                m.astore(2)
                m.aload(2).invokevirtual(WAREHOUSE, "join", "()V")
                m.iload(4).iconst(31).imul()
                m.aload(2).getfield(WAREHOUSE, "checksum")
                m.iadd().istore(4)
                m.iload(3)
                m.aload(2).getfield(WAREHOUSE, "ops")
                m.iadd().istore(3)
        for key, slot in (("ops", 3), ("checksum", 4)):
            m.getstatic("java.lang.System", "out")
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc(f"{key}=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            m.iload(slot)
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.io.PrintStream", "println",
                            "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class Jbb2005Workload(Workload):
    """Warehouse transaction throughput, sequence 1-4."""

    name = "jbb2005"
    description = ("multi-threaded order transactions; throughput "
                   "metric with warehouse sequence 1,2,3,4")
    metric = MetricKind.THROUGHPUT

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.names = data.word_list(CUSTOMER_POOL, seed=71, min_len=10,
                                    max_len=18)
        self.tx_count = TX_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_order().build())
        archive.put_class(
            _build_warehouse(self.names, self.tx_count).build())
        archive.put_class(_build_main(self.names).build())
        return archive

    def operations(self, vm) -> int:
        value = self.console_value(vm, "ops")
        return int(value) if value is not None else 0

    def validate(self, vm) -> WorkloadResultCheck:
        expected_ops, expected_checksum = _Mirror(
            self.names, self.tx_count).run()
        ops = self.console_value(vm, "ops")
        checksum = self.console_value(vm, "checksum")
        if ops is None or checksum is None:
            return WorkloadResultCheck(False, "missing console output")
        if int(ops) != expected_ops:
            return WorkloadResultCheck(
                False, f"ops {ops} != {expected_ops}")
        if int(checksum) != expected_checksum:
            return WorkloadResultCheck(
                False, f"checksum {checksum} != {expected_checksum}")
        return WorkloadResultCheck(True)
