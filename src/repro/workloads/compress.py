"""``compress`` — LZW compression (the SPEC ``_201_compress`` analogue).

Reads a pseudo-text input file in chunks (native I/O), maintains a
running CRC32 (native), and LZW-compresses with 12-bit codes over an
open-addressing hash table, emitting packed codes to an output file.
Per input byte the hot path makes several small Java method calls
(``compressByte`` -> ``findSlot`` -> ``hashOf`` ...), giving the high
method-call density behind compress's large SPA overhead; native calls
are comparatively rare but fat (chunked reads/writes, CRC updates,
``arraycopy`` dictionary resets) — the Table II profile of compress.

The run is validated against a host-side LZW mirror: CRC, compressed
byte count, and the exact output file must match.
"""

from __future__ import annotations

import zlib
from typing import Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads import data
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

MAIN = "spec.jvm98.compress.Main"
LZW = "spec.jvm98.compress.Lzw"

DICT_SIZE = 4096
HASH_SIZE = 8192
HASH_MASK = HASH_SIZE - 1
CHUNK = 512
INPUT_FILE = "compress.in"
OUTPUT_FILE = "compress.out"
#: Input bytes per unit of scale.
BYTES_PER_SCALE = 4096


def reference_lzw(payload: bytes) -> Tuple[bytes, int]:
    """Host-side mirror of the bytecode LZW; returns (packed output,
    code count)."""
    table = {}
    next_code = 256
    prefix = -1
    out = bytearray()
    bit_buf = 0
    bit_cnt = 0
    codes = 0

    def emit(code: int):
        nonlocal bit_buf, bit_cnt, codes
        codes += 1
        bit_buf = ((bit_buf << 12) | code) & 0xFFFFF
        bit_cnt += 12
        while bit_cnt >= 8:
            out.append((bit_buf >> (bit_cnt - 8)) & 0xFF)
            bit_cnt -= 8

    for byte in payload:
        if prefix < 0:
            prefix = byte
            continue
        code = table.get((prefix, byte))
        if code is not None:
            prefix = code
            continue
        emit(prefix)
        if next_code < DICT_SIZE:
            table[(prefix, byte)] = next_code
            next_code += 1
        else:
            table.clear()
            next_code = 256
        prefix = byte
    if prefix >= 0:
        emit(prefix)
    if bit_cnt > 0:
        out.append((bit_buf << (8 - bit_cnt)) & 0xFF)
    return bytes(out), codes


def _build_lzw() -> ClassAssembler:
    c = ClassAssembler(LZW)
    for name in ("hashTable", "codePrefix", "codeChar", "zeroTemplate",
                 "out"):
        c.field(name)
    for name in ("nextCode", "prefix", "outPos", "bitBuf", "bitCnt",
                 "codes"):
        c.field(name, default=0)

    with c.method("<init>", "(I)V") as m:
        # locals: 0=this, 1=output capacity
        m.aload(0).iconst(HASH_SIZE).newarray(ArrayKind.INT)
        m.putfield(LZW, "hashTable")
        m.aload(0).iconst(HASH_SIZE).newarray(ArrayKind.INT)
        m.putfield(LZW, "zeroTemplate")
        m.aload(0).iconst(DICT_SIZE).newarray(ArrayKind.INT)
        m.putfield(LZW, "codePrefix")
        m.aload(0).iconst(DICT_SIZE).newarray(ArrayKind.INT)
        m.putfield(LZW, "codeChar")
        m.aload(0).iload(1).newarray(ArrayKind.BYTE)
        m.putfield(LZW, "out")
        m.aload(0).iconst(256).putfield(LZW, "nextCode")
        m.aload(0).iconst(-1).putfield(LZW, "prefix")
        m.return_()

    with c.method("hashOf", "(II)I") as m:
        # ((p << 5) ^ ch) & HASH_MASK
        m.iload(1).iconst(5).ishl()
        m.iload(2).ixor()
        m.iconst(HASH_MASK).iand()
        m.ireturn()

    with c.method("findSlot", "(II)I") as m:
        # locals: 0=this, 1=p, 2=ch, 3=h, 4=v, 5=code
        m.aload(0).iload(1).iload(2)
        m.invokevirtual(LZW, "hashOf", "(II)I").istore(3)
        m.label("probe")
        m.aload(0).getfield(LZW, "hashTable").iload(3).iaload()
        m.istore(4)
        m.iload(4).ifeq("found_empty")
        m.iload(4).iconst(1).isub().istore(5)
        m.aload(0).getfield(LZW, "codePrefix").iload(5).iaload()
        m.iload(1).if_icmpne("next")
        m.aload(0).getfield(LZW, "codeChar").iload(5).iaload()
        m.iload(2).if_icmpne("next")
        m.iload(3).ireturn()
        m.label("next")
        m.iload(3).iconst(1).iadd().iconst(HASH_MASK).iand().istore(3)
        m.goto("probe")
        m.label("found_empty")
        m.iload(3).ireturn()

    with c.method("putCode", "(I)V") as m:
        # locals: 0=this, 1=code, 2=buf, 3=cnt, 4=pos
        m.aload(0).dup().getfield(LZW, "codes").iconst(1).iadd()
        m.putfield(LZW, "codes")
        m.aload(0).getfield(LZW, "bitBuf").iconst(12).ishl()
        m.iload(1).ior().ldc(0xFFFFF).iand().istore(2)
        m.aload(0).getfield(LZW, "bitCnt").iconst(12).iadd().istore(3)
        m.aload(0).getfield(LZW, "outPos").istore(4)
        m.label("drain")
        m.iload(3).iconst(8).if_icmplt("done")
        m.aload(0).getfield(LZW, "out").iload(4)
        m.iload(2).iload(3).iconst(8).isub().iushr()
        m.iconst(255).iand()
        m.iastore()
        m.iinc(4, 1)
        m.iload(3).iconst(8).isub().istore(3)
        m.goto("drain")
        m.label("done")
        m.aload(0).iload(2).putfield(LZW, "bitBuf")
        m.aload(0).iload(3).putfield(LZW, "bitCnt")
        m.aload(0).iload(4).putfield(LZW, "outPos")
        m.return_()

    with c.method("reset", "()V") as m:
        m.aload(0).getfield(LZW, "zeroTemplate").iconst(0)
        m.aload(0).getfield(LZW, "hashTable").iconst(0)
        m.iconst(HASH_SIZE)
        m.invokestatic("java.lang.System", "arraycopy",
                       "(Ljava.lang.Object;ILjava.lang.Object;II)V")
        m.aload(0).iconst(256).putfield(LZW, "nextCode")
        m.return_()

    with c.method("compressByte", "(I)V") as m:
        # locals: 0=this, 1=c, 2=prefix, 3=slot, 4=v, 5=nc
        m.aload(0).getfield(LZW, "prefix").istore(2)
        m.iload(2).ifge("have_prefix")
        m.aload(0).iload(1).putfield(LZW, "prefix")
        m.return_()
        m.label("have_prefix")
        m.aload(0).iload(2).iload(1)
        m.invokevirtual(LZW, "findSlot", "(II)I").istore(3)
        m.aload(0).getfield(LZW, "hashTable").iload(3).iaload()
        m.istore(4)
        m.iload(4).ifeq("miss")
        m.aload(0).iload(4).iconst(1).isub().putfield(LZW, "prefix")
        m.return_()
        m.label("miss")
        m.aload(0).iload(2).invokevirtual(LZW, "putCode", "(I)V")
        m.aload(0).getfield(LZW, "nextCode").istore(5)
        m.iload(5).iconst(DICT_SIZE).if_icmpge("full")
        m.aload(0).getfield(LZW, "hashTable").iload(3)
        m.iload(5).iconst(1).iadd().iastore()
        m.aload(0).getfield(LZW, "codePrefix").iload(5)
        m.iload(2).iastore()
        m.aload(0).getfield(LZW, "codeChar").iload(5)
        m.iload(1).iastore()
        m.aload(0).iload(5).iconst(1).iadd().putfield(LZW, "nextCode")
        m.goto("tail")
        m.label("full")
        m.aload(0).invokevirtual(LZW, "reset", "()V")
        m.label("tail")
        m.aload(0).iload(1).putfield(LZW, "prefix")
        m.return_()

    with c.method("finish", "()V") as m:
        # locals: 0=this
        m.aload(0).getfield(LZW, "prefix").iflt("flush")
        m.aload(0).aload(0).getfield(LZW, "prefix")
        m.invokevirtual(LZW, "putCode", "(I)V")
        m.label("flush")
        m.aload(0).getfield(LZW, "bitCnt").ifle("done")
        m.aload(0).getfield(LZW, "out")
        m.aload(0).getfield(LZW, "outPos")
        m.aload(0).getfield(LZW, "bitBuf")
        m.iconst(8).aload(0).getfield(LZW, "bitCnt").isub().ishl()
        m.iconst(255).iand()
        m.iastore()
        m.aload(0).dup().getfield(LZW, "outPos").iconst(1).iadd()
        m.putfield(LZW, "outPos")
        m.label("done")
        m.return_()
    return c


def _build_main(input_size: int) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=lzw, 1=crc, 2=in, 3=buf, 4=n, 5=i, 6=total, 7=fos
        m.new(LZW).dup().ldc(input_size + 4096)
        m.invokespecial(LZW, "<init>", "(I)V").astore(0)
        m.new("java.util.zip.CRC32").dup()
        m.invokespecial("java.util.zip.CRC32", "<init>", "()V")
        m.astore(1)
        m.new("java.io.FileInputStream").dup().ldc(INPUT_FILE)
        m.invokespecial("java.io.FileInputStream", "<init>",
                        "(Ljava.lang.String;)V")
        m.astore(2)
        m.ldc(CHUNK).newarray(ArrayKind.BYTE).astore(3)
        m.iconst(0).istore(6)
        m.label("read_loop")
        m.aload(2).aload(3).iconst(0).ldc(CHUNK)
        m.invokevirtual("java.io.FileInputStream", "read", "([BII)I")
        m.istore(4)
        m.iload(4).ifle("eof")
        m.aload(1).aload(3).iconst(0).iload(4)
        m.invokevirtual("java.util.zip.CRC32", "update", "([BII)V")
        m.iload(6).iload(4).iadd().istore(6)
        m.iconst(0).istore(5)
        m.label("byte_loop")
        m.iload(5).iload(4).if_icmpge("read_loop")
        m.aload(0)
        m.aload(3).iload(5).iaload().iconst(255).iand()
        m.invokevirtual(LZW, "compressByte", "(I)V")
        m.iinc(5, 1).goto("byte_loop")
        m.label("eof")
        m.aload(2).invokevirtual("java.io.FileInputStream", "close",
                                 "()V")
        m.aload(0).invokevirtual(LZW, "finish", "()V")
        m.new("java.io.FileOutputStream").dup().ldc(OUTPUT_FILE)
        m.invokespecial("java.io.FileOutputStream", "<init>",
                        "(Ljava.lang.String;)V")
        m.astore(7)
        m.aload(7).aload(0).getfield(LZW, "out").iconst(0)
        m.aload(0).getfield(LZW, "outPos")
        m.invokevirtual("java.io.FileOutputStream", "write", "([BII)V")
        m.aload(7).invokevirtual("java.io.FileOutputStream", "close",
                                 "()V")
        # report
        m.getstatic("java.lang.System", "out")
        m.new("java.lang.StringBuilder").dup()
        m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
        m.ldc("crc=")
        m.invokevirtual("java.lang.StringBuilder", "appendString",
                        "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
        m.aload(1).invokevirtual("java.util.zip.CRC32", "getValue",
                                 "()I")
        m.invokevirtual("java.lang.StringBuilder", "appendInt",
                        "(I)Ljava.lang.StringBuilder;")
        m.invokevirtual("java.lang.StringBuilder", "toString",
                        "()Ljava.lang.String;")
        m.invokevirtual("java.io.PrintStream", "println",
                        "(Ljava.lang.String;)V")
        m.getstatic("java.lang.System", "out")
        m.new("java.lang.StringBuilder").dup()
        m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
        m.ldc("outBytes=")
        m.invokevirtual("java.lang.StringBuilder", "appendString",
                        "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
        m.aload(0).getfield(LZW, "outPos")
        m.invokevirtual("java.lang.StringBuilder", "appendInt",
                        "(I)Ljava.lang.StringBuilder;")
        m.invokevirtual("java.lang.StringBuilder", "toString",
                        "()Ljava.lang.String;")
        m.invokevirtual("java.io.PrintStream", "println",
                        "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class CompressWorkload(Workload):
    """LZW compression over a pseudo-text input file."""

    name = "compress"
    description = ("LZW compressor: chunked native I/O + CRC32, "
                   "call-dense bytecode hot loop")

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.input_bytes = data.text_bytes(BYTES_PER_SCALE * scale)

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_lzw().build())
        archive.put_class(_build_main(len(self.input_bytes)).build())
        return archive

    def install_files(self, vm) -> None:
        vm.add_file(INPUT_FILE, self.input_bytes)

    def validate(self, vm) -> WorkloadResultCheck:
        expected_out, _codes = reference_lzw(self.input_bytes)
        crc = self.console_value(vm, "crc")
        out_bytes = self.console_value(vm, "outBytes")
        if crc is None or out_bytes is None:
            return WorkloadResultCheck(False, "missing console output")
        expected_crc = zlib.crc32(self.input_bytes)
        if int(crc) != expected_crc:
            return WorkloadResultCheck(
                False, f"crc {crc} != {expected_crc}")
        if int(out_bytes) != len(expected_out):
            return WorkloadResultCheck(
                False,
                f"outBytes {out_bytes} != {len(expected_out)}")
        produced = vm.files.get(OUTPUT_FILE)
        if bytes(produced or b"") != expected_out:
            return WorkloadResultCheck(False,
                                       "output file mismatch")
        return WorkloadResultCheck(True)
