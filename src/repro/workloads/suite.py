"""Workload registry (populated as benchmarks are implemented)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import WorkloadError
from repro.workloads.base import Workload

_REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator: add a workload to the registry."""
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def workload_names() -> List[str]:
    return list(_REGISTRY)


def get_workload(name: str, scale: int = 1) -> Workload:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}")
    return cls(scale=scale)


def jvm98_suite(scale: int = 1) -> List[Workload]:
    """The seven SPEC JVM98 equivalents, in the paper's order."""
    order = ["compress", "jess", "db", "javac", "mpegaudio", "mtrt",
             "jack"]
    return [get_workload(name, scale) for name in order
            if name in _REGISTRY]


def full_suite(scale: int = 1) -> List[Workload]:
    """JVM98 plus JBB2005."""
    suite = jvm98_suite(scale)
    if "jbb2005" in _REGISTRY:
        suite.append(get_workload("jbb2005", scale))
    return suite
