"""Deterministic input generation for the workloads.

Everything is seeded; no host randomness ever reaches the simulator, so
every run of every benchmark is bit-reproducible.
"""

from __future__ import annotations

from typing import List


class Lcg:
    """Small deterministic PRNG (host side, for input generation)."""

    def __init__(self, seed: int):
        self._state = seed & 0x7FFFFFFF or 1

    def next(self) -> int:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state

    def below(self, bound: int) -> int:
        return self.next() % bound


_VOCABULARY = [
    b"the", b"quick", b"brown", b"fox", b"jumps", b"over", b"lazy",
    b"dog", b"pack", b"my", b"box", b"with", b"five", b"dozen",
    b"liquor", b"jugs", b"sphinx", b"of", b"black", b"quartz",
    b"judge", b"vow", b"benchmark", b"java", b"native", b"code",
    b"profile", b"agent", b"virtual", b"machine",
]


def text_bytes(size: int, seed: int = 7) -> bytes:
    """Pseudo-text: word-like and compressible, as LZW inputs should be."""
    rng = Lcg(seed)
    out = bytearray()
    while len(out) < size:
        out.extend(_VOCABULARY[rng.below(len(_VOCABULARY))])
        out.append(32)  # space
        if rng.below(12) == 0:
            out.append(10)  # newline
    return bytes(out[:size])


def binary_bytes(size: int, seed: int = 11) -> bytes:
    """Less compressible pseudo-binary data."""
    rng = Lcg(seed)
    return bytes(rng.below(256) for _ in range(size))


def word_list(count: int, seed: int = 13,
              min_len: int = 3, max_len: int = 12) -> List[str]:
    """Deterministic identifier-like words (db/jess/javac inputs)."""
    rng = Lcg(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    words = []
    for _ in range(count):
        length = min_len + rng.below(max_len - min_len + 1)
        words.append("".join(alphabet[rng.below(26)]
                             for _ in range(length)))
    return words
