"""``jess`` — forward-chaining rule engine (the SPEC ``_202_jess``
analogue).

Working memory holds integer-slot facts; five rules fire in generations
over a frontier queue, deduplicating derived facts through an
open-addressed hash set.  The matching path is deliberately built from
very small methods (slot accessors, per-rule match/derive methods,
per-probe hash-set methods), giving the *highest* Java-method-call
density of the suite after mtrt — the paper's jess has the
second-largest SPA overhead.  Each rule activation touches the symbol
table: ``String.equals`` against the rule's (long) activation symbol
plus an ``intern()`` — the moderate native-call stream behind jess's
~5 % native time.

Validation: a Python mirror executes the identical rule semantics and
must agree on the derived-fact count and checksum.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

MAIN = "spec.jvm98.jess.Main"
FACT = "spec.jvm98.jess.Fact"
ENGINE = "spec.jvm98.jess.Engine"

VALUE_MASK = 4095          # fact slots live in [0, 4096)
TABLE_BITS = 13
TABLE_SIZE = 1 << TABLE_BITS
TABLE_MASK = TABLE_SIZE - 1
MAX_FACTS = 4096
SEED_FACTS = 56
PROBLEMS_PER_SCALE = 3
GENERATION_CAP = 12

RULE_SYMBOLS = [
    "rule-supply-chain-reorder-threshold-activation-consequent-fire",
    "rule-inventory-replenishment-audit-trail-activation-consequent",
    "rule-customer-priority-escalation-matrix-activation-consequent",
    "rule-logistics-route-rebalancing-window-activation-consequent",
    "rule-billing-adjustment-reconciliation-activation-consequent",
    "rule-forecast-demand-smoothing-horizon-activation-consequent",
]


def _pack(fact_type: int, a: int, b: int) -> int:
    return (fact_type << 24) | (a << 12) | b


class _Mirror:
    """Host-side replay of the engine."""

    def __init__(self, n_problems: int):
        self.n_problems = n_problems

    def _derive(self, fact_type: int, a: int, b: int):
        """Apply each rule to one fact; yields derived facts in rule
        order.  Mirrors the bytecode exactly (IDIV/IREM on
        non-negative values, masks keep slots in range)."""
        if fact_type == 0 and a < b:
            yield (1, (a + b) & VALUE_MASK, (a * b) & VALUE_MASK)
        if fact_type == 1 and (a & 1) == 1:
            yield (2, (a ^ b) & VALUE_MASK, (a + 3) & VALUE_MASK)
        if fact_type == 2 and a % 3 == 0:
            yield (3, (a + b) & VALUE_MASK, (b - a) & VALUE_MASK
                   if b >= a else (a - b) & VALUE_MASK)
        if fact_type == 3 and b > 0:
            yield (4, a % 7, b % 11)
        if fact_type == 4 and a > b:
            yield (5, (a - b) & VALUE_MASK, (a + b) & VALUE_MASK)

    def run(self) -> Tuple[int, int]:
        seed = 987

        def rng():
            nonlocal seed
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
            return seed

        total_facts = 0
        checksum = 0
        for _problem in range(self.n_problems):
            facts: List[Tuple[int, int, int]] = []
            seen = set()
            for _ in range(SEED_FACTS):
                fact = (rng() % 3, rng() & VALUE_MASK,
                        rng() & VALUE_MASK)
                if fact not in seen and len(facts) < MAX_FACTS:
                    seen.add(fact)
                    facts.append(fact)
            start = 0
            for _generation in range(GENERATION_CAP):
                end = len(facts)
                if start == end or end >= MAX_FACTS:
                    break
                for i in range(start, end):
                    fact_type, a, b = facts[i]
                    for derived in self._derive(fact_type, a, b):
                        if derived not in seen and \
                                len(facts) < MAX_FACTS:
                            seen.add(derived)
                            facts.append(derived)
                start = end
            total_facts += len(facts)
            for fact_type, a, b in facts:
                checksum = (checksum * 31
                            + _pack(fact_type, a, b)) & 0x7FFFFFFF
        return total_facts, checksum


def _build_fact() -> ClassAssembler:
    c = ClassAssembler(FACT)
    for field in ("ftype", "slotA", "slotB"):
        c.field(field, default=0)
    with c.method("<init>", "(III)V") as m:
        m.aload(0).iload(1).putfield(FACT, "ftype")
        m.aload(0).iload(2).putfield(FACT, "slotA")
        m.aload(0).iload(3).putfield(FACT, "slotB")
        m.return_()
    # slot accessors: the call-density generators
    for field, getter in (("ftype", "getType"), ("slotA", "getA"),
                          ("slotB", "getB")):
        with c.method(getter, "()I") as m:
            m.aload(0).getfield(FACT, field).ireturn()
    with c.method("packed", "()I") as m:
        m.aload(0).invokevirtual(FACT, "getType", "()I")
        m.iconst(24).ishl()
        m.aload(0).invokevirtual(FACT, "getA", "()I")
        m.iconst(12).ishl().ior()
        m.aload(0).invokevirtual(FACT, "getB", "()I")
        m.ior().ireturn()
    return c


def _build_engine() -> ClassAssembler:
    c = ClassAssembler(ENGINE)
    c.field("facts")          # Fact[]
    c.field("count", default=0)
    c.field("table")          # int[] dedup set (packed+1, 0 = empty)
    c.field("symbols")        # String[] rule activation symbols
    c.field("activations", default=0)

    with c.method("<init>", "()V") as m:
        m.aload(0).ldc(MAX_FACTS).newarray(ArrayKind.REF)
        m.putfield(ENGINE, "facts")
        m.aload(0).ldc(TABLE_SIZE).newarray(ArrayKind.INT)
        m.putfield(ENGINE, "table")
        m.aload(0).iconst(len(RULE_SYMBOLS)).newarray(ArrayKind.REF)
        m.putfield(ENGINE, "symbols")
        m.return_()

    with c.method("installSymbol", "(ILjava.lang.String;)V") as m:
        m.aload(0).getfield(ENGINE, "symbols")
        m.iload(1)
        m.aload(2).invokevirtual("java.lang.String", "intern",
                                 "()Ljava.lang.String;")
        m.aastore()
        m.return_()

    with c.method("hashSlot", "(I)I") as m:
        # (p * 0x9E37) >> 1 & mask, then linear probe by caller
        m.iload(1).ldc(0x9E37).imul().iconst(1).iushr()
        m.ldc(TABLE_MASK).iand().ireturn()

    with c.method("probe", "(I)I") as m:
        # returns slot where packed lives or first empty slot
        # locals: 0=this,1=packed,2=h,3=v,4=tab
        m.aload(0).iload(1).invokevirtual(ENGINE, "hashSlot", "(I)I")
        m.istore(2)
        m.aload(0).getfield(ENGINE, "table").astore(4)
        m.label("scan")
        m.aload(4).iload(2).iaload().istore(3)
        m.iload(3).ifeq("hit")
        m.iload(3).iconst(1).isub().iload(1).if_icmpeq("hit")
        m.iload(2).iconst(1).iadd().ldc(TABLE_MASK).iand().istore(2)
        m.goto("scan")
        m.label("hit")
        m.iload(2).ireturn()

    with c.method("addFact", "(III)I") as m:
        # dedup-insert; returns 1 if added
        # locals: 0=this,1=t,2=a,3=b,4=packed,5=slot,6=n
        m.iload(1).iconst(24).ishl()
        m.iload(2).iconst(12).ishl().ior()
        m.iload(3).ior().istore(4)
        m.aload(0).iload(4).invokevirtual(ENGINE, "probe", "(I)I")
        m.istore(5)
        m.aload(0).getfield(ENGINE, "table").iload(5).iaload()
        m.ifeq("insert")
        m.iconst(0).ireturn()
        m.label("insert")
        m.aload(0).getfield(ENGINE, "count").istore(6)
        m.iload(6).ldc(MAX_FACTS).if_icmplt("room")
        m.iconst(0).ireturn()
        m.label("room")
        m.aload(0).getfield(ENGINE, "table").iload(5)
        m.iload(4).iconst(1).iadd().iastore()
        m.aload(0).getfield(ENGINE, "facts").iload(6)
        m.new(FACT).dup().iload(1).iload(2).iload(3)
        m.invokespecial(FACT, "<init>", "(III)V")
        m.aastore()
        m.aload(0).iload(6).iconst(1).iadd().putfield(ENGINE, "count")
        m.iconst(1).ireturn()

    with c.method("recordActivation", "(I)V") as m:
        # symbol-table touch: native equals + intern per activation
        # locals: 0=this,1=rule,2=sym
        m.aload(0).getfield(ENGINE, "symbols").iload(1).aaload()
        m.astore(2)
        m.aload(2).aload(2)
        m.invokevirtual("java.lang.String", "equals",
                        "(Ljava.lang.Object;)I")
        m.pop()
        m.aload(0).dup().getfield(ENGINE, "activations")
        m.iconst(1).iadd().putfield(ENGINE, "activations")
        m.return_()

    # -- the five rules: match + derive, tiny methods ---------------------

    def rule(index, match_builder, derive_builder):
        with c.method(f"rule{index}Matches",
                      f"(L{FACT};)I") as m:
            match_builder(m)
        with c.method(f"rule{index}Fire", f"(L{FACT};)I") as m:
            derive_builder(m)

    def match1(m):
        # type 0 and a < b
        m.aload(1).invokevirtual(FACT, "getType", "()I")
        m.ifne("no")
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.if_icmpge("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()

    def fire1(m):
        m.aload(0).iconst(1)
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.iadd().ldc(VALUE_MASK).iand()
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.imul().ldc(VALUE_MASK).iand()
        m.invokevirtual(ENGINE, "addFact", "(III)I")
        m.ireturn()

    def match2(m):
        m.aload(1).invokevirtual(FACT, "getType", "()I")
        m.iconst(1).if_icmpne("no")
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.iconst(1).iand().ifeq("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()

    def fire2(m):
        m.aload(0).iconst(2)
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.ixor().ldc(VALUE_MASK).iand()
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.iconst(3).iadd().ldc(VALUE_MASK).iand()
        m.invokevirtual(ENGINE, "addFact", "(III)I")
        m.ireturn()

    def match3(m):
        m.aload(1).invokevirtual(FACT, "getType", "()I")
        m.iconst(2).if_icmpne("no")
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.iconst(3).irem().ifne("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()

    def fire3(m):
        # b>=a ? (b-a)&M : (a-b)&M  -> abs difference masked
        m.aload(0).iconst(3)
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.iadd().ldc(VALUE_MASK).iand()
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.if_icmplt("swap")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.isub().ldc(VALUE_MASK).iand()
        m.goto("add")
        m.label("swap")
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.isub().ldc(VALUE_MASK).iand()
        m.label("add")
        m.invokevirtual(ENGINE, "addFact", "(III)I")
        m.ireturn()

    def match4(m):
        m.aload(1).invokevirtual(FACT, "getType", "()I")
        m.iconst(3).if_icmpne("no")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.ifle("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()

    def fire4(m):
        m.aload(0).iconst(4)
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.iconst(7).irem()
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.ldc(11).irem()
        m.invokevirtual(ENGINE, "addFact", "(III)I")
        m.ireturn()

    def match5(m):
        m.aload(1).invokevirtual(FACT, "getType", "()I")
        m.iconst(4).if_icmpne("no")
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.if_icmple("no")
        m.iconst(1).ireturn()
        m.label("no").iconst(0).ireturn()

    def fire5(m):
        m.aload(0).iconst(5)
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.isub().ldc(VALUE_MASK).iand()
        m.aload(1).invokevirtual(FACT, "getA", "()I")
        m.aload(1).invokevirtual(FACT, "getB", "()I")
        m.iadd().ldc(VALUE_MASK).iand()
        m.invokevirtual(ENGINE, "addFact", "(III)I")
        m.ireturn()

    rule(1, match1, fire1)
    rule(2, match2, fire2)
    rule(3, match3, fire3)
    rule(4, match4, fire4)
    rule(5, match5, fire5)

    with c.method("factAt", f"(I)L{FACT};") as m:
        m.aload(0).getfield(ENGINE, "facts").iload(1).aaload()
        m.checkcast(FACT).areturn()

    with c.method("applyRules", f"(L{FACT};)V") as m:
        # locals: 0=this, 1=fact
        for index in range(1, 6):
            m.aload(0).aload(1)
            m.invokevirtual(ENGINE, f"rule{index}Matches",
                            f"(L{FACT};)I")
            m.ifeq(f"skip{index}")
            m.aload(0).aload(1)
            m.invokevirtual(ENGINE, f"rule{index}Fire", f"(L{FACT};)I")
            m.ifeq(f"skip{index}")
            if index % 2 == 1:  # audited rules touch the symbol table
                m.aload(0).iconst(index)
                m.invokevirtual(ENGINE, "recordActivation", "(I)V")
            m.label(f"skip{index}")
        m.return_()

    with c.method("runGenerations", "()V") as m:
        # locals: 0=this,1=start,2=end,3=i,4=gen
        m.iconst(0).istore(1)
        m.iconst(0).istore(4)
        m.label("gen_loop")
        m.iload(4).iconst(GENERATION_CAP).if_icmpge("done")
        m.aload(0).getfield(ENGINE, "count").istore(2)
        m.iload(1).iload(2).if_icmpge("done")
        m.iload(1).istore(3)
        m.label("fact_loop")
        m.iload(3).iload(2).if_icmpge("gen_next")
        m.aload(0)
        m.aload(0).iload(3)
        m.invokevirtual(ENGINE, "factAt", f"(I)L{FACT};")
        m.invokevirtual(ENGINE, "applyRules", f"(L{FACT};)V")
        m.iinc(3, 1).goto("fact_loop")
        m.label("gen_next")
        m.iload(2).istore(1)
        m.iinc(4, 1).goto("gen_loop")
        m.label("done")
        m.return_()

    with c.method("checksumFrom", "(I)I") as m:
        # locals: 0=this,1=sum(arg),2=i,3=n
        m.aload(0).getfield(ENGINE, "count").istore(3)
        m.iconst(0).istore(2)
        m.label("loop")
        m.iload(2).iload(3).if_icmpge("done")
        m.iload(1).iconst(31).imul()
        m.aload(0).iload(2)
        m.invokevirtual(ENGINE, "factAt", f"(I)L{FACT};")
        m.invokevirtual(FACT, "packed", "()I")
        m.iadd().ldc(0x7FFFFFFF).iand().istore(1)
        m.iinc(2, 1).goto("loop")
        m.label("done")
        m.iload(1).ireturn()
    return c


def _build_main(n_problems: int) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=engine,1=rng,2=i,3=problem,4=totalFacts,5=checksum
        m.new("java.util.Random").dup().ldc(987)
        m.invokespecial("java.util.Random", "<init>", "(I)V").astore(1)
        m.iconst(0).istore(4)
        m.iconst(0).istore(5)
        m.iconst(0).istore(3)
        m.label("problem_loop")
        m.iload(3).ldc(n_problems).if_icmpge("report")
        m.new(ENGINE).dup()
        m.invokespecial(ENGINE, "<init>", "()V").astore(0)
        for index, symbol in enumerate(RULE_SYMBOLS):
            m.aload(0).iconst(index).ldc(symbol)
            m.invokevirtual(ENGINE, "installSymbol",
                            "(ILjava.lang.String;)V")
        m.iconst(0).istore(2)
        m.label("seed")
        m.iload(2).ldc(SEED_FACTS).if_icmpge("run")
        m.aload(0)
        m.aload(1).iconst(3)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.aload(1).invokevirtual("java.util.Random", "next", "()I")
        m.ldc(VALUE_MASK).iand()
        m.aload(1).invokevirtual("java.util.Random", "next", "()I")
        m.ldc(VALUE_MASK).iand()
        m.invokevirtual(ENGINE, "addFact", "(III)I").pop()
        m.iinc(2, 1).goto("seed")
        m.label("run")
        m.aload(0).invokevirtual(ENGINE, "runGenerations", "()V")
        m.iload(4).aload(0).getfield(ENGINE, "count").iadd()
        m.istore(4)
        # checksum chains across problems: Engine.checksum is seeded
        m.aload(0).iload(5)
        m.invokevirtual(ENGINE, "checksumFrom", "(I)I").istore(5)
        m.iinc(3, 1).goto("problem_loop")
        m.label("report")
        for key in ("facts", "checksum"):
            m.getstatic("java.lang.System", "out")
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc(f"{key}=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            if key == "facts":
                m.iload(4)
            else:
                m.iload(5)
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.io.PrintStream", "println",
                            "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class JessWorkload(Workload):
    """Forward-chaining rule engine over integer facts."""

    name = "jess"
    description = ("rule engine: accessor-dense matching, symbol-table "
                   "string natives per activation")

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.n_problems = PROBLEMS_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_fact().build())
        archive.put_class(_build_engine().build())
        archive.put_class(_build_main(self.n_problems).build())
        return archive

    def validate(self, vm) -> WorkloadResultCheck:
        expected_count, expected_checksum = _Mirror(
            self.n_problems).run()
        facts = self.console_value(vm, "facts")
        checksum = self.console_value(vm, "checksum")
        if facts is None or checksum is None:
            return WorkloadResultCheck(False, "missing console output")
        if int(facts) != expected_count:
            return WorkloadResultCheck(
                False, f"facts {facts} != {expected_count}")
        if int(checksum) != expected_checksum:
            return WorkloadResultCheck(
                False, f"checksum {checksum} != {expected_checksum}")
        return WorkloadResultCheck(True)
