"""Blocking-I/O workload family (DESIGN.md §13).

Three benchmarks whose hot loops sit behind the blocking device
natives (``java.io.RandomAccessFile``, ``java.net.Socket``), so a
significant share of their wall time elapses **off CPU** on per-device
timelines rather than on the caller's cycle clock:

* ``io-logs`` — sequential log scan: chunked ``RandomAccessFile``
  reads, line counting and checksum folding in bytecode.
* ``io-kv`` — persistent key/value store in the ``db`` mold: fixed
  4-byte slots addressed by ``seek``; a populate phase then a
  read-mostly op mix with every third op writing back.
* ``io-echo`` — request/response against the simulated echo peer:
  fill a payload, ``send``, ``recv``, fold the echoed bytes.

They are *deliberately excluded* from :func:`full_suite` — the paper's
Table I/II workloads never block, and their goldens must stay
byte-identical.  Select these with ``--workloads io-logs,...`` or via
:func:`io_suite`.

Validation mirrors the ``db`` pattern: a host-side replay of the exact
same LCG and fold arithmetic must match the printed ``checksum=``
values.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.assembler import ClassAssembler, MethodAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads import data
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

LOGS_MAIN = "spec.io.logs.Main"
KV_MAIN = "spec.io.kv.Main"
ECHO_MAIN = "spec.io.echo.Main"

LOG_FILE = "access.log"
KV_FILE = "kv.dat"

LOG_BYTES_PER_SCALE = 4096
LOG_CHUNK = 256

KV_RECORDS_PER_SCALE = 40
KV_OPS_PER_SCALE = 120
KV_VALUE_BOUND = 100000
KV_SEED = 777

ECHO_REQUESTS_PER_SCALE = 12
ECHO_PAYLOAD = 96
ECHO_SEED = 555


def _wrap32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v >= 1 << 31 else v


class _Lcg:
    """Host mirror of the runtime ``java.util.Random``."""

    def __init__(self, seed: int):
        self.seed = seed

    def next_int(self, bound: int) -> int:
        self.seed = (self.seed * 1103515245 + 12345) & 0x7FFFFFFF
        return self.seed % bound


def _println_int(m: MethodAssembler, label: str, push_value) -> None:
    """Emit ``System.out.println(label + value)`` (the db idiom)."""
    m.getstatic("java.lang.System", "out")
    m.new("java.lang.StringBuilder").dup()
    m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
    m.ldc(label)
    m.invokevirtual("java.lang.StringBuilder", "appendString",
                    "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
    push_value(m)
    m.invokevirtual("java.lang.StringBuilder", "appendInt",
                    "(I)Ljava.lang.StringBuilder;")
    m.invokevirtual("java.lang.StringBuilder", "toString",
                    "()Ljava.lang.String;")
    m.invokevirtual("java.io.PrintStream", "println",
                    "(Ljava.lang.String;)V")


# -- io-logs --------------------------------------------------------------------


def _build_logs_main() -> ClassAssembler:
    raf = "java.io.RandomAccessFile"
    c = ClassAssembler(LOGS_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=raf,1=buf,2=count,3=i,4=b,5=lines,6=checksum,7=total
        m.new(raf).dup().ldc(LOG_FILE)
        m.invokespecial(raf, "<init>", "(Ljava.lang.String;)V")
        m.astore(0)
        m.iconst(LOG_CHUNK).newarray(ArrayKind.BYTE).astore(1)
        m.iconst(0).istore(5)
        m.iconst(0).istore(6)
        m.iconst(0).istore(7)
        m.label("read_loop")
        m.aload(0).aload(1).iconst(0).iconst(LOG_CHUNK)
        m.invokevirtual(raf, "read", "([BII)I").istore(2)
        m.iload(2).iflt("drained")
        m.iload(7).iload(2).iadd().istore(7)
        m.iconst(0).istore(3)
        m.label("scan")
        m.iload(3).iload(2).if_icmpge("read_loop")
        m.aload(1).iload(3).iaload().istore(4)
        m.iload(6).iconst(31).imul().iload(4).iadd().istore(6)
        m.iload(4).iconst(10).if_icmpne("next")
        m.iinc(5, 1)
        m.label("next")
        m.iinc(3, 1).goto("scan")
        m.label("drained")
        m.aload(0).invokevirtual(raf, "close", "()V")
        _println_int(m, "lines=", lambda mm: mm.iload(5))
        _println_int(m, "bytes=", lambda mm: mm.iload(7))
        _println_int(m, "checksum=", lambda mm: mm.iload(6))
        m.return_()
    return c


@register
class IoLogsWorkload(Workload):
    """Sequential log scan over blocking file reads."""

    name = "io-logs"
    description = ("chunked RandomAccessFile scan: line count + "
                   "checksum fold; disk-bound")

    main_class = LOGS_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.log_bytes = data.text_bytes(LOG_BYTES_PER_SCALE * scale,
                                         seed=17)

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_logs_main().build())
        return archive

    def install_files(self, vm) -> None:
        vm.add_file(LOG_FILE, self.log_bytes)

    def _expected(self) -> Tuple[int, int, int]:
        lines = 0
        checksum = 0
        for b in self.log_bytes:
            checksum = _wrap32(checksum * 31 + b)
            if b == 10:
                lines += 1
        return lines, len(self.log_bytes), checksum

    def validate(self, vm) -> WorkloadResultCheck:
        lines, total, checksum = self._expected()
        for key, expected in (("lines", lines), ("bytes", total),
                              ("checksum", checksum)):
            got = self.console_value(vm, key)
            if got is None:
                return WorkloadResultCheck(
                    False, f"missing console output {key}=")
            if int(got) != expected:
                return WorkloadResultCheck(
                    False, f"{key} {got} != {expected}")
        return WorkloadResultCheck(True)


# -- io-kv ----------------------------------------------------------------------


def _emit_encode(m: MethodAssembler, buf_local: int,
                 value_local: int) -> None:
    """buf[0..3] = big-endian bytes of the value local."""
    for index, shift in enumerate((24, 16, 8, 0)):
        m.aload(buf_local).iconst(index).iload(value_local)
        if shift:
            m.iconst(shift).iushr()
        m.iconst(255).iand()
        m.iastore()


def _emit_decode(m: MethodAssembler, buf_local: int,
                 value_local: int) -> None:
    """value local = big-endian int from buf[0..3]."""
    for index, shift in enumerate((24, 16, 8, 0)):
        m.aload(buf_local).iconst(index).iaload()
        m.iconst(255).iand()
        if shift:
            m.iconst(shift).ishl()
        if index:
            m.ior()
    m.istore(value_local)


def _build_kv_main(n_records: int, n_ops: int) -> ClassAssembler:
    raf = "java.io.RandomAccessFile"
    c = ClassAssembler(KV_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=raf,1=buf,2=rng,3=i,4=v,5=checksum,6=k,7=len
        m.new(raf).dup().ldc(KV_FILE)
        m.invokespecial(raf, "<init>", "(Ljava.lang.String;)V")
        m.astore(0)
        m.iconst(4).newarray(ArrayKind.BYTE).astore(1)
        m.new("java.util.Random").dup().ldc(KV_SEED)
        m.invokespecial("java.util.Random", "<init>", "(I)V").astore(2)
        m.iconst(0).istore(5)
        # populate: slot i <- rng value
        m.iconst(0).istore(3)
        m.label("put_loop")
        m.iload(3).ldc(n_records).if_icmpge("ops")
        m.aload(2).ldc(KV_VALUE_BOUND)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.istore(4)
        _emit_encode(m, 1, 4)
        m.aload(0).iload(3).iconst(4).imul()
        m.invokevirtual(raf, "seek", "(I)V")
        m.aload(0).aload(1).iconst(0).iconst(4)
        m.invokevirtual(raf, "write", "([BII)V")
        m.iinc(3, 1).goto("put_loop")
        # op mix: read a random slot; every third op writes back v+i
        m.label("ops")
        m.iconst(0).istore(3)
        m.label("op_loop")
        m.iload(3).ldc(n_ops).if_icmpge("finish")
        m.aload(2).ldc(n_records)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.istore(6)
        m.aload(0).iload(6).iconst(4).imul()
        m.invokevirtual(raf, "seek", "(I)V")
        m.aload(0).aload(1).iconst(0).iconst(4)
        m.invokevirtual(raf, "read", "([BII)I").pop()
        _emit_decode(m, 1, 4)
        m.iload(5).iconst(31).imul().iload(4).iadd().istore(5)
        m.iload(3).iconst(3).irem().ifne("skip_update")
        m.iload(4).iload(3).iadd().ldc(KV_VALUE_BOUND).irem()
        m.istore(4)
        _emit_encode(m, 1, 4)
        m.aload(0).iload(6).iconst(4).imul()
        m.invokevirtual(raf, "seek", "(I)V")
        m.aload(0).aload(1).iconst(0).iconst(4)
        m.invokevirtual(raf, "write", "([BII)V")
        m.label("skip_update")
        m.iinc(3, 1).goto("op_loop")
        m.label("finish")
        m.aload(0).invokevirtual(raf, "length", "()I").istore(7)
        m.aload(0).invokevirtual(raf, "close", "()V")
        _println_int(m, "len=", lambda mm: mm.iload(7))
        _println_int(m, "checksum=", lambda mm: mm.iload(5))
        m.return_()
    return c


class _KvMirror:
    """Host-side replay of the kv-store op mix."""

    def __init__(self, n_records: int, n_ops: int):
        self.n_records = n_records
        self.n_ops = n_ops

    def run(self) -> Tuple[int, int]:
        rng = _Lcg(KV_SEED)
        slots = [rng.next_int(KV_VALUE_BOUND)
                 for _ in range(self.n_records)]
        checksum = 0
        for i in range(self.n_ops):
            k = rng.next_int(self.n_records)
            v = slots[k]
            checksum = _wrap32(checksum * 31 + v)
            if i % 3 == 0:
                slots[k] = (v + i) % KV_VALUE_BOUND
        return self.n_records * 4, checksum


@register
class IoKvWorkload(Workload):
    """Persistent key/value slots behind seek/read/write natives."""

    name = "io-kv"
    description = ("fixed-slot kv store on RandomAccessFile: populate "
                   "then read-mostly op mix; seek-heavy")

    main_class = KV_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.n_records = KV_RECORDS_PER_SCALE * scale
        self.n_ops = KV_OPS_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(
            _build_kv_main(self.n_records, self.n_ops).build())
        return archive

    def validate(self, vm) -> WorkloadResultCheck:
        length, checksum = _KvMirror(self.n_records, self.n_ops).run()
        for key, expected in (("len", length),
                              ("checksum", checksum)):
            got = self.console_value(vm, key)
            if got is None:
                return WorkloadResultCheck(
                    False, f"missing console output {key}=")
            if int(got) != expected:
                return WorkloadResultCheck(
                    False, f"{key} {got} != {expected}")
        return WorkloadResultCheck(True)


# -- io-echo --------------------------------------------------------------------


def _build_echo_main(n_requests: int) -> ClassAssembler:
    sock = "java.net.Socket"
    c = ClassAssembler(ECHO_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=sock,1=out,2=in,3=rng,4=r,5=j,6=checksum,7=got
        m.new(sock).dup().ldc("echo.peer").iconst(7)
        m.invokespecial(sock, "<init>", "(Ljava.lang.String;I)V")
        m.astore(0)
        m.iconst(ECHO_PAYLOAD).newarray(ArrayKind.BYTE).astore(1)
        m.iconst(ECHO_PAYLOAD).newarray(ArrayKind.BYTE).astore(2)
        m.new("java.util.Random").dup().ldc(ECHO_SEED)
        m.invokespecial("java.util.Random", "<init>", "(I)V").astore(3)
        m.iconst(0).istore(6)
        m.iconst(0).istore(4)
        m.label("req_loop")
        m.iload(4).ldc(n_requests).if_icmpge("finish")
        # fill a printable payload
        m.iconst(0).istore(5)
        m.label("fill")
        m.iload(5).iconst(ECHO_PAYLOAD).if_icmpge("send")
        m.aload(1).iload(5)
        m.aload(3).iconst(96)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.iconst(32).iadd()
        m.iastore()
        m.iinc(5, 1).goto("fill")
        m.label("send")
        m.aload(0).aload(1).iconst(0).iconst(ECHO_PAYLOAD)
        m.invokevirtual(sock, "send", "([BII)V")
        m.aload(0).aload(2).iconst(0).iconst(ECHO_PAYLOAD)
        m.invokevirtual(sock, "recv", "([BII)I").istore(7)
        # fold the echoed bytes
        m.iconst(0).istore(5)
        m.label("fold")
        m.iload(5).iload(7).if_icmpge("next_req")
        m.iload(6).iconst(31).imul()
        m.aload(2).iload(5).iaload().iadd().istore(6)
        m.iinc(5, 1).goto("fold")
        m.label("next_req")
        m.iinc(4, 1).goto("req_loop")
        m.label("finish")
        m.aload(0).invokevirtual(sock, "close", "()V")
        _println_int(m, "requests=", lambda mm: mm.iload(4))
        _println_int(m, "checksum=", lambda mm: mm.iload(6))
        m.return_()
    return c


@register
class IoEchoWorkload(Workload):
    """Request/response round trips against the simulated echo peer."""

    name = "io-echo"
    description = ("socket send/recv round trips with payload "
                   "checksum; RTT-bound")

    main_class = ECHO_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.n_requests = ECHO_REQUESTS_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_echo_main(self.n_requests).build())
        return archive

    def validate(self, vm) -> WorkloadResultCheck:
        rng = _Lcg(ECHO_SEED)
        checksum = 0
        for _ in range(self.n_requests):
            payload = [rng.next_int(96) + 32
                       for _ in range(ECHO_PAYLOAD)]
            for b in payload:  # echoed verbatim by the peer
                checksum = _wrap32(checksum * 31 + b)
        for key, expected in (("requests", self.n_requests),
                              ("checksum", checksum)):
            got = self.console_value(vm, key)
            if got is None:
                return WorkloadResultCheck(
                    False, f"missing console output {key}=")
            if int(got) != expected:
                return WorkloadResultCheck(
                    False, f"{key} {got} != {expected}")
        return WorkloadResultCheck(True)


def io_suite(scale: int = 1) -> List[Workload]:
    """The blocking-I/O family (NOT part of :func:`full_suite`)."""
    from repro.workloads.suite import get_workload

    return [get_workload(name, scale)
            for name in ("io-logs", "io-kv", "io-echo")]
