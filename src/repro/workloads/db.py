"""``db`` — in-memory database (the SPEC ``_209_db`` analogue).

Builds a table of records (int key + String name), then runs a query
mix: name lookups (integer hash pre-match in bytecode, native
``String.equals`` only on hash hits — as a real database avoids string
compares), key mutations, shellsorts over the int keys (tight bytecode
inner loop with **no** method calls), and checksum scans.

That profile matches the paper's db row: long-running, the *lowest*
Java-method-call density of the suite (hence the lowest SPA overhead),
and under 1 % of time in native code (string natives only on
construction and on hash-confirmed matches).

Validation: a host-side mirror replays the exact same LCG, sort and
checksum; the printed ``checksum=``/``found=`` values must match.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads import data
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

MAIN = "spec.jvm98.db.Main"
RECORD = "spec.jvm98.db.Record"
DATABASE = "spec.jvm98.db.Database"

#: Names 0..NAME_POOL-1 exist in the table; queries draw from the
#: doubled pool, so roughly half of them miss (and, thanks to the hash
#: gate, cost no native string compare at all).
NAME_POOL = 64
QUERY_POOL = 256
RECORDS_PER_SCALE = 220
QUERIES_PER_SCALE = 260
SORT_ROUNDS = 4


def java_string_hash(value: str) -> int:
    h = 0
    for ch in value:
        h = (h * 31 + ord(ch)) & 0xFFFFFFFF
    if h >= 1 << 31:
        h -= 1 << 32
    return h


class _Mirror:
    """Host-side replay of the workload for validation."""

    def __init__(self, names: List[str], query_names: List[str],
                 n_records: int, n_queries: int):
        self.names = names
        self.query_names = query_names
        self.n_records = n_records
        self.n_queries = n_queries

    def run(self) -> Tuple[int, int]:
        def wrap32(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v >= 1 << 31 else v

        seed = 12345

        def rng():
            nonlocal seed
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
            return seed

        keys = []
        names = []
        for i in range(self.n_records):
            keys.append(rng() % 100000)
            names.append(self.names[i % len(self.names)])
        found = 0
        table_hashes = {java_string_hash(n) for n in set(names)}
        table_names = set(names)
        for round_index in range(SORT_ROUNDS):
            keys.sort()  # shellsort is a permutation; order identical
            per_round = self.n_queries // SORT_ROUNDS
            for _ in range(per_round):
                target = self.query_names[rng() % len(self.query_names)]
                if java_string_hash(target) in table_hashes and \
                        target in table_names:
                    found += 1
            # mutate a stride of keys before the next sort round
            for j in range(0, len(keys), 7):
                keys[j] = rng() % 100000
        keys.sort()
        checksum = 0
        for key in keys:
            checksum = wrap32(checksum * 31 + key)
        return checksum, found


def _build_record() -> ClassAssembler:
    c = ClassAssembler(RECORD)
    c.field("key", default=0)
    c.field("name")
    c.field("nameHash", default=0)
    with c.method("<init>", "(ILjava.lang.String;I)V") as m:
        m.aload(0).iload(1).putfield(RECORD, "key")
        m.aload(0).aload(2).putfield(RECORD, "name")
        m.aload(0).iload(3).putfield(RECORD, "nameHash")
        m.return_()
    return c


def _build_database() -> ClassAssembler:
    c = ClassAssembler(DATABASE)
    c.field("entries")
    c.field("size", default=0)

    with c.method("<init>", "(I)V") as m:
        m.aload(0).iload(1).newarray(ArrayKind.REF)
        m.putfield(DATABASE, "entries")
        m.return_()

    with c.method("add", "(Lspec.jvm98.db.Record;)V") as m:
        m.aload(0).getfield(DATABASE, "entries")
        m.aload(0).getfield(DATABASE, "size")
        m.aload(1).aastore()
        m.aload(0).dup().getfield(DATABASE, "size").iconst(1).iadd()
        m.putfield(DATABASE, "size")
        m.return_()

    with c.method("sortByKey", "()V") as m:
        # shellsort; locals: 0=this,1=n,2=gap,3=i,4=j,5=tmp,6=tmpkey,7=arr
        m.aload(0).getfield(DATABASE, "size").istore(1)
        m.aload(0).getfield(DATABASE, "entries").astore(7)
        m.iload(1).iconst(2).idiv().istore(2)
        m.label("gap_loop")
        m.iload(2).ifle("done")
        m.iload(2).istore(3)
        m.label("i_loop")
        m.iload(3).iload(1).if_icmpge("gap_next")
        m.aload(7).iload(3).aaload().astore(5)
        m.aload(5).getfield(RECORD, "key").istore(6)
        m.iload(3).istore(4)
        m.label("j_loop")
        m.iload(4).iload(2).if_icmplt("place")
        m.aload(7).iload(4).iload(2).isub().aaload()
        m.getfield(RECORD, "key")
        m.iload(6).if_icmple("place")
        m.aload(7).iload(4)
        m.aload(7).iload(4).iload(2).isub().aaload()
        m.aastore()
        m.iload(4).iload(2).isub().istore(4)
        m.goto("j_loop")
        m.label("place")
        m.aload(7).iload(4).aload(5).aastore()
        m.iinc(3, 1).goto("i_loop")
        m.label("gap_next")
        m.iload(2).iconst(2).idiv().istore(2)
        m.goto("gap_loop")
        m.label("done")
        m.return_()

    with c.method("findByName", "(ILjava.lang.String;)I") as m:
        # hash pre-match in bytecode; equals (native) only on hash hit
        # locals: 0=this,1=hash,2=name,3=i,4=n,5=arr,6=rec
        m.aload(0).getfield(DATABASE, "size").istore(4)
        m.aload(0).getfield(DATABASE, "entries").astore(5)
        m.iconst(0).istore(3)
        m.label("scan")
        m.iload(3).iload(4).if_icmpge("missing")
        m.aload(5).iload(3).aaload().astore(6)
        m.aload(6).getfield(RECORD, "nameHash")
        m.iload(1).if_icmpne("next")
        m.aload(6).getfield(RECORD, "name")
        m.aload(2)
        m.invokevirtual("java.lang.String", "equals",
                        "(Ljava.lang.Object;)I")
        m.ifeq("next")
        m.iload(3).ireturn()
        m.label("next")
        m.iinc(3, 1).goto("scan")
        m.label("missing")
        m.iconst(-1).ireturn()

    with c.method("mutateKeys", "(Ljava.util.Random;)V") as m:
        # keys[j] = rng % 100000 for every 7th record
        # locals: 0=this,1=rng,2=j,3=n,4=arr
        m.aload(0).getfield(DATABASE, "size").istore(3)
        m.aload(0).getfield(DATABASE, "entries").astore(4)
        m.iconst(0).istore(2)
        m.label("loop")
        m.iload(2).iload(3).if_icmpge("done")
        m.aload(4).iload(2).aaload()
        m.aload(1).ldc(100000)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.putfield(RECORD, "key")
        m.iinc(2, 7).goto("loop")
        m.label("done")
        m.return_()

    with c.method("checksum", "()I") as m:
        # locals: 0=this,1=sum,2=i,3=n,4=arr
        m.aload(0).getfield(DATABASE, "size").istore(3)
        m.aload(0).getfield(DATABASE, "entries").astore(4)
        m.iconst(0).istore(1)
        m.iconst(0).istore(2)
        m.label("loop")
        m.iload(2).iload(3).if_icmpge("done")
        m.iload(1).iconst(31).imul()
        m.aload(4).iload(2).aaload().getfield(RECORD, "key")
        m.iadd().istore(1)
        m.iinc(2, 1).goto("loop")
        m.label("done")
        m.iload(1).ireturn()
    return c


def _build_main(names: List[str], query_names: List[str],
                n_records: int, n_queries: int) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    c.field("names", static=True)
    c.field("queryNames", static=True)
    c.field("queryHashes", static=True)

    with c.method("<clinit>", "()V", static=True) as m:
        m.iconst(len(names)).newarray(ArrayKind.REF).astore(0)
        for i, name in enumerate(names):
            m.aload(0).iconst(i).ldc(name).aastore()
        m.aload(0).putstatic(MAIN, "names")
        m.iconst(len(query_names)).newarray(ArrayKind.REF).astore(1)
        for i, name in enumerate(query_names):
            m.aload(1).iconst(i).ldc(name).aastore()
        m.aload(1).putstatic(MAIN, "queryNames")
        # hash cache baked in at build time, like a compiled-in
        # dictionary index (no runtime hashing)
        m.iconst(len(query_names)).newarray(ArrayKind.INT).astore(2)
        for i, name in enumerate(query_names):
            m.aload(2).iconst(i).ldc(java_string_hash(name)).iastore()
        m.aload(2).putstatic(MAIN, "queryHashes")
        m.return_()

    with c.method("main", "()V", static=True) as m:
        # locals: 0=db,1=rng,2=i,3=name,4=found,5=round,6=q,7=rec
        m.new(DATABASE).dup().ldc(n_records)
        m.invokespecial(DATABASE, "<init>", "(I)V").astore(0)
        m.new("java.util.Random").dup().ldc(12345)
        m.invokespecial("java.util.Random", "<init>", "(I)V").astore(1)
        # build records
        m.iconst(0).istore(2)
        m.label("build")
        m.iload(2).ldc(n_records).if_icmpge("built")
        m.getstatic(MAIN, "names")
        m.iload(2).iconst(len(names)).irem().aaload().astore(3)
        m.new(RECORD).dup()
        m.aload(1).ldc(100000)
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.aload(3)
        m.getstatic(MAIN, "queryHashes")
        m.iload(2).iconst(len(names)).irem().iaload()
        m.invokespecial(RECORD, "<init>", "(ILjava.lang.String;I)V")
        m.astore(7)
        m.aload(0).aload(7)
        m.invokevirtual(DATABASE, "add", "(Lspec.jvm98.db.Record;)V")
        m.iinc(2, 1).goto("build")
        m.label("built")
        # query/sort rounds
        m.iconst(0).istore(4)
        m.iconst(0).istore(5)
        m.label("rounds")
        m.iload(5).iconst(SORT_ROUNDS).if_icmpge("finish")
        m.aload(0).invokevirtual(DATABASE, "sortByKey", "()V")
        m.iconst(0).istore(6)
        m.label("queries")
        m.iload(6).ldc(n_queries // SORT_ROUNDS).if_icmpge("mutate")
        m.aload(1).iconst(len(query_names))
        m.invokevirtual("java.util.Random", "nextInt", "(I)I")
        m.istore(8)
        m.getstatic(MAIN, "queryNames").iload(8).aaload().astore(3)
        m.aload(0)
        m.getstatic(MAIN, "queryHashes").iload(8).iaload()
        m.aload(3)
        m.invokevirtual(DATABASE, "findByName",
                        "(ILjava.lang.String;)I")
        m.iflt("not_found")
        m.iinc(4, 1)
        m.label("not_found")
        m.iinc(6, 1).goto("queries")
        m.label("mutate")
        m.aload(0).aload(1)
        m.invokevirtual(DATABASE, "mutateKeys",
                        "(Ljava.util.Random;)V")
        m.iinc(5, 1).goto("rounds")
        m.label("finish")
        m.aload(0).invokevirtual(DATABASE, "sortByKey", "()V")
        # print checksum and found
        for key, load in (("checksum", "cs"), ("found", "fd")):
            m.getstatic("java.lang.System", "out")
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc(f"{key}=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            if key == "checksum":
                m.aload(0).invokevirtual(DATABASE, "checksum", "()I")
            else:
                m.iload(4)
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.io.PrintStream", "println",
                            "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class DbWorkload(Workload):
    """In-memory database: sorts, scans, hash-gated string lookups."""

    name = "db"
    description = ("record table with shellsort, hash-gated native "
                   "string equality, lowest call density of the suite")

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        pool = data.word_list(QUERY_POOL, seed=29, min_len=8,
                              max_len=16)
        self.names = pool[:NAME_POOL]
        self.query_names = pool
        self.n_records = RECORDS_PER_SCALE * scale
        self.n_queries = QUERIES_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_record().build())
        archive.put_class(_build_database().build())
        archive.put_class(
            _build_main(self.names, self.query_names, self.n_records,
                        self.n_queries).build())
        return archive

    def validate(self, vm) -> WorkloadResultCheck:
        mirror = _Mirror(self.names, self.query_names, self.n_records,
                         self.n_queries)
        checksum, found = mirror.run()
        got_checksum = self.console_value(vm, "checksum")
        got_found = self.console_value(vm, "found")
        if got_checksum is None or got_found is None:
            return WorkloadResultCheck(False, "missing console output")
        if int(got_checksum) != checksum:
            return WorkloadResultCheck(
                False, f"checksum {got_checksum} != {checksum}")
        if int(got_found) != found:
            return WorkloadResultCheck(
                False, f"found {got_found} != {found}")
        return WorkloadResultCheck(True)
