"""``jack`` — parser generator (the SPEC ``_228_jack`` analogue).

Like the real jack (which generates its own parser 16 times), the
workload repeatedly processes a grammar specification: each iteration
re-scans the spec with an inline state machine (pure bytecode — jack's
comparatively *low* method-call density and SPA overhead), computes
FIRST-set style bitsets per rule (bytecode ballast), and then emits
parser source text through ``StringBuilder`` — every append crossing
into native ``String.getChars``/``fromChars``, and every iteration
ending in a native file write.  That constant stream of small string
natives makes jack the **largest native-method-call count and native
fraction** of the suite, exactly its Table II profile.

Validation: the generated parser text must byte-match a host mirror,
and the scan checksum/rule count must agree.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads import data
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

MAIN = "spec.jvm98.jack.Main"
GEN = "spec.jvm98.jack.Generator"

SPEC_FILE = "jack.in"
OUT_FILE = "jack.out"
ITERATIONS = 8
RULES_PER_SCALE = 7
TOKENS_PER_RULE = 5
FIRST_SET_WORDS = 200  # bitset ballast per (rule, token)

HEAD = "void parse_"
MID = "() {\n"
MATCH_OPEN = "  match("
MATCH_CLOSE = ");\n"
TAIL = "}\n"


def generate_spec(scale: int) -> Tuple[bytes, List[Tuple[str, List[str]]]]:
    """Deterministic grammar: returns (spec bytes, parsed rules)."""
    words = data.word_list(40, seed=53, min_len=4, max_len=9)
    rng = data.Lcg(4099)
    rules = []
    lines = []
    for r in range(RULES_PER_SCALE * scale):
        name = f"{words[rng.below(len(words))]}{r}"
        tokens = [words[rng.below(len(words))]
                  for _ in range(TOKENS_PER_RULE)]
        rules.append((name, tokens))
        lines.append(f"{name} : {' '.join(tokens)} ;")
    return ("\n".join(lines) + "\n").encode("ascii"), rules


def expected_output(rules: List[Tuple[str, List[str]]]) -> bytes:
    """The parser text one iteration generates."""
    parts = []
    for name, tokens in rules:
        parts.append(HEAD + name + MID)
        for token in tokens:
            parts.append(MATCH_OPEN + token + MATCH_CLOSE)
        parts.append(TAIL)
    return "".join(parts).encode("ascii")


def scan_checksum(spec: bytes, iterations: int) -> int:
    """checksum = checksum*31 + byte over all scanned chars, each
    iteration (32-bit wrapped)."""
    checksum = 0
    for _ in range(iterations):
        for b in spec:
            checksum = (checksum * 31 + b) & 0xFFFFFFFF
    return checksum - (1 << 32) if checksum >= 1 << 31 else checksum


def _append_const(m, text: str) -> None:
    """sb.appendString(<const>) with sb on the stack; keeps sb."""
    m.ldc(text)
    m.invokevirtual("java.lang.StringBuilder", "appendString",
                    "(Ljava.lang.String;)Ljava.lang.StringBuilder;")


def _build_generator(spec_len: int) -> ClassAssembler:
    c = ClassAssembler(GEN)
    c.field("spec")            # byte[]
    c.field("chars")           # char[] scratch
    c.field("first")           # int[] bitset scratch
    c.field("checksum", default=0)
    c.field("rules", default=0)

    with c.method("<init>", "([B)V") as m:
        m.aload(0).aload(1).putfield(GEN, "spec")
        m.aload(0).ldc(64).newarray(ArrayKind.CHAR)
        m.putfield(GEN, "chars")
        m.aload(0).ldc(FIRST_SET_WORDS).newarray(ArrayKind.INT)
        m.putfield(GEN, "first")
        m.return_()

    with c.method("appendSlice",
                  "(Ljava.lang.StringBuilder;II)V") as m:
        # copy spec[start..start+len) into the char scratch (bytecode),
        # then append it in one native arraycopy
        # locals: 0=this,1=sb,2=start,3=len,4=i,5=chars
        m.aload(0).getfield(GEN, "chars").astore(5)
        m.iconst(0).istore(4)
        m.label("copy")
        m.iload(4).iload(3).if_icmpge("append")
        m.aload(5).iload(4)
        m.aload(0).getfield(GEN, "spec")
        m.iload(2).iload(4).iadd().iaload().iconst(255).iand()
        m.iastore()
        m.iinc(4, 1).goto("copy")
        m.label("append")
        m.aload(1).aload(5).iconst(0).iload(3)
        m.invokevirtual("java.lang.StringBuilder", "appendChars",
                        "([CII)Ljava.lang.StringBuilder;")
        m.pop()
        m.return_()

    with c.method("mix", "(II)I", static=True) as m:
        m.iload(0).iconst(13).ishl().iload(0).ixor()
        m.iload(1).iadd().ireturn()

    with c.method("firstSets", "(I)V") as m:
        # FIRST-set ballast: fold `seed` into the bitset words; every
        # 8th word goes through the mix() helper (call density)
        # locals: 0=this,1=seed,2=i,3=w,4=arr
        m.aload(0).getfield(GEN, "first").astore(4)
        m.iconst(0).istore(2)
        m.label("loop")
        m.iload(2).iconst(FIRST_SET_WORDS).if_icmpge("done")
        m.aload(4).iload(2).iaload().istore(3)
        m.iload(3).iconst(5).ishl().iload(3).ixor()
        m.iload(1).iadd().istore(3)
        m.iload(2).iconst(7).iand().ifne("no_mix")
        m.iload(3).iload(2).invokestatic(GEN, "mix", "(II)I")
        m.istore(3)
        m.label("no_mix")
        m.iload(3).iload(2).iconst(1).iand().ishr().istore(3)
        m.aload(4).iload(2).iload(3).iastore()
        m.iinc(2, 1).goto("loop")
        m.label("done")
        m.return_()

    with c.method("generate", "()Ljava.lang.String;") as m:
        # one full iteration: scan the spec and emit parser text
        # locals: 0=this,1=sb,2=pos,3=c,4=start,5=len,6=state,7=cs,8=n
        m.new("java.lang.StringBuilder").dup()
        m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
        m.astore(1)
        m.aload(0).getfield(GEN, "checksum").istore(7)
        m.ldc(spec_len).istore(8)
        m.iconst(0).istore(2)
        m.iconst(0).istore(6)  # state: 0 = expect rule name, 1 = tokens
        m.label("scan")
        m.iload(2).iload(8).if_icmpge("eof")
        m.aload(0).getfield(GEN, "spec").iload(2).iaload()
        m.iconst(255).iand().istore(3)
        m.iload(7).iconst(31).imul().iload(3).iadd().istore(7)
        # word start?
        m.iload(3).iconst(97).if_icmplt("not_word")
        m.iload(3).iconst(122).if_icmpgt("not_word")
        m.iload(2).istore(4)
        m.label("word")
        m.iinc(2, 1)
        m.iload(2).iload(8).if_icmpge("word_end")
        m.aload(0).getfield(GEN, "spec").iload(2).iaload()
        m.iconst(255).iand().istore(3)
        # continue only on [0-9a-z]; the terminator is checksummed by
        # the outer scan loop, so every byte is counted exactly once
        m.iload(3).iconst(48).if_icmplt("word_end")
        m.iload(3).iconst(122).if_icmpgt("word_end")
        m.iload(3).iconst(57).if_icmple("word_char")   # digit
        m.iload(3).iconst(97).if_icmplt("word_end")
        m.label("word_char")
        m.iload(7).iconst(31).imul().iload(3).iadd().istore(7)
        m.goto("word")
        m.label("word_end")
        m.iload(2).iload(4).isub().istore(5)
        # emit: state 0 -> rule header; state 1 -> match(token)
        m.iload(6).ifne("emit_token")
        m.aload(1)
        _append_const(m, HEAD)
        m.pop()
        m.aload(0).aload(1).iload(4).iload(5)
        m.invokevirtual(GEN, "appendSlice",
                        "(Ljava.lang.StringBuilder;II)V")
        m.aload(1)
        _append_const(m, MID)
        m.pop()
        m.iconst(1).istore(6)
        m.aload(0).dup().getfield(GEN, "rules").iconst(1).iadd()
        m.putfield(GEN, "rules")
        m.goto("scan")
        m.label("emit_token")
        m.aload(1)
        _append_const(m, MATCH_OPEN)
        m.pop()
        m.aload(0).aload(1).iload(4).iload(5)
        m.invokevirtual(GEN, "appendSlice",
                        "(Ljava.lang.StringBuilder;II)V")
        m.aload(1)
        _append_const(m, MATCH_CLOSE)
        m.pop()
        m.aload(0).iload(5).invokevirtual(GEN, "firstSets", "(I)V")
        m.goto("scan")
        m.label("not_word")
        m.iload(3).ldc(59).if_icmpne("skip")  # ';' closes a rule
        m.aload(1)
        _append_const(m, TAIL)
        m.pop()
        m.iconst(0).istore(6)
        m.label("skip")
        m.iinc(2, 1).goto("scan")
        m.label("eof")
        m.aload(0).iload(7).putfield(GEN, "checksum")
        m.aload(1)
        m.invokevirtual("java.lang.StringBuilder", "toString",
                        "()Ljava.lang.String;")
        m.areturn()
    return c


def _build_main(spec_len: int, expected_len: int) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=gen,1=in,2=buf,3=iter,4=text,5=fos,6=chars,7=bytes,8=i
        m.new("java.io.FileInputStream").dup().ldc(SPEC_FILE)
        m.invokespecial("java.io.FileInputStream", "<init>",
                        "(Ljava.lang.String;)V").astore(1)
        m.ldc(spec_len).newarray(ArrayKind.BYTE).astore(2)
        m.aload(1).aload(2).iconst(0).ldc(spec_len)
        m.invokevirtual("java.io.FileInputStream", "read", "([BII)I")
        m.pop()
        m.aload(1).invokevirtual("java.io.FileInputStream", "close",
                                 "()V")
        m.new(GEN).dup().aload(2)
        m.invokespecial(GEN, "<init>", "([B)V").astore(0)
        m.iconst(0).istore(3)
        m.label("iter")
        m.iload(3).iconst(ITERATIONS).if_icmpge("report")
        m.aload(0).invokevirtual(GEN, "generate",
                                 "()Ljava.lang.String;").astore(4)
        # write the generated parser out (fresh file each iteration)
        m.aload(4).invokevirtual("java.lang.String", "toCharArray",
                                 "()[C").astore(6)
        m.ldc(expected_len).newarray(ArrayKind.BYTE).astore(7)
        m.iconst(0).istore(8)
        m.label("to_bytes")
        m.iload(8).ldc(expected_len).if_icmpge("write")
        m.aload(7).iload(8)
        m.aload(6).iload(8).iaload()
        m.iastore()
        m.iinc(8, 1).goto("to_bytes")
        m.label("write")
        m.new("java.io.FileOutputStream").dup().ldc(OUT_FILE)
        m.invokespecial("java.io.FileOutputStream", "<init>",
                        "(Ljava.lang.String;)V").astore(5)
        m.aload(5).aload(7).iconst(0).ldc(expected_len)
        m.invokevirtual("java.io.FileOutputStream", "write", "([BII)V")
        m.aload(5).invokevirtual("java.io.FileOutputStream", "close",
                                 "()V")
        m.iinc(3, 1).goto("iter")
        m.label("report")
        for key in ("rules", "outBytes", "checksum"):
            m.getstatic("java.lang.System", "out")
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc(f"{key}=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            if key == "rules":
                m.aload(0).getfield(GEN, "rules")
            elif key == "outBytes":
                m.aload(4).invokevirtual("java.lang.String", "length",
                                         "()I")
            else:
                m.aload(0).getfield(GEN, "checksum")
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.io.PrintStream", "println",
                            "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class JackWorkload(Workload):
    """Parser generator: string-native-dense text generation."""

    name = "jack"
    description = ("parser generator run repeatedly over its grammar; "
                   "highest native-call count of the suite")

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.spec, self.rules = generate_spec(scale)
        self.expected = expected_output(self.rules)

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_generator(len(self.spec)).build())
        archive.put_class(
            _build_main(len(self.spec), len(self.expected)).build())
        return archive

    def install_files(self, vm) -> None:
        vm.add_file(SPEC_FILE, self.spec)

    def validate(self, vm) -> WorkloadResultCheck:
        rules = self.console_value(vm, "rules")
        out_bytes = self.console_value(vm, "outBytes")
        checksum = self.console_value(vm, "checksum")
        if rules is None or out_bytes is None or checksum is None:
            return WorkloadResultCheck(False, "missing console output")
        if int(rules) != len(self.rules) * ITERATIONS:
            return WorkloadResultCheck(
                False,
                f"rules {rules} != {len(self.rules) * ITERATIONS}")
        if int(out_bytes) != len(self.expected):
            return WorkloadResultCheck(
                False,
                f"outBytes {out_bytes} != {len(self.expected)}")
        expected_checksum = scan_checksum(self.spec, ITERATIONS)
        if int(checksum) != expected_checksum:
            return WorkloadResultCheck(
                False, f"checksum {checksum} != {expected_checksum}")
        produced = bytes(vm.files.get(OUT_FILE, b""))
        if produced != self.expected:
            return WorkloadResultCheck(False, "output file mismatch")
        return WorkloadResultCheck(True)
