"""``mpegaudio`` — fixed-point audio decoder (the SPEC
``_222_mpegaudio`` analogue).

Decodes frames from a binary stream: the whole input is read once
(buffered I/O, as decoders do), then each frame is dequantized and run
through a polyphase-style synthesis filter whose multiply-accumulate
step is a tiny static method called 512 times per frame — mpegaudio's
SPA overhead in the paper is among the largest despite its loops,
because the filter bank is decomposed into small hot methods.  Native
work is sparse: one ``Math.sqrt`` scalefactor per frame — under 1 % of
time, the paper's profile.

Validation: a bit-exact host mirror (integer ops + one IEEE sqrt per
frame) must agree on the checksum.
"""

from __future__ import annotations

import math

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.workloads import data
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

MAIN = "spec.jvm98.mpegaudio.Main"
DECODER = "spec.jvm98.mpegaudio.Decoder"

INPUT_FILE = "mpegaudio.in"
SUBBANDS = 32
TAPS = 16
BYTES_PER_FRAME = SUBBANDS * 2
FRAMES_PER_SCALE = 40


def _wrap32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v >= 1 << 31 else v


def make_coeffs():
    return [(i * 2654435 + 97) & 0x3FFF for i in range(SUBBANDS)]


class _Mirror:
    """Bit-exact host decode."""

    def __init__(self, payload: bytes):
        self.payload = payload

    def run(self) -> int:
        coeffs = make_coeffs()
        checksum = 0
        n_frames = len(self.payload) // BYTES_PER_FRAME
        for frame in range(n_frames):
            off = frame * BYTES_PER_FRAME
            samples = []
            for i in range(SUBBANDS):
                hi = self.payload[off + 2 * i]
                lo = self.payload[off + 2 * i + 1]
                samples.append(((hi << 8) | lo) - 32768)
            energy = 0
            for s in samples:
                energy += (s * s) >> 8
            scale = int(math.sqrt(float(energy)))
            for k in range(SUBBANDS):
                acc = 0
                for t in range(TAPS):
                    s = samples[(k + t) & (SUBBANDS - 1)]
                    c = coeffs[(k + 2 * t) & (SUBBANDS - 1)]
                    acc = acc + ((s * c) >> 6)
                # the product wraps to int32 before the shift, exactly
                # as the bytecode IMUL/ISHR pair does
                scaled = _wrap32(acc * scale) >> 8
                checksum = _wrap32(checksum * 31 + scaled)
        return checksum


def _build_decoder() -> ClassAssembler:
    c = ClassAssembler(DECODER)
    c.field("data")
    c.field("coeffs")
    c.field("samples")
    c.field("checksum", default=0)

    with c.method("<init>", "([B)V") as m:
        # locals: 0=this,1=data,2=i
        m.aload(0).aload(1).putfield(DECODER, "data")
        m.aload(0).iconst(SUBBANDS).newarray(ArrayKind.INT)
        m.putfield(DECODER, "coeffs")
        m.aload(0).iconst(SUBBANDS).newarray(ArrayKind.INT)
        m.putfield(DECODER, "samples")
        m.iconst(0).istore(2)
        m.label("fill")
        m.iload(2).iconst(SUBBANDS).if_icmpge("done")
        m.aload(0).getfield(DECODER, "coeffs").iload(2)
        m.iload(2).ldc(2654435).imul().ldc(97).iadd()
        m.ldc(0x3FFF).iand()
        m.iastore()
        m.iinc(2, 1).goto("fill")
        m.label("done")
        m.return_()

    with c.method("mac", "(III)I", static=True) as m:
        # acc + ((s * c) >> 6) — the hot tiny method
        m.iload(0)
        m.iload(1).iload(2).imul().iconst(6).ishr()
        m.iadd().ireturn()

    with c.method("sampleAt", "(I)I") as m:
        m.aload(0).getfield(DECODER, "samples")
        m.iload(1).iconst(SUBBANDS - 1).iand()
        m.iaload().ireturn()

    with c.method("coeffAt", "(I)I") as m:
        m.aload(0).getfield(DECODER, "coeffs")
        m.iload(1).iconst(SUBBANDS - 1).iand()
        m.iaload().ireturn()

    with c.method("decodeFrame", "(I)V") as m:
        # locals: 0=this,1=frame,2=off,3=i,4=s,5=energy,6=scale,
        #         7=k,8=t,9=acc
        m.iload(1).iconst(BYTES_PER_FRAME).imul().istore(2)
        # dequantize
        m.iconst(0).istore(3)
        m.label("deq")
        m.iload(3).iconst(SUBBANDS).if_icmpge("energy")
        m.aload(0).getfield(DECODER, "data")
        m.iload(2).iload(3).iconst(2).imul().iadd()
        m.iaload().iconst(255).iand().iconst(8).ishl()
        m.aload(0).getfield(DECODER, "data")
        m.iload(2).iload(3).iconst(2).imul().iadd().iconst(1).iadd()
        m.iaload().iconst(255).iand()
        m.ior().ldc(32768).isub().istore(4)
        m.aload(0).getfield(DECODER, "samples").iload(3)
        m.iload(4).iastore()
        m.iinc(3, 1).goto("deq")
        # scalefactor: one native sqrt per frame
        m.label("energy")
        m.iconst(0).istore(5)
        m.iconst(0).istore(3)
        m.label("eloop")
        m.iload(3).iconst(SUBBANDS).if_icmpge("scale")
        m.aload(0).getfield(DECODER, "samples").iload(3).iaload()
        m.istore(4)
        m.iload(5)
        m.iload(4).iload(4).imul().iconst(8).ishr()
        m.iadd().istore(5)
        m.iinc(3, 1).goto("eloop")
        m.label("scale")
        m.iload(5).i2f()
        m.invokestatic("java.lang.Math", "sqrt", "(F)F")
        m.f2i().istore(6)
        # synthesis filter: 32 subbands x 16 taps of mac()
        m.iconst(0).istore(7)
        m.label("kloop")
        m.iload(7).iconst(SUBBANDS).if_icmpge("frame_done")
        m.iconst(0).istore(9)
        m.iconst(0).istore(8)
        m.label("tloop")
        m.iload(8).iconst(TAPS).if_icmpge("band_done")
        m.iload(9)
        m.aload(0).iload(7).iload(8).iadd()
        m.invokevirtual(DECODER, "sampleAt", "(I)I")
        m.aload(0).iload(7).iload(8).iconst(2).imul().iadd()
        m.invokevirtual(DECODER, "coeffAt", "(I)I")
        m.invokestatic(DECODER, "mac", "(III)I").istore(9)
        m.iinc(8, 1).goto("tloop")
        m.label("band_done")
        m.aload(0).dup().getfield(DECODER, "checksum")
        m.iconst(31).imul()
        m.iload(9).iload(6).imul().iconst(8).ishr()
        m.iadd().putfield(DECODER, "checksum")
        m.iinc(7, 1).goto("kloop")
        m.label("frame_done")
        m.return_()
    return c


def _build_main(size: int, n_frames: int) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=decoder,1=in,2=buf,3=frame
        m.new("java.io.FileInputStream").dup().ldc(INPUT_FILE)
        m.invokespecial("java.io.FileInputStream", "<init>",
                        "(Ljava.lang.String;)V").astore(1)
        m.ldc(size).newarray(ArrayKind.BYTE).astore(2)
        m.aload(1).aload(2).iconst(0).ldc(size)
        m.invokevirtual("java.io.FileInputStream", "read", "([BII)I")
        m.pop()
        m.aload(1).invokevirtual("java.io.FileInputStream", "close",
                                 "()V")
        m.new(DECODER).dup().aload(2)
        m.invokespecial(DECODER, "<init>", "([B)V").astore(0)
        m.iconst(0).istore(3)
        m.label("frames")
        m.iload(3).ldc(n_frames).if_icmpge("report")
        m.aload(0).iload(3)
        m.invokevirtual(DECODER, "decodeFrame", "(I)V")
        m.iinc(3, 1).goto("frames")
        m.label("report")
        for key in ("frames", "checksum"):
            m.getstatic("java.lang.System", "out")
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc(f"{key}=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            if key == "frames":
                m.iload(3)
            else:
                m.aload(0).getfield(DECODER, "checksum")
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.io.PrintStream", "println",
                            "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class MpegaudioWorkload(Workload):
    """Fixed-point frame decoder with a call-dense filter bank."""

    name = "mpegaudio"
    description = ("polyphase-style synthesis filter: tiny hot methods, "
                   "one native sqrt per frame")

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.n_frames = FRAMES_PER_SCALE * scale
        self.payload = data.binary_bytes(
            self.n_frames * BYTES_PER_FRAME, seed=67)

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_decoder().build())
        archive.put_class(
            _build_main(len(self.payload), self.n_frames).build())
        return archive

    def install_files(self, vm) -> None:
        vm.add_file(INPUT_FILE, self.payload)

    def validate(self, vm) -> WorkloadResultCheck:
        expected = _Mirror(self.payload).run()
        frames = self.console_value(vm, "frames")
        checksum = self.console_value(vm, "checksum")
        if frames is None or checksum is None:
            return WorkloadResultCheck(False, "missing console output")
        if int(frames) != self.n_frames:
            return WorkloadResultCheck(
                False, f"frames {frames} != {self.n_frames}")
        if int(checksum) != expected:
            return WorkloadResultCheck(
                False, f"checksum {checksum} != {expected}")
        return WorkloadResultCheck(True)
