"""Deliberately racy fixtures for the concurrency-correctness tooling.

Two seeded-defect workloads, registered for ``--workloads``/
``get_workload`` but never part of :func:`full_suite`.  Each must be
caught by BOTH sides of the subsystem: the static lockset analysis
(``repro analyze --races``) must emit a ``race-warning`` and the
dynamic sanitizer (``--sanitize race``) must confirm a race with two
stacks.

``racy-counter``
    Two threads bump a shared counter's field with no lock at all —
    the textbook lost-update shape.  Each read-modify-write is one
    straight-line ``getfield``/``iadd``/``putfield`` burst with no
    interior safepoint, so the *final value* is deterministic at every
    core count (the preemptive scheduler only switches at quantum
    boundaries, which fall on loop backedges here) even though the
    accesses are unsynchronized.  The determinism is what lets the
    fixture carry a normal checksum self-check while still racing.

``racy-lockorder``
    Two threads protect the same shared field with *different* locks —
    mode 0 under ``LockA``, mode 1 under ``LockB`` — so the Eraser
    lockset intersects to empty, and each thread briefly nests the
    other lock class inside its own in opposite orders (``A→B`` vs
    ``B→A``), seeding a lock-order cycle for the static
    ``deadlock-potential`` detector.  Every worker owns a *private*
    pair of lock instances: the static analysis is class-granular so
    it reports the inconsistent locksets and the cycle all the same,
    while dynamically no lock instance is ever shared — no
    happens-before edge connects the two critical sections (the
    sanitizer confirms the race) and no real deadlock is possible at
    any core count (the inversion is a latent bug shape, exactly what
    only the static side can see).
"""

from __future__ import annotations

from typing import Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.classfile.archive import ClassArchive
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.concurrency import _emit_console
from repro.workloads.suite import register

RC_MAIN = "racy.counter.Main"
RC_WORKER = "racy.counter.Worker"
RC_COUNTER = "racy.counter.Counter"
RC_ITERS_PER_SCALE = 64

RO_MAIN = "racy.order.Main"
RO_WORKER = "racy.order.Worker"
RO_SHARED = "racy.order.Shared"
RO_LOCK_A = "racy.order.LockA"
RO_LOCK_B = "racy.order.LockB"
RO_ITERS_PER_SCALE = 32


class _RacyWorkload(Workload):
    """checksum= self-check shared by both fixtures."""

    def _expected_checksum(self) -> int:
        raise NotImplementedError

    def validate(self, vm) -> WorkloadResultCheck:
        checksum = self.console_value(vm, "checksum")
        if checksum is None:
            return WorkloadResultCheck(False, "missing console output")
        expected = self._expected_checksum()
        if int(checksum) != expected:
            return WorkloadResultCheck(
                False, f"checksum {checksum} != {expected}")
        return WorkloadResultCheck(True)


# ---------------------------------------------------------------------------
# racy-counter: unsynchronized shared counter
# ---------------------------------------------------------------------------


def _rc_build_counter() -> ClassAssembler:
    c = ClassAssembler(RC_COUNTER)
    c.field("count", default=0)
    with c.method("<init>", "()V") as m:
        m.return_()
    return c


def _rc_build_worker(iters: int) -> ClassAssembler:
    c = ClassAssembler(RC_WORKER, super_name="java.lang.Thread")
    c.field("shared")
    with c.method("<init>", f"(L{RC_COUNTER};)V") as m:
        m.aload(0).aload(1).putfield(RC_WORKER, "shared")
        m.return_()
    with c.method("run", "()V") as m:
        # the seeded defect: count = count + 1 with no monitor at all
        m.iconst(0).istore(1)
        m.label("loop")
        m.iload(1).ldc(iters).if_icmpge("done")
        m.aload(0).getfield(RC_WORKER, "shared")
        m.dup().getfield(RC_COUNTER, "count")
        m.iconst(1).iadd()
        m.putfield(RC_COUNTER, "count")
        m.iinc(1, 1).goto("loop")
        m.label("done")
        m.return_()
    return c


def _rc_build_main(iters: int) -> ClassAssembler:
    c = ClassAssembler(RC_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=counter, 1=t1, 2=t2, 3=checksum
        m.new(RC_COUNTER).dup()
        m.invokespecial(RC_COUNTER, "<init>", "()V").astore(0)
        for slot in (1, 2):
            m.new(RC_WORKER).dup().aload(0)
            m.invokespecial(RC_WORKER, "<init>", f"(L{RC_COUNTER};)V")
            m.astore(slot)
        # both started before either join: no happens-before edge
        # between the workers' accesses
        m.aload(1).invokevirtual(RC_WORKER, "start", "()V")
        m.aload(2).invokevirtual(RC_WORKER, "start", "()V")
        m.aload(1).invokevirtual(RC_WORKER, "join", "()V")
        m.aload(2).invokevirtual(RC_WORKER, "join", "()V")
        m.aload(0).getfield(RC_COUNTER, "count").istore(3)
        _emit_console(m, [("checksum", 3)])
        m.return_()
    return c


@register
class RacyCounterWorkload(_RacyWorkload):
    """Seeded lost-update race: two threads, one counter, no lock."""

    name = "racy-counter"
    description = ("seeded data race: two threads increment a shared "
                   "counter with no synchronization")

    main_class = RC_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.iters = RC_ITERS_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_rc_build_counter().build())
        archive.put_class(_rc_build_worker(self.iters).build())
        archive.put_class(_rc_build_main(self.iters).build())
        return archive

    def _expected_checksum(self) -> int:
        return 2 * self.iters


# ---------------------------------------------------------------------------
# racy-lockorder: inconsistent locks + opposite-order nesting
# ---------------------------------------------------------------------------


def _ro_build_marker(name: str) -> ClassAssembler:
    c = ClassAssembler(name)
    with c.method("<init>", "()V") as m:
        m.return_()
    return c


def _ro_build_shared() -> ClassAssembler:
    c = ClassAssembler(RO_SHARED)
    c.field("value", default=0)
    with c.method("<init>", "()V") as m:
        m.return_()
    return c


def _ro_build_worker(iters: int) -> ClassAssembler:
    c = ClassAssembler(RO_WORKER, super_name="java.lang.Thread")
    c.field("mode", default=0)
    c.field("a")
    c.field("b")
    c.field("shared")
    with c.method("<init>", f"(IL{RO_SHARED};)V") as m:
        m.aload(0).iload(1).putfield(RO_WORKER, "mode")
        m.aload(0).aload(2).putfield(RO_WORKER, "shared")
        # a private lock pair per worker: dynamically never shared (no
        # HB edge, no real deadlock), statically the same LockA/LockB
        # class tokens as every other worker's
        m.aload(0)
        m.new(RO_LOCK_A).dup()
        m.invokespecial(RO_LOCK_A, "<init>", "()V")
        m.putfield(RO_WORKER, "a")
        m.aload(0)
        m.new(RO_LOCK_B).dup()
        m.invokespecial(RO_LOCK_B, "<init>", "()V")
        m.putfield(RO_WORKER, "b")
        m.return_()
    with c.method("run", "()V") as m:
        m.iconst(0).istore(1)
        m.label("loop")
        m.iload(1).ldc(iters).if_icmpge("done")
        m.aload(0).getfield(RO_WORKER, "mode").ifne("mode1")
        # mode 0: acquire A, briefly nest B (A -> B edge), then update
        # the shared field under A alone
        m.aload(0).getfield(RO_WORKER, "a").monitorenter()
        m.aload(0).getfield(RO_WORKER, "b").monitorenter()
        m.aload(0).getfield(RO_WORKER, "b").monitorexit()
        m.aload(0).getfield(RO_WORKER, "shared")
        m.dup().getfield(RO_SHARED, "value")
        m.iconst(1).iadd().putfield(RO_SHARED, "value")
        m.aload(0).getfield(RO_WORKER, "a").monitorexit()
        m.goto("next")
        m.label("mode1")
        # mode 1: the mirror image — B outer, A nested (B -> A edge),
        # update under B alone.  Different lock, same field: the
        # lockset intersection is empty and no HB edge exists.
        m.aload(0).getfield(RO_WORKER, "b").monitorenter()
        m.aload(0).getfield(RO_WORKER, "a").monitorenter()
        m.aload(0).getfield(RO_WORKER, "a").monitorexit()
        m.aload(0).getfield(RO_WORKER, "shared")
        m.dup().getfield(RO_SHARED, "value")
        m.iconst(1).iadd().putfield(RO_SHARED, "value")
        m.aload(0).getfield(RO_WORKER, "b").monitorexit()
        m.label("next")
        m.iinc(1, 1).goto("loop")
        m.label("done")
        m.return_()
    return c


def _ro_build_main(iters: int) -> ClassAssembler:
    c = ClassAssembler(RO_MAIN)
    with c.method("main", "()V", static=True) as m:
        # locals: 0=shared, 1=t1, 2=t2, 3=checksum
        m.new(RO_SHARED).dup()
        m.invokespecial(RO_SHARED, "<init>", "()V").astore(0)
        for mode, slot in ((0, 1), (1, 2)):
            m.new(RO_WORKER).dup()
            m.iconst(mode).aload(0)
            m.invokespecial(RO_WORKER, "<init>",
                            f"(IL{RO_SHARED};)V")
            m.astore(slot)
        m.aload(1).invokevirtual(RO_WORKER, "start", "()V")
        m.aload(2).invokevirtual(RO_WORKER, "start", "()V")
        m.aload(1).invokevirtual(RO_WORKER, "join", "()V")
        m.aload(2).invokevirtual(RO_WORKER, "join", "()V")
        m.aload(0).getfield(RO_SHARED, "value").istore(3)
        _emit_console(m, [("checksum", 3)])
        m.return_()
    return c


@register
class RacyLockOrderWorkload(_RacyWorkload):
    """Seeded lockset violation + lock-order inversion."""

    name = "racy-lockorder"
    description = ("seeded defects: a shared field guarded by two "
                   "different locks, nested in opposite orders")

    main_class = RO_MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.iters = RO_ITERS_PER_SCALE * scale

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_ro_build_marker(RO_LOCK_A).build())
        archive.put_class(_ro_build_marker(RO_LOCK_B).build())
        archive.put_class(_ro_build_shared().build())
        archive.put_class(_ro_build_worker(self.iters).build())
        archive.put_class(_ro_build_main(self.iters).build())
        return archive

    def _expected_checksum(self) -> int:
        return 2 * self.iters
