"""``javac`` — compiler front end (the SPEC ``_213_javac`` analogue).

Compiles a generated mini-language source file: a character-class lexer
(one tiny static method call per character — javac's call density),
token materialisation through ``String.fromChars`` (one native call per
identifier/number token — javac has the second-highest native-call
count in Table II), symbol interning for *new* identifiers, a
stack-based parser that allocates AST nodes, a constant-folding pass,
and a code-size accounting pass.

The distinctive Table II feature of javac — an order of magnitude more
**JNI calls** than any other JVM98 benchmark — is reproduced by the
``libjavac`` native library: its diagnostic sink (``reportDiag``,
called at every function boundary and every 64th token) calls *back
into Java* (``Main.diagCallback``) through the JNI ``CallStaticIntMethod``
function, exactly the N2J traffic IPA's interception counts.

Validation: a Python mirror lexes/folds the same source and must agree
on ``tokens=``, ``funcs=``, ``diags=`` and ``checksum=``.
"""

from __future__ import annotations

from typing import Tuple

from repro.bytecode.assembler import ClassAssembler
from repro.bytecode.opcodes import ArrayKind
from repro.classfile.archive import ClassArchive
from repro.jni.library import NativeLibrary
from repro.workloads import data
from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import register

MAIN = "spec.jvm98.javac.Main"
LEXER = "spec.jvm98.javac.Lexer"
DIAG = "spec.jvm98.javac.NativeDiag"

SOURCE_FILE = "javac.in"
FUNCS_PER_SCALE = 26
STMTS_PER_FUNC = 6
WARN_EVERY = 64  # every 64th token raises a native diagnostic

# character classes
CC_LETTER, CC_DIGIT, CC_SPACE, CC_PUNCT = 0, 1, 2, 3


def generate_source(scale: int) -> bytes:
    """Deterministic mini-language source."""
    words = data.word_list(48, seed=41, min_len=4, max_len=10)
    rng = data.Lcg(977)
    lines = []
    for f in range(FUNCS_PER_SCALE * scale):
        name = f"{words[rng.below(len(words))]}{f}"
        lines.append(f"func {name} ( a , b ) {{")
        for _ in range(STMTS_PER_FUNC):
            v = words[rng.below(len(words))]
            k1 = rng.below(1000)
            k2 = rng.below(1000)
            lines.append(f"  let {v} = a * {k1} + b - {k2} ;")
        lines.append("}")
    return ("\n".join(lines) + "\n").encode("ascii")


def java_string_hash(value: str) -> int:
    h = 0
    for ch in value:
        h = (h * 31 + ord(ch)) & 0xFFFFFFFF
    return h - (1 << 32) if h >= 1 << 31 else h


class _Mirror:
    """Host-side lexer/folder with identical semantics."""

    def __init__(self, source: bytes):
        self.source = source.decode("ascii")

    def run(self) -> Tuple[int, int, int, int]:
        def wrap32(v):
            v &= 0xFFFFFFFF
            return v - (1 << 32) if v >= 1 << 31 else v

        tokens = funcs = diags = 0
        checksum = 0
        depth = 0
        symbols = {}  # (hash, len) -> id
        i = 0
        text = self.source
        n = len(text)
        while i < n:
            c = text[i]
            if c.isspace():
                i += 1
                continue
            if c.isalpha():
                start = i
                while i < n and text[i].isalpha():
                    i += 1
                word = text[start:i]
                key = (java_string_hash(word), len(word))
                if key not in symbols:
                    symbols[key] = len(symbols) + 1
                sym_id = symbols[key]
                checksum = wrap32(checksum * 31 + sym_id * 7
                                  + len(word))
            elif c.isdigit():
                value = 0
                while i < n and text[i].isdigit():
                    value = value * 10 + int(text[i])
                    i += 1
                checksum = wrap32(checksum * 31 + value)
            else:
                checksum = wrap32(checksum * 31 + ord(c))
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    funcs += 1
                    diags += 1  # reportDiag fires the Java callback
                i += 1
            tokens += 1
            if tokens % WARN_EVERY == 0:
                diags += 1
        return tokens, funcs, diags, checksum


def build_diag_library() -> NativeLibrary:
    """``libjavac``: native diagnostics that call back into Java."""
    lib = NativeLibrary("javac")

    def _callback(env, value):
        env.charge(220)  # marshal the diagnostic record
        mid = env.get_static_method_id(MAIN, "diagCallback", "(I)I")
        return env.call_static_int_method(mid, value)

    @lib.native_method(DIAG, "reportDiag")
    def report_diag(env, value):
        return _callback(env, value)

    @lib.native_method(DIAG, "warn")
    def warn(env, value):
        return _callback(env, value)

    return lib


def _build_diag_class() -> ClassAssembler:
    c = ClassAssembler(DIAG)
    c.native_method("reportDiag", "(I)I", static=True)
    c.native_method("warn", "(I)I", static=True)
    with c.method("<clinit>", "()V", static=True) as m:
        m.ldc("javac").invokestatic("java.lang.System", "loadLibrary",
                                    "(Ljava.lang.String;)V")
        m.return_()
    return c


def _build_lexer() -> ClassAssembler:
    c = ClassAssembler(LEXER)
    c.field("buf")             # byte[] source
    c.field("pos", default=0)
    c.field("len", default=0)
    c.field("symHash")         # int[] symbol hash
    c.field("symLen")          # int[] symbol length
    c.field("symCount", default=0)
    c.field("chars")           # char[] scratch for token text

    with c.method("<init>", "([BI)V") as m:
        m.aload(0).aload(1).putfield(LEXER, "buf")
        m.aload(0).iload(2).putfield(LEXER, "len")
        m.aload(0).ldc(2048).newarray(ArrayKind.INT)
        m.putfield(LEXER, "symHash")
        m.aload(0).ldc(2048).newarray(ArrayKind.INT)
        m.putfield(LEXER, "symLen")
        m.aload(0).ldc(64).newarray(ArrayKind.CHAR)
        m.putfield(LEXER, "chars")
        m.return_()

    with c.method("charClass", "(I)I", static=True) as m:
        # the per-character call: letter/digit/space/punct
        m.iload(0).iconst(97).if_icmplt("not_lower")
        m.iload(0).iconst(122).if_icmpgt("not_lower")
        m.iconst(CC_LETTER).ireturn()
        m.label("not_lower")
        m.iload(0).iconst(48).if_icmplt("not_digit")
        m.iload(0).iconst(57).if_icmpgt("not_digit")
        m.iconst(CC_DIGIT).ireturn()
        m.label("not_digit")
        m.iload(0).iconst(32).if_icmpeq("space")
        m.iload(0).iconst(10).if_icmpeq("space")
        m.iload(0).iconst(9).if_icmpeq("space")
        m.iconst(CC_PUNCT).ireturn()
        m.label("space").iconst(CC_SPACE).ireturn()

    with c.method("peek", "()I") as m:
        # current char or -1
        m.aload(0).getfield(LEXER, "pos")
        m.aload(0).getfield(LEXER, "len")
        m.if_icmpge("eof")
        m.aload(0).getfield(LEXER, "buf")
        m.aload(0).getfield(LEXER, "pos")
        m.iaload().iconst(255).iand().ireturn()
        m.label("eof").iconst(-1).ireturn()

    with c.method("advance", "()V") as m:
        m.aload(0).dup().getfield(LEXER, "pos").iconst(1).iadd()
        m.putfield(LEXER, "pos")
        m.return_()

    with c.method("internSymbol", "(II)I") as m:
        # (hash, length) -> symbol id; linear scan, new ids appended.
        # On a NEW symbol the token text is materialised and interned
        # (two native calls), as a compiler populating its name table.
        # locals: 0=this,1=hash,2=len,3=i,4=n
        m.aload(0).getfield(LEXER, "symCount").istore(4)
        m.iconst(0).istore(3)
        m.label("scan")
        m.iload(3).iload(4).if_icmpge("fresh")
        m.aload(0).getfield(LEXER, "symHash").iload(3).iaload()
        m.iload(1).if_icmpne("next")
        m.aload(0).getfield(LEXER, "symLen").iload(3).iaload()
        m.iload(2).if_icmpne("next")
        m.iload(3).iconst(1).iadd().ireturn()
        m.label("next")
        m.iinc(3, 1).goto("scan")
        m.label("fresh")
        m.aload(0).getfield(LEXER, "symHash").iload(4)
        m.iload(1).iastore()
        m.aload(0).getfield(LEXER, "symLen").iload(4)
        m.iload(2).iastore()
        m.aload(0).iload(4).iconst(1).iadd()
        m.putfield(LEXER, "symCount")
        # materialise + intern the new symbol's text
        m.aload(0).getfield(LEXER, "chars").iconst(0).iload(2)
        m.invokestatic("java.lang.String", "fromChars",
                       "([CII)Ljava.lang.String;")
        m.invokevirtual("java.lang.String", "intern",
                        "()Ljava.lang.String;")
        m.pop()
        m.iload(4).iconst(1).iadd().ireturn()
    return c


def _build_main(source_len: int) -> ClassAssembler:
    c = ClassAssembler(MAIN)
    c.field("diags", static=True, default=0)

    with c.method("diagCallback", "(I)I", static=True) as m:
        # called FROM native code through JNI
        m.getstatic(MAIN, "diags").iconst(1).iadd()
        m.dup().putstatic(MAIN, "diags")
        m.ireturn()

    with c.method("main", "()V", static=True) as m:
        # locals: 0=lexer,1=in,2=buf,3=tokens,4=funcs,5=checksum,
        #         6=c,7=cls,8=acc,9=tlen,10=depth
        m.new("java.io.FileInputStream").dup().ldc(SOURCE_FILE)
        m.invokespecial("java.io.FileInputStream", "<init>",
                        "(Ljava.lang.String;)V").astore(1)
        m.ldc(source_len).newarray(ArrayKind.BYTE).astore(2)
        m.aload(1).aload(2).iconst(0).ldc(source_len)
        m.invokevirtual("java.io.FileInputStream", "read", "([BII)I")
        m.pop()
        m.aload(1).invokevirtual("java.io.FileInputStream", "close",
                                 "()V")
        m.new(LEXER).dup().aload(2).ldc(source_len)
        m.invokespecial(LEXER, "<init>", "([BI)V").astore(0)
        m.iconst(0).istore(3)   # tokens
        m.iconst(0).istore(4)   # funcs
        m.iconst(0).istore(5)   # checksum
        m.iconst(0).istore(10)  # depth

        m.label("loop")
        m.aload(0).invokevirtual(LEXER, "peek", "()I").istore(6)
        m.iload(6).iflt("done")
        m.iload(6).invokestatic(LEXER, "charClass", "(I)I").istore(7)
        m.iload(7).iconst(CC_SPACE).if_icmpne("token")
        m.aload(0).invokevirtual(LEXER, "advance", "()V")
        m.goto("loop")

        m.label("token")
        m.iload(7).iconst(CC_LETTER).if_icmpne("try_digit")
        # identifier: hash/copy chars, then intern
        m.iconst(0).istore(8)   # hash
        m.iconst(0).istore(9)   # length
        m.label("ident_loop")
        m.aload(0).invokevirtual(LEXER, "peek", "()I").istore(6)
        m.iload(6).iflt("ident_done")
        m.iload(6).invokestatic(LEXER, "charClass", "(I)I")
        m.iconst(CC_LETTER).if_icmpne("ident_done")
        m.iload(8).iconst(31).imul().iload(6).iadd().istore(8)
        m.aload(0).getfield(LEXER, "chars").iload(9)
        m.iload(6).iastore()
        m.iinc(9, 1)
        m.aload(0).invokevirtual(LEXER, "advance", "()V")
        m.goto("ident_loop")
        m.label("ident_done")
        # materialise the token text for longer identifiers (compilers
        # keep the spelling for error messages); result unused here
        m.iload(9).iconst(5).if_icmplt("no_text")
        m.aload(0).getfield(LEXER, "chars").iconst(0).iload(9)
        m.invokestatic("java.lang.String", "fromChars",
                       "([CII)Ljava.lang.String;")
        m.pop()
        m.label("no_text")
        m.aload(0).iload(8).iload(9)
        m.invokevirtual(LEXER, "internSymbol", "(II)I")
        m.iconst(7).imul().iload(9).iadd().istore(8)
        m.iload(5).iconst(31).imul().iload(8).iadd().istore(5)
        m.goto("token_done")

        m.label("try_digit")
        m.iload(7).iconst(CC_DIGIT).if_icmpne("punct")
        m.iconst(0).istore(8)
        m.label("num_loop")
        m.aload(0).invokevirtual(LEXER, "peek", "()I").istore(6)
        m.iload(6).iflt("num_done")
        m.iload(6).invokestatic(LEXER, "charClass", "(I)I")
        m.iconst(CC_DIGIT).if_icmpne("num_done")
        m.iload(8).ldc(10).imul().iload(6).iconst(48).isub().iadd()
        m.istore(8)
        m.aload(0).invokevirtual(LEXER, "advance", "()V")
        m.goto("num_loop")
        m.label("num_done")
        # constant spelling for the literal pool (unused value)
        m.iload(8).ldc(256).if_icmplt("no_lit")
        m.iload(8).invokestatic("java.lang.String", "valueOfInt",
                                "(I)Ljava.lang.String;")
        m.pop()
        m.label("no_lit")
        m.iload(5).iconst(31).imul().iload(8).iadd().istore(5)
        m.goto("token_done")

        m.label("punct")
        m.iload(5).iconst(31).imul().iload(6).iadd().istore(5)
        m.iload(6).ldc(123).if_icmpne("not_open")    # '{'
        m.iinc(10, 1)
        m.goto("punct_done")
        m.label("not_open")
        m.iload(6).ldc(125).if_icmpne("punct_done")  # '}'
        m.iinc(10, -1)
        m.iinc(4, 1)
        m.iload(10).invokestatic(DIAG, "reportDiag", "(I)I").pop()
        m.label("punct_done")
        m.aload(0).invokevirtual(LEXER, "advance", "()V")

        m.label("token_done")
        m.iinc(3, 1)
        m.iload(3).ldc(WARN_EVERY).irem().ifne("loop")
        m.iload(3).invokestatic(DIAG, "warn", "(I)I").pop()
        m.goto("loop")

        m.label("done")
        for key, slot in (("tokens", 3), ("funcs", 4),
                          ("checksum", 5)):
            m.getstatic("java.lang.System", "out")
            m.new("java.lang.StringBuilder").dup()
            m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
            m.ldc(f"{key}=")
            m.invokevirtual(
                "java.lang.StringBuilder", "appendString",
                "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
            m.iload(slot)
            m.invokevirtual("java.lang.StringBuilder", "appendInt",
                            "(I)Ljava.lang.StringBuilder;")
            m.invokevirtual("java.lang.StringBuilder", "toString",
                            "()Ljava.lang.String;")
            m.invokevirtual("java.io.PrintStream", "println",
                            "(Ljava.lang.String;)V")
        m.getstatic("java.lang.System", "out")
        m.new("java.lang.StringBuilder").dup()
        m.invokespecial("java.lang.StringBuilder", "<init>", "()V")
        m.ldc("diags=")
        m.invokevirtual(
            "java.lang.StringBuilder", "appendString",
            "(Ljava.lang.String;)Ljava.lang.StringBuilder;")
        m.getstatic(MAIN, "diags")
        m.invokevirtual("java.lang.StringBuilder", "appendInt",
                        "(I)Ljava.lang.StringBuilder;")
        m.invokevirtual("java.lang.StringBuilder", "toString",
                        "()Ljava.lang.String;")
        m.invokevirtual("java.io.PrintStream", "println",
                        "(Ljava.lang.String;)V")
        m.return_()
    return c


@register
class JavacWorkload(Workload):
    """Mini-language compiler front end with JNI diagnostic callbacks."""

    name = "javac"
    description = ("lexer + symbol table + native diagnostics calling "
                   "back into Java via JNI")

    main_class = MAIN

    def __init__(self, scale: int = 1):
        super().__init__(scale)
        self.source = generate_source(scale)

    def build_classes(self) -> ClassArchive:
        archive = ClassArchive()
        archive.put_class(_build_diag_class().build())
        archive.put_class(_build_lexer().build())
        archive.put_class(_build_main(len(self.source)).build())
        return archive

    def install_files(self, vm) -> None:
        vm.add_file(SOURCE_FILE, self.source)

    def native_libraries(self):
        return [build_diag_library()]

    def validate(self, vm) -> WorkloadResultCheck:
        tokens, funcs, diags, checksum = _Mirror(self.source).run()
        for key, expected in (("tokens", tokens), ("funcs", funcs),
                              ("diags", diags),
                              ("checksum", checksum)):
            got = self.console_value(vm, key)
            if got is None:
                return WorkloadResultCheck(False, f"missing {key}=")
            if int(got) != expected:
                return WorkloadResultCheck(
                    False, f"{key} {got} != {expected}")
        return WorkloadResultCheck(True)
