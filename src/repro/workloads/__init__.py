"""Workloads: synthetic SPEC JVM98 / JBB2005 equivalents.

Each workload is a program *in the simulator's bytecode ISA* with the
algorithmic character of its SPEC namesake, calibrated on the three
axes that drive the paper's numbers: Java-method-call density (SPA
overhead), native-call rate (IPA overhead, Table II counts), and the
fraction of cycles spent inside native code (Table II percentages).

Use :func:`repro.workloads.suite.jvm98_suite` /
:func:`repro.workloads.suite.full_suite` or the per-benchmark classes.
"""

from repro.workloads.base import Workload, WorkloadResultCheck
from repro.workloads.suite import (
    full_suite,
    get_workload,
    jvm98_suite,
    workload_names,
)

# importing the benchmark modules registers them with the suite
from repro.workloads import compress as _compress  # noqa: E402,F401
from repro.workloads import db as _db  # noqa: E402,F401
from repro.workloads import jess as _jess  # noqa: E402,F401
from repro.workloads import javac as _javac  # noqa: E402,F401
from repro.workloads import jack as _jack  # noqa: E402,F401
from repro.workloads import mpegaudio as _mpegaudio  # noqa: E402,F401
from repro.workloads import mtrt as _mtrt  # noqa: E402,F401
from repro.workloads import jbb2005 as _jbb2005  # noqa: E402,F401
from repro.workloads import concurrency as _concurrency  # noqa: E402,F401
from repro.workloads import racy as _racy  # noqa: E402,F401
from repro.workloads import io as _io  # noqa: E402,F401

from repro.workloads.concurrency import concurrency_suite  # noqa: E402
from repro.workloads.io import io_suite  # noqa: E402

__all__ = [
    "Workload",
    "WorkloadResultCheck",
    "concurrency_suite",
    "io_suite",
    "full_suite",
    "get_workload",
    "jvm98_suite",
    "workload_names",
]
