"""Profiling agents — the paper's contribution.

* :class:`~repro.agents.spa.SPA` — the Simple Profiling Agent (Figure 1):
  method entry/exit events + a reified native/Java stack.  Portable, but
  its event capabilities disable the JIT, producing the catastrophic
  overhead of Table I.
* :class:`~repro.agents.ipa.IPA` — the Improved Profiling Agent
  (Figures 2/3): JNI function interception for N2J transitions, native
  method prefixing + bytecode-instrumented wrappers for J2N transitions,
  with timestamp compensation.  Moderate overhead, JIT stays on.
* :class:`~repro.agents.counting.CountingAgent` — the related-work
  baseline (Kaffe-style native-invocation counting, no timing).
* :class:`~repro.agents.callchain.CallChainAgent` — the paper's
  future-work extension: full mixed Java/native calling-context trees.
* :class:`~repro.agents.sampling.SamplingProfiler` — the related-work
  sampling approach (IBM tprof style): cheap, but system-specific and
  blind to transition counts.
"""

from repro.agents.spa import SPA
from repro.agents.ipa import IPA
from repro.agents.counting import CountingAgent
from repro.agents.callchain import CallChainAgent
from repro.agents.sampling import SamplingProfiler

__all__ = ["SPA", "IPA", "CountingAgent", "CallChainAgent",
           "SamplingProfiler"]
