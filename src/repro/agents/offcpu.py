"""Off-CPU (wall-clock) profiling — blocked-samples over the CCT.

The callchain agent attributes *CPU* cycles to calling contexts; this
agent extends the same calling-context tree with the dimension
conventional profilers miss entirely: time the thread spent **off
CPU**, parked on a simulated device while a blocking native ran
(DESIGN.md §13).  Every context carries two inclusive weights — CPU
cycles (from PCL timestamps, which count only on-CPU time) and
blocked cycles (from the per-thread blocked counter, a host-side peek
that charges nothing) — so wall-clock folded stacks can be exported
with blocked frames suffixed ``_[offcpu]`` (see
:func:`repro.observability.flamegraph.write_wall_folded`).

Like callchain it rides the method entry/exit events, so it pays the
no-JIT price.
"""

from __future__ import annotations

from typing import Dict, List

from repro.agents.callchain import EVENT_WORK, CallChainAgent, CCTNode


class OffCpuNode(CCTNode):
    """A calling context with CPU *and* blocked inclusive weights."""

    __slots__ = ("blocked_inclusive",)

    def __init__(self, method_name: str, is_native: bool):
        super().__init__(method_name, is_native)
        self.blocked_inclusive = 0

    def child(self, method_name: str, is_native: bool) -> "OffCpuNode":
        node = self.children.get(method_name)
        if node is None:
            node = OffCpuNode(method_name, is_native)
            self.children[method_name] = node
        return node


class _ThreadState:
    __slots__ = ("root", "stack")

    def __init__(self):
        self.root = OffCpuNode("<thread>", is_native=True)
        self.stack: List[OffCpuNode] = [self.root]


class OffCpuAgent(CallChainAgent):
    """CCT profiler with per-context on-CPU/blocked attribution."""

    name = "offcpu"

    def _state(self, thread) -> _ThreadState:
        state = self._states.get(thread.thread_id)
        if state is None:
            state = _ThreadState()
            self._states[thread.thread_id] = state
            self.roots[thread.name] = state.root
        return state

    # entry/exit mirror CallChainAgent's, with the entry stack holding
    # (cpu timestamp, blocked watermark) pairs instead of bare
    # timestamps — the blocked read is a free host-side peek, so the
    # agent's charges (and the run's tables) are identical to
    # callchain's

    def _method_entry(self, env, thread, method) -> None:
        env.charge(EVENT_WORK, thread)
        state = self._state(thread)
        if len(state.stack) >= self.max_depth:
            folded = state.stack[-1]
            state.stack.append(folded)  # depth-capped: fold
            if self._tracer.enabled:
                self._tracer.begin(folded.method_name, "method",
                                   thread.thread_id,
                                   thread.cycles_total)
            return
        node = state.stack[-1].child(method.qualified_name,
                                     method.is_native)
        node.calls += 1
        node._entry_stack.append((env.pcl.get_timestamp(thread),
                                  thread.blocked_total))
        state.stack.append(node)
        if self._tracer.enabled:
            self._tracer.begin(node.method_name, "method",
                               thread.thread_id, thread.cycles_total)

    def _method_exit(self, env, thread, method, by_exception) -> None:
        env.charge(EVENT_WORK, thread)
        state = self._state(thread)
        if len(state.stack) <= 1:
            return  # unmatched exit (agent attached mid-frame)
        node = state.stack.pop()
        if node._entry_stack:
            entered, blocked_mark = node._entry_stack.pop()
            node.inclusive_cycles += \
                env.pcl.get_timestamp(thread) - entered
            node.blocked_inclusive += \
                thread.blocked_total - blocked_mark
        if self._tracer.enabled:
            self._tracer.end(node.method_name, "method",
                             thread.thread_id, thread.cycles_total)

    # -- analysis (host side, after the run) ------------------------------------

    @property
    def total_blocked(self) -> int:
        return sum(child.blocked_inclusive
                   for root in self.roots.values()
                   for child in root.children.values())

    def blocked_contexts(self) -> List[Dict]:
        """Contexts with blocked time, heaviest first."""
        result = []
        for root in self.roots.values():
            for chain, node in root.walk():
                if node.blocked_inclusive > 0 and len(chain) > 1:
                    result.append({
                        "chain": list(chain[1:]),
                        "calls": node.calls,
                        "cpu_cycles": node.inclusive_cycles,
                        "blocked_cycles": node.blocked_inclusive,
                    })
        result.sort(key=lambda item: -item["blocked_cycles"])
        return result

    def report(self) -> Dict:
        blocked = self.blocked_contexts()
        return {
            "agent": self.name,
            "threads": len(self.roots),
            "total_time_blocked": self.total_blocked,
            "blocked_contexts": len(blocked),
            "hottest_blocked_contexts": blocked[:10],
        }
