"""Related-work baseline: invocation counting without timing.

Models the approach of Gregg/Power/Waldron (paper Section VI): an
instrumented Kaffe VM *without JIT compilation* counting native method
invocations.  Here that is an agent that requests method-entry events
(thereby disabling the JIT, as in the purely interpreted Kaffe) and
increments counters — it recovers the Table II call counts but can say
nothing about where CPU time goes, the paper's criticism.
"""

from __future__ import annotations

from typing import Dict

from repro.jvmti.agent import AgentBase
from repro.jvmti.capabilities import Capabilities
from repro.jvmti.events import JvmtiEvent

#: Cycles per event: a bare counter increment.
EVENT_WORK = 12


class CountingAgent(AgentBase):
    """Counts Java and native method invocations."""

    name = "counting"

    def __init__(self):
        super().__init__()
        self.java_method_invocations = 0
        self.native_method_invocations = 0
        self.per_method: Dict[str, int] = {}
        #: Collect per-method counts too (costs a little more per event).
        self.detailed = False

    def on_load(self, env) -> None:
        super().on_load(env)
        env.add_capabilities(Capabilities(
            can_generate_method_entry_events=True))
        env.set_event_callbacks({
            JvmtiEvent.METHOD_ENTRY: self._method_entry,
        })
        env.enable_event(JvmtiEvent.METHOD_ENTRY)

    def _method_entry(self, env, thread, method) -> None:
        env.charge(EVENT_WORK, thread)
        if method.is_native:
            self.native_method_invocations += 1
        else:
            self.java_method_invocations += 1
        if self.detailed:
            env.charge(30, thread)
            key = method.qualified_name
            self.per_method[key] = self.per_method.get(key, 0) + 1

    def report(self) -> Dict:
        report = {
            "agent": self.name,
            "java_method_invocations": self.java_method_invocations,
            "native_method_invocations": self.native_method_invocations,
        }
        if self.detailed:
            report["per_method"] = dict(self.per_method)
        return report
