"""SPA — the Simple Profiling Agent (Figure 1 of the paper).

Faithful port of the paper's pseudo-code: per-thread contexts in JVMTI
thread-local storage, a reified boolean stack mirroring the Java call
stack (``True`` = native frame), PCL timestamps taken **only** on
bytecode<->native transitions, and a raw monitor guarding the global
totals folded in at ThreadEnd.

The fatal flaw is inherited faithfully too: SPA requests the
``can_generate_method_entry/exit_events`` capabilities, which disables
JIT compilation for the whole run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.jvmti.agent import AgentBase
from repro.jvmti.capabilities import Capabilities
from repro.jvmti.events import JvmtiEvent

#: Simulated cycles of C-level work per event callback beyond JVMTI
#: dispatch and TLS/PCL costs (stack push/pop, isNative query, checks).
EVENT_WORK = 200
#: Extra cycles on a detected transition (counter update, store).
TRANSITION_WORK = 25


class _ThreadContext:
    """TC_SPA from Figure 1 (plus an off-CPU watermark)."""

    __slots__ = ("timestamp", "time_bytecode", "time_native", "stack",
                 "blocked_mark")

    def __init__(self, timestamp: int, blocked_mark: int = 0):
        self.timestamp = timestamp
        self.time_bytecode = 0
        self.time_native = 0
        self.stack: List[bool] = []
        #: Last observed per-thread blocked-cycle total; deltas fold
        #: into the agent's off-CPU tally at ThreadEnd.  A host-side
        #: peek (PCL counts CPU cycles only), so it adds zero charge.
        self.blocked_mark = blocked_mark


class SPA(AgentBase):
    """The simple profiling agent."""

    name = "spa"

    def __init__(self):
        super().__init__()
        self.total_time_bytecode = 0
        self.total_time_native = 0
        self.total_time_blocked = 0
        self.java_method_invocations = 0
        self.native_method_invocations = 0
        self._monitor = None
        self._vm_death_seen = False
        from repro.observability.tracer import NULL_TRACER
        self._tracer = NULL_TRACER

    # -- Agent_OnLoad ----------------------------------------------------------

    def on_load(self, env) -> None:
        super().on_load(env)
        env.add_capabilities(Capabilities(
            can_generate_method_entry_events=True,
            can_generate_method_exit_events=True,
        ))
        env.set_event_callbacks({
            JvmtiEvent.THREAD_START: self._thread_start,
            JvmtiEvent.THREAD_END: self._thread_end,
            JvmtiEvent.METHOD_ENTRY: self._method_entry,
            JvmtiEvent.METHOD_EXIT: self._method_exit,
            JvmtiEvent.VM_DEATH: self._vm_death,
        })
        for event in (JvmtiEvent.THREAD_START, JvmtiEvent.THREAD_END,
                      JvmtiEvent.METHOD_ENTRY, JvmtiEvent.METHOD_EXIT,
                      JvmtiEvent.VM_DEATH):
            env.enable_event(event)
        self._monitor = env.create_raw_monitor("spa-globals")
        # observability: transition markers peek at the cycle counter
        # (zero simulated cost; totals identical with tracing on/off)
        self._tracer = env.observer.tracer

    # -- helper: TLS allocation on demand ---------------------------------------
    # (the JVMTI does not signal ThreadStart for the bootstrapping
    # thread, so contexts must be allocatable lazily — paper, Sec. III)

    def _context(self, env, thread) -> _ThreadContext:
        tc = env.tls_get(thread)
        if tc is None:
            tc = _ThreadContext(env.pcl.get_timestamp(thread),
                                thread.blocked_total)
            env.tls_put(thread, tc)
        return tc

    # -- JVMTI events --------------------------------------------------------------

    def _thread_start(self, env, thread) -> None:
        env.charge(EVENT_WORK, thread)
        env.tls_put(thread, _ThreadContext(
            env.pcl.get_timestamp(thread), thread.blocked_total))

    def _thread_end(self, env, thread) -> None:
        env.charge(EVENT_WORK, thread)
        tc = self._context(env, thread)
        in_native = tc.stack[-1] if tc.stack else True
        now = env.pcl.get_timestamp(thread)
        delta = now - tc.timestamp
        if in_native:
            tc.time_native += delta
        else:
            tc.time_bytecode += delta
        blocked_now = thread.blocked_total
        env.raw_monitor_enter(self._monitor)
        self.total_time_bytecode += tc.time_bytecode
        self.total_time_native += tc.time_native
        self.total_time_blocked += blocked_now - tc.blocked_mark
        env.raw_monitor_exit(self._monitor)
        # reset the context so a duplicate THREAD_END (or any later
        # fold) cannot double-count the already-folded interval
        tc.time_bytecode = 0
        tc.time_native = 0
        tc.timestamp = now
        tc.blocked_mark = blocked_now

    def _method_entry(self, env, thread, method) -> None:
        env.charge(EVENT_WORK, thread)
        tc = self._context(env, thread)
        is_native = method.is_native
        if is_native:
            self.native_method_invocations += 1
        else:
            self.java_method_invocations += 1
        caller_native = tc.stack[-1] if tc.stack else True
        if is_native != caller_native:
            env.charge(TRANSITION_WORK, thread)
            now = env.pcl.get_timestamp(thread)
            delta = now - tc.timestamp
            if caller_native:
                tc.time_native += delta
            else:
                tc.time_bytecode += delta
            tc.timestamp = now
            if self._tracer.enabled:
                self._tracer.instant(
                    "spa:J->N" if is_native else "spa:N->J",
                    "transition", thread.thread_id,
                    thread.cycles_total)
        tc.stack.append(is_native)

    def _method_exit(self, env, thread, method, by_exception) -> None:
        env.charge(EVENT_WORK, thread)
        tc = self._context(env, thread)
        if not tc.stack:
            return  # entry was missed (agent attached mid-frame)
        is_native = tc.stack.pop()
        caller_native = tc.stack[-1] if tc.stack else True
        if is_native != caller_native:
            env.charge(TRANSITION_WORK, thread)
            now = env.pcl.get_timestamp(thread)
            delta = now - tc.timestamp
            if is_native:
                tc.time_native += delta
            else:
                tc.time_bytecode += delta
            tc.timestamp = now
            if self._tracer.enabled:
                self._tracer.instant(
                    "spa:N->J" if is_native else "spa:J->N",
                    "transition", thread.thread_id,
                    thread.cycles_total)

    def _vm_death(self, env) -> None:
        self._vm_death_seen = True

    # -- results ------------------------------------------------------------------------

    @property
    def percent_native(self) -> float:
        total = self.total_time_bytecode + self.total_time_native
        if total == 0:
            return 0.0
        return 100.0 * self.total_time_native / total

    @property
    def percent_blocked(self) -> float:
        """Off-CPU share of wall time: blocked / (on-CPU + blocked)."""
        wall = (self.total_time_bytecode + self.total_time_native
                + self.total_time_blocked)
        if wall == 0:
            return 0.0
        return 100.0 * self.total_time_blocked / wall

    def report(self) -> Dict:
        report = {
            "agent": self.name,
            "total_time_bytecode": self.total_time_bytecode,
            "total_time_native": self.total_time_native,
            "percent_native": self.percent_native,
            "java_method_invocations": self.java_method_invocations,
            "native_method_invocations": self.native_method_invocations,
            "vm_death_seen": self._vm_death_seen,
        }
        if self.total_time_blocked:
            # additive: only runs that actually blocked report the
            # off-CPU split, so non-I/O reports stay byte-identical
            report["total_time_blocked"] = self.total_time_blocked
            report["percent_blocked"] = self.percent_blocked
        return report
