"""IPA — the Improved Profiling Agent (Section IV, Figures 2 and 3).

Mechanisms, as in the paper:

* **N2J** (native code invoking Java): wrappers installed over all 90
  JNI ``Call*Method*`` function-table entries signal ``N2J_Begin`` /
  ``N2J_End`` around the original call.
* **J2N** (bytecode invoking a native method): every native method is
  statically renamed with the agreed prefix and wrapped by a
  synthesized Java method that brackets the call with ``J2N_Begin()`` /
  ``J2N_End()`` (Figure 2); the JVM links the renamed method to the
  unchanged library symbol via JVMTI native method prefixing.  The four
  transition routines are static **native** methods of a runtime class
  (``repro.agent.IPARuntime``) that is excluded from instrumentation.
* **Timestamps** come from PCL per-thread cycle counters; each
  transition adjusts for the average instrumentation overhead inside
  the measured span (``compensate=False`` disables this — ablation E6).

No method entry/exit events are requested, so the JIT stays enabled.

``instrumentation="static"`` (default) rewrites the launch archives
offline (zero simulated cost, like the paper's ASM tool + prepended
bootclasspath); ``"dynamic"`` instruments through ClassFileLoadHook at
simulated runtime cost (ablation E5); ``"none"`` disables J2N tracking
entirely (diagnostics).
"""

from __future__ import annotations

from typing import Dict

from repro.bytecode.assembler import ClassAssembler
from repro.classfile.archive import ClassArchive
from repro.errors import HarnessError
from repro.instrument.dynamic_instr import DynamicInstrumenter
from repro.instrument.static_instr import instrument_archives_cached
from repro.instrument.wrapper_gen import InstrumentationConfig
from repro.jni.function_table import CALL_FUNCTION_NAMES
from repro.jni.library import NativeLibrary
from repro.jvmti.agent import AgentBase
from repro.jvmti.capabilities import Capabilities
from repro.jvmti.events import JvmtiEvent

#: Cycles of C-level bookkeeping per transition routine (beyond TLS and
#: PCL costs, which are charged by those subsystems).
TRANSITION_WORK = 15
#: Cycles per ThreadStart/ThreadEnd callback.
EVENT_WORK = 40


class _ThreadContext:
    """TC_IPA from Figure 3 (plus an off-CPU watermark)."""

    __slots__ = ("timestamp", "time_bytecode", "time_native",
                 "in_native", "blocked_mark")

    def __init__(self, timestamp: int, blocked_mark: int = 0):
        self.timestamp = timestamp
        self.time_bytecode = 0
        self.time_native = 0
        self.in_native = True
        #: Last observed per-thread blocked-cycle total (host-side
        #: peek — PCL timestamps are CPU-only, so the on-CPU split
        #: above never includes blocked time).
        self.blocked_mark = blocked_mark


class IPA(AgentBase):
    """The improved profiling agent."""

    name = "ipa"

    def __init__(self, instrumentation: str = "static",
                 compensate: bool = True,
                 config: InstrumentationConfig = None):
        super().__init__()
        if instrumentation not in ("static", "dynamic", "none"):
            raise HarnessError(
                f"unknown instrumentation mode {instrumentation!r}")
        self.instrumentation = instrumentation
        self.compensate = compensate
        self.config = config or InstrumentationConfig()
        self.total_time_bytecode = 0
        self.total_time_native = 0
        self.total_time_blocked = 0
        #: Table II column: intercepted JNI calls (N2J transitions).
        self.jni_calls = 0
        #: Table II column: native method invocations (J2N transitions).
        self.native_method_calls = 0
        self._monitor = None
        self._vm_death_seen = False
        self._comp: Dict[str, int] = {}
        self._dynamic = None
        self.static_stats = None
        from repro.observability.tracer import NULL_TRACER
        self._tracer = NULL_TRACER

    # -- Agent_OnLoad -------------------------------------------------------------

    def on_load(self, env) -> None:
        super().on_load(env)
        caps = Capabilities(can_set_native_method_prefix=True)
        if self.instrumentation == "dynamic":
            caps = caps.merged_with(Capabilities(
                can_generate_all_class_hook_events=True))
        env.add_capabilities(caps)

        callbacks = {
            JvmtiEvent.THREAD_START: self._thread_start,
            JvmtiEvent.THREAD_END: self._thread_end,
            JvmtiEvent.VM_DEATH: self._vm_death,
        }
        events = [JvmtiEvent.THREAD_START, JvmtiEvent.THREAD_END,
                  JvmtiEvent.VM_DEATH]
        if self.instrumentation == "dynamic":
            self._dynamic = DynamicInstrumenter(self.config)
            callbacks[JvmtiEvent.CLASS_FILE_LOAD_HOOK] = self._dynamic.hook
            events.append(JvmtiEvent.CLASS_FILE_LOAD_HOOK)
        env.set_event_callbacks(callbacks)
        for event in events:
            env.enable_event(event)

        self._monitor = env.create_raw_monitor("ipa-globals")
        env.set_native_method_prefix(self.config.prefix)
        self._install_jni_interception(env)
        self._compute_compensation(env.cost_model)
        # observability: transition spans are recorded by *peeking* at
        # the thread cycle counter — zero simulated cost, so profiling
        # results are bit-identical with tracing on or off
        self._tracer = env.observer.tracer

    def _install_jni_interception(self, env) -> None:
        table = env.get_jni_function_table()
        wrapped = {name: self._make_jni_wrapper(table[name])
                   for name in CALL_FUNCTION_NAMES}
        env.set_jni_function_table(wrapped)

    def _make_jni_wrapper(self, original):
        def wrapper(jni_env, *args):
            thread = jni_env.thread
            self.env.charge(
                self.env.cost_model.jni_wrapper_overhead, thread)
            self._n2j_begin(thread)
            try:
                return original(jni_env, *args)
            finally:
                self._n2j_end(thread)

        return wrapper

    def _compute_compensation(self, cost_model) -> None:
        """Estimate the average instrumentation overhead inside each
        measured span (the paper calibrated this empirically; we derive
        it from the machine's timing constants)."""
        routine = (cost_model.jvmti_tls_access + cost_model.pcl_read
                   + TRANSITION_WORK)
        j2n = cost_model.native_invoke_base + routine
        n2j = cost_model.jni_wrapper_overhead + routine
        self._comp = {
            "j2n_begin": j2n + 15,   # wrapper entry glue (one invoke)
            "j2n_end": j2n + 30,     # wrapper arg loads + End invoke
            "n2j_begin": n2j + 10,
            "n2j_end": n2j + 10,
        }

    # -- launch-time integration ------------------------------------------------------

    def native_libraries(self):
        lib = NativeLibrary("ipa")
        runtime = self.config.runtime_class

        def j2n_begin(env):
            self._j2n_begin(env.thread)
            return None

        def j2n_end(env):
            self._j2n_end(env.thread)
            return None

        def n2j_begin(env):
            self._n2j_begin(env.thread)
            return None

        def n2j_end(env):
            self._n2j_end(env.thread)
            return None

        lib.export(_symbol(runtime, self.config.begin_method), j2n_begin)
        lib.export(_symbol(runtime, self.config.end_method), j2n_end)
        lib.export(_symbol(runtime, "N2J_Begin"), n2j_begin)
        lib.export(_symbol(runtime, "N2J_End"), n2j_end)
        return [lib]

    def runtime_classes(self):
        """The IPA runtime class: four static native transition
        routines, callable from instrumented bytecode."""
        c = ClassAssembler(self.config.runtime_class)
        c.native_method(self.config.begin_method, "()V", static=True)
        c.native_method(self.config.end_method, "()V", static=True)
        c.native_method("N2J_Begin", "()V", static=True)
        c.native_method("N2J_End", "()V", static=True)
        archive = ClassArchive()
        archive.put_class(c.build())
        return archive

    def instrument_archives(self, archives):
        if self.instrumentation != "static":
            return archives
        result, stats = instrument_archives_cached(archives, self.config)
        self.static_stats = stats
        return result

    # -- thread lifecycle ------------------------------------------------------------------

    def _context(self, thread) -> _ThreadContext:
        env = self.env
        tc = env.tls_get(thread)
        if tc is None:
            tc = _ThreadContext(env.pcl.get_timestamp(thread),
                                thread.blocked_total)
            env.tls_put(thread, tc)
        return tc

    def _thread_start(self, env, thread) -> None:
        env.charge(EVENT_WORK, thread)
        env.tls_put(thread, _ThreadContext(
            env.pcl.get_timestamp(thread), thread.blocked_total))

    def _thread_end(self, env, thread) -> None:
        env.charge(EVENT_WORK, thread)
        tc = self._context(thread)
        now = env.pcl.get_timestamp(thread)
        delta = now - tc.timestamp
        if tc.in_native:
            tc.time_native += delta
        else:
            tc.time_bytecode += delta
        blocked_now = thread.blocked_total
        env.raw_monitor_enter(self._monitor)
        self.total_time_bytecode += tc.time_bytecode
        self.total_time_native += tc.time_native
        self.total_time_blocked += blocked_now - tc.blocked_mark
        env.raw_monitor_exit(self._monitor)
        # reset the context so a duplicate THREAD_END (or any later
        # fold) cannot double-count the already-folded interval
        tc.time_bytecode = 0
        tc.time_native = 0
        tc.timestamp = now
        tc.blocked_mark = blocked_now

    def _vm_death(self, env) -> None:
        self._vm_death_seen = True

    # -- transition routines (Figure 3) -------------------------------------------------------

    def _close_span(self, thread, to_native: bool, bucket: str,
                    comp_key: str) -> None:
        env = self.env
        env.charge(TRANSITION_WORK, thread)
        tc = self._context(thread)
        now = env.pcl.get_timestamp(thread)
        delta = now - tc.timestamp
        if self.compensate:
            delta -= self._comp[comp_key]
            if delta < 0:
                delta = 0
        if bucket == "bytecode":
            tc.time_bytecode += delta
        else:
            tc.time_native += delta
        tc.timestamp = now
        tc.in_native = to_native

    def _j2n_begin(self, thread) -> None:
        self.native_method_calls += 1
        self._close_span(thread, True, "bytecode", "j2n_begin")
        if self._tracer.enabled:
            self._tracer.begin("ipa:native", "transition",
                               thread.thread_id, thread.cycles_total)

    def _j2n_end(self, thread) -> None:
        self._close_span(thread, False, "native", "j2n_end")
        if self._tracer.enabled:
            self._tracer.end("ipa:native", "transition",
                             thread.thread_id, thread.cycles_total)

    def _n2j_begin(self, thread) -> None:
        self.jni_calls += 1
        self._close_span(thread, False, "native", "n2j_begin")
        if self._tracer.enabled:
            self._tracer.begin("ipa:java", "transition",
                               thread.thread_id, thread.cycles_total)

    def _n2j_end(self, thread) -> None:
        self._close_span(thread, True, "bytecode", "n2j_end")
        if self._tracer.enabled:
            self._tracer.end("ipa:java", "transition",
                             thread.thread_id, thread.cycles_total)

    # -- results --------------------------------------------------------------------------------

    @property
    def percent_native(self) -> float:
        total = self.total_time_bytecode + self.total_time_native
        if total == 0:
            return 0.0
        return 100.0 * self.total_time_native / total

    def report(self) -> Dict:
        report = {
            "agent": self.name,
            "instrumentation": self.instrumentation,
            "compensate": self.compensate,
            "total_time_bytecode": self.total_time_bytecode,
            "total_time_native": self.total_time_native,
            "percent_native": self.percent_native,
            "jni_calls": self.jni_calls,
            "native_method_calls": self.native_method_calls,
            "vm_death_seen": self._vm_death_seen,
        }
        if self.total_time_blocked:
            # additive: only runs that actually blocked report the
            # off-CPU split, so non-I/O reports stay byte-identical
            wall = (self.total_time_bytecode + self.total_time_native
                    + self.total_time_blocked)
            report["total_time_blocked"] = self.total_time_blocked
            report["percent_blocked"] = \
                100.0 * self.total_time_blocked / wall
        if self.static_stats is not None:
            report["methods_wrapped"] = self.static_stats.methods_wrapped
        if self._dynamic is not None:
            report["methods_wrapped"] = \
                self._dynamic.stats.methods_wrapped
        return report


def _symbol(class_name: str, method_name: str) -> str:
    from repro.jni.mangling import mangle

    return mangle(class_name, method_name)
