"""Sampling profiler — the paper's *system-specific* related work.

Section VI contrasts IPA with sampling profilers like IBM tprof, which
"periodically sample the PC and compare this value to a map of active
code modules" — efficient, but (a) inherently system-dependent (they
need the OS timer interrupt and the process memory map, not JVMTI) and
(b) unable to count JNI calls or expose mixed call chains.

This agent models that approach honestly inside the simulator: it is
**not** a JVMTI agent.  It registers a host-side sampler that fires
every ``interval`` simulated cycles and classifies the sample by what
the CPU was executing (bytecode vs. native — what a PC-to-module map
yields).  Per-sample cost is tiny (a timer interrupt), so overhead is
near zero; accuracy is limited by sampling error; and there is nothing
it can say about transition counts.

Used by benchmark E10 to quantify the accuracy/portability trade-off
against IPA.
"""

from __future__ import annotations

from typing import Dict

from repro.jvm.costmodel import ChargeTag

#: Simulated cycles per timer interrupt + sample classification.
SAMPLE_COST = 90


class SamplingProfiler:
    """Host-side PC sampler (attach with :meth:`install`)."""

    name = "sampling"

    def __init__(self, interval: int = 50_000):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.interval = interval
        self.samples_bytecode = 0
        self.samples_native = 0
        self.samples_other = 0

    # -- installation ------------------------------------------------------

    def install(self, vm) -> None:
        """Hook every thread's charge path (the OS timer, in effect)."""
        vm.threads.samplers.append(self)

    def on_charge(self, thread, cycles: int, tag: ChargeTag) -> int:
        """Called by the thread accounting path; returns extra cycles
        consumed by sampling interrupts that fired in this span."""
        before = thread.cycles_total - cycles
        fired = ((thread.cycles_total // self.interval)
                 - (before // self.interval))
        if not fired:
            return 0
        if tag is ChargeTag.BYTECODE:
            self.samples_bytecode += fired
        elif tag is ChargeTag.NATIVE:
            self.samples_native += fired
        else:
            self.samples_other += fired
        return SAMPLE_COST * fired

    # -- results --------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        return (self.samples_bytecode + self.samples_native
                + self.samples_other)

    @property
    def percent_native(self) -> float:
        """Estimated native fraction of *application* time (samples
        landing in VM/agent work are excluded, as a module map would
        attribute them to the JVM binary)."""
        app = self.samples_bytecode + self.samples_native
        if app == 0:
            return 0.0
        return 100.0 * self.samples_native / app

    def report(self) -> Dict:
        return {
            "agent": self.name,
            "interval": self.interval,
            "samples": self.total_samples,
            "samples_native": self.samples_native,
            "samples_bytecode": self.samples_bytecode,
            "percent_native": self.percent_native,
            # the paper's criticism: no transition counts available
            "jni_calls": None,
            "native_method_calls": None,
        }
