"""Mixed Java/native call-chain profiling — the paper's future work.

Section VII: "we are currently working on an extension which consists
in tracking complete call chains including a mix of Java and native
methods".  This agent realises that extension over the simulator: it
builds a calling-context tree (CCT) whose nodes are methods tagged
Java/native, attributing inclusive cycle time and invocation counts to
every mixed-mode chain.

It necessarily uses the method entry/exit events (so, like SPA, it pays
the no-JIT price — the paper's point that this capability "opens up new
debugging and profiling perspectives" at a cost current profilers
cannot pay portably).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.jvmti.agent import AgentBase
from repro.jvmti.capabilities import Capabilities
from repro.jvmti.events import JvmtiEvent

EVENT_WORK = 55


class CCTNode:
    """One calling context: a method reached through a specific chain."""

    __slots__ = ("method_name", "is_native", "children", "calls",
                 "inclusive_cycles", "_entry_stack")

    def __init__(self, method_name: str, is_native: bool):
        self.method_name = method_name
        self.is_native = is_native
        self.children: Dict[str, "CCTNode"] = {}
        self.calls = 0
        self.inclusive_cycles = 0
        self._entry_stack: List[int] = []

    def child(self, method_name: str, is_native: bool) -> "CCTNode":
        node = self.children.get(method_name)
        if node is None:
            node = CCTNode(method_name, is_native)
            self.children[method_name] = node
        return node

    def walk(self, prefix: Tuple[str, ...] = ()):
        """Yield ``(chain, node)`` pairs depth-first."""
        chain = prefix + (self.method_name,)
        yield chain, self
        for node in self.children.values():
            yield from node.walk(chain)


class _ThreadState:
    __slots__ = ("root", "stack")

    def __init__(self):
        self.root = CCTNode("<thread>", is_native=True)
        self.stack: List[CCTNode] = [self.root]


class CallChainAgent(AgentBase):
    """Builds per-thread mixed Java/native calling-context trees."""

    name = "callchain"

    def __init__(self, max_depth: int = 64):
        super().__init__()
        self.max_depth = max_depth
        self.roots: Dict[str, CCTNode] = {}
        self._states: Dict[int, _ThreadState] = {}
        from repro.observability.tracer import NULL_TRACER
        self._tracer = NULL_TRACER

    def on_load(self, env) -> None:
        super().on_load(env)
        env.add_capabilities(Capabilities(
            can_generate_method_entry_events=True,
            can_generate_method_exit_events=True,
        ))
        env.set_event_callbacks({
            JvmtiEvent.METHOD_ENTRY: self._method_entry,
            JvmtiEvent.METHOD_EXIT: self._method_exit,
            JvmtiEvent.THREAD_END: self._thread_end,
        })
        for event in (JvmtiEvent.METHOD_ENTRY, JvmtiEvent.METHOD_EXIT,
                      JvmtiEvent.THREAD_END):
            env.enable_event(event)
        # observability: method spans are emitted by peeking at the
        # thread cycle counter — the CCT totals are bit-identical with
        # tracing on or off
        self._tracer = env.observer.tracer

    def _state(self, thread) -> _ThreadState:
        state = self._states.get(thread.thread_id)
        if state is None:
            state = _ThreadState()
            self._states[thread.thread_id] = state
            self.roots[thread.name] = state.root
        return state

    def _method_entry(self, env, thread, method) -> None:
        env.charge(EVENT_WORK, thread)
        state = self._state(thread)
        if len(state.stack) >= self.max_depth:
            folded = state.stack[-1]
            state.stack.append(folded)  # depth-capped: fold
            if self._tracer.enabled:
                self._tracer.begin(folded.method_name, "method",
                                   thread.thread_id,
                                   thread.cycles_total)
            return
        node = state.stack[-1].child(method.qualified_name,
                                     method.is_native)
        node.calls += 1
        node._entry_stack.append(env.pcl.get_timestamp(thread))
        state.stack.append(node)
        if self._tracer.enabled:
            self._tracer.begin(node.method_name, "method",
                               thread.thread_id, thread.cycles_total)

    def _method_exit(self, env, thread, method, by_exception) -> None:
        env.charge(EVENT_WORK, thread)
        state = self._state(thread)
        if len(state.stack) <= 1:
            return  # unmatched exit (agent attached mid-frame)
        node = state.stack.pop()
        if node._entry_stack:
            entered = node._entry_stack.pop()
            node.inclusive_cycles += \
                env.pcl.get_timestamp(thread) - entered
        if self._tracer.enabled:
            self._tracer.end(node.method_name, "method",
                             thread.thread_id, thread.cycles_total)

    def _thread_end(self, env, thread) -> None:
        env.charge(EVENT_WORK, thread)

    # -- analysis (host side, after the run) ------------------------------------

    def mixed_chains(self, min_calls: int = 1
                     ) -> List[Tuple[Tuple[str, ...], int, int]]:
        """All chains that cross the Java/native boundary at least once:
        ``(chain, calls, inclusive_cycles)``, most expensive first."""
        result = []
        for root in self.roots.values():
            for chain, node in root.walk():
                if node.is_native and node.calls >= min_calls and \
                        len(chain) > 2:
                    result.append(
                        (chain[1:], node.calls, node.inclusive_cycles))
        result.sort(key=lambda item: -item[2])
        return result

    def deepest_chain(self) -> Optional[Tuple[str, ...]]:
        deepest = None
        for root in self.roots.values():
            for chain, _ in root.walk():
                if deepest is None or len(chain) > len(deepest):
                    deepest = chain
        return deepest[1:] if deepest else None

    def report(self) -> Dict:
        chains = self.mixed_chains()
        return {
            "agent": self.name,
            "threads": len(self.roots),
            "mixed_native_chains": len(chains),
            "hottest_mixed_chains": [
                {"chain": list(chain), "calls": calls,
                 "inclusive_cycles": cycles}
                for chain, calls, cycles in chains[:10]
            ],
        }
