"""Offline (static) instrumentation of class files and archives.

This is the route the paper chose: instrument everything — application
classes *and* the runtime library ("we also applied our instrumentation
tool to the classes of the JDK, including the core classes within
``rt.jar``") — before the profiled run, then load the instrumented
classes via the bootclasspath-prepend option.  Static instrumentation
costs **zero simulated cycles**: it happens before the measured run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.classfile.archive import ClassArchive
from repro.classfile.serializer import dump_class, load_class
from repro.instrument.wrapper_gen import (
    InstrumentationConfig,
    instrument_classfile,
)


@dataclass
class InstrumentationStats:
    """What an instrumentation pass did."""

    classes_scanned: int = 0
    classes_instrumented: int = 0
    methods_wrapped: int = 0


class StaticInstrumenter:
    """Processes serialized classes/archives, like the paper's ASM tool."""

    def __init__(self, config: Optional[InstrumentationConfig] = None):
        self.config = config or InstrumentationConfig()
        self.stats = InstrumentationStats()

    def instrument_class_bytes(self, data: bytes) -> bytes:
        """Transform one serialized class; returns (possibly identical)
        bytes."""
        cf = load_class(data)
        self.stats.classes_scanned += 1
        wrapped = instrument_classfile(cf, self.config)
        if wrapped == 0:
            return data
        self.stats.classes_instrumented += 1
        self.stats.methods_wrapped += wrapped
        return dump_class(cf)

    def instrument_archive(self, archive: ClassArchive) -> ClassArchive:
        """Transform a whole archive; the input is left untouched."""
        out = ClassArchive()
        for name in archive.names():
            out.put_bytes(name,
                          self.instrument_class_bytes(
                              archive.get_bytes(name)))
        return out

    def instrument_archives(self,
                            archives: List[ClassArchive]
                            ) -> List[ClassArchive]:
        """Transform several archives (boot + classpath) in order."""
        return [self.instrument_archive(a) for a in archives]
