"""Offline (static) instrumentation of class files and archives.

This is the route the paper chose: instrument everything — application
classes *and* the runtime library ("we also applied our instrumentation
tool to the classes of the JDK, including the core classes within
``rt.jar``") — before the profiled run, then load the instrumented
classes via the bootclasspath-prepend option.  Static instrumentation
costs **zero simulated cycles**: it happens before the measured run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.classfile.archive import ClassArchive
from repro.classfile.serializer import dump_class, load_class
from repro.instrument.wrapper_gen import (
    InstrumentationConfig,
    instrument_classfile,
)


@dataclass
class InstrumentationStats:
    """What an instrumentation pass did."""

    classes_scanned: int = 0
    classes_instrumented: int = 0
    methods_wrapped: int = 0


class StaticInstrumenter:
    """Processes serialized classes/archives, like the paper's ASM tool."""

    def __init__(self, config: Optional[InstrumentationConfig] = None):
        self.config = config or InstrumentationConfig()
        self.stats = InstrumentationStats()

    def instrument_class_bytes(self, data: bytes) -> bytes:
        """Transform one serialized class; returns (possibly identical)
        bytes."""
        cf = load_class(data)
        self.stats.classes_scanned += 1
        wrapped = instrument_classfile(cf, self.config)
        if wrapped == 0:
            return data
        self.stats.classes_instrumented += 1
        self.stats.methods_wrapped += wrapped
        return dump_class(cf)

    def instrument_archive(self, archive: ClassArchive) -> ClassArchive:
        """Transform a whole archive; the input is left untouched."""
        out = ClassArchive()
        for name in archive.names():
            out.put_bytes(name,
                          self.instrument_class_bytes(
                              archive.get_bytes(name)))
        return out

    def instrument_archives(self,
                            archives: List[ClassArchive]
                            ) -> List[ClassArchive]:
        """Transform several archives (boot + classpath) in order."""
        return [self.instrument_archive(a) for a in archives]


# -- memoized whole-set instrumentation ---------------------------------------
#
# Instrumentation is pure: (archive bytes, config) fully determine the
# output.  The harness instruments the same runtime + workload archives
# for every profiled run (and for every repetition when runs > 1), so
# repeating the work only burns host time.  Entries pin the input
# archives, which keeps their ids stable for the key's lifetime.

_ARCHIVE_CACHE: Dict[tuple, Tuple[List[ClassArchive],
                                  InstrumentationStats,
                                  List[ClassArchive]]] = {}
_ARCHIVE_CACHE_MAX = 64


def _config_key(config) -> tuple:
    return (config.prefix, config.runtime_class, config.begin_method,
            config.end_method, tuple(config.excluded_classes))


def instrument_archives_cached(
        archives: List[ClassArchive],
        config: Optional[InstrumentationConfig] = None,
) -> Tuple[List[ClassArchive], InstrumentationStats]:
    """Instrument ``archives`` under ``config``, memoized.

    Returns ``(instrumented_archives, stats)``.  Results are shared:
    callers must treat the returned archives as read-only (class
    loading already does).
    """
    config = config or InstrumentationConfig()
    key = (tuple(id(a) for a in archives), _config_key(config))
    hit = _ARCHIVE_CACHE.get(key)
    if hit is not None and all(a is b for a, b in zip(hit[2], archives)):
        return list(hit[0]), hit[1]
    instrumenter = StaticInstrumenter(config)
    result = instrumenter.instrument_archives(archives)
    if len(_ARCHIVE_CACHE) >= _ARCHIVE_CACHE_MAX:
        _ARCHIVE_CACHE.clear()
    _ARCHIVE_CACHE[key] = (result, instrumenter.stats, list(archives))
    return list(result), instrumenter.stats
