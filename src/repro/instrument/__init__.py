"""Bytecode instrumentation: the paper's Section IV transformation.

For every ``native`` method, the original is renamed with the agreed
prefix (still ``native``) and a synthesized Java wrapper with the
original name/signature brackets the call with ``J2N_Begin()`` /
``J2N_End()`` in a try/finally (Figure 2 of the paper).

Two drivers exist, mirroring the paper's Section IV discussion:

* :class:`~repro.instrument.static_instr.StaticInstrumenter` — offline,
  over serialized class files and archives (the ASM-based tool applied
  to application classes and ``rt.jar``);
* :class:`~repro.instrument.dynamic_instr.DynamicInstrumenter` — at
  class-load time through the JVMTI ``ClassFileLoadHook`` (costs
  simulated cycles at runtime, the overhead the paper avoided).
"""

from repro.instrument.wrapper_gen import (
    InstrumentationConfig,
    instrument_classfile,
)
from repro.instrument.static_instr import StaticInstrumenter
from repro.instrument.dynamic_instr import DynamicInstrumenter

__all__ = [
    "InstrumentationConfig",
    "instrument_classfile",
    "StaticInstrumenter",
    "DynamicInstrumenter",
]
