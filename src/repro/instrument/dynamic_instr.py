"""Dynamic instrumentation via the JVMTI ``ClassFileLoadHook``.

The alternative the paper rejected for its measured runs: the agent
rewrites class bytes as classes are loaded, which (a) charges simulated
cycles *during* the profiled run and (b) in reality forces the rewriter
to run in native code or a helper process.  It is implemented here to
quantify that trade-off (ablation E5 in DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

from repro.classfile.serializer import dump_class, load_class
from repro.instrument.static_instr import InstrumentationStats
from repro.instrument.wrapper_gen import (
    InstrumentationConfig,
    instrument_classfile,
)

#: Simulated cycles to scan one loaded class for native methods.
SCAN_COST_PER_CLASS = 2_500
#: Simulated cycles to rewrite one native method (parse, synthesize
#: wrapper, re-serialize) with a native-code rewriter.
REWRITE_COST_PER_METHOD = 18_000


class DynamicInstrumenter:
    """A ``ClassFileLoadHook`` callback with cost accounting.

    Use as ``callbacks[CLASS_FILE_LOAD_HOOK] = instrumenter.hook``.
    """

    def __init__(self, config: Optional[InstrumentationConfig] = None):
        self.config = config or InstrumentationConfig()
        self.stats = InstrumentationStats()

    def hook(self, env, name: str, data: bytes) -> Optional[bytes]:
        """JVMTI callback: return transformed bytes or ``None``."""
        env.charge(SCAN_COST_PER_CLASS)
        self.stats.classes_scanned += 1
        if self.config.is_excluded(name):
            return None
        cf = load_class(data)
        if not cf.has_native_methods():
            return None
        wrapped = instrument_classfile(cf, self.config)
        if wrapped == 0:
            return None
        env.charge(REWRITE_COST_PER_METHOD * wrapped)
        self.stats.classes_instrumented += 1
        self.stats.methods_wrapped += wrapped
        return dump_class(cf)
