"""Figure-2 wrapper synthesis.

Transforms one :class:`~repro.classfile.classfile.ClassFile` in place:
each ``native`` method ``foo`` becomes::

    int foo(int a) {                 // synthesized bytecode wrapper
        IPA.J2N_Begin();
        try {
            return _ipa_foo(a);      // renamed native method
        } finally {
            IPA.J2N_End();
        }
    }
    native int _ipa_foo(int a);

The renamed method keeps its flags (still ``native``); the JVM links it
to the *unchanged* library symbol through the JVMTI prefix-retry.  The
wrapper's ``finally`` is an any-type exception-table row so ``J2N_End``
also runs when the native method throws — exactly the paper's concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.bytecode.instructions import ExceptionEntry, Instruction
from repro.bytecode.opcodes import Op
from repro.classfile.classfile import ClassFile
from repro.classfile.constant_pool import CpMethodRef
from repro.classfile.members import (
    ACC_NATIVE,
    MethodInfo,
    parse_descriptor,
)
from repro.errors import InstrumentationError

#: Default prefix — "well-chosen" per the paper: must not occur at the
#: start of any real method name.
DEFAULT_PREFIX = "_$$ipa$$_"

#: Default runtime class exposing the transition routines as static
#: native methods (the paper's special class excluded from
#: instrumentation).
DEFAULT_RUNTIME_CLASS = "repro.agent.IPARuntime"


@dataclass
class InstrumentationConfig:
    """Knobs of the wrapper transformation."""

    prefix: str = DEFAULT_PREFIX
    runtime_class: str = DEFAULT_RUNTIME_CLASS
    begin_method: str = "J2N_Begin"
    end_method: str = "J2N_End"
    #: Classes never instrumented (the runtime class itself, plus any
    #: caller-specified exclusions).
    excluded_classes: Tuple[str, ...] = ()

    def is_excluded(self, class_name: str) -> bool:
        return (class_name == self.runtime_class
                or class_name in self.excluded_classes)


def _load_op_for(type_desc: str) -> Op:
    return Op.ALOAD if type_desc[0] in "L[" else Op.ILOAD


def _return_op_for(return_desc: str) -> Op:
    if return_desc == "V":
        return Op.RETURN
    return Op.ARETURN if return_desc[0] in "L[" else Op.IRETURN


def make_wrapper(cf: ClassFile, native: MethodInfo,
                 config: InstrumentationConfig) -> MethodInfo:
    """Build the Figure-2 wrapper for ``native`` (already renamed to
    ``prefix + name`` by the caller)."""
    pool = cf.constant_pool
    begin_ref = pool.add(CpMethodRef(config.runtime_class,
                                     config.begin_method, "()V"))
    end_ref = pool.add(CpMethodRef(config.runtime_class,
                                   config.end_method, "()V"))
    original_name = native.name[len(config.prefix):]
    target_ref = pool.add(CpMethodRef(cf.name, native.name,
                                      native.descriptor))
    params, ret = parse_descriptor(native.descriptor)

    code: List[Instruction] = [
        Instruction(Op.INVOKESTATIC, begin_ref)]
    slot = 0
    if not native.is_static:
        code.append(Instruction(Op.ALOAD, 0))
        slot = 1
    for param in params:
        code.append(Instruction(_load_op_for(param), slot))
        slot += 1
    try_start = 1  # the loads and the invoke are protected
    invoke_op = Op.INVOKESTATIC if native.is_static else Op.INVOKESPECIAL
    code.append(Instruction(invoke_op, target_ref))
    try_end = len(code)  # exclusive: up to (not including) J2N_End
    code.append(Instruction(Op.INVOKESTATIC, end_ref))
    code.append(Instruction(_return_op_for(ret)))
    handler = len(code)
    code.append(Instruction(Op.INVOKESTATIC, end_ref))
    code.append(Instruction(Op.ATHROW))

    wrapper_flags = native.flags & ~ACC_NATIVE
    return MethodInfo(
        original_name,
        native.descriptor,
        wrapper_flags,
        max_locals=slot,
        code=code,
        exception_table=[
            ExceptionEntry(try_start, try_end, handler, None)],
    )


def instrument_classfile(cf: ClassFile,
                         config: InstrumentationConfig) -> int:
    """Apply the transformation in place; returns the number of native
    methods wrapped (0 when the class has none or is excluded)."""
    if config.is_excluded(cf.name):
        return 0
    natives = cf.native_methods()
    if not natives:
        return 0
    wrapped = 0
    for method in natives:
        if method.name.startswith(config.prefix):
            raise InstrumentationError(
                f"{cf.name}.{method.name} already carries the prefix "
                f"{config.prefix!r} — double instrumentation?")
        cf.remove_method(method)
        renamed = MethodInfo(
            config.prefix + method.name,
            method.descriptor,
            method.flags,
            max_locals=method.max_locals,
            code=None,
        )
        cf.add_method(renamed)
        cf.add_method(make_wrapper(cf, renamed, config))
        wrapped += 1
    return wrapped
