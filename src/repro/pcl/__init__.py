"""PCL — the simulated Performance Counter Library."""

from repro.pcl.counters import PCL

__all__ = ["PCL"]
