"""Per-thread cycle counters (the paper's PCL dependency).

The real PCL virtualizes the CPU's timestamp counter per thread (on
Linux of that era this needed a kernel patch).  Here the virtualization
is exact by construction: every simulated thread owns its cycle counter
and only accumulates cycles while it runs.  Reading the counter is not
free — ``rdtsc`` plus the per-thread virtualization costs
``cost_model.pcl_read`` cycles, charged to the reading thread — which is
precisely the measurement perturbation the paper's agents try to
minimise (SPA reads only on transitions; IPA compensates wrapper time).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.jvm.costmodel import ChargeTag


class PCL:
    """Cycle-counter access for one VM."""

    def __init__(self, vm):
        self._vm = vm
        self.reads = 0

    def get_timestamp(self, thread=None,
                      tag: ChargeTag = ChargeTag.AGENT) -> int:
        """Read the per-thread cycle counter.

        ``thread=None`` reads the current thread (the common case — the
        paper's IPA avoids materialising a thread reference).  The read
        cost is charged *before* sampling, so the returned value
        includes it, as a real back-to-back rdtsc pair would observe.
        """
        if thread is None:
            thread = self._vm.threads.current
            if thread is None:
                raise ReproError("PCL read with no current thread")
        thread.charge(self._vm.cost_model.pcl_read, tag)
        self.reads += 1
        return thread.cycles_total

    def peek(self, thread) -> int:
        """Zero-cost counter read for host-side assertions (not part of
        the simulated API)."""
        return thread.cycles_total
