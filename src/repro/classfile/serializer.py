"""Binary serialization of class files.

The format (``.rjc`` — "repro java class") plays the role of ``.class``
files: the static instrumenter reads serialized classes, transforms
them, and writes them back, exactly as the paper's ASM tool did.

Layout (big-endian):

* magic ``RJCF`` + u2 version
* class name (utf), super name (utf, empty string for none), u2 flags
* constant pool: u2 count, then tagged entries
* fields: u2 count, then (utf name, u2 flags, tagged default)
* methods: u2 count, then (utf name, utf descriptor, u2 flags,
  u2 max_locals, u1 has_code, [code], [exception table])

Code is stored as u4 instruction count followed by one ``u1`` opcode and
an operand encoded per the opcode's operand kind.  Branch operands must
be *resolved* (integer instruction indices) before serialization.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.bytecode.instructions import ExceptionEntry, Instruction
from repro.bytecode.opcodes import ArrayKind, Op, OperandKind, SPECS
from repro.classfile.classfile import ClassFile
from repro.classfile.constant_pool import (
    CpClass,
    CpFieldRef,
    CpFloat,
    CpInt,
    CpMethodRef,
    CpString,
)
from repro.classfile.members import FieldInfo, MethodInfo
from repro.errors import ClassFileError

MAGIC = b"RJCF"
VERSION = 1

_CP_TAGS = {CpInt: 1, CpFloat: 2, CpString: 3, CpClass: 4, CpFieldRef: 5,
            CpMethodRef: 6}


class _Writer:
    def __init__(self):
        self._chunks = []

    def bytes_(self, b: bytes):
        self._chunks.append(b)

    def u1(self, v: int):
        self._chunks.append(struct.pack(">B", v))

    def u2(self, v: int):
        self._chunks.append(struct.pack(">H", v))

    def u4(self, v: int):
        self._chunks.append(struct.pack(">I", v))

    def s4(self, v: int):
        self._chunks.append(struct.pack(">i", v))

    def s8(self, v: int):
        self._chunks.append(struct.pack(">q", v))

    def f8(self, v: float):
        self._chunks.append(struct.pack(">d", v))

    def utf(self, s: str):
        data = s.encode("utf-8")
        if len(data) > 0xFFFF:
            raise ClassFileError("utf string too long to serialize")
        self.u2(len(data))
        self.bytes_(data)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def bytes_(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise ClassFileError("truncated class file")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u1(self) -> int:
        return struct.unpack(">B", self.bytes_(1))[0]

    def u2(self) -> int:
        return struct.unpack(">H", self.bytes_(2))[0]

    def u4(self) -> int:
        return struct.unpack(">I", self.bytes_(4))[0]

    def s4(self) -> int:
        return struct.unpack(">i", self.bytes_(4))[0]

    def s8(self) -> int:
        return struct.unpack(">q", self.bytes_(8))[0]

    def f8(self) -> float:
        return struct.unpack(">d", self.bytes_(8))[0]

    def utf(self) -> str:
        n = self.u2()
        return self.bytes_(n).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)


def _dump_value(w: _Writer, value) -> None:
    if value is None:
        w.u1(0)
    elif isinstance(value, bool):
        raise ClassFileError("bool is not a serializable default value")
    elif isinstance(value, int):
        w.u1(1)
        w.s8(value)
    elif isinstance(value, float):
        w.u1(2)
        w.f8(value)
    elif isinstance(value, str):
        w.u1(3)
        w.utf(value)
    else:
        raise ClassFileError(
            f"unserializable default value {value!r}")


def _load_value(r: _Reader):
    tag = r.u1()
    if tag == 0:
        return None
    if tag == 1:
        return r.s8()
    if tag == 2:
        return r.f8()
    if tag == 3:
        return r.utf()
    raise ClassFileError(f"bad value tag {tag}")


def _dump_cp(w: _Writer, cf: ClassFile) -> None:
    pool = cf.constant_pool
    w.u2(len(pool))
    for _, entry in pool.entries():
        tag = _CP_TAGS[type(entry)]
        w.u1(tag)
        if isinstance(entry, CpInt):
            w.s8(entry.value)
        elif isinstance(entry, CpFloat):
            w.f8(entry.value)
        elif isinstance(entry, CpString):
            w.utf(entry.value)
        elif isinstance(entry, CpClass):
            w.utf(entry.name)
        elif isinstance(entry, CpFieldRef):
            w.utf(entry.class_name)
            w.utf(entry.field_name)
        else:  # CpMethodRef
            w.utf(entry.class_name)
            w.utf(entry.method_name)
            w.utf(entry.descriptor)


def _load_cp(r: _Reader, cf: ClassFile) -> None:
    count = r.u2()
    for _ in range(count):
        tag = r.u1()
        if tag == 1:
            entry = CpInt(r.s8())
        elif tag == 2:
            entry = CpFloat(r.f8())
        elif tag == 3:
            entry = CpString(r.utf())
        elif tag == 4:
            entry = CpClass(r.utf())
        elif tag == 5:
            entry = CpFieldRef(r.utf(), r.utf())
        elif tag == 6:
            entry = CpMethodRef(r.utf(), r.utf(), r.utf())
        else:
            raise ClassFileError(f"bad constant-pool tag {tag}")
        cf.constant_pool.add(entry)


def _dump_instruction(w: _Writer, ins: Instruction) -> None:
    w.u1(int(ins.op))
    kind = SPECS[ins.op].operand
    if kind is OperandKind.NONE:
        return
    if kind is OperandKind.IMM:
        w.s8(ins.operand)
    elif kind in (OperandKind.LOCAL, OperandKind.CP):
        w.u2(ins.operand)
    elif kind is OperandKind.LABEL:
        if not isinstance(ins.operand, int):
            raise ClassFileError(
                f"cannot serialize unresolved branch target "
                f"{ins.operand!r}; assemble the method first")
        w.s4(ins.operand)
    elif kind is OperandKind.ARRAY_KIND:
        w.u1(int(ins.operand))
    elif kind is OperandKind.IINC:
        idx, delta = ins.operand
        w.u2(idx)
        w.s4(delta)
    else:  # pragma: no cover - exhaustive
        raise ClassFileError(f"unhandled operand kind {kind}")


def _load_instruction(r: _Reader) -> Instruction:
    raw = r.u1()
    try:
        op = Op(raw)
    except ValueError:
        raise ClassFileError(f"unknown opcode byte 0x{raw:02x}")
    kind = SPECS[op].operand
    if kind is OperandKind.NONE:
        return Instruction(op)
    if kind is OperandKind.IMM:
        return Instruction(op, r.s8())
    if kind in (OperandKind.LOCAL, OperandKind.CP):
        return Instruction(op, r.u2())
    if kind is OperandKind.LABEL:
        return Instruction(op, r.s4())
    if kind is OperandKind.ARRAY_KIND:
        return Instruction(op, ArrayKind(r.u1()))
    if kind is OperandKind.IINC:
        idx = r.u2()
        delta = r.s4()
        return Instruction(op, (idx, delta))
    raise ClassFileError(f"unhandled operand kind {kind}")  # pragma: no cover


def _dump_method(w: _Writer, m: MethodInfo) -> None:
    w.utf(m.name)
    w.utf(m.descriptor)
    w.u2(m.flags)
    w.u2(m.max_locals)
    if m.code is None:
        w.u1(0)
        return
    w.u1(1)
    w.u4(len(m.code))
    for ins in m.code:
        _dump_instruction(w, ins)
    w.u2(len(m.exception_table))
    for entry in m.exception_table:
        for value in (entry.start, entry.end, entry.handler):
            if not isinstance(value, int):
                raise ClassFileError(
                    "cannot serialize unresolved exception-table labels")
            w.u4(value)
        w.utf(entry.catch_type or "")


def _load_method(r: _Reader) -> MethodInfo:
    name = r.utf()
    descriptor = r.utf()
    flags = r.u2()
    max_locals = r.u2()
    has_code = r.u1()
    if not has_code:
        return MethodInfo(name, descriptor, flags, max_locals, code=None)
    count = r.u4()
    code = [_load_instruction(r) for _ in range(count)]
    table = []
    for _ in range(r.u2()):
        start = r.u4()
        end = r.u4()
        handler = r.u4()
        catch = r.utf()
        table.append(ExceptionEntry(start, end, handler, catch or None))
    return MethodInfo(name, descriptor, flags, max_locals, code=code,
                      exception_table=table)


def dump_class(cf: ClassFile) -> bytes:
    """Serialize ``cf`` to bytes."""
    w = _Writer()
    w.bytes_(MAGIC)
    w.u2(VERSION)
    w.utf(cf.name)
    w.utf(cf.super_name or "")
    w.u2(cf.flags)
    _dump_cp(w, cf)
    w.u2(len(cf.fields))
    for f in cf.fields:
        w.utf(f.name)
        w.u2(f.flags)
        _dump_value(w, f.default)
    w.u2(len(cf.methods))
    for m in cf.methods:
        _dump_method(w, m)
    return w.getvalue()


def load_class(data: bytes) -> ClassFile:
    """Deserialize a class file from bytes."""
    r = _Reader(data)
    if r.bytes_(4) != MAGIC:
        raise ClassFileError("bad magic: not a repro class file")
    version = r.u2()
    if version != VERSION:
        raise ClassFileError(
            f"unsupported class-file version {version} (expected {VERSION})")
    name = r.utf()
    super_name: Optional[str] = r.utf() or None
    flags = r.u2()
    cf = ClassFile(name, super_name, flags)
    _load_cp(r, cf)
    for _ in range(r.u2()):
        fname = r.utf()
        fflags = r.u2()
        default = _load_value(r)
        cf.add_field(FieldInfo(fname, fflags, default))
    for _ in range(r.u2()):
        cf.add_method(_load_method(r))
    if not r.exhausted:
        raise ClassFileError("trailing bytes after class file")
    return cf
