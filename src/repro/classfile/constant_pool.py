"""Constant pool: deduplicated symbolic constants shared by a class.

Entry kinds mirror the subset of the real JVM constant pool the ISA
needs: numeric constants, string literals, class references, and
field/method symbolic references.  Entries are immutable and hashable so
the pool can deduplicate on insertion; indices are stable for the
lifetime of the pool (index 0 is reserved/invalid, as in the JVM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.errors import ConstantPoolError


@dataclass(frozen=True)
class CpInt:
    """Integer constant."""

    value: int


@dataclass(frozen=True)
class CpFloat:
    """Floating-point constant."""

    value: float


@dataclass(frozen=True)
class CpString:
    """String literal constant (interned by the runtime on LDC)."""

    value: str


@dataclass(frozen=True)
class CpClass:
    """Symbolic reference to a class by fully-qualified name."""

    name: str


@dataclass(frozen=True)
class CpFieldRef:
    """Symbolic reference to a field: declaring class + name."""

    class_name: str
    field_name: str


@dataclass(frozen=True)
class CpMethodRef:
    """Symbolic reference to a method: class + name + descriptor."""

    class_name: str
    method_name: str
    descriptor: str


CpEntry = Union[CpInt, CpFloat, CpString, CpClass, CpFieldRef, CpMethodRef]

_ENTRY_TYPES = (CpInt, CpFloat, CpString, CpClass, CpFieldRef, CpMethodRef)


class ConstantPool:
    """A growable, deduplicating pool of :data:`CpEntry` values.

    Index 0 is reserved (never a valid entry), matching JVM convention.
    """

    def __init__(self):
        self._entries: List[CpEntry] = []
        self._index: Dict[CpEntry, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: CpEntry) -> int:
        """Insert ``entry`` (or find its existing copy); return its index."""
        if not isinstance(entry, _ENTRY_TYPES):
            raise ConstantPoolError(
                f"not a constant-pool entry: {entry!r}")
        existing = self._index.get(entry)
        if existing is not None:
            return existing
        self._entries.append(entry)
        index = len(self._entries)  # 1-based
        self._index[entry] = index
        return index

    def get(self, index: int) -> CpEntry:
        """Return the entry at 1-based ``index``."""
        if not isinstance(index, int) or index < 1 or \
                index > len(self._entries):
            raise ConstantPoolError(
                f"constant-pool index {index!r} out of range "
                f"(1..{len(self._entries)})")
        return self._entries[index - 1]

    def get_typed(self, index: int, kind) -> CpEntry:
        """Return the entry at ``index``, checking it is a ``kind``."""
        entry = self.get(index)
        if not isinstance(entry, kind):
            raise ConstantPoolError(
                f"constant-pool entry {index} is {type(entry).__name__}, "
                f"expected {kind.__name__}")
        return entry

    def entries(self):
        """Iterate ``(index, entry)`` pairs in index order."""
        return enumerate(self._entries, start=1)

    def copy(self) -> "ConstantPool":
        """Shallow copy (entries are immutable, so this is a safe clone)."""
        clone = ConstantPool()
        clone._entries = list(self._entries)
        clone._index = dict(self._index)
        return clone
