"""Class archives: the simulator's equivalent of ``.jar`` files.

An archive maps class names to serialized class bytes.  The paper's
instrumentation tool "processes individual class files or archives of
class files" and was applied to ``rt.jar``; our static instrumenter does
the same over :class:`ClassArchive`.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, Iterator, Union

from repro.classfile.classfile import ClassFile
from repro.classfile.serializer import dump_class, load_class
from repro.errors import ClassFileError

ARCHIVE_MAGIC = b"RJAR"
ARCHIVE_VERSION = 1


class ClassArchive:
    """An ordered collection of serialized classes, keyed by class name."""

    def __init__(self):
        self._entries: Dict[str, bytes] = {}

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def names(self):
        """Class names in insertion order."""
        return list(self._entries)

    # -- content ------------------------------------------------------------

    def put_bytes(self, name: str, data: bytes) -> None:
        """Store serialized class bytes under ``name``."""
        self._entries[name] = data

    def get_bytes(self, name: str) -> bytes:
        """Raw serialized bytes for class ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise ClassFileError(f"archive has no class {name!r}")

    def put_class(self, cf: ClassFile) -> None:
        """Serialize and store ``cf`` under its own name."""
        self.put_bytes(cf.name, dump_class(cf))

    def get_class(self, name: str) -> ClassFile:
        """Deserialize and return class ``name``."""
        cf = load_class(self.get_bytes(name))
        if cf.name != name:
            raise ClassFileError(
                f"archive entry {name!r} contains class {cf.name!r}")
        return cf

    def classes(self) -> Iterator[ClassFile]:
        """Iterate deserialized classes in insertion order."""
        for name in self._entries:
            yield self.get_class(name)

    # -- persistence ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the whole archive."""
        chunks = [ARCHIVE_MAGIC, struct.pack(">H", ARCHIVE_VERSION),
                  struct.pack(">I", len(self._entries))]
        for name, data in self._entries.items():
            encoded = name.encode("utf-8")
            chunks.append(struct.pack(">H", len(encoded)))
            chunks.append(encoded)
            chunks.append(struct.pack(">I", len(data)))
            chunks.append(data)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ClassArchive":
        """Deserialize an archive."""
        if blob[:4] != ARCHIVE_MAGIC:
            raise ClassFileError("bad magic: not a repro class archive")
        version = struct.unpack(">H", blob[4:6])[0]
        if version != ARCHIVE_VERSION:
            raise ClassFileError(
                f"unsupported archive version {version}")
        count = struct.unpack(">I", blob[6:10])[0]
        archive = cls()
        pos = 10
        for _ in range(count):
            if pos + 2 > len(blob):
                raise ClassFileError("truncated archive")
            name_len = struct.unpack(">H", blob[pos:pos + 2])[0]
            pos += 2
            name = blob[pos:pos + name_len].decode("utf-8")
            pos += name_len
            if pos + 4 > len(blob):
                raise ClassFileError("truncated archive")
            data_len = struct.unpack(">I", blob[pos:pos + 4])[0]
            pos += 4
            data = blob[pos:pos + data_len]
            if len(data) != data_len:
                raise ClassFileError("truncated archive entry")
            pos += data_len
            archive.put_bytes(name, data)
        if pos != len(blob):
            raise ClassFileError("trailing bytes after archive")
        return archive

    def save(self, path: Union[str, Path]) -> None:
        """Write the archive to ``path``."""
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ClassArchive":
        """Read an archive from ``path``."""
        return cls.from_bytes(Path(path).read_bytes())
