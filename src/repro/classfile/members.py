"""Field and method members, access flags, and descriptor parsing.

Descriptors follow JVM syntax restricted to the simulator's type system:

* ``I`` — numeric (int family; one slot)
* ``F`` — numeric (float family; one slot)
* ``Lname;`` — reference to class ``name`` (dots or slashes accepted)
* ``[<type>`` — array reference
* ``V`` — void (return position only)

Because every value is one slot, the argument count equals the number of
parsed parameter types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bytecode.instructions import ExceptionEntry, Instruction
from repro.errors import ClassFileError

ACC_PUBLIC = 0x0001
ACC_PRIVATE = 0x0002
ACC_STATIC = 0x0008
ACC_FINAL = 0x0010
ACC_SYNCHRONIZED = 0x0020
ACC_NATIVE = 0x0100

_FLAG_NAMES = [
    (ACC_PUBLIC, "public"),
    (ACC_PRIVATE, "private"),
    (ACC_STATIC, "static"),
    (ACC_FINAL, "final"),
    (ACC_SYNCHRONIZED, "synchronized"),
    (ACC_NATIVE, "native"),
]


def flags_to_string(flags: int) -> str:
    """Human-readable rendering of an access-flag mask."""
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return " ".join(names) if names else "<none>"


def parse_descriptor(descriptor: str) -> Tuple[List[str], str]:
    """Parse a method descriptor into ``(param_types, return_type)``.

    >>> parse_descriptor("(I[BLjava.lang.String;)V")
    (['I', '[B', 'Ljava.lang.String;'], 'V')
    """
    if not descriptor.startswith("("):
        raise ClassFileError(f"bad descriptor {descriptor!r}: missing '('")
    close = descriptor.find(")")
    if close < 0:
        raise ClassFileError(f"bad descriptor {descriptor!r}: missing ')'")
    params_src = descriptor[1:close]
    ret = descriptor[close + 1:]
    if not ret:
        raise ClassFileError(
            f"bad descriptor {descriptor!r}: missing return type")

    params: List[str] = []
    i = 0
    while i < len(params_src):
        t, i = _parse_one_type(params_src, i, descriptor)
        params.append(t)
    _validate_return(ret, descriptor)
    return params, ret


def _parse_one_type(src: str, i: int, descriptor: str) -> Tuple[str, int]:
    start = i
    while i < len(src) and src[i] == "[":
        i += 1
    if i >= len(src):
        raise ClassFileError(f"bad descriptor {descriptor!r}: dangling '['")
    c = src[i]
    if c in "IFBCZSJD":
        # all primitives are one slot; I/F are canonical, the rest are
        # accepted for JVM-flavoured descriptors (byte/char/boolean/...)
        return src[start:i + 1], i + 1
    if c == "L":
        semi = src.find(";", i)
        if semi < 0:
            raise ClassFileError(
                f"bad descriptor {descriptor!r}: unterminated class type")
        return src[start:semi + 1], semi + 1
    raise ClassFileError(
        f"bad descriptor {descriptor!r}: unknown type char {c!r}")


def _validate_return(ret: str, descriptor: str) -> None:
    if ret == "V":
        return
    t, end = _parse_one_type(ret, 0, descriptor)
    if end != len(ret):
        raise ClassFileError(
            f"bad descriptor {descriptor!r}: trailing junk after return "
            f"type")


def arg_slot_count(descriptor: str) -> int:
    """Number of argument slots a call with this descriptor pops
    (excluding any receiver)."""
    params, _ = parse_descriptor(descriptor)
    return len(params)


def returns_value(descriptor: str) -> bool:
    """True when a call with this descriptor pushes a result."""
    _, ret = parse_descriptor(descriptor)
    return ret != "V"


@dataclass
class FieldInfo:
    """One declared field.  ``default`` initialises the slot at object
    creation (static fields at class initialisation)."""

    name: str
    flags: int = ACC_PUBLIC
    default: object = None

    @property
    def is_static(self) -> bool:
        return bool(self.flags & ACC_STATIC)


@dataclass
class MethodInfo:
    """One declared method.

    ``code`` is ``None`` exactly when the method is ``native``.
    ``max_locals`` includes the receiver slot for instance methods.
    """

    name: str
    descriptor: str
    flags: int = ACC_PUBLIC
    max_locals: int = 0
    code: Optional[List[Instruction]] = None
    exception_table: List[ExceptionEntry] = field(default_factory=list)

    def __post_init__(self):
        params, ret = parse_descriptor(self.descriptor)  # validate eagerly
        # memoized descriptor facts — the interpreter reads these on
        # every invocation, so they must not re-parse the descriptor
        self._arg_slots = len(params) + (0 if self.is_static else 1)
        self._returns_value = ret != "V"
        if self.is_native and self.code is not None:
            raise ClassFileError(
                f"native method {self.name}{self.descriptor} must not have "
                f"code")
        if not self.is_native and self.code is None:
            raise ClassFileError(
                f"non-native method {self.name}{self.descriptor} must have "
                f"code")

    @property
    def is_native(self) -> bool:
        return bool(self.flags & ACC_NATIVE)

    @property
    def is_static(self) -> bool:
        return bool(self.flags & ACC_STATIC)

    @property
    def is_synchronized(self) -> bool:
        return bool(self.flags & ACC_SYNCHRONIZED)

    @property
    def arg_slots(self) -> int:
        """Stack slots popped at an invocation (receiver included for
        instance methods; memoized at construction)."""
        return self._arg_slots

    @property
    def returns_value(self) -> bool:
        return self._returns_value

    @property
    def key(self) -> Tuple[str, str]:
        """(name, descriptor) — the method's identity within its class."""
        return (self.name, self.descriptor)

    def __repr__(self):  # pragma: no cover - debug aid
        return (f"<MethodInfo {flags_to_string(self.flags)} "
                f"{self.name}{self.descriptor}>")
