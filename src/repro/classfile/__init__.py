"""Class-file layer: the on-disk and in-memory representation of classes.

Mirrors (in simplified form) the real JVM class-file format: a constant
pool of shared symbolic entries, field and method members with access
flags, and a binary serialization with magic number and versioning so
that the static instrumenter can operate on *files and archives* exactly
as the paper's ASM-based tool operated on ``.class`` files and ``rt.jar``.
"""

from repro.classfile.constant_pool import (
    ConstantPool,
    CpInt,
    CpFloat,
    CpString,
    CpClass,
    CpFieldRef,
    CpMethodRef,
)
from repro.classfile.members import (
    ACC_PUBLIC,
    ACC_PRIVATE,
    ACC_STATIC,
    ACC_FINAL,
    ACC_NATIVE,
    ACC_SYNCHRONIZED,
    FieldInfo,
    MethodInfo,
    parse_descriptor,
)
from repro.classfile.classfile import ClassFile
from repro.classfile.serializer import dump_class, load_class
from repro.classfile.archive import ClassArchive

__all__ = [
    "ConstantPool",
    "CpInt",
    "CpFloat",
    "CpString",
    "CpClass",
    "CpFieldRef",
    "CpMethodRef",
    "ACC_PUBLIC",
    "ACC_PRIVATE",
    "ACC_STATIC",
    "ACC_FINAL",
    "ACC_NATIVE",
    "ACC_SYNCHRONIZED",
    "FieldInfo",
    "MethodInfo",
    "parse_descriptor",
    "ClassFile",
    "dump_class",
    "load_class",
    "ClassArchive",
]
