"""The :class:`ClassFile` model: one class as loaded from disk or built
by the assembler, before linking.

A class file owns its constant pool, its member tables, and nothing
else; runtime state (resolved superclass, static field values, vtables)
lives in :class:`repro.jvm.classloader.LoadedClass`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.classfile.constant_pool import ConstantPool
from repro.classfile.members import FieldInfo, MethodInfo
from repro.errors import ClassFileError

#: Root of the simulated class hierarchy.
OBJECT_CLASS = "java.lang.Object"


class ClassFile:
    """One class: name, superclass name, constant pool, fields, methods."""

    def __init__(self, name: str, super_name: Optional[str] = OBJECT_CLASS,
                 flags: int = 0):
        if not name:
            raise ClassFileError("class name must be non-empty")
        if name == OBJECT_CLASS:
            super_name = None
        elif super_name is None:
            raise ClassFileError(
                f"class {name} must have a superclass (only {OBJECT_CLASS} "
                f"may omit one)")
        self.name = name
        self.super_name = super_name
        self.flags = flags
        self.constant_pool = ConstantPool()
        self.fields: List[FieldInfo] = []
        self.methods: List[MethodInfo] = []
        self._method_index: Dict[Tuple[str, str], MethodInfo] = {}
        self._field_index: Dict[str, FieldInfo] = {}

    # -- members ----------------------------------------------------------

    def add_field(self, field: FieldInfo) -> FieldInfo:
        """Declare a field; names must be unique within the class."""
        if field.name in self._field_index:
            raise ClassFileError(
                f"duplicate field {field.name} in class {self.name}")
        self.fields.append(field)
        self._field_index[field.name] = field
        return field

    def add_method(self, method: MethodInfo) -> MethodInfo:
        """Declare a method; (name, descriptor) must be unique."""
        if method.key in self._method_index:
            raise ClassFileError(
                f"duplicate method {method.name}{method.descriptor} in "
                f"class {self.name}")
        self.methods.append(method)
        self._method_index[method.key] = method
        return method

    def remove_method(self, method: MethodInfo) -> None:
        """Remove a declared method (used by the instrumenter when it
        replaces a native method with a renamed one plus a wrapper)."""
        if self._method_index.get(method.key) is not method:
            raise ClassFileError(
                f"method {method.name}{method.descriptor} not declared in "
                f"class {self.name}")
        self.methods.remove(method)
        del self._method_index[method.key]

    def find_method(self, name: str, descriptor: str) -> Optional[MethodInfo]:
        """Look up a declared method by name + descriptor (no inheritance)."""
        return self._method_index.get((name, descriptor))

    def find_field(self, name: str) -> Optional[FieldInfo]:
        """Look up a declared field by name (no inheritance)."""
        return self._field_index.get(name)

    # -- queries used by the instrumenter ----------------------------------

    def native_methods(self) -> List[MethodInfo]:
        """All methods declared ``native`` in this class."""
        return [m for m in self.methods if m.is_native]

    def has_native_methods(self) -> bool:
        return any(m.is_native for m in self.methods)

    def __repr__(self):  # pragma: no cover - debug aid
        return (f"<ClassFile {self.name} super={self.super_name} "
                f"fields={len(self.fields)} methods={len(self.methods)}>")
