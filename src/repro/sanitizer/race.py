"""FastTrack-style happens-before race sanitizer.

The sanitizer maintains *host-side* shadow state next to the simulated
machine: a vector clock per simulated thread, a release clock per
monitor, and per-field shadow words (last write epoch + a read map) on
heap objects and class statics.  None of it charges simulated cycles —
the hooks run between the interpreter's (and the template tier's)
existing charge boundaries and never touch ``thread.charge`` — so
tables and goldens are bit-identical with the sanitizer on or off.

Happens-before edges come from three sources:

* ``MONITORENTER`` / ``MONITOREXIT``: a release copies the owner's
  vector clock into the monitor's clock and increments the owner; an
  acquire joins the monitor's clock into the acquirer.
* ``Thread.start`` / ``Thread.join``: the child starts with a copy of
  the parent's clock; a join folds the terminated thread's clock into
  the joiner.
* Scheduler core handoff (``--cores N``, N > 1): every slice boundary
  releases into / acquires from a single global *scheduler token*
  clock.  The scheduler serializes simulated threads deterministically,
  so the token edges reflect the order the machine actually enforces —
  under the preemptive model the execution is totally ordered and a
  data race cannot be *observed*; races surface under the sequential
  model (cores=1), where only the synchronization edges above exist.

Shadow state is keyed by field name per object (``JObject.shadow``,
lazily allocated) and by ``(holder class, field)`` for statics.  Array
elements are deliberately out of scope: the static lockset pass only
reasons about GETFIELD/PUTFIELD/GETSTATIC/PUTSTATIC, and keeping both
sides on the same access domain is what makes the ``--race-check``
subset invariant (dynamic ⊆ static) sound.

A shadow word is ``[write_tid, write_clk, write_stack, write_cycles,
read_map]`` where ``read_map`` maps tid → ``(clk, stack, cycles)``.
The epoch fast path — same thread, same clock as the previous access —
skips every check *and* the stack capture, so single-threaded stretches
(the entire jvm98 suite) pay one dict probe per access.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["RaceSanitizer"]


class RaceSanitizer:
    """Vector-clock data-race detector over simulated threads."""

    def __init__(self, vm):
        self.vm = vm
        #: tid -> vector clock (tid -> int); lazily registered.
        self._vcs: Dict[int, Dict[int, int]] = {}
        #: tid -> that thread's own current clock component (cached so
        #: the fast path is one dict probe, not two).
        self._clk: Dict[int, int] = {}
        #: monitor object_id -> release clock.
        self._lock_vcs: Dict[int, Dict[int, int]] = {}
        #: global scheduler-token clock (core handoff edges).
        self._token: Dict[int, int] = {}
        #: (holder class name, field) -> shadow word for statics.
        self._static_shadow: Dict[Tuple[str, str], list] = {}
        #: confirmed races, as plain picklable dicts.
        self.races: List[dict] = []
        #: (class, field) pairs already reported (one race per field).
        self._reported = set()
        #: shadow-state footprint: 4 words per tracked field.
        self.shadow_words = 0

    # -- thread bookkeeping -------------------------------------------

    def _register(self, tid: int) -> int:
        self._vcs[tid] = {tid: 1}
        self._clk[tid] = 1
        return 1

    def _bump(self, tid: int) -> None:
        clk = self._clk[tid] + 1
        self._clk[tid] = clk
        self._vcs[tid][tid] = clk

    def on_start(self, parent, child) -> None:
        """``Thread.start``: the child begins after everything the
        parent did so far."""
        ptid = parent.thread_id
        if ptid not in self._vcs:
            self._register(ptid)
        ctid = child.thread_id
        vc = dict(self._vcs[ptid])
        vc[ctid] = 1
        self._vcs[ctid] = vc
        self._clk[ctid] = 1
        self._bump(ptid)

    def on_join(self, joiner, target) -> None:
        """``Thread.join``: the joiner resumes after everything the
        joined thread ever did."""
        jtid = joiner.thread_id
        if jtid not in self._vcs:
            self._register(jtid)
        tvc = self._vcs.get(target.thread_id)
        if tvc is None:
            return
        vc = self._vcs[jtid]
        for t, c in tvc.items():
            if c > vc.get(t, 0):
                vc[t] = c

    # -- monitor edges ------------------------------------------------

    def on_acquire(self, thread, obj) -> None:
        """After the thread owns ``obj``'s monitor: join the monitor's
        release clock."""
        lvc = self._lock_vcs.get(obj.object_id)
        if lvc is None:
            return
        tid = thread.thread_id
        vc = self._vcs.get(tid)
        if vc is None:
            self._register(tid)
            vc = self._vcs[tid]
        for t, c in lvc.items():
            if c > vc.get(t, 0):
                vc[t] = c

    def on_release(self, thread, obj) -> None:
        """On the final MONITOREXIT: publish the owner's clock into the
        monitor and advance the owner's epoch."""
        tid = thread.thread_id
        vc = self._vcs.get(tid)
        if vc is None:
            self._register(tid)
            vc = self._vcs[tid]
        lvc = self._lock_vcs.setdefault(obj.object_id, {})
        for t, c in vc.items():
            if c > lvc.get(t, 0):
                lvc[t] = c
        self._bump(tid)

    # -- scheduler token edges (core handoff) -------------------------

    def token_release(self, thread) -> None:
        """End of a scheduler slice: publish into the global token."""
        tid = thread.thread_id
        vc = self._vcs.get(tid)
        if vc is None:
            self._register(tid)
            vc = self._vcs[tid]
        token = self._token
        for t, c in vc.items():
            if c > token.get(t, 0):
                token[t] = c
        self._bump(tid)

    def token_acquire(self, thread) -> None:
        """Start of a scheduler slice: join the global token."""
        tid = thread.thread_id
        vc = self._vcs.get(tid)
        if vc is None:
            self._register(tid)
            vc = self._vcs[tid]
        for t, c in self._token.items():
            if c > vc.get(t, 0):
                vc[t] = c

    # -- field accesses -----------------------------------------------

    def read_field(self, thread, obj, name: str) -> None:
        shadow = obj.shadow
        if shadow is None:
            obj.shadow = shadow = {}
            sh = None
        else:
            sh = shadow.get(name)
        self._read(thread, sh, shadow, name,
                   lambda: self._declaring_instance(obj.jclass, name),
                   "instance")

    def write_field(self, thread, obj, name: str) -> None:
        shadow = obj.shadow
        if shadow is None:
            obj.shadow = shadow = {}
            sh = None
        else:
            sh = shadow.get(name)
        self._write(thread, sh, shadow, name,
                    lambda: self._declaring_instance(obj.jclass, name),
                    "instance")

    def read_static(self, thread, holder, name: str) -> None:
        key = (holder.name, name)
        sh = self._static_shadow.get(key)
        self._read(thread, sh, self._static_shadow, key,
                   lambda: holder.name, "static")

    def write_static(self, thread, holder, name: str) -> None:
        key = (holder.name, name)
        sh = self._static_shadow.get(key)
        self._write(thread, sh, self._static_shadow, key,
                    lambda: holder.name, "static")

    # -- core detector ------------------------------------------------

    def _read(self, thread, sh: Optional[list], table, key,
              cls_of, scope: str) -> None:
        tid = thread.thread_id
        clk = self._clk.get(tid)
        if clk is None:
            clk = self._register(tid)
        if sh is None:
            table[key] = [-1, 0, None, 0,
                          {tid: (clk, self._stack(thread),
                                 thread.cycles_total)}]
            self.shadow_words += 4
            return
        read_map = sh[4]
        prev = read_map.get(tid)
        if prev is not None and prev[0] == clk:
            return  # epoch fast path: same thread, same clock
        write_tid = sh[0]
        if write_tid >= 0 and write_tid != tid and \
                sh[1] > self._vcs[tid].get(write_tid, 0):
            self._report(cls_of(), key, scope, "write", sh[0], sh[1],
                         sh[2], sh[3], "read", thread)
            # absorb: treat the racing write as seen, so one buggy
            # field does not cascade into a report per access
            self._vcs[tid][write_tid] = sh[1]
        read_map[tid] = (clk, self._stack(thread), thread.cycles_total)

    def _write(self, thread, sh: Optional[list], table, key,
               cls_of, scope: str) -> None:
        tid = thread.thread_id
        clk = self._clk.get(tid)
        if clk is None:
            clk = self._register(tid)
        if sh is None:
            table[key] = [tid, clk, self._stack(thread),
                          thread.cycles_total, {}]
            self.shadow_words += 4
            return
        if sh[0] == tid and sh[1] == clk:
            return  # epoch fast path: any interleaved foreign access
            #         would have advanced our clock via an HB edge
        vc = self._vcs[tid]
        write_tid = sh[0]
        if write_tid >= 0 and write_tid != tid and \
                sh[1] > vc.get(write_tid, 0):
            self._report(cls_of(), key, scope, "write", sh[0], sh[1],
                         sh[2], sh[3], "write", thread)
        else:
            for rtid, (rclk, rstack, rcycles) in sh[4].items():
                if rtid != tid and rclk > vc.get(rtid, 0):
                    self._report(cls_of(), key, scope, "read", rtid,
                                 rclk, rstack, rcycles, "write", thread)
                    break
        sh[0] = tid
        sh[1] = clk
        sh[2] = self._stack(thread)
        sh[3] = thread.cycles_total
        sh[4] = {}

    # -- reporting ----------------------------------------------------

    def _stack(self, thread) -> Tuple[str, ...]:
        return tuple(f"{f.method.qualified_name}@{f.pc}"
                     for f in reversed(thread.frames))

    def _declaring_instance(self, jclass, name: str) -> str:
        """Class that declares instance field ``name`` — matches the
        static pass's resolution so ``--race-check`` can intersect."""
        cls = jclass
        while cls is not None:
            if cls.cf.find_field(name) is not None:
                return cls.name
            cls = cls.super_class
        return jclass.name

    def _thread_name(self, tid: int) -> str:
        for t in self.vm.threads.all_threads:
            if t.thread_id == tid:
                return t.name
        return f"thread-{tid}"

    def _report(self, cls: str, key, scope: str, prior_op: str,
                prior_tid: int, prior_clk: int, prior_stack,
                prior_cycles: int, op: str, thread) -> None:
        field = key[1] if scope == "static" else key
        dedup = (cls, field)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        self.races.append({
            "class": cls,
            "field": field,
            "scope": scope,
            "prior": {
                "op": prior_op,
                "thread": self._thread_name(prior_tid),
                "cycles": prior_cycles,
                "stack": list(prior_stack or ()),
            },
            "current": {
                "op": op,
                "thread": thread.name,
                "cycles": thread.cycles_total,
                "stack": list(self._stack(thread)),
            },
        })
