"""Dynamic sanitizers: host-side shadow analyses that run alongside
the simulated machine without charging simulated cycles."""

from repro.sanitizer.race import RaceSanitizer

__all__ = ["RaceSanitizer"]
