"""Run configuration for the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.harness.causal import CausalSpec
from repro.jvm.machine import VMConfig
from repro.observability.sink import ObservabilityConfig


@dataclass
class AgentSpec:
    """How to create the profiling agent for a run.

    ``factory`` is called once per run (agents are stateful and
    single-use, like a freshly ``dlopen``-ed agent library); ``None``
    means an unprofiled baseline run.
    """

    label: str
    factory: Optional[Callable] = None

    @classmethod
    def none(cls) -> "AgentSpec":
        return cls("original", None)

    @classmethod
    def spa(cls) -> "AgentSpec":
        from repro.agents.spa import SPA

        return cls("spa", SPA)

    @classmethod
    def ipa(cls, **kwargs) -> "AgentSpec":
        from repro.agents.ipa import IPA

        return cls("ipa", lambda: IPA(**kwargs))

    @classmethod
    def callchain(cls, **kwargs) -> "AgentSpec":
        from repro.agents.callchain import CallChainAgent

        return cls("callchain", lambda: CallChainAgent(**kwargs))

    @classmethod
    def offcpu(cls, **kwargs) -> "AgentSpec":
        from repro.agents.offcpu import OffCpuAgent

        return cls("offcpu", lambda: OffCpuAgent(**kwargs))


@dataclass
class RunConfig:
    """One harness execution: a workload under an agent spec."""

    agent: AgentSpec = field(default_factory=AgentSpec.none)
    vm_config: VMConfig = field(default_factory=VMConfig)
    #: Repetitions; the paper took the median of 15.  The simulator is
    #: deterministic, so the default is 1 (medians are degenerate); the
    #: knob exists to mirror the paper's procedure in the benches.
    runs: int = 1
    #: Optional host-side sampling profiler factory (the system-specific
    #: related-work approach; see repro.agents.sampling).
    sampler: Optional[Callable] = None
    #: What to observe (trace events, metrics).  ``None`` leaves the
    #: VM's no-op null sink in place; either way, simulated cycle
    #: accounting is bit-identical (observability never charges time).
    observability: Optional[ObservabilityConfig] = None
    #: Optional COZ-style causal experiment (repro.harness.causal): a
    #: picklable spec; each VM gets a fresh CausalExperiment so runs>1
    #: and --jobs workers never share accumulators.
    causal: Optional[CausalSpec] = None
