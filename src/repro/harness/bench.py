"""Host-performance tracker for the execution engine.

The ROADMAP's "fast as the hardware allows" goal needs a trajectory:
this module times the JVM98 suite under the ``none`` agent (the hot
path with no profiling machinery attached) and records host wall-clock
seconds plus simulated instructions per host second.  ``repro bench``
writes the measurement to ``BENCH_interpreter.json`` so successive
changes can be compared, and ``repro bench --compare`` turns a stored
measurement into a regression gate.

``tier`` selects the execution tier: ``"template"`` (the default —
interpreter plus the template second tier) or ``"interp"`` (dispatch
loop only).  Both produce bit-identical simulated numbers; only host
throughput differs.

Host seconds are measured, never simulated: nothing here touches cycle
accounting.  The suite runs serially — parallel cells would make the
wall-clock numbers a function of core count rather than engine speed.
A workload that finishes under the host timer's resolution reports the
suite-level rate instead of ``null`` (``rate_source: "suite"``), so
compare tooling never divides by null.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Tuple

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.launcher import runtime_archive
from repro.observability.runinfo import git_info, utc_timestamp

#: Default output file, relative to the invoking directory.
DEFAULT_BENCH_PATH = "BENCH_interpreter.json"


def run_bench(scale: int = 1, workloads: Optional[List] = None,
              tier: str = "template", cores: int = 1,
              osr: bool = True, suite: str = "jvm98") -> Dict:
    """Time the suite and return the measurement document.

    ``suite`` picks the workload set when ``workloads`` is not given:
    ``jvm98`` (the paper's seven, the comparable default), ``full``
    (plus jbb2005), or ``all`` (plus the concurrency family).
    """
    from repro.workloads import (
        concurrency_suite,
        full_suite,
        jvm98_suite,
    )

    if workloads is None:
        if suite == "all":
            workloads = full_suite(scale) + concurrency_suite(scale)
        elif suite == "full":
            workloads = full_suite(scale)
        else:
            workloads = jvm98_suite(scale)
    runtime_archive()  # build the runtime outside the timed region

    rows = []
    total_host = 0.0
    total_instructions = 0
    for workload in workloads:
        workload.archive  # author/serialize outside the timed region
        config = RunConfig(
            agent=AgentSpec.none(),
            vm_config=VMConfig(jit_policy=JitPolicy(
                template_tier=(tier == "template"),
                osr=osr), cores=cores))
        start = time.perf_counter()
        result = execute(workload, config)
        host_seconds = time.perf_counter() - start
        total_host += host_seconds
        total_instructions += result.instructions
        rows.append((workload.name, host_seconds, result.instructions))

    suite_rate = round(total_instructions / total_host) \
        if total_host > 0 else 0
    per_workload = {}
    for name, host_seconds, instructions in rows:
        row = {
            "host_seconds": round(host_seconds, 4),
            "instructions": instructions,
        }
        if host_seconds > 0:
            row["instructions_per_second"] = round(
                instructions / host_seconds)
        else:
            # under timer resolution: fall back to the suite-level rate
            # so downstream compare tooling never divides by null
            row["instructions_per_second"] = suite_rate
            row["rate_source"] = "suite"
        per_workload[name] = row

    doc = {
        "benchmark": "jvm98/none-agent",
        "scale": scale,
        "suite": suite,
        "tier": tier,
        "cores": cores,
        "python": platform.python_version(),
        "hostname": platform.node(),
        "timestamp_utc": utc_timestamp(),
        "host_seconds": round(total_host, 4),
        "instructions": total_instructions,
        "instructions_per_second": suite_rate,
        "per_workload": per_workload,
    }
    doc.update(git_info())
    return doc


def write_bench(doc: Dict, path: str = DEFAULT_BENCH_PATH) -> None:
    """Persist a measurement document as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def read_bench(path: str) -> Dict:
    """Load a measurement document written by :func:`write_bench`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def format_bench(doc: Dict) -> str:
    """Human-readable rendering of a measurement document."""
    lines = [
        f"benchmark: {doc['benchmark']} (scale {doc['scale']}, "
        f"tier {doc.get('tier', 'interp')}, "
        f"cores {doc.get('cores', 1)}, python {doc['python']})",
        f"{'workload':<12} {'host s':>9} {'instructions':>14} "
        f"{'instr/s':>12}",
    ]
    for name, row in doc["per_workload"].items():
        rate = row["instructions_per_second"]
        rate_text = f"{rate:,}" if rate is not None else "n/a"
        if row.get("rate_source") == "suite":
            rate_text += "*"
        lines.append(
            f"{name:<12} {row['host_seconds']:>9.3f} "
            f"{row['instructions']:>14,} "
            f"{rate_text:>12}")
    lines.append(
        f"{'TOTAL':<12} {doc['host_seconds']:>9.3f} "
        f"{doc['instructions']:>14,} "
        f"{doc['instructions_per_second']:>12,}")
    if any(row.get("rate_source") == "suite"
           for row in doc["per_workload"].values()):
        lines.append("* under host-timer resolution; suite-level rate")
    return "\n".join(lines)


def compare_bench(current: Dict, baseline: Dict,
                  max_regression_percent: float = 5.0
                  ) -> Tuple[bool, List[str]]:
    """Compare a fresh measurement against a stored baseline.

    Returns ``(ok, report_lines)``: ``ok`` is False when the suite-level
    host throughput regressed by more than ``max_regression_percent``.
    Simulated numbers are not compared here — they are covered by the
    golden-table tests; this gate is purely about host speed.
    """
    lines = []
    base_rate = baseline.get("instructions_per_second") or 0
    cur_rate = current.get("instructions_per_second") or 0
    lines.append(f"baseline: {base_rate:,} instr/s "
                 f"(tier {baseline.get('tier', 'interp')}, "
                 f"python {baseline.get('python', '?')})")
    lines.append(f"current:  {cur_rate:,} instr/s "
                 f"(tier {current.get('tier', 'interp')}, "
                 f"python {current.get('python', '?')})")
    if base_rate <= 0:
        lines.append("baseline rate missing or zero; nothing to gate")
        return True, lines
    change = (cur_rate - base_rate) / base_rate * 100.0
    verb = "faster" if change >= 0 else "slower"
    lines.append(f"change:   {change:+.1f}% ({verb})")
    # Per-workload deltas over the *union* of workload names, so a
    # workload family present in only one document (e.g. concurrency
    # workloads added after the baseline was recorded) shows up as a
    # gap rather than vanishing from the report.
    cur_rows = current.get("per_workload", {})
    base_rows = baseline.get("per_workload", {})
    names = list(cur_rows) + [n for n in base_rows if n not in cur_rows]
    only_current = []
    only_baseline = []
    for name in names:
        row = cur_rows.get(name)
        base_row = base_rows.get(name)
        if row is None:
            only_baseline.append(name)
            continue
        if base_row is None:
            only_current.append(name)
            c = row.get("instructions_per_second") or 0
            lines.append(f"  {name:<12} {'(absent)':>12} -> {c:>12,}")
            continue
        b = base_row.get("instructions_per_second") or 0
        c = row.get("instructions_per_second") or 0
        if b > 0:
            lines.append(f"  {name:<12} {b:>12,} -> {c:>12,} "
                         f"({(c - b) / b * 100.0:+.1f}%)")
    for name in only_baseline:
        b = base_rows[name].get("instructions_per_second") or 0
        lines.append(f"  {name:<12} {b:>12,} -> {'(absent)':>12}")
    if only_current or only_baseline:
        lines.append(
            "WARNING: workload sets differ"
            + (f"; only in current: {', '.join(sorted(only_current))}"
               if only_current else "")
            + (f"; only in baseline: {', '.join(sorted(only_baseline))}"
               if only_baseline else "")
            + " — suite rates aggregate different workload mixes")
    # Configuration sanity: a tier or core-count mismatch means the
    # two runs measured different engines — flag it loudly.
    base_tier = baseline.get("tier", "interp")
    cur_tier = current.get("tier", "interp")
    if base_tier != cur_tier:
        lines.append(f"WARNING: tier mismatch (baseline {base_tier}, "
                     f"current {cur_tier}); rates compare different "
                     f"execution tiers")
    base_cores = baseline.get("cores", 1)
    cur_cores = current.get("cores", 1)
    if base_cores != cur_cores:
        lines.append(f"WARNING: core-count mismatch (baseline "
                     f"{base_cores}, current {cur_cores}); scheduler "
                     f"overhead differs between the runs")
    # Provenance sanity: cross-host or dirty-tree comparisons are
    # allowed but flagged — the numbers may not be commensurable.
    base_host = baseline.get("hostname")
    cur_host = current.get("hostname")
    if base_host and cur_host and base_host != cur_host:
        lines.append(f"WARNING: measurements from different hosts "
                     f"({base_host} vs {cur_host}); rates may not "
                     f"be comparable")
    for label, doc in (("baseline", baseline), ("current", current)):
        if doc.get("git_dirty"):
            sha = doc.get("git_sha") or "?"
            lines.append(f"WARNING: {label} was measured on a dirty "
                         f"working tree (git {sha[:12]})")
    ok = change >= -max_regression_percent
    if ok:
        lines.append(f"OK: within the {max_regression_percent:.1f}% "
                     f"regression budget")
    else:
        lines.append(f"REGRESSION: more than "
                     f"{max_regression_percent:.1f}% below baseline")
    return ok, lines
