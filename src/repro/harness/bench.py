"""Host-performance tracker for the interpreter.

The ROADMAP's "fast as the hardware allows" goal needs a trajectory:
this module times the JVM98 suite under the ``none`` agent (the
interpreter hot path with no profiling machinery attached) and records
host wall-clock seconds plus simulated instructions per host second.
``repro bench`` writes the measurement to ``BENCH_interpreter.json`` so
successive changes can be compared.

Host seconds are measured, never simulated: nothing here touches cycle
accounting.  The suite runs serially — parallel cells would make the
wall-clock numbers a function of core count rather than interpreter
speed.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import execute
from repro.launcher import runtime_archive

#: Default output file, relative to the invoking directory.
DEFAULT_BENCH_PATH = "BENCH_interpreter.json"


def run_bench(scale: int = 1,
              workloads: Optional[List] = None) -> Dict:
    """Time the suite and return the measurement document."""
    from repro.workloads import jvm98_suite

    if workloads is None:
        workloads = jvm98_suite(scale)
    runtime_archive()  # build the runtime outside the timed region

    per_workload = {}
    total_host = 0.0
    total_instructions = 0
    for workload in workloads:
        workload.archive  # author/serialize outside the timed region
        config = RunConfig(agent=AgentSpec.none())
        start = time.perf_counter()
        result = execute(workload, config)
        host_seconds = time.perf_counter() - start
        total_host += host_seconds
        total_instructions += result.instructions
        per_workload[workload.name] = {
            "host_seconds": round(host_seconds, 4),
            "instructions": result.instructions,
            "instructions_per_second": round(
                result.instructions / host_seconds) if host_seconds > 0
                else None,
        }

    return {
        "benchmark": "jvm98/none-agent",
        "scale": scale,
        "python": platform.python_version(),
        "host_seconds": round(total_host, 4),
        "instructions": total_instructions,
        "instructions_per_second": round(
            total_instructions / total_host) if total_host > 0 else None,
        "per_workload": per_workload,
    }


def write_bench(doc: Dict, path: str = DEFAULT_BENCH_PATH) -> None:
    """Persist a measurement document as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def format_bench(doc: Dict) -> str:
    """Human-readable rendering of a measurement document."""
    lines = [
        f"benchmark: {doc['benchmark']} (scale {doc['scale']}, "
        f"python {doc['python']})",
        f"{'workload':<12} {'host s':>9} {'instructions':>14} "
        f"{'instr/s':>12}",
    ]
    for name, row in doc["per_workload"].items():
        lines.append(
            f"{name:<12} {row['host_seconds']:>9.3f} "
            f"{row['instructions']:>14,} "
            f"{row['instructions_per_second']:>12,}")
    lines.append(
        f"{'TOTAL':<12} {doc['host_seconds']:>9.3f} "
        f"{doc['instructions']:>14,} "
        f"{doc['instructions_per_second']:>12,}")
    return "\n".join(lines)
