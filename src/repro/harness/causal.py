"""COZ-style causal profiling over the simulator's cycle charges.

A causal ("what-if") experiment asks: *if this one native method were
F times faster, how much faster would the whole run be?*  On real
hardware COZ answers by slowing everything else down (virtual
speedups); in the simulator every cycle is a number we charged
ourselves, so the experiment is exact arithmetic:

* **virtual** mode (the profiler): charges are left untouched — the
  run's numbers are bit-identical to a plain run — while the
  experiment accumulates, per charge to the target method, the cycles
  a rescale *would have* removed.  Predicted wall clock = actual wall
  clock − accumulated savings.  One run yields the baseline and the
  prediction together.
* **actual** mode (the validator): the same ``scaled()`` arithmetic is
  applied to the charges themselves, as if the cost model had been
  edited.  The run's measured wall clock is the ground truth the
  virtual prediction is checked against.

Both modes route through one :func:`scaled` function, so at
``cores=1`` (a single timeline; blocked time equals device service
time) prediction and measurement agree cycle-for-cycle.  Under the
preemptive scheduler overlap makes the prediction an upper bound on
the attainable saving, which is exactly COZ's caveat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import HarnessError

#: Factor ladder used by ``repro causal --sweep``.
DEFAULT_SWEEP_FACTORS: Tuple[float, ...] = (
    1.1, 1.25, 1.5, 2.0, 4.0, 8.0)


def scaled(cycles: int, factor: float) -> int:
    """Cycles remaining after an F-times speedup of a charge.

    The single source of truth shared by virtual prediction and actual
    rescaling — agreement between the two modes is agreement of sums
    of this function.
    """
    return int(cycles / factor)


def parse_speedup(text: str) -> Tuple[str, float]:
    """Parse a ``CLASS.METHOD=FACTOR`` speedup spec."""
    method, sep, factor_text = text.partition("=")
    if not sep or not method:
        raise HarnessError(
            f"bad --speedup {text!r}: expected CLASS.METHOD=FACTOR "
            f"(e.g. java.net.Socket.recv0=2.0)")
    try:
        factor = float(factor_text)
    except ValueError:
        raise HarnessError(
            f"bad --speedup factor {factor_text!r}: not a number")
    if factor <= 0:
        raise HarnessError(
            f"bad --speedup factor {factor}: must be > 0")
    return method, factor


@dataclass(frozen=True)
class CausalSpec:
    """Picklable description of one causal experiment (lives on
    :class:`~repro.harness.config.RunConfig`; a fresh
    :class:`CausalExperiment` is built from it per VM)."""

    #: Qualified ``CLASS.METHOD`` whose charges are rescaled.
    method: str
    #: Speedup factor F (> 0; F < 1 models a slowdown).
    factor: float
    #: True: predict without touching charges.  False: apply the
    #: rescale to the charges (the validation arm).
    virtual: bool = True
    #: Extra factors to predict for in the same virtual run.
    sweep: Tuple[float, ...] = ()


@dataclass
class CausalExperiment:
    """Mutable per-VM state of one causal experiment."""

    spec: CausalSpec
    #: Target-method CPU cycles observed (pre-rescale).
    cpu_cycles: int = 0
    #: Target-method device-service cycles observed (pre-rescale).
    device_cycles: int = 0
    #: Cycles a rescale removes (virtual: would remove) from the CPU
    #: clock / the device timelines, at ``spec.factor``.
    saved_cpu: int = 0
    saved_device: int = 0
    #: Per-factor total savings for the sweep ladder.
    sweep_saved: Dict[float, int] = field(default_factory=dict)

    def __post_init__(self):
        for factor in self.spec.sweep:
            self.sweep_saved.setdefault(factor, 0)

    # -- charge hooks (called from JNIEnv) -----------------------------

    def cpu_charge(self, native_name: str, cycles: int) -> int:
        """Filter one CPU charge; returns the cycles to charge."""
        if native_name != self.spec.method:
            return cycles
        self.cpu_cycles += cycles
        remaining = scaled(cycles, self.spec.factor)
        self.saved_cpu += cycles - remaining
        for factor in self.spec.sweep:
            self.sweep_saved[factor] += cycles - scaled(cycles, factor)
        return cycles if self.spec.virtual else remaining

    def device_charge(self, native_name: str, cycles: int) -> int:
        """Filter one device-service request; returns the cycles the
        device takes."""
        if native_name != self.spec.method:
            return cycles
        self.device_cycles += cycles
        remaining = scaled(cycles, self.spec.factor)
        self.saved_device += cycles - remaining
        for factor in self.spec.sweep:
            self.sweep_saved[factor] += cycles - scaled(cycles, factor)
        return cycles if self.spec.virtual else remaining

    # -- results -------------------------------------------------------

    @property
    def saved_total(self) -> int:
        return self.saved_cpu + self.saved_device

    def predicted_wall(self, actual_wall: int) -> int:
        """Virtual mode: the wall clock the rescale would produce."""
        return actual_wall - self.saved_total

    def summary(self, wall_cycles: Optional[int] = None) -> Dict:
        """JSON-ready experiment summary for results and manifests."""
        doc = {
            "method": self.spec.method,
            "factor": self.spec.factor,
            "mode": "virtual" if self.spec.virtual else "actual",
            "cpu_cycles": self.cpu_cycles,
            "device_cycles": self.device_cycles,
            "saved_cpu": self.saved_cpu,
            "saved_device": self.saved_device,
            "saved_total": self.saved_total,
        }
        if wall_cycles is not None:
            doc["wall_cycles"] = wall_cycles
            if self.spec.virtual:
                doc["predicted_wall_cycles"] = \
                    self.predicted_wall(wall_cycles)
        if self.spec.sweep:
            doc["sweep"] = [
                {"factor": factor, "saved": self.sweep_saved[factor],
                 **({"predicted_wall_cycles":
                     wall_cycles - self.sweep_saved[factor]}
                    if wall_cycles is not None else {})}
                for factor in self.spec.sweep]
        return doc
