"""Parallel execution of independent harness cells.

A *cell* is one (workload × agent-config) execution — the independent
unit of Table I/II.  Cells share nothing at the simulation level (each
builds its own VM), so they fan out across worker processes freely; the
only requirement is a deterministic merge, which :func:`run_cells`
guarantees by returning results in the order the cells were given,
regardless of completion order.

Agent factories are callables (sometimes closures) and thus not
picklable, so a :class:`CellSpec` carries a *description* — workload
registry name + scale, agent name + kwargs — and each worker rebuilds
the live objects on its side.  Workloads not present in the registry
(e.g. ad-hoc test workloads) cannot be described this way; the table
builders fall back to in-process execution for those.

Workers are forked when the platform allows it, after the parent has
warmed the runtime-archive cache, so every worker inherits the built
runtime library through copy-on-write instead of rebuilding it.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import HarnessError
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import RunResult, execute
from repro.jvm.machine import VMConfig
from repro.observability import logging as obs_logging
from repro.observability.sink import ObservabilityConfig

log = obs_logging.get_logger("harness.parallel")

#: Agent names a cell may reference (the CLI's agent vocabulary).
_AGENT_BUILDERS = {
    "none": lambda kwargs: AgentSpec.none(),
    "original": lambda kwargs: AgentSpec.none(),
    "spa": lambda kwargs: AgentSpec.spa(),
    "ipa": lambda kwargs: AgentSpec.ipa(**kwargs),
    "callchain": lambda kwargs: AgentSpec.callchain(**kwargs),
}


@dataclass
class CellSpec:
    """Picklable description of one (workload × agent) cell."""

    workload_name: str
    scale: int = 1
    agent_name: str = "none"
    agent_kwargs: Dict = field(default_factory=dict)
    runs: int = 1
    vm_config: Optional[VMConfig] = None
    #: What to observe during the cell (``None`` = nothing).
    observability: Optional[ObservabilityConfig] = None
    #: Where the worker writes its capture document.  Workers emit
    #: per-process files (one per cell) instead of piping captures
    #: through IPC; the parent merges them in fixed cell order.
    observability_path: Optional[str] = None
    #: Position in the submitted cell list (stamped by
    #: :func:`run_cells`); workers use it as their log prefix so
    #: interleaved stderr stays attributable.
    index: Optional[int] = None
    #: Parent logging configuration, re-applied on the worker side
    #: (fork inherits it; spawn needs the explicit copy).
    log_config: Optional[tuple] = None


def describable(workload) -> bool:
    """True when ``workload`` can be rebuilt from the registry by name
    (the requirement for shipping a cell to another process)."""
    from repro.workloads import get_workload, workload_names

    if workload.name not in workload_names():
        return False
    return type(get_workload(workload.name)) is type(workload)


def run_cell(cell: CellSpec) -> RunResult:
    """Rebuild a cell's workload and config, then execute it."""
    from repro.workloads import get_workload

    if cell.log_config is not None and cell.index is not None:
        level, json_mode = cell.log_config
        obs_logging.configure(level=level, json_mode=json_mode,
                              worker=f"w{cell.index:02d}")
    log.debug("cell start", workload=cell.workload_name,
              agent=cell.agent_name, runs=cell.runs)
    builder = _AGENT_BUILDERS.get(cell.agent_name)
    if builder is None:
        raise HarnessError(
            f"unknown agent {cell.agent_name!r}; "
            f"known: {sorted(_AGENT_BUILDERS)}")
    workload = get_workload(cell.workload_name, scale=cell.scale)
    config = RunConfig(agent=builder(cell.agent_kwargs),
                       vm_config=cell.vm_config or VMConfig(),
                       runs=cell.runs,
                       observability=cell.observability)
    result = execute(workload, config)
    if cell.observability_path is not None:
        with open(cell.observability_path, "w",
                  encoding="utf-8") as fh:
            json.dump(result.observability, fh)
        result.observability = None  # travels via the file instead
    # live agents close over the VM (unpicklable closures) — results
    # crossing a process boundary must not drag the simulation along
    result.agent_object = None
    log.debug("cell done", workload=cell.workload_name,
              agent=cell.agent_name, cycles=result.cycles)
    return result


def run_cells(cells: List[CellSpec], jobs: int = 1) -> List[RunResult]:
    """Execute ``cells``, fanning across ``jobs`` processes.

    Results come back in cell order — the merge is deterministic and
    identical to a serial run.
    """
    if jobs < 1:
        raise HarnessError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(cells))
    if jobs <= 1:
        return [run_cell(cell) for cell in cells]

    # warm shared caches before forking so workers inherit them
    from repro.launcher import runtime_archive

    runtime_archive()
    # stamp cell indices + the parent's logging config so worker log
    # lines carry a stable `worker=wNN` prefix (parent state is left
    # untouched: serial runs above never reach this)
    log_config = obs_logging.snapshot()
    for index, cell in enumerate(cells):
        cell.index = index
        cell.log_config = log_config
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(run_cell, cells)
