"""Table I — execution time and profiling overhead for SPA and IPA.

For TIME workloads (SPEC JVM98) the overhead formula is
``time_with_profiling / time_without - 1``; for THROUGHPUT workloads
(SPEC JBB2005) it is ``ops_without / ops_with - 1`` — exactly the
paper's two formulas.  A geometric-mean row summarises the JVM98 times,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import units
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.parallel import CellSpec, describable, run_cells
from repro.harness.runner import RunResult, execute
from repro.jvm.machine import VMConfig
from repro.workloads.base import MetricKind, Workload


@dataclass
class OverheadRow:
    """One Table I row."""

    benchmark: str
    metric: MetricKind
    value_original: float   # seconds, or operations/second
    value_spa: float
    value_ipa: float
    overhead_spa_percent: float
    overhead_ipa_percent: float


@dataclass
class Table1:
    """The full Table I: JVM98 rows, their geometric mean, JBB rows."""

    time_rows: List[OverheadRow]
    geomean_row: Optional[OverheadRow]
    throughput_rows: List[OverheadRow]
    #: Raw per-(workload, agent) results for deeper analysis.
    raw: Dict[str, Dict[str, RunResult]]

    @property
    def rows(self) -> List[OverheadRow]:
        rows = list(self.time_rows)
        if self.geomean_row is not None:
            rows.append(self.geomean_row)
        rows.extend(self.throughput_rows)
        return rows


def _overhead_for(metric: MetricKind, base: float,
                  measured: float) -> float:
    if metric is MetricKind.TIME:
        return units.overhead_percent(base, measured)
    return units.throughput_overhead_percent(base, measured)


def _row_from_results(workload: Workload, base: RunResult,
                      spa: RunResult, ipa: RunResult) -> OverheadRow:
    if workload.metric is MetricKind.TIME:
        values = (base.seconds, spa.seconds, ipa.seconds)
    else:
        values = (base.operations_per_second,
                  spa.operations_per_second,
                  ipa.operations_per_second)
    return OverheadRow(
        benchmark=workload.name,
        metric=workload.metric,
        value_original=values[0],
        value_spa=values[1],
        value_ipa=values[2],
        overhead_spa_percent=_overhead_for(workload.metric, values[0],
                                           values[1]),
        overhead_ipa_percent=_overhead_for(workload.metric, values[0],
                                           values[2]),
    )


def _geomean_row(rows: List[OverheadRow]) -> Optional[OverheadRow]:
    if not rows:
        return None
    return OverheadRow(
        benchmark="geom. mean",
        metric=MetricKind.TIME,
        value_original=units.geometric_mean(
            r.value_original for r in rows),
        value_spa=units.geometric_mean(r.value_spa for r in rows),
        value_ipa=units.geometric_mean(r.value_ipa for r in rows),
        overhead_spa_percent=units.geometric_mean(
            r.value_spa for r in rows) / units.geometric_mean(
            r.value_original for r in rows) * 100.0 - 100.0,
        overhead_ipa_percent=units.geometric_mean(
            r.value_ipa for r in rows) / units.geometric_mean(
            r.value_original for r in rows) * 100.0 - 100.0,
    )


def build_table1(workloads: List[Workload],
                 vm_config: Optional[VMConfig] = None,
                 runs: int = 1,
                 jobs: int = 1) -> Table1:
    """Run every workload under {original, SPA, IPA} and build Table I.

    ``jobs > 1`` fans the independent (workload × agent) cells across
    processes; the merge order is fixed, so the table is identical to a
    serial build.
    """
    vm_config = vm_config or VMConfig()
    agents = [("original", "none"), ("spa", "spa"), ("ipa", "ipa")]
    time_rows: List[OverheadRow] = []
    throughput_rows: List[OverheadRow] = []
    raw: Dict[str, Dict[str, RunResult]] = {}

    if jobs > 1 and all(describable(w) for w in workloads):
        cells = [CellSpec(workload_name=w.name, scale=w.scale,
                          agent_name=agent_name, runs=runs,
                          vm_config=vm_config)
                 for w in workloads for _, agent_name in agents]
        flat = run_cells(cells, jobs)
        per_workload = [
            dict(zip((label for label, _ in agents),
                     flat[i * len(agents):(i + 1) * len(agents)]))
            for i in range(len(workloads))]
    else:
        per_workload = []
        for workload in workloads:
            results = {}
            for label, agent_name in agents:
                spec = (AgentSpec.none() if agent_name == "none" else
                        AgentSpec.spa() if agent_name == "spa" else
                        AgentSpec.ipa())
                config = RunConfig(agent=spec, vm_config=vm_config,
                                   runs=runs)
                results[label] = execute(workload, config)
            per_workload.append(results)

    for workload, results in zip(workloads, per_workload):
        raw[workload.name] = results
        row = _row_from_results(workload, results["original"],
                                results["spa"], results["ipa"])
        if workload.metric is MetricKind.TIME:
            time_rows.append(row)
        else:
            throughput_rows.append(row)

    return Table1(time_rows, _geomean_row(time_rows), throughput_rows,
                  raw)
