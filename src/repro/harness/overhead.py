"""Table I — execution time and profiling overhead for SPA and IPA.

For TIME workloads (SPEC JVM98) the overhead formula is
``time_with_profiling / time_without - 1``; for THROUGHPUT workloads
(SPEC JBB2005) it is ``ops_without / ops_with - 1`` — exactly the
paper's two formulas.  A geometric-mean row summarises each section
(the paper prints one for the JVM98 times; we add the symmetric row
for the throughput section).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.parallel import CellSpec, describable, run_cells
from repro.harness.runner import RunResult, execute
from repro.jvm.machine import VMConfig
from repro.observability.sink import ObservabilityConfig
from repro.workloads.base import MetricKind, Workload


@dataclass
class OverheadRow:
    """One Table I row."""

    benchmark: str
    metric: MetricKind
    value_original: float   # seconds, or operations/second
    value_spa: float
    value_ipa: float
    overhead_spa_percent: float
    overhead_ipa_percent: float


@dataclass
class Table1:
    """The full Table I: JVM98 rows, their geometric mean, JBB rows
    (and *their* geometric mean)."""

    time_rows: List[OverheadRow]
    geomean_row: Optional[OverheadRow]
    throughput_rows: List[OverheadRow]
    #: Raw per-(workload, agent) results for deeper analysis.
    raw: Dict[str, Dict[str, RunResult]]
    #: Geometric-mean summary of the throughput section (the time
    #: section always had one; the throughput section now matches).
    throughput_geomean_row: Optional[OverheadRow] = None
    #: Per-cell observability capture documents, in fixed cell order
    #: ((workload × agent), workloads outermost) — ``None`` when the
    #: table was built without observability.
    captures: Optional[List[dict]] = None
    #: ``workload -> [console lines]`` for threads that died with an
    #: uncaught exception in any cell; empty on clean builds.  Table
    #: commands use this to exit non-zero.
    thread_deaths: Dict[str, List[str]] = None

    @property
    def rows(self) -> List[OverheadRow]:
        rows = list(self.time_rows)
        if self.geomean_row is not None:
            rows.append(self.geomean_row)
        rows.extend(self.throughput_rows)
        if self.throughput_geomean_row is not None:
            rows.append(self.throughput_geomean_row)
        return rows


def _overhead_for(metric: MetricKind, base: float,
                  measured: float) -> float:
    if metric is MetricKind.TIME:
        return units.overhead_percent(base, measured)
    return units.throughput_overhead_percent(base, measured)


def _row_from_results(workload: Workload, base: RunResult,
                      spa: RunResult, ipa: RunResult) -> OverheadRow:
    if workload.metric is MetricKind.TIME:
        values = (base.seconds, spa.seconds, ipa.seconds)
    else:
        values = (base.operations_per_second,
                  spa.operations_per_second,
                  ipa.operations_per_second)
    return OverheadRow(
        benchmark=workload.name,
        metric=workload.metric,
        value_original=values[0],
        value_spa=values[1],
        value_ipa=values[2],
        overhead_spa_percent=_overhead_for(workload.metric, values[0],
                                           values[1]),
        overhead_ipa_percent=_overhead_for(workload.metric, values[0],
                                           values[2]),
    )


def _geomean_row(rows: List[OverheadRow],
                 metric: MetricKind = MetricKind.TIME
                 ) -> Optional[OverheadRow]:
    """Geometric-mean summary of one table section.

    The overhead columns apply the section's own formula to the mean
    values: slowdown of the means for TIME, throughput loss of the
    means for THROUGHPUT.
    """
    if not rows:
        return None
    mean_original = units.geometric_mean(r.value_original for r in rows)
    mean_spa = units.geometric_mean(r.value_spa for r in rows)
    mean_ipa = units.geometric_mean(r.value_ipa for r in rows)
    return OverheadRow(
        benchmark="geom. mean",
        metric=metric,
        value_original=mean_original,
        value_spa=mean_spa,
        value_ipa=mean_ipa,
        overhead_spa_percent=_overhead_for(metric, mean_original,
                                           mean_spa),
        overhead_ipa_percent=_overhead_for(metric, mean_original,
                                           mean_ipa),
    )


def run_observed_cells(cells: List[CellSpec], jobs: int,
                       observability: Optional[ObservabilityConfig]
                       ) -> Tuple[List[RunResult],
                                  Optional[List[dict]]]:
    """Execute cells, returning results plus per-cell capture docs.

    With observability off this is plain :func:`run_cells`.  With it
    on, each worker writes its capture to a per-process file named
    after the cell index; the parent reads the files back in cell
    order, so the merge is deterministic regardless of completion
    order (and identical between serial and ``jobs > 1`` builds).
    """
    if observability is None or not observability.enabled:
        return run_cells(cells, jobs), None
    capture_dir = tempfile.mkdtemp(prefix="repro-obs-")
    try:
        for index, cell in enumerate(cells):
            cell.observability = observability
            cell.observability_path = os.path.join(
                capture_dir, f"cell-{index:04d}.json")
        flat = run_cells(cells, jobs)
        captures = []
        for cell in cells:
            with open(cell.observability_path, encoding="utf-8") as fh:
                captures.append(json.load(fh))
        return flat, captures
    finally:
        shutil.rmtree(capture_dir, ignore_errors=True)


def build_table1(workloads: List[Workload],
                 vm_config: Optional[VMConfig] = None,
                 runs: int = 1,
                 jobs: int = 1,
                 observability: Optional[ObservabilityConfig] = None
                 ) -> Table1:
    """Run every workload under {original, SPA, IPA} and build Table I.

    ``jobs > 1`` fans the independent (workload × agent) cells across
    processes; the merge order is fixed, so the table is identical to a
    serial build.  ``observability`` records traces/metrics per cell
    (collected in :attr:`Table1.captures`) without changing a single
    simulated cycle — the rendered table is byte-identical either way.
    """
    vm_config = vm_config or VMConfig()
    agents = [("original", "none"), ("spa", "spa"), ("ipa", "ipa")]
    time_rows: List[OverheadRow] = []
    throughput_rows: List[OverheadRow] = []
    raw: Dict[str, Dict[str, RunResult]] = {}
    captures: Optional[List[dict]] = None

    if all(describable(w) for w in workloads):
        cells = [CellSpec(workload_name=w.name, scale=w.scale,
                          agent_name=agent_name, runs=runs,
                          vm_config=vm_config)
                 for w in workloads for _, agent_name in agents]
        flat, captures = run_observed_cells(cells, jobs, observability)
        per_workload = [
            dict(zip((label for label, _ in agents),
                     flat[i * len(agents):(i + 1) * len(agents)]))
            for i in range(len(workloads))]
    else:
        per_workload = []
        if observability is not None and observability.enabled:
            captures = []
        for workload in workloads:
            results = {}
            for label, agent_name in agents:
                spec = (AgentSpec.none() if agent_name == "none" else
                        AgentSpec.spa() if agent_name == "spa" else
                        AgentSpec.ipa())
                config = RunConfig(agent=spec, vm_config=vm_config,
                                   runs=runs, observability=observability)
                result = execute(workload, config)
                if captures is not None:
                    captures.append(result.observability)
                results[label] = result
            per_workload.append(results)

    thread_deaths: Dict[str, List[str]] = {}
    for workload, results in zip(workloads, per_workload):
        raw[workload.name] = results
        for result in results.values():
            if result.thread_deaths:
                thread_deaths.setdefault(workload.name, []).extend(
                    result.thread_deaths)
        row = _row_from_results(workload, results["original"],
                                results["spa"], results["ipa"])
        if workload.metric is MetricKind.TIME:
            time_rows.append(row)
        else:
            throughput_rows.append(row)

    return Table1(time_rows, _geomean_row(time_rows), throughput_rows,
                  raw,
                  throughput_geomean_row=_geomean_row(
                      throughput_rows, MetricKind.THROUGHPUT),
                  captures=captures,
                  thread_deaths=thread_deaths)
