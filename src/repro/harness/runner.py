"""Execute one workload under one configuration and collect metrics."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import units
from repro.errors import HarnessError
from repro.harness.config import RunConfig
from repro.jni.stdlib import build_java_library
from repro.jvm.machine import JavaVM, VMConfig
from repro.launcher import runtime_archive
from repro.observability.sink import ObservabilitySink
from repro.observability.tracer import HARNESS_TID
from repro.workloads.base import MetricKind, Workload


@dataclass
class RunResult:
    """Everything measured in one workload execution."""

    workload: str
    agent_label: str
    cycles: int
    seconds: float
    instructions: int
    ground_truth: Dict[str, int]
    ground_truth_native_fraction: float
    agent_report: Optional[Dict]
    sampler_report: Optional[Dict]
    validation_ok: bool
    validation_detail: str
    jit_compiled: int
    jit_vetoed: bool
    operations: Optional[int] = None
    console: List[str] = field(default_factory=list)
    #: Capture document (trace events + metrics records) when the run
    #: was observed; ``None`` otherwise.  JSON-safe and picklable.
    observability: Optional[Dict] = None
    #: Qualified names of native methods the VM resolved during the
    #: run — the dynamic side of the static-vs-dynamic native-boundary
    #: cross-check.  Plain strings, picklable.
    native_methods_invoked: List[str] = field(default_factory=list)
    #: Console lines of threads that died with an uncaught exception
    #: (empty on clean runs); table commands exit non-zero when set.
    thread_deaths: List[str] = field(default_factory=list)
    #: Per-core cycle clocks (``--cores N``, N > 1); ``None`` under the
    #: sequential model.
    core_clocks: Optional[List[int]] = None
    #: Confirmed data races from ``--sanitize race`` (empty when the
    #: sanitizer is off or the run is clean).  Plain dicts with both
    #: racing stacks and simulated-cycle timestamps; picklable.
    races: List[Dict] = field(default_factory=list)
    #: The live agent instance (CCT access for flamegraph export).
    #: Host-side only — stripped before crossing process boundaries.
    agent_object: Optional[object] = None
    #: Off-CPU cycles: total time threads were parked on simulated
    #: devices (DESIGN.md §13).  Zero for the paper's suite workloads,
    #: which never block.
    blocked_cycles: int = 0
    #: Final per-device timeline clocks (``{"disk": ..., "net": ...}``);
    #: empty when nothing blocked.
    device_clocks: Dict[str, int] = field(default_factory=dict)
    #: Blocked cycles attributed per blocking native method.
    blocked_by_native: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock cycles: on-CPU plus off-CPU elapsed time.  Equals
    #: ``cycles`` when nothing blocked (sequential model).
    wall_cycles: int = 0
    #: COZ-style causal experiment summary (repro.harness.causal) when
    #: the run carried one; ``None`` otherwise.  JSON-safe, picklable.
    causal: Optional[Dict] = None

    @property
    def operations_per_second(self) -> Optional[float]:
        if self.operations is None or self.seconds <= 0:
            return None
        return self.operations / self.seconds


def _build_vm(workload: Workload, config: RunConfig) -> JavaVM:
    vm_config = VMConfig(
        clock_hz=config.vm_config.clock_hz,
        cost_model=config.vm_config.cost_model,
        jit_policy=config.vm_config.jit_policy.copy(),
        jvmti_version=config.vm_config.jvmti_version,
        verify=config.vm_config.verify,
        cores=config.vm_config.cores,
        sanitize=config.vm_config.sanitize,
    )
    vm = JavaVM(vm_config)
    if config.causal is not None:
        # a fresh accumulator per VM: specs are shared (and picklable,
        # for --jobs workers); experiments are single-use
        from repro.harness.causal import CausalExperiment

        vm.causal = CausalExperiment(config.causal)
    if config.observability is not None and \
            config.observability.enabled:
        # install before agents attach so they pick up the live tracer
        vm.obs = ObservabilitySink(config.observability)
    vm.native_registry.register(build_java_library(), preload=True)
    for library in workload.native_libraries():
        vm.native_registry.register(library)

    agent = None
    if config.agent.factory is not None:
        agent = config.agent.factory()
        vm.attach_agent(agent)
    if config.sampler is not None:
        sampler = config.sampler()
        sampler.install(vm)
        vm.sampler = sampler

    archives = [runtime_archive(), workload.archive]
    if agent is not None:
        archives = agent.instrument_archives(archives)
    vm.loader.add_boot_archive(archives[0])
    vm.loader.add_classpath_archive(archives[1])
    workload.install_files(vm)
    return vm


def _run_once(workload: Workload, config: RunConfig) -> RunResult:
    wall_started = time.perf_counter()
    vm = _build_vm(workload, config)
    sink = vm.obs
    tracer = sink.tracer
    launch_started = vm.threads.total_cycles()
    vm.launch(workload.main_class)
    tracer.complete(f"launch:{workload.name}", "harness", HARNESS_TID,
                    launch_started, vm.threads.total_cycles())

    validate_started = vm.threads.total_cycles()
    check = workload.validate(vm)
    operations = None
    if workload.metric is MetricKind.THROUGHPUT:
        operations = workload.operations(vm)
    tracer.complete("validate", "harness", HARNESS_TID,
                    validate_started, vm.threads.total_cycles())

    agent_report = None
    if vm.agents:
        agent_report = vm.agents[0].report()
    sampler_report = None
    sampler = getattr(vm, "sampler", None)
    if sampler is not None:
        sampler_report = sampler.report()

    observability = None
    if sink.enabled:
        _record_run_metrics(sink, vm,
                            time.perf_counter() - wall_started)
        observability = sink.capture(
            labels={"workload": workload.name,
                    "agent": config.agent.label},
            clock_hz=vm.config.clock_hz)

    return RunResult(
        workload=workload.name,
        agent_label=config.agent.label,
        cycles=vm.total_cycles,
        seconds=units.cycles_to_seconds(vm.total_cycles,
                                        vm.config.clock_hz),
        instructions=vm.instructions_retired,
        ground_truth=vm.ground_truth(),
        ground_truth_native_fraction=vm.ground_truth_native_fraction(),
        agent_report=agent_report,
        sampler_report=sampler_report,
        validation_ok=check.ok,
        validation_detail=check.detail,
        jit_compiled=vm.jit.compile_count,
        jit_vetoed=vm.jit.vetoed,
        operations=operations,
        console=list(vm.console),
        observability=observability,
        native_methods_invoked=sorted(vm.native_methods_invoked),
        thread_deaths=list(vm.thread_deaths),
        core_clocks=(list(vm.scheduler.core_clock)
                     if vm.scheduler is not None else None),
        races=(list(vm.sanitizer.races)
               if vm.sanitizer is not None else []),
        agent_object=vm.agents[0] if vm.agents else None,
        blocked_cycles=vm.total_blocked,
        device_clocks=dict(vm.device_clock),
        blocked_by_native=dict(vm.blocked_by_native),
        wall_cycles=vm.wall_cycles,
        causal=(vm.causal.summary(wall_cycles=vm.wall_cycles)
                if vm.causal is not None else None),
    )


def _record_run_metrics(sink: ObservabilitySink, vm: JavaVM,
                        wall_seconds: float) -> None:
    """Fold the VM's host-side statistics into the metrics registry.

    Reading them is free of simulated cost — they are bookkeeping the
    machine maintains regardless of observability.
    """
    metrics = sink.metrics
    if not metrics.enabled:
        return
    metrics.inc("instructions_retired", vm.instructions_retired)
    metrics.inc("method_invocations", vm.method_invocations)
    metrics.inc("native_invocations", vm.native_invocations)
    metrics.inc("jni_invocations", vm.jni_invocations)
    metrics.inc("inline_cache_hits", vm.ic_hits)
    metrics.inc("inline_cache_misses", vm.ic_misses)
    metrics.inc("pic_hits", vm.pic_hits)
    metrics.inc("pic_misses", vm.ic_misses)
    metrics.inc("pic_megamorphic", vm.pic_megamorphic)
    metrics.inc("pic_mono_to_poly", vm.pic_mono_to_poly)
    metrics.inc("pic_poly_to_mega", vm.pic_poly_to_mega)
    metrics.inc("classes_loaded", vm.loader.classes_loaded)
    metrics.inc("verifier_methods_verified", vm.methods_verified)
    metrics.inc("jvmti_events_dispatched",
                vm.jvmti.events_dispatched)
    for event_name, count in sorted(
            vm.jvmti.dispatch_counts.items()):
        metrics.inc(f"jvmti_events_{event_name.lower()}", count)
    metrics.inc("pcl_reads", vm.pcl.reads)
    metrics.inc("jit_compiled_methods", vm.jit.compile_count)
    metrics.inc("jit_templates_translated", vm.jit.templates_translated)
    metrics.inc("jit_template_entries", vm.jit.template_entries)
    metrics.inc("jit_template_invalidated",
                vm.jit.code_cache.invalidated)
    for reason, count in sorted(vm.jit.template_bailouts.items()):
        metrics.inc(f"jit_template_bailout_{reason.replace(':', '_')}",
                    count)
    for reason, count in sorted(vm.jit.template_deopts.items()):
        metrics.inc(f"jit_template_deopt_{reason.replace(':', '_')}",
                    count)
    metrics.inc("jit_osr_entries", vm.jit.osr_entries)
    for pattern, count in sorted(vm.jit.fusion_sites.items()):
        metrics.inc(f"jit_fusion_sites_{pattern}", count)
    # per-method tier state for the hottest compiled methods: enough
    # to reconstruct "which tier ran this, how it got in, and how
    # often it fell out" without a per-method metrics explosion
    hottest = sorted(vm.jit.methods_compiled,
                     key=lambda m: -m.invocation_count)[:10]
    for m in hottest:
        slug = (m.qualified_name.split("(")[0]
                .replace(".", "_").replace("$", "_"))
        metrics.set_gauge(f"hot_method_{slug}_invocations",
                          m.invocation_count)
        metrics.set_gauge(f"hot_method_{slug}_osr_entries",
                          m.osr_entry_count)
        metrics.set_gauge(f"hot_method_{slug}_deopts",
                          m.template_deopt_count)
        metrics.set_gauge(f"hot_method_{slug}_tier",
                          1 if m.template is not None else 0)
        # deepest invokevirtual PIC in the method: 0 = no seeded site,
        # 1 = monomorphic, k = polymorphic, -1 = a site went megamorphic
        depth = 0
        mega = False
        for ins in m.info.code or ():
            q = ins.quick
            if type(q) is list and len(q) == 8:
                if q[6] is False:
                    mega = True
                elif q[6]:
                    depth = max(depth, 1 + len(q[6]))
                elif q[4] is not None:
                    depth = max(depth, 1)
        metrics.set_gauge(f"hot_method_{slug}_pic_depth",
                          -1 if mega else depth)
    if vm.thread_deaths:
        # emitted only when nonzero so clean-run metric captures (and
        # the goldens built from them) are unchanged
        metrics.inc("uncaught_thread_exceptions", len(vm.thread_deaths))
    sanitizer = vm.sanitizer
    if sanitizer is not None:
        # emitted only when the sanitizer is on, so sanitize-off metric
        # captures (and the goldens built from them) are unchanged
        metrics.inc("races_confirmed", len(sanitizer.races))
        metrics.inc("shadow_words", sanitizer.shadow_words)
    scheduler = vm.scheduler
    if scheduler is not None:
        metrics.inc("scheduler_context_switches",
                    scheduler.context_switches)
        metrics.inc("scheduler_monitor_contentions",
                    scheduler.monitor_contentions)
        metrics.inc("scheduler_deadlocks_detected",
                    scheduler.deadlocks_detected)
        for core, clock in enumerate(scheduler.core_clock):
            metrics.set_gauge(f"core_{core}_cycles", clock)
    if vm.total_blocked:
        # emitted only when something actually blocked, so the paper's
        # non-I/O metric captures (and goldens) are unchanged
        metrics.inc("blocked_cycles", vm.total_blocked)
        metrics.set_gauge("wall_cycles", vm.wall_cycles)
        for device, clock in sorted(vm.device_clock.items()):
            metrics.set_gauge(f"device_{device}_cycles", clock)
        for device, cycles in sorted(
                vm.threads.total_blocked_by_device().items()):
            metrics.inc(f"blocked_{device}_cycles", cycles)
        if scheduler is not None:
            metrics.inc("scheduler_io_blocks", scheduler.io_blocks)
    metrics.set_gauge("cycles_total", vm.total_cycles)
    for tag, cycles in sorted(vm.ground_truth().items()):
        metrics.set_gauge(f"cycles_{tag}", cycles)
    metrics.set_gauge("host_wall_seconds", round(wall_seconds, 6))


def execute(workload: Workload,
            config: Optional[RunConfig] = None) -> RunResult:
    """Run ``workload`` under ``config``; with ``runs > 1`` the
    median-cycles run is returned (the paper's median-of-15 procedure —
    degenerate here because the simulator is deterministic)."""
    config = config or RunConfig()
    if config.runs < 1:
        raise HarnessError(f"runs must be >= 1, got {config.runs}")
    results = [_run_once(workload, config) for _ in range(config.runs)]
    if not all(r.validation_ok for r in results):
        bad = next(r for r in results if not r.validation_ok)
        raise HarnessError(
            f"workload {workload.name} failed validation under "
            f"{config.agent.label}: {bad.validation_detail}")
    median_cycles = statistics.median(r.cycles for r in results)
    return min(results, key=lambda r: abs(r.cycles - median_cycles))


def execute_many(workload: Workload,
                 configs: List[RunConfig]) -> List[RunResult]:
    """Run the same workload under several configurations."""
    return [execute(workload, config) for config in configs]
