"""Benchmark harness: runs workloads under agent configurations and
regenerates the paper's Tables I and II (plus the ablations)."""

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.runner import RunResult, execute, execute_many
from repro.harness.overhead import OverheadRow, Table1, build_table1
from repro.harness.statistics import StatisticsRow, Table2, build_table2
from repro.harness.report import render_table1, render_table2

__all__ = [
    "AgentSpec",
    "RunConfig",
    "RunResult",
    "execute",
    "execute_many",
    "OverheadRow",
    "Table1",
    "build_table1",
    "StatisticsRow",
    "Table2",
    "build_table2",
    "render_table1",
    "render_table2",
]
