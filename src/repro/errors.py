"""Exception hierarchy for the repro simulator.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch simulator failures without masking genuine Python bugs.
The sub-hierarchy mirrors the major subsystems: bytecode/class-file handling,
linking and execution inside the virtual machine, the JNI layer, and the
JVMTI layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BytecodeError(ReproError):
    """Malformed bytecode: unknown opcode, bad operand, undefined label."""


class VerifyError(BytecodeError):
    """Bytecode failed structural, stack-discipline, or type verification.

    Carries structured context so callers (the classloader's fail-fast
    path, the ``repro analyze`` report) can name the offending class,
    method, instruction index, and mnemonic without parsing message
    text.  Any field may be ``None`` when the failure site does not
    know it; :func:`VerifyError.with_context` fills gaps as the error
    propagates outward.
    """

    def __init__(self, message: str, class_name=None, method=None,
                 pc=None, mnemonic=None):
        self.reason = message
        self.class_name = class_name
        self.method = method
        self.pc = pc
        self.mnemonic = mnemonic
        super().__init__(self._render())

    def _render(self) -> str:
        parts = [self.reason]
        if self.mnemonic is not None and self.mnemonic not in self.reason:
            parts.append(f"[{self.mnemonic}]")
        if self.pc is not None and f"pc {self.pc}" not in self.reason:
            parts.append(f"at pc {self.pc}")
        where = self.location()
        if where and where not in self.reason:
            parts.append(f"in {where}")
        return " ".join(parts)

    def location(self) -> str:
        """``class.method`` context string (empty when unknown)."""
        if self.class_name and self.method:
            return f"{self.class_name}.{self.method}"
        return self.class_name or self.method or ""

    def with_context(self, class_name=None, method=None, pc=None,
                     mnemonic=None) -> "VerifyError":
        """Return a copy with missing context fields filled in."""
        return VerifyError(
            self.reason,
            class_name=self.class_name or class_name,
            method=self.method or method,
            pc=self.pc if self.pc is not None else pc,
            mnemonic=self.mnemonic or mnemonic,
        )


class ClassFileError(ReproError):
    """Malformed class file or archive (bad magic, truncated data, ...)."""


class ConstantPoolError(ClassFileError):
    """Invalid constant-pool reference or entry."""


class LinkageError(ReproError):
    """A symbolic reference could not be resolved at link time."""


class ClassNotFoundError(LinkageError):
    """No class of the requested name is present on the class path."""


class NoSuchMethodError(LinkageError):
    """Method resolution failed."""


class NoSuchFieldError(LinkageError):
    """Field resolution failed."""


class UnsatisfiedLinkError(LinkageError):
    """A ``native`` method has no implementation in any loaded library."""


class VMError(ReproError):
    """Runtime failure inside the virtual machine."""


class StackOverflowSimError(VMError):
    """The simulated Java call stack exceeded its depth limit."""


class DeadlockError(VMError):
    """The scheduler found no runnable thread while threads remain alive.

    Carries the structured wait-for cycle so callers (tests, harness
    reports) can name the threads and resources involved without
    parsing message text.  ``cycle`` is a list of
    ``(waiter, resource, holder)`` triples of thread/resource names:
    *waiter* is blocked on *resource*, which is held (or will only be
    released) by *holder*.
    """

    def __init__(self, message: str, cycle=None):
        super().__init__(message)
        self.cycle = [tuple(entry) for entry in (cycle or [])]

    @staticmethod
    def render_cycle(cycle) -> str:
        """``A -[resource]-> B`` chain for messages."""
        return ", ".join(f"{waiter} -[{resource}]-> {holder}"
                         for waiter, resource, holder in cycle)


class JavaException(VMError):
    """A Java-level exception propagated out of the simulated program.

    ``class_name`` is the Java class of the thrown object and ``jobject`` the
    simulated exception instance (may be ``None`` for VM-synthesized throws).
    """

    def __init__(self, class_name: str, message: str = "", jobject=None):
        super().__init__(f"{class_name}: {message}" if message else class_name)
        self.class_name = class_name
        self.message = message
        self.jobject = jobject


class JNIError(ReproError):
    """Misuse of the JNI layer (bad method id, wrong arity, ...)."""


class JVMTIError(ReproError):
    """Misuse of the JVMTI layer (bad capability, phase error, ...)."""


class InstrumentationError(ReproError):
    """The bytecode instrumenter could not transform a class."""


class WorkloadError(ReproError):
    """A workload definition is invalid or failed self-checks."""


class HarnessError(ReproError):
    """The benchmark harness was misconfigured."""


class LedgerError(ReproError):
    """A run-ledger lookup failed (unknown or ambiguous run id)."""


class ServiceError(ReproError):
    """The warm-VM service subsystem was misused or misconfigured."""


class AdmissionError(ServiceError):
    """The service queue refused a request (bounded-queue admission).

    The 429-style structured rejection of the request path: carries the
    observed queue depth and the configured limit so callers (the load
    generator, socket clients) can report or back off without parsing
    message text.
    """

    status = 429

    def __init__(self, message: str, queue_depth: int = 0,
                 queue_limit: int = 0):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
