"""JVMTI thread-local storage.

One value slot per (agent, thread), as in ``SetThreadLocalStorage`` /
``GetThreadLocalStorage``.  Accesses are charged to the *current*
thread as agent work; passing ``thread=None`` means "current thread",
mirroring the JVMTI convention the paper's IPA exploits to avoid
materialising a thread reference.
"""

from __future__ import annotations

from typing import Dict, Optional


class ThreadLocalStorage:
    """Per-agent TLS map."""

    def __init__(self):
        self._storage: Dict[int, object] = {}

    def put(self, thread, value) -> None:
        self._storage[thread.thread_id] = value

    def get(self, thread) -> Optional[object]:
        return self._storage.get(thread.thread_id)

    def remove(self, thread) -> None:
        self._storage.pop(thread.thread_id, None)

    def __len__(self) -> int:
        return len(self._storage)
