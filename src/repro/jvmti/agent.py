"""Agent base class.

A profiling agent in this system is the analogue of a JVMTI shared
library: it gets an ``Agent_OnLoad`` moment (:meth:`on_load`) where it
requests capabilities, registers callbacks, and enables events; it may
ship native libraries (the paper's IPA exposes its transition routines
as native methods of a runtime class); and it may preprocess the class
path (static instrumentation).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class AgentBase:
    """Subclass and override the hooks you need."""

    #: Short identifier used in reports.
    name = "agent"

    def __init__(self):
        self.env = None  # set at attach time

    # -- lifecycle -------------------------------------------------------------

    def on_load(self, env) -> None:
        """``Agent_OnLoad``: request capabilities, set callbacks,
        enable events.  ``env`` is a
        :class:`~repro.jvmti.host.JVMTIAgentEnv`."""
        self.env = env

    # -- launch-time integration hooks (host side, zero simulated cost) -----------

    def native_libraries(self) -> List:
        """Native libraries the agent ships (loaded before launch)."""
        return []

    def runtime_classes(self) -> Optional[object]:
        """A :class:`~repro.classfile.archive.ClassArchive` of classes
        the agent injects on the bootclasspath (e.g. IPA's runtime
        class), or ``None``."""
        return None

    def instrument_archives(self, archives: List) -> List:
        """Static instrumentation: given the launch archives (boot +
        classpath, in order), return replacement archives.  Default:
        unchanged."""
        return archives

    # -- results ------------------------------------------------------------------

    def report(self) -> Dict:
        """Profiling results after VMDeath (free of simulated cost —
        the equivalent of reading the agent's printout)."""
        return {}
