"""JVMTI capabilities.

The subset the paper's agents need.  The critical modelled behaviour:
on the paper's HotSpot, holding ``can_generate_method_entry_events`` or
``can_generate_method_exit_events`` prevents JIT compilation for the
whole run — SPA's downfall.  ``can_set_native_method_prefix`` is a
JVMTI 1.1 capability (JDK 1.6); the host rejects it when configured in
1.0 compatibility mode.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Capabilities:
    """A JVMTI capability set (all default-off, as in ``jvmtiCapabilities``)."""

    can_generate_method_entry_events: bool = False
    can_generate_method_exit_events: bool = False
    can_generate_all_class_hook_events: bool = False
    can_set_native_method_prefix: bool = False

    def merged_with(self, other: "Capabilities") -> "Capabilities":
        return Capabilities(
            self.can_generate_method_entry_events
            or other.can_generate_method_entry_events,
            self.can_generate_method_exit_events
            or other.can_generate_method_exit_events,
            self.can_generate_all_class_hook_events
            or other.can_generate_all_class_hook_events,
            self.can_set_native_method_prefix
            or other.can_set_native_method_prefix,
        )

    @property
    def disables_jit(self) -> bool:
        """True when holding this set forces the JIT off (the HotSpot
        behaviour the paper documents in Section V)."""
        return (self.can_generate_method_entry_events
                or self.can_generate_method_exit_events)
