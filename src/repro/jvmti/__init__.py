"""JVMTI layer: the tool interface the profiling agents are written
against.

Mirrors the JVMTI 1.0/1.1 features the paper uses: events
(ThreadStart/ThreadEnd/VMInit/VMDeath/MethodEntry/MethodExit/
ClassFileLoadHook), capabilities (with the HotSpot behaviour that
requesting method-entry/exit events disables the JIT), thread-local
storage, raw monitors, JNI function interception, and native method
prefixing.  Agents interact only through their
:class:`~repro.jvmti.host.JVMTIAgentEnv`, never with VM internals —
preserving the paper's portability-by-interface argument.
"""

from repro.jvmti.capabilities import Capabilities
from repro.jvmti.events import JvmtiEvent
from repro.jvmti.tls import ThreadLocalStorage
from repro.jvmti.raw_monitor import RawMonitor
from repro.jvmti.host import JVMTIHost, JVMTIAgentEnv
from repro.jvmti.agent import AgentBase

__all__ = [
    "Capabilities",
    "JvmtiEvent",
    "ThreadLocalStorage",
    "RawMonitor",
    "JVMTIHost",
    "JVMTIAgentEnv",
    "AgentBase",
]
