"""JVMTI event kinds."""

from __future__ import annotations

import enum


class JvmtiEvent(enum.Enum):
    """The events the host can deliver (the paper's subset, plus
    VM_INIT and CLASS_FILE_LOAD_HOOK which IPA's dynamic-instrumentation
    variant uses)."""

    VM_INIT = "VMInit"
    VM_DEATH = "VMDeath"
    THREAD_START = "ThreadStart"
    THREAD_END = "ThreadEnd"
    METHOD_ENTRY = "MethodEntry"
    METHOD_EXIT = "MethodExit"
    CLASS_FILE_LOAD_HOOK = "ClassFileLoadHook"
