"""JVMTI raw monitors.

In the sequential execution model a raw monitor can never be contended,
but entering/exiting still costs cycles — the synchronization price the
paper's agents pay when folding per-thread statistics into globals at
thread termination.
"""

from __future__ import annotations

from repro.errors import JVMTIError


class RawMonitor:
    """One named raw monitor."""

    def __init__(self, name: str):
        self.name = name
        self._owner = None
        self._count = 0
        self.enter_count = 0

    def enter(self, thread) -> None:
        if self._owner is not None and self._owner is not thread:
            raise JVMTIError(
                f"raw monitor {self.name!r} contended in sequential "
                f"model ({self._owner.name} vs {thread.name})")
        self._owner = thread
        self._count += 1
        self.enter_count += 1

    def exit(self, thread) -> None:
        if self._owner is not thread:
            raise JVMTIError(
                f"raw monitor {self.name!r} exited by non-owner "
                f"{thread.name}")
        self._count -= 1
        if self._count == 0:
            self._owner = None

    @property
    def held(self) -> bool:
        return self._owner is not None
