"""The JVMTI host: event dispatch, capabilities, and per-agent
environments.

The host lives inside the VM; agents see only their
:class:`JVMTIAgentEnv`.  Event delivery charges the cost model's
dispatch cost to the current thread (tagged AGENT — profiling-induced
perturbation), and agent callbacks charge their own work on top through
:meth:`JVMTIAgentEnv.charge`.

JVMTI version modelling: the host is constructed for version 1.0 or 1.1;
``can_set_native_method_prefix`` and ``SetNativeMethodPrefix`` are
rejected under 1.0 — SPA runs fine on 1.0 (and could run on the old
JVMPI, as the paper notes), IPA needs 1.1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import JVMTIError
from repro.jvm.costmodel import ChargeTag
from repro.jvmti.capabilities import Capabilities
from repro.jvmti.events import JvmtiEvent
from repro.jvmti.raw_monitor import RawMonitor
from repro.jvmti.tls import ThreadLocalStorage

JVMTI_VERSION_1_0 = (1, 0)
JVMTI_VERSION_1_1 = (1, 1)


class JVMTIAgentEnv:
    """One agent's view of the tool interface."""

    def __init__(self, host: "JVMTIHost", agent):
        self._host = host
        self.agent = agent
        self.capabilities = Capabilities()
        self.callbacks: Dict[JvmtiEvent, Callable] = {}
        self.enabled_events: set = set()
        self.tls = ThreadLocalStorage()
        self._monitors: List[RawMonitor] = []

    # -- capabilities ------------------------------------------------------------

    def add_capabilities(self, caps: Capabilities) -> None:
        """``AddCapabilities``.  Requesting method-entry/exit event
        capabilities vetoes JIT compilation for the whole run."""
        if caps.can_set_native_method_prefix and \
                self._host.version < JVMTI_VERSION_1_1:
            raise JVMTIError(
                "can_set_native_method_prefix requires JVMTI 1.1")
        self.capabilities = self.capabilities.merged_with(caps)
        if caps.disables_jit:
            self._host.vm.jit.veto(
                "agent requested method entry/exit event capability")

    # -- events ---------------------------------------------------------------------

    def set_event_callbacks(self,
                            callbacks: Dict[JvmtiEvent, Callable]) -> None:
        """``SetEventCallbacks``.  Callback signatures:

        * VM_INIT/VM_DEATH: ``fn(env)``
        * THREAD_START/THREAD_END: ``fn(env, thread)``
        * METHOD_ENTRY: ``fn(env, thread, method)``
        * METHOD_EXIT: ``fn(env, thread, method, by_exception)``
        * CLASS_FILE_LOAD_HOOK: ``fn(env, name, data) -> bytes | None``
        """
        self.callbacks.update(callbacks)

    def enable_event(self, event: JvmtiEvent) -> None:
        """``SetEventNotificationMode(ENABLE, ...)``."""
        if event in (JvmtiEvent.METHOD_ENTRY,) and \
                not self.capabilities.can_generate_method_entry_events:
            raise JVMTIError(
                "METHOD_ENTRY requires can_generate_method_entry_events")
        if event in (JvmtiEvent.METHOD_EXIT,) and \
                not self.capabilities.can_generate_method_exit_events:
            raise JVMTIError(
                "METHOD_EXIT requires can_generate_method_exit_events")
        if event is JvmtiEvent.CLASS_FILE_LOAD_HOOK and \
                not self.capabilities.can_generate_all_class_hook_events:
            raise JVMTIError(
                "CLASS_FILE_LOAD_HOOK requires "
                "can_generate_all_class_hook_events")
        if event not in self.callbacks:
            raise JVMTIError(f"no callback registered for {event}")
        self.enabled_events.add(event)
        self._host.refresh_event_flags()

    def disable_event(self, event: JvmtiEvent) -> None:
        self.enabled_events.discard(event)
        self._host.refresh_event_flags()

    # -- thread-local storage --------------------------------------------------------

    def tls_get(self, thread=None):
        """``GetThreadLocalStorage`` (``None`` = current thread)."""
        thread = self._resolve_thread(thread)
        thread.charge(self._host.vm.cost_model.jvmti_tls_access,
                      ChargeTag.AGENT)
        return self.tls.get(thread)

    def tls_put(self, thread, value) -> None:
        """``SetThreadLocalStorage`` (``None`` = current thread)."""
        thread = self._resolve_thread(thread)
        thread.charge(self._host.vm.cost_model.jvmti_tls_access,
                      ChargeTag.AGENT)
        self.tls.put(thread, value)

    def _resolve_thread(self, thread):
        if thread is None:
            thread = self._host.vm.threads.current
            if thread is None:
                raise JVMTIError("no current thread")
        return thread

    # -- raw monitors --------------------------------------------------------------------

    def create_raw_monitor(self, name: str) -> RawMonitor:
        monitor = RawMonitor(name)
        self._monitors.append(monitor)
        return monitor

    def raw_monitor_enter(self, monitor: RawMonitor) -> None:
        thread = self._resolve_thread(None)
        thread.charge(self._host.vm.cost_model.raw_monitor,
                      ChargeTag.AGENT)
        monitor.enter(thread)

    def raw_monitor_exit(self, monitor: RawMonitor) -> None:
        thread = self._resolve_thread(None)
        monitor.exit(thread)

    # -- JNI function interception ----------------------------------------------------------

    def get_jni_function_table(self) -> Dict[str, Callable]:
        """``GetJNIFunctionTable``: a snapshot the agent may modify."""
        return self._host.vm.jni_table.snapshot()

    def set_jni_function_table(self,
                               table: Dict[str, Callable]) -> None:
        """``SetJNIFunctionTable``."""
        self._host.vm.jni_table.install(table)

    # -- native method prefixing ---------------------------------------------------------------

    def set_native_method_prefix(self, prefix: str) -> None:
        """``SetNativeMethodPrefix`` (JVMTI 1.1)."""
        if not self.capabilities.can_set_native_method_prefix:
            raise JVMTIError(
                "SetNativeMethodPrefix requires "
                "can_set_native_method_prefix")
        self._host.native_method_prefixes.append(prefix)

    # -- accounting ----------------------------------------------------------------------------------

    def charge(self, cycles: int, thread=None) -> None:
        """Charge agent work to a thread (default: current)."""
        self._resolve_thread(thread).charge(cycles, ChargeTag.AGENT)

    # -- host-library access -------------------------------------------------------------------------

    @property
    def pcl(self):
        """The PCL cycle-counter library (agents link it directly, as
        the paper's C agents linked the real PCL)."""
        return self._host.vm.pcl

    @property
    def observer(self):
        """The VM's observability sink (a no-op null sink unless the
        harness installed a live one).  Agents may record trace events
        and metrics through it; recording is free of simulated cost by
        construction — it never touches thread cycle counters."""
        return self._host.vm.obs

    @property
    def cost_model(self):
        """Read-only access to machine timing constants — the stand-in
        for the offline micro-calibration the paper used to estimate
        average wrapper cost for timestamp compensation."""
        return self._host.vm.cost_model


class JVMTIHost:
    """Event router and agent registry of one VM."""

    def __init__(self, vm, version=JVMTI_VERSION_1_1):
        self.vm = vm
        self.version = version
        self.agent_envs: List[JVMTIAgentEnv] = []
        self.native_method_prefixes: List[str] = []
        # precomputed fast-path flags (the interpreter checks these on
        # every method entry/exit)
        self.method_entry_enabled = False
        self.method_exit_enabled = False
        self._class_hook_enabled = False
        self.events_dispatched = 0
        #: Host-side per-event-type delivery counts (observability
        #: metrics source; maintaining them charges no simulated time).
        self.dispatch_counts: Dict[str, int] = {}

    def attach(self, agent) -> JVMTIAgentEnv:
        env = JVMTIAgentEnv(self, agent)
        self.agent_envs.append(env)
        return env

    def refresh_event_flags(self) -> None:
        def any_enabled(event):
            return any(event in env.enabled_events
                       for env in self.agent_envs)

        self.method_entry_enabled = any_enabled(JvmtiEvent.METHOD_ENTRY)
        self.method_exit_enabled = any_enabled(JvmtiEvent.METHOD_EXIT)
        self._class_hook_enabled = any_enabled(
            JvmtiEvent.CLASS_FILE_LOAD_HOOK)

    # -- dispatch -------------------------------------------------------------

    def _deliver(self, event: JvmtiEvent, thread, *args):
        dispatch_cost = self.vm.cost_model.jvmti_event_dispatch
        counts = self.dispatch_counts
        for env in self.agent_envs:
            if event in env.enabled_events:
                if thread is not None:
                    thread.charge(dispatch_cost, ChargeTag.AGENT)
                self.events_dispatched += 1
                counts[event.name] = counts.get(event.name, 0) + 1
                env.callbacks[event](env, *args)

    def dispatch_vm_init(self) -> None:
        self._deliver(JvmtiEvent.VM_INIT, self.vm.threads.current)

    def dispatch_vm_death(self) -> None:
        self._deliver(JvmtiEvent.VM_DEATH, self.vm.threads.current)

    def dispatch_thread_start(self, thread) -> None:
        self._deliver(JvmtiEvent.THREAD_START, thread, thread)

    def dispatch_thread_end(self, thread) -> None:
        self._deliver(JvmtiEvent.THREAD_END, thread, thread)

    def dispatch_method_entry(self, thread, method) -> None:
        self._deliver(JvmtiEvent.METHOD_ENTRY, thread, thread, method)

    def dispatch_method_exit(self, thread, method,
                             by_exception: bool) -> None:
        self._deliver(JvmtiEvent.METHOD_EXIT, thread, thread, method,
                      by_exception)

    def dispatch_class_file_load_hook(self, name: str,
                                      data: bytes) -> Optional[bytes]:
        """Offer class bytes to agents; returns transformed bytes or
        ``None`` if unchanged.  Agents chain: each sees the previous
        agent's output."""
        if not self._class_hook_enabled:
            return None
        current = data
        changed = False
        thread = self.vm.threads.current
        dispatch_cost = self.vm.cost_model.jvmti_event_dispatch
        for env in self.agent_envs:
            if JvmtiEvent.CLASS_FILE_LOAD_HOOK in env.enabled_events:
                if thread is not None:
                    thread.charge(dispatch_cost, ChargeTag.AGENT)
                self.events_dispatched += 1
                event_name = JvmtiEvent.CLASS_FILE_LOAD_HOOK.name
                self.dispatch_counts[event_name] = \
                    self.dispatch_counts.get(event_name, 0) + 1
                result = env.callbacks[JvmtiEvent.CLASS_FILE_LOAD_HOOK](
                    env, name, current)
                if result is not None:
                    current = result
                    changed = True
        return current if changed else None
