"""Clock and unit conversions.

The simulator accounts all work in integer **cycles** on a virtual CPU.
The paper's test machine was an Intel Pentium 4 at 2.66 GHz; we adopt the
same nominal clock so that "seconds" reported by the harness are cycles
divided by :data:`DEFAULT_CLOCK_HZ`.  All comparisons in the paper are
ratios (overhead percentages, native-time fractions), which are invariant
under the choice of clock.
"""

from __future__ import annotations

import math

#: Nominal clock rate of the simulated CPU (Pentium 4, 2.66 GHz).
DEFAULT_CLOCK_HZ: int = 2_660_000_000


def cycles_to_seconds(cycles: int, clock_hz: int = DEFAULT_CLOCK_HZ) -> float:
    """Convert a cycle count to seconds of virtual time."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: int = DEFAULT_CLOCK_HZ) -> int:
    """Convert seconds of virtual time to a (rounded) cycle count."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return round(seconds * clock_hz)


def overhead_percent(base: float, measured: float) -> float:
    """Overhead of ``measured`` relative to ``base``: ``(m/b - 1) * 100``.

    This is the Table I formula for execution time.  ``base`` must be
    positive; a measured value equal to base yields 0.0.
    """
    if base <= 0:
        raise ValueError(f"base must be positive, got {base}")
    return (measured / base - 1.0) * 100.0


def throughput_overhead_percent(base_ops: float, measured_ops: float) -> float:
    """Overhead for throughput metrics: ``(base/measured - 1) * 100``.

    This is the Table I formula for SPEC JBB2005, where lower throughput
    under profiling means higher overhead.
    """
    if measured_ops <= 0:
        raise ValueError(f"measured_ops must be positive, got {measured_ops}")
    return (base_ops / measured_ops - 1.0) * 100.0


def geometric_mean(values) -> float:
    """Geometric mean of a sequence of positive numbers.

    Computed in the log domain (``exp(mean(log(v)))``): a direct running
    product overflows to ``inf`` (or underflows to ``0.0``) on long or
    large-valued sequences long before the true mean leaves float range.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    for v in vals:
        if v <= 0:
            raise ValueError(f"geometric_mean requires positive values, got {v}")
    return math.exp(math.fsum(map(math.log, vals)) / len(vals))
