"""Command-line interface.

::

    repro list                      # available workloads
    repro table1 [--scale N]        # regenerate Table I
    repro table2 [--scale N]        # regenerate Table II
    repro profile WORKLOAD [...]    # run one workload under one agent
    repro trace WORKLOAD [...]      # record a Chrome/Perfetto trace
    repro metrics FILE.jsonl [...]  # summarize exported metrics
    repro analyze [...]             # static analysis: verify, CHA,
                                    # native boundary, instr. linter
    repro bench [--scale N]         # time the suite, record host perf
    repro bench --compare BASE.json # gate on host-throughput regression
    repro runs list|show|diff|trend # query the run ledger
    repro report [RUN_ID|--latest]  # self-contained HTML report
    repro serve [--socket|--port]   # warm-VM pool behind a socket
    repro loadgen [--rps N] [...]   # open/closed-loop load generator

Observability never perturbs measurement: ``--trace``/``--metrics-out``
on ``table1``/``table2`` produce byte-identical tables (the trace and
metrics files are written on the side; notices go to stderr).

Every measuring invocation (``table1``/``table2``/``profile``/
``trace``/``bench``/``analyze``) also appends a run manifest — run id,
git SHA, host, resolved config, outcome — to the run ledger
(``.repro-runs/`` by default; ``--ledger-dir`` overrides,
``--no-ledger`` opts out).  The ledger is host-side bookkeeping: the
tables are bit-identical with it on or off.

``--tier {template,interp}`` (on table1/table2/profile/trace/bench)
selects the execution tier.  The template tier is the default and is
accounting-invariant: every simulated number is bit-identical to the
plain interpreter — only host throughput changes.

``--cores N`` (same commands) selects the simulated core count.  The
default, 1, is the paper's sequential single-CPU model and is
bit-identical to the goldens; N > 1 runs the deterministic preemptive
scheduler (see DESIGN.md §9).  ``--workloads`` restricts table1/table2
to a subset of the suite, e.g. the concurrency family
(``fj-kmeans``/``actors``/``reactors``).
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from typing import List, Optional

from repro.errors import LedgerError, ServiceError
from repro.harness.config import AgentSpec, RunConfig
from repro.harness.overhead import build_table1
from repro.harness.report import render_table1, render_table2
from repro.harness.runner import execute
from repro.harness.statistics import build_table2
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.observability import (
    ObservabilityConfig,
    write_chrome_trace,
    write_folded,
    write_metrics_jsonl,
)
from repro.observability import ledger as ledger_module
from repro.observability import logging as obs_logging
from repro.observability.metrics import summarize_metrics
from repro.workloads import full_suite, get_workload, workload_names

log = obs_logging.get_logger("cli")

#: Agent vocabulary of ``--agent`` (kept sorted for error messages).
AGENT_NAMES = ("callchain", "ipa", "ipa-dynamic", "ipa-nocomp", "none",
               "offcpu", "spa")

#: Subcommands whose invocations are recorded in the run ledger.
LEDGER_COMMANDS = ("table1", "table2", "profile", "trace", "bench",
                   "analyze", "serve", "loadgen", "causal")


def _cmd_list(_args) -> int:
    for name in workload_names():
        workload = get_workload(name)
        print(f"{name:12s} {workload.description}")
    return 0


def _vm_config_from(args) -> VMConfig:
    """Map ``--tier`` to a :class:`VMConfig`.

    ``template`` (the default) runs the interpreter plus the template
    second tier; ``interp`` is the dispatch loop alone.  All simulated
    numbers are bit-identical between the two — the flag exists for
    host-throughput A/B runs and for ruling the tier out when
    debugging.
    """
    tier = getattr(args, "tier", "template")
    sanitize = getattr(args, "sanitize", "off")
    if getattr(args, "race_check", False):
        sanitize = "race"  # the cross-check needs the dynamic side
    return VMConfig(
        jit_policy=JitPolicy(
            template_tier=(tier == "template"),
            osr=(getattr(args, "osr", "on") == "on")),
        verify=getattr(args, "verify", "structural"),
        cores=getattr(args, "cores", 1),
        sanitize=sanitize)


def _add_tier_argument(subparser) -> None:
    subparser.add_argument(
        "--tier", choices=("template", "interp"), default="template",
        help=("execution tier: 'template' (interpreter + specialized-"
              "Python second tier, default) or 'interp' (dispatch loop "
              "only); simulated output is identical either way"))
    subparser.add_argument(
        "--osr", choices=("on", "off"), default="on",
        help=("on-stack replacement at interpreter loop backedges "
              "(default: on; only meaningful with --tier template); "
              "simulated output is identical either way — the switch "
              "exists for host-throughput A/B runs"))


def _add_cores_argument(subparser) -> None:
    subparser.add_argument(
        "--cores", type=_positive_int, default=1, metavar="N",
        help=("simulated CPU cores (default: 1, the paper's "
              "single-CPU sequential model; N > 1 runs the "
              "deterministic preemptive scheduler with per-core "
              "cycle clocks)"))


def _add_verify_argument(subparser) -> None:
    subparser.add_argument(
        "--verify", choices=("off", "structural", "typed"),
        default="structural",
        help=("bytecode verification at class load: 'off', "
              "'structural' (stack-discipline dataflow, default), or "
              "'typed' (abstract interpretation); host-side only — "
              "simulated numbers are identical across modes"))


def _add_sanitize_argument(subparser) -> None:
    subparser.add_argument(
        "--sanitize", choices=("off", "race"), default="off",
        help=("dynamic sanitizer: 'race' runs the happens-before "
              "vector-clock race detector alongside the run; "
              "host-side shadow state only — simulated numbers are "
              "identical with it on or off"))


def _observability_from(args) -> Optional[ObservabilityConfig]:
    trace_out = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        return None
    return ObservabilityConfig(trace=bool(trace_out),
                               metrics=bool(metrics_out))


def _write_table_observability(args, captures) -> None:
    """Write side files; notices go to stderr (as structured log
    lines) so the table on stdout stays byte-identical with
    observability off."""
    captures = [doc for doc in (captures or []) if doc]
    if getattr(args, "trace", None):
        doc = write_chrome_trace(args.trace, captures)
        log.info("trace written", events=len(doc["traceEvents"]),
                 path=args.trace)
    if getattr(args, "metrics_out", None):
        records = [record for doc in captures
                   for record in doc.get("metrics", [])]
        count = write_metrics_jsonl(args.metrics_out, records)
        log.info("metrics written", records=count,
                 path=args.metrics_out)


def _artifacts_from(args, **extra) -> dict:
    """Side-file paths the run produced, for the manifest."""
    artifacts = {}
    if getattr(args, "trace", None):
        artifacts["trace"] = args.trace
    if getattr(args, "metrics_out", None):
        artifacts["metrics"] = args.metrics_out
    artifacts.update({kind: path for kind, path in extra.items()
                      if path})
    return artifacts


def _capture_metrics_summary(captures) -> Optional[list]:
    """Aggregate per-cell metrics records for the manifest snapshot."""
    records = [record for doc in (captures or []) if doc
               for record in doc.get("metrics", [])]
    return summarize_metrics(records) if records else None


def _table_workloads(args):
    """Workloads for a table command: the full suite, or the
    ``--workloads`` subset.  Unknown names raise
    :class:`~repro.errors.WorkloadError` naming the valid families —
    callers turn that into a clean exit-2 usage error."""
    names = getattr(args, "workloads", None)
    if not names:
        return full_suite(scale=args.scale)
    return [get_workload(name, scale=args.scale) for name in names]


def _check_workload_names(names) -> Optional[str]:
    """None when every name is a registered workload; otherwise the
    usage-error message listing the valid families."""
    valid = workload_names()
    unknown = [name for name in (names or []) if name not in valid]
    if not unknown:
        return None
    return (f"unknown workload(s) {', '.join(sorted(unknown))}; "
            f"valid families: {', '.join(sorted(valid))}")


def _collect_races(raw) -> dict:
    """``workload -> [race dicts]`` from a table's raw results,
    deduplicated per (class, field)."""
    races = {}
    for workload, results in sorted(raw.items()):
        seen = set()
        for result in results.values():
            for race in result.races:
                key = (race["class"], race["field"])
                if key not in seen:
                    seen.add(key)
                    races.setdefault(workload, []).append(race)
    return races


def _report_races(races_by_workload) -> int:
    """Log confirmed dynamic races (stderr — stdout tables stay
    byte-identical); returns the total count."""
    total = 0
    for workload, races in sorted(races_by_workload.items()):
        for race in races:
            total += 1
            log.error(
                "data race confirmed", workload=workload,
                field=f"{race['class']}.{race['field']}",
                scope=race["scope"],
                prior=(f"{race['prior']['op']} by "
                       f"{race['prior']['thread']} @cycle "
                       f"{race['prior']['cycles']}: "
                       + " <- ".join(race["prior"]["stack"])),
                current=(f"{race['current']['op']} by "
                         f"{race['current']['thread']} @cycle "
                         f"{race['current']['cycles']}: "
                         + " <- ".join(race["current"]["stack"])))
    return total


def _report_thread_deaths(deaths) -> bool:
    """Log uncaught-thread deaths (stderr); True when any occurred."""
    for workload, lines in sorted((deaths or {}).items()):
        for line in lines:
            log.error("workload thread died", workload=workload,
                      detail=line)
    return bool(deaths)


def _cmd_table1(args) -> int:
    problem = _check_workload_names(getattr(args, "workloads", None))
    if problem:
        log.error(problem)
        return 2
    table = build_table1(_table_workloads(args),
                         vm_config=_vm_config_from(args),
                         runs=args.runs, jobs=args.jobs,
                         observability=_observability_from(args))
    rendered = render_table1(table)
    print(rendered)
    _write_table_observability(args, table.captures)
    workloads = {}
    for row in table.time_rows + table.throughput_rows:
        workloads[row.benchmark] = {
            "value_original": row.value_original,
            "value_spa": row.value_spa,
            "value_ipa": row.value_ipa,
            "overhead_spa_percent": row.overhead_spa_percent,
            "overhead_ipa_percent": row.overhead_ipa_percent,
        }
    args.ledger_outcome = {
        "tables": {"table1": rendered},
        "workloads": workloads,
        "instructions": sum(result.instructions
                            for results in table.raw.values()
                            for result in results.values()),
        "metrics": _capture_metrics_summary(table.captures),
        "artifacts": _artifacts_from(args),
        "thread_deaths": table.thread_deaths or None,
        "races": _collect_races(table.raw) or None,
    }
    if _report_thread_deaths(table.thread_deaths):
        log.error("table1 FAILED: workload thread(s) died with "
                  "uncaught exceptions")
        return 1
    if _report_races(args.ledger_outcome["races"] or {}):
        log.error("table1 FAILED: data race(s) confirmed by the "
                  "sanitizer")
        return 1
    return 0


def _cmd_table2(args) -> int:
    problem = _check_workload_names(getattr(args, "workloads", None))
    if problem:
        log.error(problem)
        return 2
    table = build_table2(_table_workloads(args),
                         vm_config=_vm_config_from(args),
                         runs=args.runs, jobs=args.jobs,
                         observability=_observability_from(args),
                         boundary_check=args.boundary_check,
                         race_check=args.race_check)
    rendered = render_table2(table)
    print(rendered)
    _write_table_observability(args, table.captures)
    args.ledger_outcome = {
        "tables": {"table2": rendered},
        "workloads": {row.benchmark: {
            "percent_native": row.percent_native,
            "jni_calls": row.jni_calls,
            "native_method_calls": row.native_method_calls,
            "ground_truth_percent_native":
                row.ground_truth_percent_native,
        } for row in table.rows},
        "instructions": sum(result.instructions
                            for results in table.raw.values()
                            for result in results.values()),
        "metrics": _capture_metrics_summary(table.captures),
        "artifacts": _artifacts_from(args),
        "thread_deaths": table.thread_deaths or None,
        "races": _collect_races(table.raw) or None,
        "race_check": ({name: check.to_json()
                        for name, check in table.races.items()}
                       if table.races is not None else None),
    }
    if _report_thread_deaths(table.thread_deaths):
        log.error("table2 FAILED: workload thread(s) died with "
                  "uncaught exceptions")
        return 1
    if table.boundary is not None:
        # stderr, so the table on stdout stays byte-identical
        failed = False
        for name, check in table.boundary.items():
            log.info("boundary check", workload=name,
                     detail=check.summary())
            failed = failed or not check.ok
        if failed:
            log.error("boundary check FAILED: dynamically invoked "
                      "natives missing from the static analysis")
            return 1
    if table.races is not None:
        # stderr, so the table on stdout stays byte-identical
        failed = False
        for name, check in table.races.items():
            log.info("race check", workload=name,
                     detail=check.summary())
            failed = failed or not check.ok
        if failed:
            log.error("race check FAILED: confirmed race(s) the "
                      "static lockset analysis did not predict")
            return 1
    if _report_races(args.ledger_outcome["races"] or {}):
        log.error("table2 FAILED: data race(s) confirmed by the "
                  "sanitizer")
        return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.harness.bench import (
        compare_bench,
        format_bench,
        read_bench,
        run_bench,
        write_bench,
    )

    doc = run_bench(scale=args.scale, tier=args.tier,
                    cores=getattr(args, "cores", 1),
                    osr=(getattr(args, "osr", "on") == "on"),
                    suite=getattr(args, "suite", "jvm98"))
    print(format_bench(doc))
    args.ledger_outcome = {
        "bench": doc,
        "instructions": doc["instructions"],
        "instructions_per_second": doc["instructions_per_second"],
        "workloads": {
            name: {"instructions_per_second":
                   row["instructions_per_second"]}
            for name, row in doc["per_workload"].items()},
        "artifacts": _artifacts_from(args, bench=args.output),
    }
    if args.output:
        write_bench(doc, args.output)
        print(f"wrote {args.output}")
    if args.compare:
        try:
            baseline = read_bench(args.compare)
        except OSError as exc:
            log.error("cannot read bench baseline",
                      path=args.compare, error=str(exc))
            return 2
        ok, lines = compare_bench(doc, baseline,
                                  args.max_regression)
        print("\n".join(lines))
        if not ok:
            return 1
    return 0


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (scale, runs, jobs).

    Rejecting zero/negative values here gives a one-line usage error
    instead of a crash deep inside workload construction or the
    harness.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float > 0 (rps, duration, timeout)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type: an integer >= 0 (queue limit; 0 = unbounded)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, got {value}")
    return value


def _agent_spec(name: str) -> AgentSpec:
    """argparse type for ``--agent``: unknown names exit 2 with the
    valid-agent list (a usage error, not a traceback)."""
    if name == "none":
        return AgentSpec.none()
    if name == "spa":
        return AgentSpec.spa()
    if name == "ipa":
        return AgentSpec.ipa()
    if name == "ipa-dynamic":
        return AgentSpec.ipa(instrumentation="dynamic")
    if name == "ipa-nocomp":
        return AgentSpec.ipa(compensate=False)
    if name == "callchain":
        return AgentSpec.callchain()
    if name == "offcpu":
        return AgentSpec.offcpu()
    raise argparse.ArgumentTypeError(
        f"unknown agent {name!r} (valid: {', '.join(AGENT_NAMES)})")


def _blocked_lines(result) -> List[str]:
    """Human lines for the on-CPU/blocked split (empty when the run
    never blocked, so non-I/O output is unchanged)."""
    if not result.blocked_cycles:
        return []
    lines = [f"blocked:       {result.blocked_cycles:,}",
             f"wall cycles:   {result.wall_cycles:,}"]
    for device, clock in sorted(result.device_clocks.items()):
        lines.append(f"device {device}:   {clock:,} cycles")
    for name, cycles in sorted(result.blocked_by_native.items(),
                               key=lambda item: -item[1]):
        lines.append(f"  {cycles:>12,}  {name}")
    return lines


def _blocked_outcome(result) -> dict:
    """Manifest fields for the blocked split (empty dict when the run
    never blocked — non-I/O manifests are unchanged)."""
    if not result.blocked_cycles:
        return {}
    return {"blocked_cycles": result.blocked_cycles,
            "wall_cycles": result.wall_cycles,
            "device_clocks": dict(result.device_clocks),
            "blocked_by_native": dict(result.blocked_by_native)}


def _cmd_profile(args) -> int:
    if args.flamegraph and args.agent.label not in ("callchain",
                                                    "offcpu"):
        log.error("repro profile: --flamegraph requires --agent "
                  "callchain (CPU folded stacks) or --agent offcpu "
                  "(wall-clock folded stacks with _[offcpu] frames)")
        return 2
    workload = get_workload(args.workload, scale=args.scale)
    result = execute(workload,
                     RunConfig(agent=args.agent,
                               vm_config=_vm_config_from(args),
                               runs=args.runs))
    print(f"workload:      {result.workload}")
    print(f"agent:         {result.agent_label}")
    print(f"cycles:        {result.cycles:,}")
    print(f"seconds:       {result.seconds:.6f}")
    print(f"instructions:  {result.instructions:,}")
    print(f"gt native %:   "
          f"{result.ground_truth_native_fraction * 100:.2f}")
    for line in _blocked_lines(result):
        print(line)
    if result.core_clocks is not None:
        clocks = ", ".join(f"{c:,}" for c in result.core_clocks)
        print(f"core cycles:   [{clocks}]")
    if result.thread_deaths:
        for line in result.thread_deaths:
            log.error("workload thread died", detail=line)
    if result.races:
        print(f"races:         {len(result.races)} confirmed")
        _report_races({result.workload: result.races})
    if result.operations is not None:
        print(f"operations:    {result.operations:,}")
        print(f"ops/second:    {result.operations_per_second:,.0f}")
    if result.agent_report:
        print("agent report:")
        for key, value in result.agent_report.items():
            if isinstance(value, float):
                print(f"  {key}: {value:.3f}")
            else:
                print(f"  {key}: {value}")
    if args.flamegraph:
        if args.agent.label == "offcpu":
            from repro.observability.flamegraph import \
                write_wall_folded

            lines = write_wall_folded(args.flamegraph,
                                      result.agent_object.roots)
            print(f"flamegraph:    {lines} wall-clock folded stacks "
                  f"-> {args.flamegraph}")
        else:
            lines = write_folded(args.flamegraph,
                                 result.agent_object.roots)
            print(f"flamegraph:    {lines} folded stacks -> "
                  f"{args.flamegraph}")
    workload_cells = {"cycles": result.cycles,
                      "instructions": result.instructions}
    if result.blocked_cycles:
        workload_cells["blocked_cycles"] = result.blocked_cycles
        workload_cells["wall_cycles"] = result.wall_cycles
    if result.agent_report and "percent_native" in result.agent_report:
        workload_cells["percent_native"] = \
            result.agent_report["percent_native"]
    args.ledger_outcome = {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "seconds": result.seconds,
        "agent_report": result.agent_report,
        "workloads": {result.workload: workload_cells},
        "races": ({result.workload: result.races}
                  if result.races else None),
        "artifacts": _artifacts_from(args,
                                     flamegraph=args.flamegraph),
    }
    args.ledger_outcome.update(_blocked_outcome(result))
    return 0


def _cmd_trace(args) -> int:
    """Run one workload with the tracer on; export a Chrome trace."""
    workload = get_workload(args.workload, scale=args.scale)
    observability = ObservabilityConfig(
        trace=True, metrics=bool(args.metrics_out))
    result = execute(workload,
                     RunConfig(agent=args.agent,
                               vm_config=_vm_config_from(args),
                               runs=args.runs,
                               observability=observability))
    capture = result.observability
    doc = write_chrome_trace(args.trace_out, [capture])
    print(f"workload:      {result.workload}")
    print(f"agent:         {result.agent_label}")
    print(f"cycles:        {result.cycles:,}")
    for line in _blocked_lines(result):
        print(line)
    print(f"trace events:  {len(doc['traceEvents']):,}")
    print(f"threads:       {len(capture['thread_names'])}")
    print(f"trace:         {args.trace_out} "
          f"(open in Perfetto / chrome://tracing)")
    if result.races:
        print(f"races:         {len(result.races)} confirmed")
        _report_races({result.workload: result.races})
    if args.metrics_out:
        count = write_metrics_jsonl(args.metrics_out,
                                    capture["metrics"])
        print(f"metrics:       {count} records -> {args.metrics_out}")
    args.ledger_outcome = {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "trace_events": len(doc["traceEvents"]),
        "metrics": _capture_metrics_summary([capture]),
        "workloads": {result.workload: {
            "cycles": result.cycles,
            "instructions": result.instructions}},
        "artifacts": _artifacts_from(
            args, trace=args.trace_out, metrics=args.metrics_out),
    }
    args.ledger_outcome.update(_blocked_outcome(result))
    return 0


def _cmd_causal(args) -> int:
    """COZ-style causal profiling: virtually speed one method up and
    predict the wall-clock effect; optionally validate the prediction
    by actually rescaling the cost model (DESIGN.md §13)."""
    from repro.errors import HarnessError
    from repro.harness.causal import (
        DEFAULT_SWEEP_FACTORS,
        CausalSpec,
        parse_speedup,
    )

    try:
        method, factor = parse_speedup(args.speedup)
    except HarnessError as exc:
        log.error("bad --speedup", error=str(exc))
        return 2
    workload = get_workload(args.workload, scale=args.scale)
    sweep = DEFAULT_SWEEP_FACTORS if args.sweep else ()
    spec = CausalSpec(method=method, factor=factor, virtual=True,
                      sweep=sweep)
    result = execute(workload,
                     RunConfig(vm_config=_vm_config_from(args),
                               runs=args.runs, causal=spec))
    summary = result.causal
    print(f"workload:        {result.workload}")
    print(f"method:          {method}")
    print(f"factor:          {factor:g}x")
    print(f"wall cycles:     {result.wall_cycles:,}")
    print(f"method on-CPU:   {summary['cpu_cycles']:,} cycles")
    print(f"method blocked:  {summary['device_cycles']:,} cycles")
    predicted = summary["predicted_wall_cycles"]
    print(f"predicted wall:  {predicted:,}")
    gain = (100.0 * (result.wall_cycles - predicted)
            / result.wall_cycles) if result.wall_cycles else 0.0
    print(f"predicted gain:  {gain:.2f}%")
    if summary["cpu_cycles"] == 0 and summary["device_cycles"] == 0:
        log.warning("method never ran; the prediction is vacuous",
                    method=method)
    for row in summary.get("sweep", []):
        row_gain = (100.0 * (result.wall_cycles
                             - row["predicted_wall_cycles"])
                    / result.wall_cycles) if result.wall_cycles else 0.0
        print(f"  sweep {row['factor']:>5g}x: predicted wall "
              f"{row['predicted_wall_cycles']:>14,}  "
              f"gain {row_gain:6.2f}%")
    validation = None
    status = 0
    if args.validate:
        actual_spec = CausalSpec(method=method, factor=factor,
                                 virtual=False)
        actual = execute(workload,
                         RunConfig(vm_config=_vm_config_from(args),
                                   runs=args.runs,
                                   causal=actual_spec))
        error = (100.0 * abs(actual.wall_cycles - predicted)
                 / actual.wall_cycles) if actual.wall_cycles else 0.0
        print(f"actual wall:     {actual.wall_cycles:,} "
              f"(cost model rescaled {factor:g}x)")
        print(f"prediction error: {error:.4f}% "
              f"(max {args.max_error:g}%)")
        validation = {"actual_wall_cycles": actual.wall_cycles,
                      "error_percent": error,
                      "max_error_percent": args.max_error,
                      "ok": error <= args.max_error}
        if not validation["ok"]:
            log.error("causal validation FAILED: prediction error "
                      "exceeds the bound",
                      error_percent=round(error, 4),
                      max_error_percent=args.max_error)
            status = 1
    args.ledger_outcome = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "causal": summary,
        "causal_validation": validation,
        "workloads": {result.workload: {
            "cycles": result.cycles,
            "wall_cycles": result.wall_cycles,
            "predicted_wall_cycles": predicted}},
        "artifacts": _artifacts_from(args),
    }
    args.ledger_outcome.update(_blocked_outcome(result))
    return status


def _cmd_analyze(args) -> int:
    """Static analysis over class archives: typed verifier, CHA call
    graph, native-boundary report, and (optionally) the Figure-2
    instrumentation linter.  Exits non-zero on error findings."""
    import json

    from repro.analysis import analyze_archives, record_analysis_metrics
    from repro.classfile.archive import ClassArchive
    from repro.instrument.wrapper_gen import InstrumentationConfig
    from repro.launcher import runtime_archive

    archives = []
    if not args.no_runtime:
        archives.append(runtime_archive())
    for path in args.archive:
        try:
            archives.append(ClassArchive.load(path))
        except OSError as exc:
            log.error("cannot read archive", path=path,
                      error=str(exc))
            return 2
    names = list(workload_names()) if args.suite else list(args.workload)
    for name in names:
        archives.append(get_workload(name).archive)
    if not archives:
        log.error("nothing to analyze (--no-runtime with no "
                  "--archive/--workload/--suite)")
        return 2

    instrumentation = InstrumentationConfig()
    if args.check_instrumentation:
        from repro.agents.ipa import IPA
        from repro.instrument.static_instr import (
            instrument_archives_cached,
        )
        already = any(
            method.name.startswith(instrumentation.prefix)
            for archive in archives for cf in archive.classes()
            for method in cf.methods)
        if not already:
            archives, _stats = instrument_archives_cached(
                archives, instrumentation)
        # the agent-runtime class the wrappers call into
        archives = list(archives) + [IPA().runtime_classes()]

    result = analyze_archives(
        archives,
        check_instrumentation=args.check_instrumentation,
        instrumentation=instrumentation,
        races=args.races)

    if args.call_graph:
        with open(args.call_graph, "w", encoding="utf-8") as fh:
            json.dump(result.graph.to_json(), fh, indent=1)
        log.info("call graph written",
                 methods=len(result.graph.methods),
                 sites=len(result.graph.call_sites),
                 path=args.call_graph)

    if args.metrics_out:
        from repro.observability.metrics import MetricsRegistry
        registry = MetricsRegistry()
        record_analysis_metrics(registry, result)
        count = write_metrics_jsonl(
            args.metrics_out,
            registry.as_records(labels={"source": "analyze"}))
        log.info("metrics written", records=count,
                 path=args.metrics_out)

    if args.format == "json":
        print(json.dumps(result.to_json(), indent=1))
    else:
        print(result.report.format_text())
        boundary = result.boundary
        print(f"native boundary: {len(boundary.declared_natives)} "
              f"declared natives ({len(boundary.reachable_natives)} "
              f"CHA-reachable), {len(boundary.j2n_sites)} static J2N "
              f"call sites, {len(boundary.n2j_candidates)} N2J "
              f"callback candidates")
        if result.races is not None:
            races = result.races
            if races.multithreaded:
                print(f"race analysis: "
                      f"{len(races.shared_classes)} thread-shared "
                      f"classes, {races.race_warnings} race warnings "
                      f"({races.lockset_violations} unguarded "
                      f"accesses), {races.deadlock_potentials} "
                      f"lock-order cycles")
            else:
                print("race analysis: single-threaded (no Thread "
                      "subclass instantiated) — trivially race-free")
    args.ledger_outcome = {
        "analysis_ok": result.report.ok,
        "findings": result.report.counts(),
        "classes_analyzed": result.report.classes_analyzed,
        "declared_natives": len(result.boundary.declared_natives),
        "races": (result.races.to_json()
                  if result.races is not None else None),
        "artifacts": _artifacts_from(args,
                                     call_graph=args.call_graph),
    }
    if not result.report.ok:
        return 1
    if args.strict and result.report.counts()["warning"]:
        log.error("analyze --strict: warning findings present")
        return 1
    return 0


def _cmd_metrics(args) -> int:
    """Summarize one or more exported metrics JSONL files."""
    from repro.observability.metrics import (
        format_metrics_summary,
        read_metrics_jsonl,
        summarize_metrics,
    )

    records = []
    for path in args.files:
        records.extend(read_metrics_jsonl(path))
    if not records:
        log.error("no metrics records found")
        return 1
    print(format_metrics_summary(summarize_metrics(records)))
    return 0


# -- service mode: `repro serve` and `repro loadgen` --------------------------


def _cmd_loadgen(args) -> int:
    """Drive the warm-VM pool with open- or closed-loop load."""
    from repro.observability.metrics import MetricsRegistry
    from repro.service.loadgen import (
        MANIFEST_REQUEST_CAP,
        LoadgenConfig,
        format_loadgen,
        run_loadgen,
    )

    problem = _check_workload_names(args.workloads)
    if problem:
        log.error(problem)
        return 2
    config = LoadgenConfig(
        workloads=list(args.workloads),
        duration=args.duration,
        rps=args.rps,
        concurrency=args.concurrency,
        scale=args.scale,
        seed=args.seed,
        tier=args.tier,
        verify=args.verify,
        cores=args.cores,
        workers=args.workers,
        # unbounded by default: admission is then wall-clock-free, so
        # the set of simulated outcomes is reproducible (DESIGN.md §10)
        queue_limit=(args.queue_limit
                     if args.queue_limit is not None else 0),
        timeout_seconds=args.timeout,
        cold_baseline=args.cold_start_baseline,
    )
    registry = MetricsRegistry()
    doc = run_loadgen(config, metrics=registry)
    print(format_loadgen(doc))
    manifest_doc = dict(doc)
    manifest_doc["per_request"] = \
        doc.get("per_request", [])[:MANIFEST_REQUEST_CAP]
    args.ledger_outcome = {
        "loadgen": manifest_doc,
        "metrics": summarize_metrics(
            registry.as_records(labels={"source": "loadgen"})),
        "requests_completed": doc["requests"]["completed"],
        "artifacts": _artifacts_from(args),
    }
    if doc.get("interrupted"):
        args.ledger_interrupted = True
        return 130
    return 1 if doc["requests"]["failed"] else 0


def _cmd_serve(args) -> int:
    """Run the warm-VM pool behind a local socket until interrupted."""
    from repro.observability.metrics import MetricsRegistry
    from repro.service.pool import ServiceConfig
    from repro.service.server import ServeConfig, run_server

    problem = _check_workload_names(args.preheat)
    if problem:
        log.error(problem)
        return 2
    if not args.socket and args.port is None:
        log.error("serve needs --socket PATH or --port N")
        return 2
    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        preheat=list(args.preheat or []),
        scale=args.scale,
        service=ServiceConfig(
            workers=args.workers,
            queue_limit=(args.queue_limit
                         if args.queue_limit is not None else 64),
            timeout_seconds=args.timeout,
            tier=args.tier,
            verify=args.verify,
            cores=args.cores,
        ),
    )
    registry = MetricsRegistry()
    try:
        state = run_server(config, metrics=registry)
    except ServiceError as exc:
        log.error("cannot serve", error=str(exc))
        return 2
    args.ledger_outcome = {
        "serve": {"endpoint": config.endpoint(),
                  "stats": state.get("stats")},
        "metrics": summarize_metrics(
            registry.as_records(labels={"source": "serve"})),
        "artifacts": _artifacts_from(args),
    }
    if state.get("interrupted"):
        args.ledger_interrupted = True
    return 0


# -- run ledger: `repro runs` and `repro report` ------------------------------


def _ledger_from(args) -> ledger_module.Ledger:
    return ledger_module.Ledger(ledger_module.resolve_ledger_dir(
        getattr(args, "ledger_dir", None)))


def _config_for_manifest(args) -> dict:
    """The resolved configuration a manifest records."""
    config = {}
    for key in ("workload", "workloads", "scale", "runs", "jobs",
                "tier", "verify", "cores", "boundary_check", "suite",
                "sanitize", "race_check", "races", "strict",
                "check_instrumentation", "max_regression", "compare",
                "rps", "duration", "concurrency", "seed", "workers",
                "queue_limit", "timeout", "cold_start_baseline",
                "socket", "host", "port", "preheat",
                "speedup", "sweep", "validate", "max_error"):
        if hasattr(args, key):
            config[key] = getattr(args, key)
    agent = getattr(args, "agent", None)
    if isinstance(agent, AgentSpec):
        config["agent"] = agent.label
    elif args.command == "table2":
        config["agent"] = "ipa"
    return config


def _record_run(args, argv, status: int, wall_seconds: float) -> None:
    """Append this invocation's manifest to the run ledger.

    Best-effort host-side bookkeeping: an unwritable ledger degrades
    to a warning and the command's own exit status stands.
    """
    manifest = ledger_module.new_manifest(
        args.command, _config_for_manifest(args), argv)
    if getattr(args, "ledger_interrupted", False):
        # partial-but-valid: the run was cut short by SIGINT/SIGTERM,
        # but whatever outcome the command assembled is still recorded
        manifest["interrupted"] = True
    outcome = dict(getattr(args, "ledger_outcome", None) or {})
    outcome["exit_status"] = status
    outcome["wall_seconds"] = round(wall_seconds, 4)
    instructions = outcome.get("instructions")
    if instructions and "instructions_per_second" not in outcome \
            and wall_seconds > 0:
        outcome["instructions_per_second"] = round(
            instructions / wall_seconds)
    outcome = {key: value for key, value in outcome.items()
               if value is not None}
    manifest["outcome"] = outcome
    ledger = _ledger_from(args)
    path = ledger.write(manifest)
    if path is None:
        log.warning("run ledger unwritable; manifest dropped",
                    dir=ledger.directory, run=manifest["run_id"])
    else:
        log.info("run recorded", run=manifest["run_id"], path=path)


def _cmd_runs_list(args) -> int:
    manifests = ledger_module.filter_manifests(
        _ledger_from(args).load_all(), command=args.command_filter,
        workload=args.workload, agent=args.agent, tier=args.tier)
    if args.limit:
        manifests = manifests[-args.limit:]
    print(ledger_module.format_runs_table(manifests))
    return 0


def _cmd_runs_show(args) -> int:
    print(ledger_module.format_manifest(
        _ledger_from(args).load(args.run_id)))
    return 0


def _cmd_runs_diff(args) -> int:
    ledger = _ledger_from(args)
    lines = ledger_module.diff_manifests(ledger.load(args.run_a),
                                         ledger.load(args.run_b))
    print("\n".join(lines))
    return 0


def _cmd_runs_trend(args) -> int:
    manifests = ledger_module.filter_manifests(
        _ledger_from(args).load_all(), workload=args.workload)
    ok, lines = ledger_module.trend_report(
        manifests, max_regression_percent=args.max_regression)
    print("\n".join(lines))
    return 0 if ok else 1


def _cmd_runs(args) -> int:
    try:
        return args.runs_func(args)
    except LedgerError as exc:
        log.error("ledger lookup failed", error=str(exc))
        return 2


def _cmd_report(args) -> int:
    from repro.observability.report import render_report, write_report

    ledger = _ledger_from(args)
    try:
        manifest = ledger.load(args.run_id) if args.run_id \
            else ledger.latest()
        history = ledger.load_all()
    except LedgerError as exc:
        log.error("cannot build report", error=str(exc))
        return 2
    flamegraph_text = None
    folded = (manifest.get("outcome", {}).get("artifacts") or
              {}).get("flamegraph")
    if folded:
        try:
            with open(folded, "r", encoding="utf-8") as fh:
                flamegraph_text = fh.read()
        except OSError:
            log.warning("flamegraph artifact unreadable",
                        path=folded)
    out = args.output or f"repro-report-{manifest['run_id']}.html"
    write_report(out, render_report(manifest, history=history,
                                    flamegraph_text=flamegraph_text))
    print(f"report: {manifest['run_id']} -> {out}")
    return 0


def _add_global_arguments(parser, root: bool = False) -> None:
    """Logging + ledger switches, accepted before *or* after the
    subcommand.

    The root parser carries the real defaults; subparser copies
    default to ``SUPPRESS`` so a value parsed before the subcommand
    (``repro --log-level debug table1``) is not clobbered by the
    subparser's defaults.
    """
    suppressed = argparse.SUPPRESS

    parser.add_argument(
        "--log-level", choices=obs_logging.LEVEL_NAMES,
        default="info" if root else suppressed,
        help="stderr log verbosity (default: info)")
    parser.add_argument(
        "--log-json", action="store_true",
        default=False if root else suppressed,
        help="emit log lines as JSON objects instead of key=value")
    parser.add_argument(
        "--ledger-dir", metavar="DIR",
        default=None if root else suppressed,
        help=("run-ledger directory (default: $REPRO_LEDGER_DIR or "
              f"{ledger_module.DEFAULT_LEDGER_DIR})"))
    parser.add_argument(
        "--no-ledger", action="store_true",
        default=False if root else suppressed,
        help="do not record this invocation in the run ledger")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'A Quantitative Evaluation of "
                     "the Contribution of Native Code to Java "
                     "Workloads' (IISWC 2006)"))
    _add_global_arguments(parser, root=True)
    sub = parser.add_subparsers(dest="command", required=True)

    pl = sub.add_parser("list", help="list workloads")
    _add_global_arguments(pl)
    pl.set_defaults(func=_cmd_list)

    for name, help_text, func in (
            ("table1", "regenerate Table I", _cmd_table1),
            ("table2", "regenerate Table II", _cmd_table2)):
        pt = sub.add_parser(name, help=help_text)
        pt.add_argument("--scale", type=_positive_int, default=1)
        pt.add_argument("--runs", type=_positive_int, default=1)
        pt.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for independent cells")
        pt.add_argument("--workloads", nargs="+", default=None,
                        metavar="NAME",
                        help=("restrict the table to these workloads "
                              "(default: the full suite)"))
        pt.add_argument("--trace", metavar="OUT.json", default=None,
                        help=("record per-cell traces; write merged "
                              "Chrome trace-event JSON (table output "
                              "is unchanged)"))
        pt.add_argument("--metrics-out", metavar="OUT.jsonl",
                        default=None,
                        help="write per-cell metrics records as JSONL")
        _add_tier_argument(pt)
        _add_cores_argument(pt)
        _add_verify_argument(pt)
        _add_sanitize_argument(pt)
        _add_global_arguments(pt)
        if name == "table2":
            pt.add_argument(
                "--boundary-check", action="store_true",
                help=("cross-check dynamically invoked natives "
                      "against the static native-boundary analysis "
                      "(report on stderr; exit 1 on violation)"))
            pt.add_argument(
                "--race-check", action="store_true",
                help=("cross-check sanitizer-confirmed races against "
                      "the static lockset analysis — every dynamic "
                      "race must be statically predicted (implies "
                      "--sanitize race; report on stderr; exit 1 on "
                      "violation)"))
        pt.set_defaults(func=func)

    pp = sub.add_parser("profile", help="profile one workload")
    pp.add_argument("workload")
    pp.add_argument("--agent", type=_agent_spec,
                    default=AgentSpec.ipa(),
                    help=" | ".join(AGENT_NAMES))
    pp.add_argument("--scale", type=_positive_int, default=1)
    pp.add_argument("--runs", type=_positive_int, default=1)
    pp.add_argument("--flamegraph", metavar="OUT.folded", default=None,
                    help=("write folded stacks from the CCT: CPU "
                          "cycles with --agent callchain, wall-clock "
                          "(blocked frames suffixed _[offcpu]) with "
                          "--agent offcpu"))
    _add_tier_argument(pp)
    _add_cores_argument(pp)
    _add_verify_argument(pp)
    _add_sanitize_argument(pp)
    _add_global_arguments(pp)
    pp.set_defaults(func=_cmd_profile)

    ptr = sub.add_parser(
        "trace", help="trace one workload (Chrome/Perfetto JSON)")
    ptr.add_argument("workload")
    ptr.add_argument("--agent", type=_agent_spec,
                     default=AgentSpec.none(),
                     help=" | ".join(AGENT_NAMES))
    ptr.add_argument("--scale", type=_positive_int, default=1)
    ptr.add_argument("--runs", type=_positive_int, default=1)
    ptr.add_argument("--trace-out", metavar="OUT.json",
                     default="trace.json",
                     help="Chrome trace-event JSON output path")
    ptr.add_argument("--metrics-out", metavar="OUT.jsonl",
                     default=None,
                     help="also export metrics records as JSONL")
    _add_tier_argument(ptr)
    _add_cores_argument(ptr)
    _add_verify_argument(ptr)
    _add_sanitize_argument(ptr)
    _add_global_arguments(ptr)
    ptr.set_defaults(func=_cmd_trace)

    pc = sub.add_parser(
        "causal",
        help=("COZ-style causal profiling: --speedup M=F virtually "
              "speeds method M up by factor F and predicts the "
              "wall-clock effect; --validate replays with the cost "
              "model actually rescaled"))
    pc.add_argument("workload")
    pc.add_argument("--speedup", required=True,
                    metavar="CLASS.METHOD=FACTOR",
                    help=("the what-if: qualified method name (as "
                          "printed by profile/offcpu reports) and the "
                          "hypothetical speedup factor, e.g. "
                          "java.io.RandomAccessFile.readBytes([BII)I"
                          "=2.0"))
    pc.add_argument("--sweep", action="store_true",
                    help="also predict a standard factor sweep "
                         "(1.1x .. 8x)")
    pc.add_argument("--validate", action="store_true",
                    help=("re-run with the method's costs actually "
                          "divided by the factor and compare against "
                          "the prediction (exit 1 beyond --max-error)"))
    pc.add_argument("--max-error", type=_positive_float, default=1.0,
                    metavar="PCT",
                    help="allowed |predicted-actual| wall error in "
                         "percent for --validate (default: 1.0)")
    pc.add_argument("--scale", type=_positive_int, default=1)
    pc.add_argument("--runs", type=_positive_int, default=1)
    _add_tier_argument(pc)
    _add_cores_argument(pc)
    _add_verify_argument(pc)
    _add_global_arguments(pc)
    pc.set_defaults(func=_cmd_causal)

    pm = sub.add_parser(
        "metrics", help="summarize exported metrics JSONL files")
    pm.add_argument("files", nargs="+", metavar="FILE.jsonl")
    _add_global_arguments(pm)
    pm.set_defaults(func=_cmd_metrics)

    pa = sub.add_parser(
        "analyze",
        help=("static analysis: typed verifier, CHA call graph, "
              "native boundary, instrumentation linter"))
    pa.add_argument("--workload", action="append", default=[],
                    metavar="NAME",
                    help="include a workload's archive (repeatable)")
    pa.add_argument("--archive", action="append", default=[],
                    metavar="PATH",
                    help="include a serialized archive (repeatable)")
    pa.add_argument("--suite", action="store_true",
                    help="include every workload archive")
    pa.add_argument("--no-runtime", action="store_true",
                    help="exclude the runtime library archive")
    pa.add_argument("--check-instrumentation", action="store_true",
                    help=("instrument the archives, then lint the "
                          "Figure-2 wrapper invariants"))
    pa.add_argument("--races", action="store_true",
                    help=("run the thread-escape + Eraser-lockset "
                          "race prediction and the lock-order "
                          "deadlock analysis"))
    pa.add_argument("--strict", action="store_true",
                    help="exit non-zero on warning findings, not "
                         "just errors")
    pa.add_argument("--call-graph", metavar="OUT.json", default=None,
                    help="write the CHA call graph as JSON")
    pa.add_argument("--metrics-out", metavar="OUT.jsonl", default=None,
                    help="write analysis counters as metrics JSONL")
    pa.add_argument("--format", choices=("text", "json"),
                    default="text", help="report format")
    _add_global_arguments(pa)
    pa.set_defaults(func=_cmd_analyze)

    pb = sub.add_parser(
        "bench", help="time the JVM98 suite; record host performance")
    pb.add_argument("--scale", type=_positive_int, default=1)
    pb.add_argument("--suite", choices=("jvm98", "full", "all"),
                    default="jvm98",
                    help=("workload set: 'jvm98' (the paper's seven, "
                          "default), 'full' (plus jbb2005), or 'all' "
                          "(plus the concurrency family)"))
    pb.add_argument("--output", default="BENCH_interpreter.json",
                    help="JSON file to write ('' to skip writing)")
    pb.add_argument("--compare", metavar="BASELINE.json", default=None,
                    help=("compare against a stored measurement; exit "
                          "non-zero on host-throughput regression"))
    pb.add_argument("--max-regression", type=float, default=5.0,
                    metavar="PCT",
                    help=("allowed suite-rate regression in percent "
                          "for --compare (default: 5.0)"))
    _add_tier_argument(pb)
    _add_cores_argument(pb)
    _add_global_arguments(pb)
    pb.set_defaults(func=_cmd_bench)

    pr = sub.add_parser(
        "runs", help="query the run ledger (list, show, diff, trend)")
    runs_sub = pr.add_subparsers(dest="runs_command", required=True)
    prl = runs_sub.add_parser("list", help="list recorded runs")
    prl.add_argument("--command", dest="command_filter", default=None,
                     metavar="NAME",
                     help="only runs of one subcommand")
    prl.add_argument("--workload", default=None, metavar="NAME",
                     help="only runs that measured this workload")
    prl.add_argument("--agent", default=None, metavar="NAME",
                     help="only runs under this agent")
    prl.add_argument("--tier", default=None,
                     choices=("template", "interp"),
                     help="only runs on this execution tier")
    prl.add_argument("--limit", type=_positive_int, default=None,
                     help="show only the most recent N runs")
    _add_global_arguments(prl)
    prl.set_defaults(runs_func=_cmd_runs_list)
    prs = runs_sub.add_parser("show", help="show one run manifest")
    prs.add_argument("run_id", metavar="RUN_ID",
                     help="run id (a unique prefix is enough)")
    _add_global_arguments(prs)
    prs.set_defaults(runs_func=_cmd_runs_show)
    prd = runs_sub.add_parser(
        "diff", help="config + per-cell deltas between two runs")
    prd.add_argument("run_a", metavar="RUN_A")
    prd.add_argument("run_b", metavar="RUN_B")
    _add_global_arguments(prd)
    prd.set_defaults(runs_func=_cmd_runs_diff)
    prt = runs_sub.add_parser(
        "trend",
        help=("per-workload series across the ledger with a "
              "regression verdict (non-zero exit on regression)"))
    prt.add_argument("--workload", default=None, metavar="NAME",
                     help="restrict to one workload")
    prt.add_argument("--max-regression", type=float, default=5.0,
                     metavar="PCT",
                     help=("allowed latest-vs-previous regression in "
                           "percent (default: 5.0)"))
    _add_global_arguments(prt)
    prt.set_defaults(runs_func=_cmd_runs_trend)
    _add_global_arguments(pr)
    pr.set_defaults(func=_cmd_runs)

    def add_service_arguments(subparser) -> None:
        subparser.add_argument(
            "--workers", type=_positive_int, default=2, metavar="N",
            help="pool workers, each with its own warm VMs "
                 "(default: 2)")
        subparser.add_argument(
            "--queue-limit", type=_non_negative_int, default=None,
            metavar="N",
            help="bounded-queue admission limit; requests beyond it "
                 "are rejected 429-style (0 = unbounded)")
        subparser.add_argument(
            "--timeout", type=_positive_float, default=None,
            metavar="SECONDS",
            help="per-request timeout; an expired request returns a "
                 "504-style outcome and its worker is replaced if "
                 "stuck (default: none)")
        subparser.add_argument("--scale", type=_positive_int,
                               default=1)
        _add_tier_argument(subparser)
        _add_cores_argument(subparser)
        _add_verify_argument(subparser)

    pserve = sub.add_parser(
        "serve",
        help=("run the warm-VM pool behind a local unix socket or "
              "TCP port (JSON-lines protocol)"))
    pserve.add_argument("--socket", metavar="PATH", default=None,
                        help="unix socket path to listen on")
    pserve.add_argument("--port", type=_positive_int, default=None,
                        metavar="N", help="TCP port to listen on")
    pserve.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default: 127.0.0.1)")
    pserve.add_argument("--preheat", nargs="+", default=[],
                        metavar="NAME",
                        help="pre-warm these workloads in every "
                             "worker before accepting traffic")
    add_service_arguments(pserve)
    _add_global_arguments(pserve)
    pserve.set_defaults(func=_cmd_serve)

    plg = sub.add_parser(
        "loadgen",
        help=("drive the warm-VM pool with open-loop (--rps) or "
              "closed-loop load; report latency percentiles, "
              "achieved vs offered RPS, and rejection counters"))
    plg.add_argument("--rps", type=_positive_float, default=None,
                     metavar="N",
                     help="open-loop offered rate (omit for a "
                          "closed loop at --concurrency)")
    plg.add_argument("--concurrency", type=_positive_int, default=4,
                     metavar="C",
                     help="closed-loop loopers (default: 4; ignored "
                          "with --rps)")
    plg.add_argument("--duration", type=_positive_float, default=5.0,
                     metavar="SECONDS",
                     help="experiment length (default: 5)")
    plg.add_argument("--workloads", nargs="+", default=["db"],
                     metavar="NAME",
                     help="request mix, chosen per request by the "
                          "seeded RNG (default: db)")
    plg.add_argument("--seed", type=int, default=0,
                     help="schedule/mix RNG seed (default: 0)")
    plg.add_argument("--cold-start-baseline", action="store_true",
                     help="replay the same schedule against a cold "
                          "pool and report the comparison")
    add_service_arguments(plg)
    _add_global_arguments(plg)
    plg.set_defaults(func=_cmd_loadgen)

    pre = sub.add_parser(
        "report",
        help="render a self-contained HTML report for a ledger run")
    pre.add_argument("run_id", nargs="?", default=None,
                     metavar="RUN_ID",
                     help=("run id or unique prefix (default: the "
                           "latest run)"))
    pre.add_argument("--latest", action="store_true",
                     help="report on the latest run (the default)")
    pre.add_argument("--output", "-o", metavar="OUT.html",
                     default=None,
                     help="output path (default: "
                          "repro-report-<run_id>.html)")
    _add_global_arguments(pre)
    pre.set_defaults(func=_cmd_report)
    return parser


def _sigterm_to_interrupt(_signum, _frame) -> None:
    """SIGTERM handler for long-running commands: route through the
    KeyboardInterrupt path so a partial-but-valid ledger manifest is
    flushed instead of dying with a truncated entry."""
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs_logging.configure(
        level=getattr(args, "log_level", "info"),
        json_mode=getattr(args, "log_json", False))
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM,
                                         _sigterm_to_interrupt)
    except ValueError:
        pass  # not the main thread (embedding); SIGTERM stays default
    started = time.perf_counter()
    try:
        status = args.func(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly
        return 0
    except KeyboardInterrupt:
        # serve/loadgen handle interrupts themselves; this catches the
        # rest (multi-rep tables, bench) so the ledger still gets a
        # manifest marked interrupted instead of a truncated entry
        status = 130
        args.ledger_interrupted = True
        log.warning("interrupted; flushing partial run manifest")
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    if args.command in LEDGER_COMMANDS and \
            not getattr(args, "no_ledger", False):
        _record_run(args, argv if argv is not None else sys.argv[1:],
                    status, time.perf_counter() - started)
    return status


if __name__ == "__main__":
    sys.exit(main())
