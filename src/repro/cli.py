"""Command-line interface.

::

    repro list                      # available workloads
    repro table1 [--scale N]        # regenerate Table I
    repro table2 [--scale N]        # regenerate Table II
    repro profile WORKLOAD [...]    # run one workload under one agent
    repro bench [--scale N]         # time the suite, record host perf
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.overhead import build_table1
from repro.harness.report import render_table1, render_table2
from repro.harness.runner import execute
from repro.harness.statistics import build_table2
from repro.workloads import full_suite, get_workload, workload_names


def _cmd_list(_args) -> int:
    for name in workload_names():
        workload = get_workload(name)
        print(f"{name:12s} {workload.description}")
    return 0


def _cmd_table1(args) -> int:
    table = build_table1(full_suite(scale=args.scale), runs=args.runs,
                         jobs=args.jobs)
    print(render_table1(table))
    return 0


def _cmd_table2(args) -> int:
    table = build_table2(full_suite(scale=args.scale), runs=args.runs,
                         jobs=args.jobs)
    print(render_table2(table))
    return 0


def _cmd_bench(args) -> int:
    from repro.harness.bench import format_bench, run_bench, write_bench

    doc = run_bench(scale=args.scale)
    print(format_bench(doc))
    if args.output:
        write_bench(doc, args.output)
        print(f"wrote {args.output}")
    return 0


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (scale, runs, jobs).

    Rejecting zero/negative values here gives a one-line usage error
    instead of a crash deep inside workload construction or the
    harness.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _agent_spec(name: str) -> AgentSpec:
    if name == "none":
        return AgentSpec.none()
    if name == "spa":
        return AgentSpec.spa()
    if name == "ipa":
        return AgentSpec.ipa()
    if name == "ipa-dynamic":
        return AgentSpec.ipa(instrumentation="dynamic")
    if name == "ipa-nocomp":
        return AgentSpec.ipa(compensate=False)
    raise argparse.ArgumentTypeError(f"unknown agent {name!r}")


def _cmd_profile(args) -> int:
    workload = get_workload(args.workload, scale=args.scale)
    result = execute(workload, RunConfig(agent=args.agent,
                                         runs=args.runs))
    print(f"workload:      {result.workload}")
    print(f"agent:         {result.agent_label}")
    print(f"cycles:        {result.cycles:,}")
    print(f"seconds:       {result.seconds:.6f}")
    print(f"instructions:  {result.instructions:,}")
    print(f"gt native %:   "
          f"{result.ground_truth_native_fraction * 100:.2f}")
    if result.operations is not None:
        print(f"operations:    {result.operations:,}")
        print(f"ops/second:    {result.operations_per_second:,.0f}")
    if result.agent_report:
        print("agent report:")
        for key, value in result.agent_report.items():
            if isinstance(value, float):
                print(f"  {key}: {value:.3f}")
            else:
                print(f"  {key}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'A Quantitative Evaluation of "
                     "the Contribution of Native Code to Java "
                     "Workloads' (IISWC 2006)"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(
        func=_cmd_list)

    p1 = sub.add_parser("table1", help="regenerate Table I")
    p1.add_argument("--scale", type=_positive_int, default=1)
    p1.add_argument("--runs", type=_positive_int, default=1)
    p1.add_argument("--jobs", type=_positive_int, default=1,
                    help="worker processes for independent cells")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="regenerate Table II")
    p2.add_argument("--scale", type=_positive_int, default=1)
    p2.add_argument("--runs", type=_positive_int, default=1)
    p2.add_argument("--jobs", type=_positive_int, default=1,
                    help="worker processes for independent cells")
    p2.set_defaults(func=_cmd_table2)

    pp = sub.add_parser("profile", help="profile one workload")
    pp.add_argument("workload")
    pp.add_argument("--agent", type=_agent_spec,
                    default=AgentSpec.ipa(),
                    help="none | spa | ipa | ipa-dynamic | ipa-nocomp")
    pp.add_argument("--scale", type=_positive_int, default=1)
    pp.add_argument("--runs", type=_positive_int, default=1)
    pp.set_defaults(func=_cmd_profile)

    pb = sub.add_parser(
        "bench", help="time the JVM98 suite; record host performance")
    pb.add_argument("--scale", type=_positive_int, default=1)
    pb.add_argument("--output", default="BENCH_interpreter.json",
                    help="JSON file to write ('' to skip writing)")
    pb.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly
        return 0


if __name__ == "__main__":
    sys.exit(main())
