"""Command-line interface.

::

    repro list                      # available workloads
    repro table1 [--scale N]        # regenerate Table I
    repro table2 [--scale N]        # regenerate Table II
    repro profile WORKLOAD [...]    # run one workload under one agent
    repro trace WORKLOAD [...]      # record a Chrome/Perfetto trace
    repro metrics FILE.jsonl [...]  # summarize exported metrics
    repro analyze [...]             # static analysis: verify, CHA,
                                    # native boundary, instr. linter
    repro bench [--scale N]         # time the suite, record host perf
    repro bench --compare BASE.json # gate on host-throughput regression

Observability never perturbs measurement: ``--trace``/``--metrics-out``
on ``table1``/``table2`` produce byte-identical tables (the trace and
metrics files are written on the side; notices go to stderr).

``--tier {template,interp}`` (on table1/table2/profile/trace/bench)
selects the execution tier.  The template tier is the default and is
accounting-invariant: every simulated number is bit-identical to the
plain interpreter — only host throughput changes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.config import AgentSpec, RunConfig
from repro.harness.overhead import build_table1
from repro.harness.report import render_table1, render_table2
from repro.harness.runner import execute
from repro.harness.statistics import build_table2
from repro.jit.policy import JitPolicy
from repro.jvm.machine import VMConfig
from repro.observability import (
    ObservabilityConfig,
    write_chrome_trace,
    write_folded,
    write_metrics_jsonl,
)
from repro.workloads import full_suite, get_workload, workload_names

#: Agent vocabulary of ``--agent`` (kept sorted for error messages).
AGENT_NAMES = ("callchain", "ipa", "ipa-dynamic", "ipa-nocomp", "none",
               "spa")


def _cmd_list(_args) -> int:
    for name in workload_names():
        workload = get_workload(name)
        print(f"{name:12s} {workload.description}")
    return 0


def _vm_config_from(args) -> VMConfig:
    """Map ``--tier`` to a :class:`VMConfig`.

    ``template`` (the default) runs the interpreter plus the template
    second tier; ``interp`` is the dispatch loop alone.  All simulated
    numbers are bit-identical between the two — the flag exists for
    host-throughput A/B runs and for ruling the tier out when
    debugging.
    """
    tier = getattr(args, "tier", "template")
    return VMConfig(
        jit_policy=JitPolicy(template_tier=(tier == "template")),
        verify=getattr(args, "verify", "structural"))


def _add_tier_argument(subparser) -> None:
    subparser.add_argument(
        "--tier", choices=("template", "interp"), default="template",
        help=("execution tier: 'template' (interpreter + specialized-"
              "Python second tier, default) or 'interp' (dispatch loop "
              "only); simulated output is identical either way"))


def _add_verify_argument(subparser) -> None:
    subparser.add_argument(
        "--verify", choices=("off", "structural", "typed"),
        default="structural",
        help=("bytecode verification at class load: 'off', "
              "'structural' (stack-discipline dataflow, default), or "
              "'typed' (abstract interpretation); host-side only — "
              "simulated numbers are identical across modes"))


def _observability_from(args) -> Optional[ObservabilityConfig]:
    trace_out = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        return None
    return ObservabilityConfig(trace=bool(trace_out),
                               metrics=bool(metrics_out))


def _write_table_observability(args, captures) -> None:
    """Write side files; notices go to stderr so the table on stdout
    stays byte-identical with observability off."""
    captures = [doc for doc in (captures or []) if doc]
    if getattr(args, "trace", None):
        doc = write_chrome_trace(args.trace, captures)
        print(f"trace: {len(doc['traceEvents'])} events -> "
              f"{args.trace}", file=sys.stderr)
    if getattr(args, "metrics_out", None):
        records = [record for doc in captures
                   for record in doc.get("metrics", [])]
        count = write_metrics_jsonl(args.metrics_out, records)
        print(f"metrics: {count} records -> {args.metrics_out}",
              file=sys.stderr)


def _cmd_table1(args) -> int:
    table = build_table1(full_suite(scale=args.scale),
                         vm_config=_vm_config_from(args),
                         runs=args.runs, jobs=args.jobs,
                         observability=_observability_from(args))
    print(render_table1(table))
    _write_table_observability(args, table.captures)
    return 0


def _cmd_table2(args) -> int:
    table = build_table2(full_suite(scale=args.scale),
                         vm_config=_vm_config_from(args),
                         runs=args.runs, jobs=args.jobs,
                         observability=_observability_from(args),
                         boundary_check=args.boundary_check)
    print(render_table2(table))
    _write_table_observability(args, table.captures)
    if table.boundary is not None:
        # stderr, so the table on stdout stays byte-identical
        failed = False
        for name, check in table.boundary.items():
            print(f"{name}: {check.summary()}", file=sys.stderr)
            failed = failed or not check.ok
        if failed:
            print("boundary check FAILED: dynamically invoked natives "
                  "missing from the static analysis", file=sys.stderr)
            return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.harness.bench import (
        compare_bench,
        format_bench,
        read_bench,
        run_bench,
        write_bench,
    )

    doc = run_bench(scale=args.scale, tier=args.tier)
    print(format_bench(doc))
    if args.output:
        write_bench(doc, args.output)
        print(f"wrote {args.output}")
    if args.compare:
        try:
            baseline = read_bench(args.compare)
        except OSError as exc:
            print(f"repro bench: cannot read baseline "
                  f"{args.compare}: {exc}", file=sys.stderr)
            return 2
        ok, lines = compare_bench(doc, baseline,
                                  args.max_regression)
        print("\n".join(lines))
        if not ok:
            return 1
    return 0


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (scale, runs, jobs).

    Rejecting zero/negative values here gives a one-line usage error
    instead of a crash deep inside workload construction or the
    harness.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _agent_spec(name: str) -> AgentSpec:
    """argparse type for ``--agent``: unknown names exit 2 with the
    valid-agent list (a usage error, not a traceback)."""
    if name == "none":
        return AgentSpec.none()
    if name == "spa":
        return AgentSpec.spa()
    if name == "ipa":
        return AgentSpec.ipa()
    if name == "ipa-dynamic":
        return AgentSpec.ipa(instrumentation="dynamic")
    if name == "ipa-nocomp":
        return AgentSpec.ipa(compensate=False)
    if name == "callchain":
        return AgentSpec.callchain()
    raise argparse.ArgumentTypeError(
        f"unknown agent {name!r} (valid: {', '.join(AGENT_NAMES)})")


def _cmd_profile(args) -> int:
    if args.flamegraph and args.agent.label != "callchain":
        print("repro profile: --flamegraph requires --agent callchain "
              "(the calling-context-tree profiler)", file=sys.stderr)
        return 2
    workload = get_workload(args.workload, scale=args.scale)
    result = execute(workload,
                     RunConfig(agent=args.agent,
                               vm_config=_vm_config_from(args),
                               runs=args.runs))
    print(f"workload:      {result.workload}")
    print(f"agent:         {result.agent_label}")
    print(f"cycles:        {result.cycles:,}")
    print(f"seconds:       {result.seconds:.6f}")
    print(f"instructions:  {result.instructions:,}")
    print(f"gt native %:   "
          f"{result.ground_truth_native_fraction * 100:.2f}")
    if result.operations is not None:
        print(f"operations:    {result.operations:,}")
        print(f"ops/second:    {result.operations_per_second:,.0f}")
    if result.agent_report:
        print("agent report:")
        for key, value in result.agent_report.items():
            if isinstance(value, float):
                print(f"  {key}: {value:.3f}")
            else:
                print(f"  {key}: {value}")
    if args.flamegraph:
        lines = write_folded(args.flamegraph,
                             result.agent_object.roots)
        print(f"flamegraph:    {lines} folded stacks -> "
              f"{args.flamegraph}")
    return 0


def _cmd_trace(args) -> int:
    """Run one workload with the tracer on; export a Chrome trace."""
    workload = get_workload(args.workload, scale=args.scale)
    observability = ObservabilityConfig(
        trace=True, metrics=bool(args.metrics_out))
    result = execute(workload,
                     RunConfig(agent=args.agent,
                               vm_config=_vm_config_from(args),
                               runs=args.runs,
                               observability=observability))
    capture = result.observability
    doc = write_chrome_trace(args.trace_out, [capture])
    print(f"workload:      {result.workload}")
    print(f"agent:         {result.agent_label}")
    print(f"cycles:        {result.cycles:,}")
    print(f"trace events:  {len(doc['traceEvents']):,}")
    print(f"threads:       {len(capture['thread_names'])}")
    print(f"trace:         {args.trace_out} "
          f"(open in Perfetto / chrome://tracing)")
    if args.metrics_out:
        count = write_metrics_jsonl(args.metrics_out,
                                    capture["metrics"])
        print(f"metrics:       {count} records -> {args.metrics_out}")
    return 0


def _cmd_analyze(args) -> int:
    """Static analysis over class archives: typed verifier, CHA call
    graph, native-boundary report, and (optionally) the Figure-2
    instrumentation linter.  Exits non-zero on error findings."""
    import json

    from repro.analysis import analyze_archives, record_analysis_metrics
    from repro.classfile.archive import ClassArchive
    from repro.instrument.wrapper_gen import InstrumentationConfig
    from repro.launcher import runtime_archive

    archives = []
    if not args.no_runtime:
        archives.append(runtime_archive())
    for path in args.archive:
        try:
            archives.append(ClassArchive.load(path))
        except OSError as exc:
            print(f"repro analyze: cannot read archive {path}: {exc}",
                  file=sys.stderr)
            return 2
    names = list(workload_names()) if args.suite else list(args.workload)
    for name in names:
        archives.append(get_workload(name).archive)
    if not archives:
        print("repro analyze: nothing to analyze (--no-runtime with "
              "no --archive/--workload/--suite)", file=sys.stderr)
        return 2

    instrumentation = InstrumentationConfig()
    if args.check_instrumentation:
        from repro.agents.ipa import IPA
        from repro.instrument.static_instr import (
            instrument_archives_cached,
        )
        already = any(
            method.name.startswith(instrumentation.prefix)
            for archive in archives for cf in archive.classes()
            for method in cf.methods)
        if not already:
            archives, _stats = instrument_archives_cached(
                archives, instrumentation)
        # the agent-runtime class the wrappers call into
        archives = list(archives) + [IPA().runtime_classes()]

    result = analyze_archives(
        archives,
        check_instrumentation=args.check_instrumentation,
        instrumentation=instrumentation)

    if args.call_graph:
        with open(args.call_graph, "w", encoding="utf-8") as fh:
            json.dump(result.graph.to_json(), fh, indent=1)
        print(f"call graph: {len(result.graph.methods)} methods, "
              f"{len(result.graph.call_sites)} sites -> "
              f"{args.call_graph}", file=sys.stderr)

    if args.metrics_out:
        from repro.observability.metrics import (
            MetricsRegistry,
            write_metrics_jsonl,
        )
        registry = MetricsRegistry()
        record_analysis_metrics(registry, result)
        count = write_metrics_jsonl(
            args.metrics_out,
            registry.as_records(labels={"source": "analyze"}))
        print(f"metrics: {count} records -> {args.metrics_out}",
              file=sys.stderr)

    if args.format == "json":
        print(json.dumps(result.to_json(), indent=1))
    else:
        print(result.report.format_text())
        boundary = result.boundary
        print(f"native boundary: {len(boundary.declared_natives)} "
              f"declared natives ({len(boundary.reachable_natives)} "
              f"CHA-reachable), {len(boundary.j2n_sites)} static J2N "
              f"call sites, {len(boundary.n2j_candidates)} N2J "
              f"callback candidates")
    return 0 if result.report.ok else 1


def _cmd_metrics(args) -> int:
    """Summarize one or more exported metrics JSONL files."""
    from repro.observability.metrics import (
        format_metrics_summary,
        read_metrics_jsonl,
        summarize_metrics,
    )

    records = []
    for path in args.files:
        records.extend(read_metrics_jsonl(path))
    if not records:
        print("no metrics records found", file=sys.stderr)
        return 1
    print(format_metrics_summary(summarize_metrics(records)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'A Quantitative Evaluation of "
                     "the Contribution of Native Code to Java "
                     "Workloads' (IISWC 2006)"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(
        func=_cmd_list)

    for name, help_text, func in (
            ("table1", "regenerate Table I", _cmd_table1),
            ("table2", "regenerate Table II", _cmd_table2)):
        pt = sub.add_parser(name, help=help_text)
        pt.add_argument("--scale", type=_positive_int, default=1)
        pt.add_argument("--runs", type=_positive_int, default=1)
        pt.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for independent cells")
        pt.add_argument("--trace", metavar="OUT.json", default=None,
                        help=("record per-cell traces; write merged "
                              "Chrome trace-event JSON (table output "
                              "is unchanged)"))
        pt.add_argument("--metrics-out", metavar="OUT.jsonl",
                        default=None,
                        help="write per-cell metrics records as JSONL")
        _add_tier_argument(pt)
        _add_verify_argument(pt)
        if name == "table2":
            pt.add_argument(
                "--boundary-check", action="store_true",
                help=("cross-check dynamically invoked natives "
                      "against the static native-boundary analysis "
                      "(report on stderr; exit 1 on violation)"))
        pt.set_defaults(func=func)

    pp = sub.add_parser("profile", help="profile one workload")
    pp.add_argument("workload")
    pp.add_argument("--agent", type=_agent_spec,
                    default=AgentSpec.ipa(),
                    help=" | ".join(AGENT_NAMES))
    pp.add_argument("--scale", type=_positive_int, default=1)
    pp.add_argument("--runs", type=_positive_int, default=1)
    pp.add_argument("--flamegraph", metavar="OUT.folded", default=None,
                    help=("write folded stacks from the callchain CCT "
                          "(requires --agent callchain)"))
    _add_tier_argument(pp)
    _add_verify_argument(pp)
    pp.set_defaults(func=_cmd_profile)

    ptr = sub.add_parser(
        "trace", help="trace one workload (Chrome/Perfetto JSON)")
    ptr.add_argument("workload")
    ptr.add_argument("--agent", type=_agent_spec,
                     default=AgentSpec.none(),
                     help=" | ".join(AGENT_NAMES))
    ptr.add_argument("--scale", type=_positive_int, default=1)
    ptr.add_argument("--runs", type=_positive_int, default=1)
    ptr.add_argument("--trace-out", metavar="OUT.json",
                     default="trace.json",
                     help="Chrome trace-event JSON output path")
    ptr.add_argument("--metrics-out", metavar="OUT.jsonl",
                     default=None,
                     help="also export metrics records as JSONL")
    _add_tier_argument(ptr)
    _add_verify_argument(ptr)
    ptr.set_defaults(func=_cmd_trace)

    pm = sub.add_parser(
        "metrics", help="summarize exported metrics JSONL files")
    pm.add_argument("files", nargs="+", metavar="FILE.jsonl")
    pm.set_defaults(func=_cmd_metrics)

    pa = sub.add_parser(
        "analyze",
        help=("static analysis: typed verifier, CHA call graph, "
              "native boundary, instrumentation linter"))
    pa.add_argument("--workload", action="append", default=[],
                    metavar="NAME",
                    help="include a workload's archive (repeatable)")
    pa.add_argument("--archive", action="append", default=[],
                    metavar="PATH",
                    help="include a serialized archive (repeatable)")
    pa.add_argument("--suite", action="store_true",
                    help="include every workload archive")
    pa.add_argument("--no-runtime", action="store_true",
                    help="exclude the runtime library archive")
    pa.add_argument("--check-instrumentation", action="store_true",
                    help=("instrument the archives, then lint the "
                          "Figure-2 wrapper invariants"))
    pa.add_argument("--call-graph", metavar="OUT.json", default=None,
                    help="write the CHA call graph as JSON")
    pa.add_argument("--metrics-out", metavar="OUT.jsonl", default=None,
                    help="write analysis counters as metrics JSONL")
    pa.add_argument("--format", choices=("text", "json"),
                    default="text", help="report format")
    pa.set_defaults(func=_cmd_analyze)

    pb = sub.add_parser(
        "bench", help="time the JVM98 suite; record host performance")
    pb.add_argument("--scale", type=_positive_int, default=1)
    pb.add_argument("--output", default="BENCH_interpreter.json",
                    help="JSON file to write ('' to skip writing)")
    pb.add_argument("--compare", metavar="BASELINE.json", default=None,
                    help=("compare against a stored measurement; exit "
                          "non-zero on host-throughput regression"))
    pb.add_argument("--max-regression", type=float, default=5.0,
                    metavar="PCT",
                    help=("allowed suite-rate regression in percent "
                          "for --compare (default: 5.0)"))
    _add_tier_argument(pb)
    pb.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly
        return 0


if __name__ == "__main__":
    sys.exit(main())
