"""Self-contained HTML observability reports from run manifests.

``repro report`` turns one ledger manifest (plus the surrounding
ledger history) into a single static HTML page — no JavaScript
libraries, no external assets, stdlib only — embedding:

* the run's provenance and resolved configuration;
* Table I/II both as HTML tables (from the structured per-workload
  numbers) and as the byte-exact rendered text;
* overhead bar charts (SPA and IPA panels side by side — their
  magnitudes differ by orders of magnitude, so each panel gets its
  own scale rather than one unreadable shared axis);
* for ``loadgen`` runs, a latency histogram, a throughput-over-time
  panel (offered vs completed per second), and the warm-pool vs
  cold-start comparison when the baseline experiment ran;
* headline metric counter tiles plus the full metrics summary;
* the folded-stack flamegraph re-rendered as an inline icicle SVG
  (Java frames blue, native frames orange — the paper's boundary,
  visible at a glance; hover any frame for its cycle share);
* a cross-run trend section (per-workload sparklines over the
  ledger's history).

Charts follow one fixed two-slot palette (blue = IPA/Java, orange =
SPA/native), validated for contrast and color-vision-deficiency
separation on both the light and dark surfaces; the page honors
``prefers-color-scheme``.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Tuple

from repro.observability.ledger import trend_series

#: Two-slot categorical palette (light, dark) — validated for CVD
#: separation and >= 3:1 surface contrast in both modes.
_BLUE = ("#2a78d6", "#3987e5")
_ORANGE = ("#eb6834", "#d95926")

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px 32px 48px;
  background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --muted: #898781; --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --blue: #2a78d6; --orange: #eb6834;
}
@media (prefers-color-scheme: dark) {
  body {
    background: #0d0d0d; color: #ffffff;
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --blue: #3987e5; --orange: #d95926;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
section {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 16px;
}
table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
th, td { padding: 3px 12px 3px 0; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--muted); font-weight: 500;
     border-bottom: 1px solid var(--grid); }
pre { overflow-x: auto; color: var(--ink-2); font-size: 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  border: 1px solid var(--border); border-radius: 6px;
  padding: 10px 14px; min-width: 130px;
}
.tile .v { font-size: 20px; }
.tile .k { color: var(--muted); font-size: 12px; }
.panes { display: flex; flex-wrap: wrap; gap: 24px; }
.legend { color: var(--ink-2); font-size: 12px; margin: 4px 0 8px; }
.swatch { display: inline-block; width: 10px; height: 10px;
          border-radius: 2px; margin: 0 4px 0 10px; }
svg text { fill: var(--ink-2); font: 11px system-ui, sans-serif; }
svg .muted { fill: var(--muted); }
svg .frame-label { fill: #ffffff; }
details summary { color: var(--muted); cursor: pointer; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


# -- header, config, tables ---------------------------------------------------


def _header_section(manifest: Dict) -> str:
    provenance = manifest.get("provenance", {})
    sha = provenance.get("git_sha") or "unknown"
    dirty = " (dirty)" if provenance.get("git_dirty") else ""
    tiles = []
    outcome = manifest.get("outcome", {})
    for key, label in (("wall_seconds", "wall seconds"),
                       ("instructions", "instructions"),
                       ("instructions_per_second", "instr / host s")):
        value = outcome.get(key)
        if value is not None:
            tiles.append(f'<div class="tile"><div class="v">'
                         f'{_fmt(value)}</div>'
                         f'<div class="k">{_esc(label)}</div></div>')
    return (
        f"<h1>repro run {_esc(manifest.get('run_id', '?'))}</h1>"
        f'<p class="sub">{_esc(manifest.get("command", "?"))} · '
        f"{_esc(provenance.get('timestamp_utc', '?'))} · "
        f"{_esc(provenance.get('hostname', '?'))} · "
        f"git {_esc(sha[:12])}{_esc(dirty)} · "
        f"python {_esc(provenance.get('python', '?'))}</p>"
        + (f'<div class="tiles">{"".join(tiles)}</div>' if tiles
           else ""))


def _config_section(manifest: Dict) -> str:
    config = manifest.get("config", {})
    if not config:
        return ""
    cells = "".join(
        f"<tr><td>{_esc(key)}</td><td>{_esc(config[key])}</td></tr>"
        for key in sorted(config))
    return (f"<section><h2>Configuration</h2><table>"
            f"<tr><th>option</th><th>value</th></tr>{cells}"
            f"</table></section>")


def _tables_section(manifest: Dict) -> str:
    outcome = manifest.get("outcome", {})
    parts = []
    workloads = outcome.get("workloads") or {}
    fields = sorted({field for cells in workloads.values()
                     for field in cells})
    if workloads and fields:
        head = "".join(f"<th>{_esc(f.replace('_', ' '))}</th>"
                       for f in fields)
        body = []
        for name in sorted(workloads):
            cells = workloads[name]
            row = "".join(
                f"<td>{_fmt(cells[f]) if f in cells else '–'}</td>"
                for f in fields)
            body.append(f"<tr><td>{_esc(name)}</td>{row}</tr>")
        parts.append(f"<table><tr><th>benchmark</th>{head}</tr>"
                     f"{''.join(body)}</table>")
    for name in sorted(outcome.get("tables") or {}):
        parts.append(
            f"<details><summary>rendered {_esc(name)} "
            f"(byte-exact)</summary><pre>"
            f"{_esc(outcome['tables'][name])}</pre></details>")
    if not parts:
        return ""
    return f"<section><h2>Results</h2>{''.join(parts)}</section>"


# -- overhead bar charts ------------------------------------------------------


def _bar_panel(title: str, color_var: str,
               rows: List[Tuple[str, float]], unit: str = "%") -> str:
    """One single-series horizontal bar chart with direct labels."""
    if not rows:
        return ""
    width, bar_h, gap, label_w = 520, 18, 6, 96
    top = 22
    peak = max((abs(v) for _, v in rows)) or 1.0
    span = width - label_w - 110
    height = top + len(rows) * (bar_h + gap)
    parts = [f'<svg width="{width}" height="{height}" '
             f'role="img" aria-label="{_esc(title)}">',
             f'<text x="0" y="14">{_esc(title)}</text>']
    for i, (name, value) in enumerate(rows):
        y = top + i * (bar_h + gap)
        w = max(1.0, abs(value) / peak * span)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 13}" '
            f'text-anchor="end">{_esc(name)}</text>'
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" '
            f'height="{bar_h}" rx="3" fill="var({color_var})">'
            f'<title>{_esc(name)}: {value:,.2f}{unit}</title></rect>'
            f'<text x="{label_w + w + 6:.1f}" y="{y + 13}">'
            f'{value:,.2f}{unit}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _overhead_section(manifest: Dict) -> str:
    workloads = manifest.get("outcome", {}).get("workloads") or {}
    spa = [(n, workloads[n]["overhead_spa_percent"])
           for n in sorted(workloads)
           if "overhead_spa_percent" in workloads[n]]
    ipa = [(n, workloads[n]["overhead_ipa_percent"])
           for n in sorted(workloads)
           if "overhead_ipa_percent" in workloads[n]]
    native = [(n, workloads[n]["percent_native"])
              for n in sorted(workloads)
              if "percent_native" in workloads[n]]
    panes = []
    if spa:
        panes.append(_bar_panel("SPA overhead [%]", "--orange", spa))
    if ipa:
        panes.append(_bar_panel("IPA overhead [%]", "--blue", ipa))
    if not panes and native:
        panes.append(_bar_panel("time in native code [%]", "--orange",
                                native))
    if not panes:
        return ""
    note = ("<p class='legend'>Each panel has its own scale — SPA and "
            "IPA overheads differ by orders of magnitude.</p>"
            if spa and ipa else "")
    return (f"<section><h2>Overhead</h2>{note}"
            f'<div class="panes">{"".join(panes)}</div></section>')


# -- loadgen ------------------------------------------------------------------


def _column_panel(title: str,
                  columns: List[Tuple[str, List[Tuple[str, float]]]],
                  labels: List[str]) -> str:
    """Vertical grouped bars: ``columns`` is ``[(series_color_var,
    [(name, value), ...]), ...]`` — every series the same length as
    ``labels``."""
    if not labels or not columns:
        return ""
    groups = len(labels)
    bar_w, group_gap, left, top, bottom = 14, 10, 8, 22, 18
    chart_h = 110
    series_n = len(columns)
    group_w = series_n * bar_w + group_gap
    width = left + groups * group_w + 8
    height = top + chart_h + bottom
    peak = max((value for _, rows in columns
                for _, value in rows), default=0) or 1.0
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="{_esc(title)}">',
             f'<text x="0" y="14">{_esc(title)}</text>']
    for g in range(groups):
        gx = left + g * group_w
        for s, (color_var, rows) in enumerate(columns):
            name, value = rows[g]
            h = value / peak * chart_h
            y = top + chart_h - h
            parts.append(
                f'<rect x="{gx + s * bar_w:.1f}" y="{y:.1f}" '
                f'width="{bar_w - 2}" height="{max(h, 0.5):.1f}" '
                f'rx="2" fill="var({color_var})">'
                f'<title>{_esc(name)}: {value:,.0f}</title></rect>')
        label = labels[g]
        if groups <= 24 or g % 2 == 0:
            parts.append(
                f'<text class="muted" x="{gx + series_n * bar_w / 2}" '
                f'y="{top + chart_h + 13}" text-anchor="middle">'
                f'{_esc(label)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _loadgen_latency_panel(doc: Dict) -> str:
    histogram = doc.get("latency_histogram") or {}
    bounds = histogram.get("bounds_ms") or []
    counts = histogram.get("counts") or []
    if not bounds or len(counts) != len(bounds) + 1:
        return ""
    labels = [f"≤{b:g}" for b in bounds] + [f">{bounds[-1]:g}"]
    rows = list(zip([f"{lab} ms" for lab in labels], counts))
    # trim empty buckets at both ends so the occupied range is legible
    first = next((i for i, (_, c) in enumerate(rows) if c), None)
    if first is None:
        return ""
    last = max(i for i, (_, c) in enumerate(rows) if c)
    rows = rows[first:last + 1]
    labels = labels[first:last + 1]
    return _column_panel("request latency [ms]",
                         [("--blue", [(n, float(c)) for n, c in rows])],
                         labels)


def _loadgen_timeline_panel(doc: Dict) -> str:
    timeline = doc.get("timeline") or []
    if not timeline:
        return ""
    labels = [str(row.get("second", i))
              for i, row in enumerate(timeline)]
    offered = [(f"second {row.get('second', i)}: offered",
                float(row.get("offered", 0)))
               for i, row in enumerate(timeline)]
    completed = [(f"second {row.get('second', i)}: completed",
                  float(row.get("completed", 0)))
                 for i, row in enumerate(timeline)]
    return _column_panel("throughput over time [req/s]",
                         [("--orange", offered), ("--blue", completed)],
                         labels)


def _loadgen_section(manifest: Dict) -> str:
    doc = manifest.get("outcome", {}).get("loadgen")
    if not doc:
        return ""
    latency = doc.get("latency_ms") or {}
    requests = doc.get("requests") or {}
    tiles = []
    for value, label in (
            (doc.get("offered_rps"), "offered rps"),
            (doc.get("achieved_rps"), "achieved rps"),
            (doc.get("saturation_rps"), "saturation rps"),
            (latency.get("p50"), "p50 ms"),
            (latency.get("p95"), "p95 ms"),
            (latency.get("p99"), "p99 ms"),
            (requests.get("rejected"), "rejected"),
            (requests.get("timeout"), "timed out")):
        if value is not None:
            tiles.append(f'<div class="tile"><div class="v">'
                         f'{_fmt(value)}</div>'
                         f'<div class="k">{_esc(label)}</div></div>')
    panes = [panel for panel in (_loadgen_latency_panel(doc),
                                 _loadgen_timeline_panel(doc)) if panel]
    parts = [f'<div class="tiles">{"".join(tiles)}</div>']
    if panes:
        parts.append(
            '<p class="legend">'
            '<span class="swatch" style="background:var(--orange)">'
            "</span>offered"
            '<span class="swatch" style="background:var(--blue)">'
            "</span>completed</p>"
            f'<div class="panes">{"".join(panes)}</div>')
    cold = doc.get("cold_baseline")
    if cold:
        cold_latency = cold.get("latency_ms") or {}
        rows = []
        for key in ("p50", "p95", "p99", "max", "mean"):
            warm_v = latency.get(key)
            cold_v = cold_latency.get(key)
            if warm_v is None or cold_v is None:
                continue
            rows.append(f"<tr><td>{_esc(key)} ms</td>"
                        f"<td>{_fmt(warm_v)}</td>"
                        f"<td>{_fmt(cold_v)}</td></tr>")
        rows.append(f"<tr><td>achieved rps</td>"
                    f"<td>{_fmt(doc.get('achieved_rps', 0))}</td>"
                    f"<td>{_fmt(cold.get('achieved_rps', 0))}</td>"
                    f"</tr>")
        parts.append(
            "<h2>Warm pool vs cold-start baseline</h2>"
            "<table><tr><th>measure</th><th>warm pool</th>"
            "<th>cold start</th></tr>" + "".join(rows) + "</table>")
    interrupted = (" (interrupted — partial run)"
                   if doc.get("interrupted") else "")
    return (f"<section><h2>Load generation{_esc(interrupted)}</h2>"
            + "".join(parts) + "</section>")


# -- blocked time + causal profiling (DESIGN.md §13) --------------------------


def _blocked_section(manifest: Dict) -> str:
    """On-CPU vs blocked split and the causal-experiment table, for
    runs over the blocking-I/O natives; empty for everything else."""
    outcome = manifest.get("outcome", {})
    blocked = outcome.get("blocked_cycles")
    causal = outcome.get("causal")
    if not blocked and not causal:
        return ""
    parts = []
    wall = outcome.get("wall_cycles")
    if blocked and wall:
        on_cpu = wall - blocked
        rows = [("on-CPU", 100.0 * on_cpu / wall),
                ("blocked", 100.0 * blocked / wall)]
        parts.append(_bar_panel("share of wall time [%]", "--orange",
                                rows))
        tiles = [(wall, "wall cycles"), (on_cpu, "on-CPU cycles"),
                 (blocked, "blocked cycles")]
        parts.insert(0, '<div class="tiles">' + "".join(
            f'<div class="tile"><div class="v">{_fmt(v)}</div>'
            f'<div class="k">{_esc(label)}</div></div>'
            for v, label in tiles) + "</div>")
        devices = outcome.get("device_clocks") or {}
        if devices:
            rows = "".join(
                f"<tr><td>{_esc(device)}</td>"
                f"<td>{_fmt(devices[device])}</td></tr>"
                for device in sorted(devices))
            parts.append("<table><tr><th>device timeline</th>"
                         "<th>final clock [cycles]</th></tr>"
                         + rows + "</table>")
        by_native = outcome.get("blocked_by_native") or {}
        if by_native:
            rows = "".join(
                f"<tr><td>{_esc(name)}</td>"
                f"<td>{_fmt(cycles)}</td></tr>"
                for name, cycles in sorted(by_native.items(),
                                           key=lambda kv: -kv[1]))
            parts.append("<table><tr><th>blocking native</th>"
                         "<th>blocked [cycles]</th></tr>"
                         + rows + "</table>")
    if causal:
        predicted = causal.get("predicted_wall_cycles")
        base = causal.get("wall_cycles") or wall
        rows = [f"<tr><td>{_esc(causal.get('method', '?'))}</td>"
                f"<td>{causal.get('factor', 0):g}x</td>"
                f"<td>{_fmt(predicted) if predicted else '–'}</td>"
                f"<td>{100.0 * (base - predicted) / base:,.2f}%</td>"
                "</tr>"
                if predicted and base else ""]
        for sweep_row in causal.get("sweep") or []:
            p = sweep_row.get("predicted_wall_cycles")
            if not p or not base:
                continue
            rows.append(
                f"<tr><td></td><td>{sweep_row['factor']:g}x</td>"
                f"<td>{_fmt(p)}</td>"
                f"<td>{100.0 * (base - p) / base:,.2f}%</td></tr>")
        parts.append(
            "<p class='legend'>COZ-style what-if: predicted wall time "
            "were the method's costs divided by the factor</p>"
            "<table><tr><th>method</th><th>speedup</th>"
            "<th>predicted wall [cycles]</th><th>gain</th></tr>"
            + "".join(rows) + "</table>")
        validation = outcome.get("causal_validation")
        if validation:
            verdict = ("ok" if validation.get("ok")
                       else "FAILED")
            parts.append(
                f"<p class='legend'>validation: actual rescaled wall "
                f"{_fmt(validation.get('actual_wall_cycles', 0))} "
                f"cycles, prediction error "
                f"{validation.get('error_percent', 0):.4f}% "
                f"(budget {validation.get('max_error_percent', 0):g}%)"
                f" — {verdict}</p>")
    return ("<section><h2>Blocked time &amp; causal profiling</h2>"
            + "".join(parts) + "</section>")


# -- metrics ------------------------------------------------------------------

#: Headline counters promoted to stat tiles (when present).
_HEADLINE_METRICS = (
    "instructions_retired", "method_invocations",
    "native_invocations", "jni_invocations", "classes_loaded",
    "jit_compiled_methods",
)


_HOT_METHOD_STATS = ("invocations", "osr_entries", "deopts", "tier",
                     "pic_depth")


def _hot_methods_section(manifest: Dict) -> str:
    """Top-N hottest compiled methods: tier, OSR entries, deopt count,
    and deepest invokevirtual PIC — from the ``hot_method_*`` gauges
    the harness records."""
    rows = manifest.get("outcome", {}).get("metrics") or []
    methods: Dict[str, Dict[str, int]] = {}
    for row in rows:
        name = row.get("name", "")
        if not name.startswith("hot_method_"):
            continue
        for stat in _HOT_METHOD_STATS:
            suffix = f"_{stat}"
            if name.endswith(suffix):
                slug = name[len("hot_method_"):-len(suffix)]
                methods.setdefault(slug, {})[stat] = row.get(
                    "max", row.get("total", 0))
                break
    if not methods:
        return ""
    ordered = sorted(methods.items(),
                     key=lambda kv: -kv[1].get("invocations", 0))
    table_rows = []
    for slug, stats in ordered:
        tier = "template" if stats.get("tier") else "interpreter"
        depth = stats.get("pic_depth", 0)
        pic = "mega" if depth == -1 else (str(depth) if depth else "—")
        table_rows.append(
            f"<tr><td>{_esc(slug)}</td><td>{_esc(tier)}</td>"
            f"<td>{_fmt(stats.get('invocations', 0))}</td>"
            f"<td>{_fmt(stats.get('osr_entries', 0))}</td>"
            f"<td>{_fmt(stats.get('deopts', 0))}</td>"
            f"<td>{_esc(pic)}</td></tr>")
    return (
        "<section><h2>Hottest methods</h2><table>"
        "<tr><th>method</th><th>tier</th><th>invocations</th>"
        "<th>OSR entries</th><th>deopts</th><th>PIC depth</th></tr>"
        + "".join(table_rows) + "</table></section>")


def _races_section(manifest: Dict) -> str:
    """Concurrency correctness: confirmed dynamic races (two stacks,
    cycle timestamps), ``--race-check`` verdicts, and the static
    analysis summary from ``analyze --races`` runs."""
    outcome = manifest.get("outcome", {})
    races = outcome.get("races")
    check = outcome.get("race_check")
    static = None
    if isinstance(races, dict) and "multithreaded" in races:
        static, races = races, None  # an `analyze --races` manifest
    if not races and not check and static is None:
        return ""
    parts = []
    if static is not None:
        if not static.get("multithreaded"):
            parts.append("<p class='legend'>single-threaded: no "
                         "Thread subclass instantiated — trivially "
                         "race-free</p>")
        else:
            parts.append(
                "<table><tr><th>thread-shared classes</th>"
                "<th>race warnings</th><th>unguarded accesses</th>"
                "<th>lock-order cycles</th></tr>"
                f"<tr><td>{_fmt(len(static.get('shared_classes', [])))}"
                f"</td><td>{_fmt(static.get('race_warnings', 0))}</td>"
                f"<td>{_fmt(static.get('lockset_violations', 0))}</td>"
                f"<td>{_fmt(static.get('deadlock_potentials', 0))}</td>"
                "</tr></table>")
            fields = static.get("racy_fields") or []
            if fields:
                rows = "".join(f"<tr><td>{_esc(c)}</td>"
                               f"<td>{_esc(f)}</td></tr>"
                               for c, f in fields)
                parts.append("<details><summary>racy fields</summary>"
                             "<table><tr><th>class</th><th>field</th>"
                             f"</tr>{rows}</table></details>")
    if check:
        rows = []
        for workload, verdict in sorted(check.items()):
            ok = "ok" if verdict.get("ok") else "FAILED"
            rows.append(
                f"<tr><td>{_esc(workload)}</td><td>{_esc(ok)}</td>"
                f"<td>{_fmt(len(verdict.get('confirmed') or []))}</td>"
                f"<td>{_fmt(len(verdict.get('static_warnings', [])))}"
                f"</td></tr>")
        parts.append(
            "<p class='legend'>race check: every race the sanitizer "
            "confirmed must carry a static race-warning (dynamic ⊆ "
            "static)</p><table><tr><th>workload</th><th>verdict</th>"
            "<th>confirmed</th><th>static warnings</th></tr>"
            + "".join(rows) + "</table>")
    if races:
        rows = []
        for workload, confirmed in sorted(races.items()):
            for race in confirmed:
                accesses = []
                for side in ("prior", "current"):
                    access = race.get(side) or {}
                    stack = " &larr; ".join(
                        _esc(frame) for frame in access.get("stack", []))
                    accesses.append(
                        f"{_esc(access.get('op', '?'))} by "
                        f"{_esc(access.get('thread', '?'))} @cycle "
                        f"{_fmt(access.get('cycles', 0))}<br>"
                        f"<small>{stack}</small>")
                rows.append(
                    f"<tr><td>{_esc(workload)}</td>"
                    f"<td>{_esc(race.get('class', '?'))}."
                    f"{_esc(race.get('field', '?'))}</td>"
                    f"<td>{accesses[0]}</td><td>{accesses[1]}</td>"
                    "</tr>")
        parts.append(
            "<p class='legend'>confirmed data races — unordered "
            "accesses to the same field, with both stacks</p>"
            "<table><tr><th>workload</th><th>field</th>"
            "<th>prior access</th><th>current access</th></tr>"
            + "".join(rows) + "</table>")
    return ("<section><h2>Concurrency correctness</h2>"
            + "".join(parts) + "</section>")


def _metrics_section(manifest: Dict) -> str:
    rows = manifest.get("outcome", {}).get("metrics") or []
    if not rows:
        return ""
    by_name = {row["name"]: row for row in rows if "name" in row}
    tiles = []
    for name in _HEADLINE_METRICS:
        row = by_name.get(name)
        if row and "total" in row:
            tiles.append(
                f'<div class="tile"><div class="v">'
                f'{_fmt(row["total"])}</div>'
                f'<div class="k">{_esc(name.replace("_", " "))}'
                f"</div></div>")
    table_rows = []
    for row in rows:
        if row.get("type") == "counter":
            value = _fmt(row.get("total", 0))
        elif row.get("type") == "gauge":
            value = (f"min={_fmt(row.get('min', 0))} "
                     f"max={_fmt(row.get('max', 0))}")
        else:
            value = (f"count={_fmt(row.get('count', 0))} "
                     f"sum={_fmt(row.get('sum', 0))}")
        table_rows.append(
            f"<tr><td>{_esc(row.get('name', '?'))}</td>"
            f"<td>{_esc(row.get('type', '?'))}</td>"
            f"<td>{value}</td></tr>")
    return (
        "<section><h2>Metrics</h2>"
        + (f'<div class="tiles">{"".join(tiles)}</div>' if tiles
           else "")
        + "<details><summary>all instruments</summary><table>"
          "<tr><th>metric</th><th>type</th><th>value</th></tr>"
        + "".join(table_rows) + "</table></details></section>")


# -- flamegraph icicle --------------------------------------------------------


class _FrameNode:
    __slots__ = ("name", "native", "blocked", "self_weight",
                 "children")

    def __init__(self, name: str, native: bool = False,
                 blocked: bool = False):
        self.name = name
        self.native = native
        self.blocked = blocked
        self.self_weight = 0
        self.children: Dict[str, "_FrameNode"] = {}

    @property
    def total(self) -> int:
        return self.self_weight + sum(c.total
                                      for c in self.children.values())


def _parse_folded(text: str) -> _FrameNode:
    """Rebuild the stack trie from ``thread;frame;... weight`` lines."""
    root = _FrameNode("all")
    for line in text.splitlines():
        line = line.strip()
        if not line or " " not in line:
            continue
        stack, _, weight_text = line.rpartition(" ")
        try:
            weight = int(weight_text)
        except ValueError:
            continue
        node = root
        for frame in stack.split(";"):
            native = frame.endswith("_[k]")
            blocked = frame.endswith("_[offcpu]")
            name = frame[:-4] if native else (
                frame[:-9] if blocked else frame)
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _FrameNode(
                    name, native, blocked)
            child.native = child.native or native
            child.blocked = child.blocked or blocked
            node = child
        node.self_weight += weight
    return root


def _flamegraph_svg(root: _FrameNode, width: int = 960,
                    row_h: int = 17) -> str:
    """Icicle layout: root on top, callees below, x ∝ cycles."""
    total = root.total
    if total <= 0:
        return ""
    boxes: List[Tuple[float, float, int, _FrameNode]] = []

    def layout(node: _FrameNode, x: float, w: float,
               depth: int) -> None:
        boxes.append((x, w, depth, node))
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            cw = w * child.total / node.total if node.total else 0
            if cw >= 1.0:  # sub-pixel frames are unresolvable anyway
                layout(child, cx, cw, depth + 1)
            cx += cw

    layout(root, 0.0, float(width), 0)
    depth_max = max(depth for _, _, depth, _ in boxes)
    height = (depth_max + 1) * row_h + 4
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="flamegraph icicle">']
    for x, w, depth, node in boxes:
        y = depth * row_h
        color = "var(--orange)" if node.native else "var(--blue)"
        if node.blocked:
            color = "var(--muted)"
        if depth == 0:
            color = "var(--grid)"
        share = node.total / total * 100.0
        suffix = " (blocked)" if node.blocked else ""
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{max(w - 1, 0.5):.1f}" '
            f'height="{row_h - 1}" rx="2" fill="{color}">'
            f"<title>{_esc(node.name)}{suffix}: {node.total:,} cycles "
            f"({share:.1f}%)</title></rect>")
        if w > 40:
            label = node.name
            if len(label) * 6.5 > w - 8:
                label = label[: max(int((w - 8) / 6.5) - 1, 1)] + "…"
            cls = "muted" if depth == 0 else "frame-label"
            parts.append(f'<text class="{cls}" x="{x + 4:.1f}" '
                         f'y="{y + 12}">{_esc(label)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _flamegraph_section(folded_text: Optional[str]) -> str:
    if not folded_text:
        return ""
    svg = _flamegraph_svg(_parse_folded(folded_text))
    if not svg:
        return ""
    return (
        "<section><h2>Flamegraph</h2>"
        '<p class="legend">inclusive simulated cycles, root at top'
        '<span class="swatch" style="background:var(--blue)"></span>'
        "Java frames"
        '<span class="swatch" style="background:var(--orange)"></span>'
        "native frames"
        '<span class="swatch" style="background:var(--muted)"></span>'
        "blocked (off-CPU) time</p>" + svg + "</section>")


# -- cross-run trends ---------------------------------------------------------


def _sparkline_svg(values: List[float], width: int = 150,
                   height: int = 34) -> str:
    if len(values) < 2:
        return '<span class="legend">n/a</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 4
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values))
    lx, ly = points.rsplit(" ", 1)[-1].split(",")
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" '
        f'stroke="var(--blue)" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{lx}" cy="{ly}" r="3" fill="var(--blue)"/>'
        f"</svg>")


def _trend_section(history: Optional[List[Dict]]) -> str:
    if not history or len(history) < 2:
        return ""
    series = trend_series(history)
    rows = []
    for (workload, field) in sorted(series):
        points = series[(workload, field)]
        if len(points) < 2:
            continue
        values = [v for _, v in points]
        rows.append(
            f"<tr><td>{_esc(workload)}</td>"
            f"<td>{_esc(field.replace('_', ' '))}</td>"
            f"<td>{_sparkline_svg(values)}</td>"
            f"<td>{_fmt(values[-1])}</td>"
            f"<td>{len(values)}</td></tr>")
    if not rows:
        return ""
    return (
        "<section><h2>Cross-run trends</h2>"
        f'<p class="legend">{len(history)} ledger runs, oldest to '
        "newest; the dot marks this ledger's latest value.</p>"
        "<table><tr><th>benchmark</th><th>series</th><th></th>"
        "<th>last</th><th>runs</th></tr>"
        + "".join(rows) + "</table></section>")


# -- assembly -----------------------------------------------------------------


def render_report(manifest: Dict,
                  history: Optional[List[Dict]] = None,
                  flamegraph_text: Optional[str] = None) -> str:
    """One self-contained HTML page for ``manifest``.

    ``history`` is the full ledger (oldest first) for the trend
    section; ``flamegraph_text`` is the folded-stack artifact's
    contents when the run produced one.
    """
    sections = [
        _header_section(manifest),
        _config_section(manifest),
        _tables_section(manifest),
        _loadgen_section(manifest),
        _overhead_section(manifest),
        _blocked_section(manifest),
        _hot_methods_section(manifest),
        _races_section(manifest),
        _metrics_section(manifest),
        _flamegraph_section(flamegraph_text),
        _trend_section(history),
    ]
    title = _esc(f"repro run {manifest.get('run_id', '?')}")
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        '<meta charset="utf-8">'
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1">'
        f"<title>{title}</title><style>{_CSS}</style></head><body>"
        + "".join(part for part in sections if part)
        + "</body></html>\n")


def write_report(path: str, html_text: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html_text)
