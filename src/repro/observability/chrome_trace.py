"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

A capture document (see
:meth:`repro.observability.sink.ObservabilitySink.capture`) becomes one
*process* in the trace; merging Table I/II cells therefore yields one
process per (workload × agent) cell, each with its simulated threads as
tracks.  Timestamps are simulated cycles emitted in the ``ts``
microsecond field — absolute host time is meaningless here, and
Perfetto renders the integer timeline fine; the ``metadata`` block
records the convention and the simulated clock rate.
"""

from __future__ import annotations

import json
from typing import List


def chrome_trace_doc(captures: List[dict]) -> dict:
    """Build the ``{"traceEvents": [...]}`` JSON object format."""
    trace_events: List[dict] = []
    clock_hz = 0
    for pid, capture in enumerate(captures, start=1):
        labels = capture.get("labels", {})
        clock_hz = capture.get("clock_hz", clock_hz) or clock_hz
        process_name = "/".join(
            str(labels[key]) for key in ("workload", "agent")
            if key in labels) or f"cell-{pid}"
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        })
        for tid_text, thread_name in capture.get("thread_names",
                                                 {}).items():
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": int(tid_text), "args": {"name": thread_name},
            })
        for ph, name, cat, tid, ts, dur, args in capture.get("events",
                                                             []):
            event = {"ph": ph, "name": name, "cat": cat, "pid": pid,
                     "tid": tid, "ts": ts}
            if ph == "X":
                event["dur"] = dur
            if ph == "i":
                event["s"] = "t"  # instant scoped to its thread
            if args:
                event["args"] = args
            trace_events.append(event)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {
            "time_unit": "simulated-cycles",
            "clock_hz": clock_hz,
            "note": ("ts values are per-thread simulated cycle counts "
                     "(PCL virtual counters), not host microseconds"),
        },
    }


def write_chrome_trace(path: str, captures: List[dict]) -> dict:
    """Write the merged trace; returns the document for inspection."""
    doc = chrome_trace_doc(captures)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return doc
