"""The run ledger: an append-only directory of run manifests.

Every measuring CLI invocation (``table1``/``table2``/``profile``/
``trace``/``bench``/``analyze``/``serve``/``loadgen``) writes one
**run manifest** — run id,
provenance (:mod:`~repro.observability.runinfo`), the fully resolved
configuration, and the outcome (rendered tables, per-workload numbers,
wall time, instructions per host second, metrics snapshot, artifact
paths) — into the ledger directory as ``<run_id>.json``.  Run ids sort
chronologically, so the directory listing *is* the run history.

The ledger is host-side bookkeeping only, same invariant as the
metrics registry: tables and cycle accounting are bit-identical with
the ledger on or off.  Writing is best-effort — an unwritable ledger
directory degrades to a warning, never a failed measurement run.

On top of the manifest store sit the ``repro runs`` views: ``list``
(filterable), ``show``, ``diff`` (config + per-cell deltas), and
``trend`` (per-workload series across the ledger with a regression
verdict reusing the ``--max-regression`` threshold semantics of
``repro bench --compare``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import LedgerError
from repro.observability.runinfo import collect_provenance, new_run_id

#: Default ledger directory, relative to the invoking directory.
DEFAULT_LEDGER_DIR = ".repro-runs"
#: Environment override for the default (tests point it at a tmpdir).
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
#: Manifest schema version (bump on incompatible shape changes).
MANIFEST_VERSION = 1

#: Numeric per-workload fields diffed/trended across runs, with the
#: direction in which *larger* is better (+1) or worse (-1).
WORKLOAD_FIELDS = (
    ("instructions_per_second", +1),
    ("overhead_spa_percent", -1),
    ("overhead_ipa_percent", -1),
    ("percent_native", 0),
    ("jni_calls", 0),
    ("native_method_calls", 0),
    # blocked-I/O runs (DESIGN.md §13); absent from non-I/O manifests
    ("wall_cycles", -1),
    ("blocked_cycles", 0),
    ("predicted_wall_cycles", 0),
)


def resolve_ledger_dir(explicit: Optional[str] = None) -> str:
    """CLI flag > ``REPRO_LEDGER_DIR`` > ``.repro-runs``."""
    if explicit:
        return explicit
    return os.environ.get(LEDGER_DIR_ENV) or DEFAULT_LEDGER_DIR


def new_manifest(command: str, config: Dict,
                 argv: Optional[List[str]] = None) -> Dict:
    """A manifest skeleton; the caller fills ``outcome`` after the run."""
    return {
        "version": MANIFEST_VERSION,
        "run_id": new_run_id(),
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "provenance": collect_provenance(),
        "config": dict(config),
        "outcome": {},
    }


class Ledger:
    """One ledger directory: write manifests, read them back."""

    def __init__(self, directory: str):
        self.directory = directory

    # -- writing --------------------------------------------------------------

    def write(self, manifest: Dict) -> Optional[str]:
        """Append ``manifest``; returns its path, or ``None`` on an
        unwritable ledger (the caller warns — the run never fails)."""
        path = os.path.join(self.directory,
                            f"{manifest['run_id']}.json")
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=1, sort_keys=True)
                fh.write("\n")
        except OSError:
            return None
        return path

    # -- reading --------------------------------------------------------------

    def run_ids(self) -> List[str]:
        """All run ids, oldest first (run ids sort chronologically)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(name[:-5] for name in names
                      if name.endswith(".json"))

    def load(self, run_id: str) -> Dict:
        """Load one manifest by exact id or unique prefix."""
        ids = self.run_ids()
        if run_id in ids:
            matches = [run_id]
        else:
            matches = [rid for rid in ids if rid.startswith(run_id)]
        if not matches:
            raise LedgerError(
                f"no run {run_id!r} in ledger {self.directory!r} "
                f"({len(ids)} runs recorded)")
        if len(matches) > 1:
            raise LedgerError(
                f"run id prefix {run_id!r} is ambiguous: "
                f"{', '.join(matches)}")
        path = os.path.join(self.directory, f"{matches[0]}.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise LedgerError(f"cannot read manifest {path}: {exc}")

    def load_all(self) -> List[Dict]:
        """Every readable manifest, oldest first; unreadable or
        corrupt files are skipped (the ledger is append-only and may
        contain a partially written manifest after a crash)."""
        manifests = []
        for run_id in self.run_ids():
            try:
                manifests.append(self.load(run_id))
            except LedgerError:
                continue
        return manifests

    def latest(self) -> Dict:
        ids = self.run_ids()
        if not ids:
            raise LedgerError(
                f"ledger {self.directory!r} is empty")
        return self.load(ids[-1])


# -- `repro runs list` --------------------------------------------------------


def filter_manifests(manifests: Iterable[Dict],
                     command: Optional[str] = None,
                     workload: Optional[str] = None,
                     agent: Optional[str] = None,
                     tier: Optional[str] = None) -> List[Dict]:
    """Subset of ``manifests`` matching every given filter."""
    selected = []
    for manifest in manifests:
        config = manifest.get("config", {})
        if command and manifest.get("command") != command:
            continue
        if agent and config.get("agent") != agent:
            continue
        if tier and config.get("tier") != tier:
            continue
        if workload and workload not in _workloads_of(manifest):
            continue
        selected.append(manifest)
    return selected


def _workloads_of(manifest: Dict) -> List[str]:
    names = list(manifest.get("outcome", {}).get("workloads", {}))
    single = manifest.get("config", {}).get("workload")
    if single and single not in names:
        names.append(single)
    return names


def format_runs_table(manifests: List[Dict]) -> str:
    """The ``repro runs list`` view, oldest first."""
    headers = ("run id", "command", "agent", "tier", "wall s",
               "instr/s", "git")
    rows = []
    for manifest in manifests:
        config = manifest.get("config", {})
        outcome = manifest.get("outcome", {})
        provenance = manifest.get("provenance", {})
        sha = provenance.get("git_sha") or "-"
        if sha != "-":
            sha = sha[:8] + ("*" if provenance.get("git_dirty") else "")
        rate = outcome.get("instructions_per_second")
        wall = outcome.get("wall_seconds")
        rows.append((
            manifest.get("run_id", "?"),
            manifest.get("command", "?"),
            str(config.get("agent", "-")),
            str(config.get("tier", "-")),
            f"{wall:.2f}" if isinstance(wall, (int, float)) else "-",
            f"{rate:,}" if isinstance(rate, (int, float)) else "-",
            sha,
        ))
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in
                               zip(row, widths)))
    return "\n".join(lines)


# -- `repro runs show` --------------------------------------------------------


def format_manifest(manifest: Dict) -> str:
    """A flat, greppable rendering of one manifest."""
    lines = [f"run:       {manifest.get('run_id')}",
             f"command:   {manifest.get('command')}"]
    provenance = manifest.get("provenance", {})
    for key in ("timestamp_utc", "hostname", "git_sha", "git_dirty",
                "python", "platform"):
        if key in provenance:
            lines.append(f"{key + ':':10s} {provenance[key]}")
    config = manifest.get("config", {})
    if config:
        lines.append("config:")
        for key in sorted(config):
            lines.append(f"  {key} = {config[key]}")
    outcome = manifest.get("outcome", {})
    for key in ("exit_status", "wall_seconds", "instructions",
                "instructions_per_second", "blocked_cycles",
                "wall_cycles"):
        if key in outcome:
            lines.append(f"{key + ':':10s} {outcome[key]}")
    for device in sorted(outcome.get("device_clocks") or {}):
        lines.append(f"device:    {device} = "
                     f"{outcome['device_clocks'][device]:,} cycles")
    artifacts = outcome.get("artifacts") or {}
    for kind in sorted(artifacts):
        lines.append(f"artifact:  {kind} -> {artifacts[kind]}")
    workloads = outcome.get("workloads") or {}
    if workloads:
        lines.append("workloads:")
        for name in sorted(workloads):
            cells = workloads[name]
            detail = " ".join(
                f"{field}={cells[field]:,.2f}"
                if isinstance(cells.get(field), float)
                else f"{field}={cells[field]:,}"
                for field, _ in WORKLOAD_FIELDS if field in cells)
            lines.append(f"  {name:<12} {detail}")
    for table_name in sorted(outcome.get("tables") or {}):
        lines.append(f"table:     {table_name} (embedded)")
    return "\n".join(lines)


# -- `repro runs diff` --------------------------------------------------------


def diff_manifests(a: Dict, b: Dict) -> List[str]:
    """Human-readable config + per-cell delta report between two runs."""
    lines = [f"A: {a.get('run_id')}  ({a.get('command')}, "
             f"{a.get('provenance', {}).get('timestamp_utc')})",
             f"B: {b.get('run_id')}  ({b.get('command')}, "
             f"{b.get('provenance', {}).get('timestamp_utc')})"]

    for key in ("git_sha", "git_dirty", "hostname", "python"):
        va = a.get("provenance", {}).get(key)
        vb = b.get("provenance", {}).get(key)
        if va != vb:
            lines.append(f"provenance {key}: {va} -> {vb}")

    config_a = a.get("config", {})
    config_b = b.get("config", {})
    # tier and cores change what a run *measures*, so they are always
    # shown — even unchanged — to make comparability explicit
    for key in ("tier", "cores"):
        va, vb = config_a.get(key), config_b.get(key)
        if va == vb:
            lines.append(f"config {key}: {va} (same)")
        else:
            lines.append(f"config {key}: {va} -> {vb}")
    for key in sorted(set(config_a) | set(config_b)):
        if key in ("tier", "cores"):
            continue
        va, vb = config_a.get(key), config_b.get(key)
        if va != vb:
            lines.append(f"config {key}: {va} -> {vb}")

    outcome_a = a.get("outcome", {})
    outcome_b = b.get("outcome", {})
    # on-CPU/blocked split: shown (with explicit "(same)" markers)
    # whenever either run blocked, so I/O comparisons always state the
    # off-CPU side; non-I/O diffs are unchanged
    if outcome_a.get("blocked_cycles") is not None or \
            outcome_b.get("blocked_cycles") is not None:
        for key in ("blocked_cycles", "wall_cycles"):
            va = outcome_a.get(key)
            vb = outcome_b.get(key)
            if va == vb:
                lines.append(f"outcome {key}: {va:,} (same)")
            else:
                lines.append(f"outcome {key}: "
                             f"{va if va is None else format(va, ',')}"
                             f" -> "
                             f"{vb if vb is None else format(vb, ',')}")
        dev_a = outcome_a.get("device_clocks") or {}
        dev_b = outcome_b.get("device_clocks") or {}
        for device in sorted(set(dev_a) | set(dev_b)):
            va, vb = dev_a.get(device), dev_b.get(device)
            if va == vb:
                lines.append(f"device {device}: {va:,} cycles (same)")
            else:
                lines.append(
                    f"device {device}: "
                    f"{va if va is None else format(va, ',')} -> "
                    f"{vb if vb is None else format(vb, ',')} cycles")

    wl_a = a.get("outcome", {}).get("workloads") or {}
    wl_b = b.get("outcome", {}).get("workloads") or {}
    for name in sorted(set(wl_a) & set(wl_b)):
        for field, _ in WORKLOAD_FIELDS:
            va, vb = wl_a[name].get(field), wl_b[name].get(field)
            if va is None or vb is None or va == vb:
                continue
            delta = vb - va
            rel = f" ({delta / va * 100.0:+.1f}%)" if va else ""
            lines.append(f"{name}.{field}: {va:,.2f} -> {vb:,.2f}"
                         f"{rel}")
    only_a = sorted(set(wl_a) - set(wl_b))
    only_b = sorted(set(wl_b) - set(wl_a))
    if only_a:
        lines.append(f"workloads only in A: {', '.join(only_a)}")
    if only_b:
        lines.append(f"workloads only in B: {', '.join(only_b)}")

    met_a = _counter_totals(a)
    met_b = _counter_totals(b)
    for name in sorted(set(met_a) & set(met_b)):
        if met_a[name] != met_b[name]:
            lines.append(f"metric {name}: {met_a[name]:,} -> "
                         f"{met_b[name]:,}")
    return lines


def _counter_totals(manifest: Dict) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for row in manifest.get("outcome", {}).get("metrics") or []:
        if row.get("type") == "counter" and "total" in row:
            totals[row["name"]] = row["total"]
    return totals


# -- `repro runs trend` -------------------------------------------------------


def has_workload_cells(manifest: Dict) -> bool:
    """Does this manifest contribute at least one numeric
    per-workload cell to a trend series?  ``analyze``, ``loadgen``
    and ``serve`` runs record other outcome shapes and do not."""
    workloads = manifest.get("outcome", {}).get("workloads") or {}
    return any(
        isinstance(cells.get(field), (int, float))
        for cells in workloads.values()
        for field, _ in WORKLOAD_FIELDS)


def trend_series(manifests: List[Dict]
                 ) -> Dict[Tuple[str, str], List[Tuple[str, float]]]:
    """``{(workload, field): [(run_id, value), ...]}`` oldest first.

    Only the fields in :data:`WORKLOAD_FIELDS` with a defined "better"
    direction contribute rows a regression verdict can be computed
    for; the neutral fields still appear so ``trend`` can display
    them.
    """
    series: Dict[Tuple[str, str], List[Tuple[str, float]]] = {}
    for manifest in manifests:
        run_id = manifest.get("run_id", "?")
        workloads = manifest.get("outcome", {}).get("workloads") or {}
        for name in sorted(workloads):
            for field, _ in WORKLOAD_FIELDS:
                value = workloads[name].get(field)
                if isinstance(value, (int, float)):
                    series.setdefault((name, field), []).append(
                        (run_id, float(value)))
    return series


def trend_report(manifests: List[Dict],
                 max_regression_percent: Optional[float] = None,
                 fields: Optional[Iterable[str]] = None
                 ) -> Tuple[bool, List[str]]:
    """Per-workload trend lines and an overall regression verdict.

    The verdict reuses the ``repro bench --compare`` threshold
    semantics: for each monotonic series (larger-is-better instr/s,
    smaller-is-better overhead %), the latest value is compared to the
    previous one and flagged when it moved in the bad direction by
    more than ``max_regression_percent``.  ``ok`` is ``False`` only
    when a threshold was given and at least one series regressed.
    """
    direction = dict(WORKLOAD_FIELDS)
    wanted = set(fields) if fields is not None else None
    # run kinds without per-workload cells (analyze, loadgen, serve)
    # are skipped with a note instead of contributing empty series
    skipped: Dict[str, int] = {}
    charted = []
    for manifest in manifests:
        if has_workload_cells(manifest):
            charted.append(manifest)
        else:
            command = manifest.get("command", "?")
            skipped[command] = skipped.get(command, 0) + 1
    series = trend_series(charted)
    lines: List[str] = []
    for command in sorted(skipped):
        lines.append(f"note: skipped {skipped[command]} {command} "
                     f"run(s) with no per-workload cells")
    regressed: List[str] = []
    for (workload, field) in sorted(series):
        if wanted is not None and field not in wanted:
            continue
        points = series[(workload, field)]
        values = [value for _, value in points]
        spark = render_sparkline(values)
        head = f"{workload}.{field}"
        lines.append(f"{head:<44} n={len(values):<3d} {spark}  "
                     f"last={values[-1]:,.2f}")
        sense = direction.get(field, 0)
        if (max_regression_percent is None or sense == 0
                or len(values) < 2 or values[-2] == 0):
            continue
        change = (values[-1] - values[-2]) / abs(values[-2]) * 100.0
        bad = -change if sense > 0 else change
        if bad > max_regression_percent:
            regressed.append(
                f"REGRESSION {head}: {values[-2]:,.2f} -> "
                f"{values[-1]:,.2f} ({change:+.1f}%, budget "
                f"{max_regression_percent:.1f}%) between runs "
                f"{points[-2][0]} and {points[-1][0]}")
    if not series:
        lines.append("no per-workload series in the ledger yet")
    if regressed:
        lines.extend(regressed)
        return False, lines
    if max_regression_percent is not None:
        lines.append(f"OK: every series within the "
                     f"{max_regression_percent:.1f}% regression budget")
    return True, lines


#: Eight-level unicode bars for the terminal sparkline.
_SPARK_TICKS = "▁▂▃▄▅▆▇█"


def render_sparkline(values: List[float], width: int = 16) -> str:
    """A fixed-width unicode sparkline (most recent values rightmost)."""
    if not values:
        return ""
    tail = values[-width:]
    lo, hi = min(tail), max(tail)
    if hi == lo:
        return _SPARK_TICKS[0] * len(tail)
    scale = (len(_SPARK_TICKS) - 1) / (hi - lo)
    return "".join(_SPARK_TICKS[int((v - lo) * scale)] for v in tail)
