"""Metrics registry: counters, gauges, histograms; JSONL export.

The registry is host-side bookkeeping only — incrementing a counter
never charges simulated cycles.  Instruments are created on first use
(``registry.counter("j2n_calls").inc()``), exported as one JSON object
per line (easy to concatenate across worker processes), and re-read /
aggregated by :func:`read_metrics_jsonl` + :func:`summarize_metrics`
for the ``repro metrics`` summary view.

Histogram buckets are powers of two over simulated cycles — wide
enough to cover anything from one dispatch to a whole run without
per-histogram configuration.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

#: Upper bounds of the default histogram buckets (powers of two); one
#: overflow bucket catches everything above the last bound.
DEFAULT_BUCKET_BOUNDS = tuple(2 ** p for p in range(4, 33, 2))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds=DEFAULT_BUCKET_BOUNDS):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1


class MetricsRegistry:
    """Named instruments for one run (or one harness cell)."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (create on first use) ------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # -- convenience recorders ------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        self.histogram(name).observe(value)

    # -- export ---------------------------------------------------------------

    def as_records(self, labels: Optional[Dict] = None) -> List[dict]:
        """One JSON-safe record per instrument, sorted by name."""
        labels = dict(labels or {})
        records: List[dict] = []
        for name in sorted(self._counters):
            records.append({"name": name, "type": "counter",
                            "value": self._counters[name].value,
                            "labels": labels})
        for name in sorted(self._gauges):
            records.append({"name": name, "type": "gauge",
                            "value": self._gauges[name].value,
                            "labels": labels})
        for name in sorted(self._histograms):
            h = self._histograms[name]
            records.append({
                "name": name, "type": "histogram",
                "count": h.count, "sum": h.sum,
                "min": h.min, "max": h.max,
                "bounds": list(h.bounds),
                "bucket_counts": list(h.bucket_counts),
                "labels": labels,
            })
        return records


class _NullInstrument:
    """Counter/gauge/histogram stand-in whose recorders do nothing."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: all instruments are shared no-ops."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value) -> None:
        pass

    def as_records(self, labels: Optional[Dict] = None) -> List[dict]:
        return []


NULL_METRICS = NullMetrics()


# -- JSONL I/O and the `repro metrics` summary view ---------------------------


def write_metrics_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write records one-per-line; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_metrics_jsonl(path: str) -> List[dict]:
    """Read records back, tolerating the damage a crashed or
    interrupted writer leaves behind.

    Empty files and blank lines yield no records; a truncated *final*
    line (the common state after an interrupted ``--jobs N`` worker)
    is dropped silently; an undecodable line mid-file is skipped with
    a warning — the readable remainder is still returned.
    """
    from repro.observability import logging as obs_logging

    with open(path, "r", encoding="utf-8") as fh:
        lines = [line.strip() for line in fh]
    while lines and not lines[-1]:
        lines.pop()
    records = []
    for number, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number < len(lines):
                obs_logging.get_logger("metrics").warning(
                    "skipping undecodable metrics line", path=path,
                    line=number)
            continue  # final line: truncated mid-write; drop quietly
        if isinstance(record, dict):
            records.append(record)
    return records


def summarize_metrics(records: Iterable[dict]) -> List[dict]:
    """Aggregate records across cells/processes, by (name, type).

    Counters and histogram counts/sums add; gauges report min/max over
    the contributing cells (a fleet-wide range, not a meaningless sum).
    Returns summary rows sorted by name.
    """
    summary: Dict[tuple, dict] = {}
    for record in records:
        if "name" not in record or "type" not in record:
            continue  # damaged record (partial write); skip
        key = (record["name"], record["type"])
        row = summary.get(key)
        if row is None:
            row = summary[key] = {"name": record["name"],
                                  "type": record["type"], "cells": 0}
        row["cells"] += 1
        if record["type"] == "counter":
            row["total"] = row.get("total", 0) + \
                record.get("value", 0)
        elif record["type"] == "gauge":
            value = record.get("value", 0)
            row["min"] = value if "min" not in row else \
                min(row["min"], value)
            row["max"] = value if "max" not in row else \
                max(row["max"], value)
        else:  # histogram
            row["count"] = row.get("count", 0) + \
                record.get("count", 0)
            row["sum"] = row.get("sum", 0) + record.get("sum", 0)
            for edge in ("min", "max"):
                value = record.get(edge)
                if value is None:
                    continue
                fold = min if edge == "min" else max
                row[edge] = value if row.get(edge) is None \
                    else fold(row[edge], value)
            bounds = record.get("bounds")
            counts = record.get("bucket_counts")
            if bounds and counts and len(counts) == len(bounds) + 1:
                bounds = tuple(bounds)
                if row.get("bounds") in (None, bounds):
                    row["bounds"] = bounds
                    merged = row.get("bucket_counts")
                    row["bucket_counts"] = counts if merged is None \
                        else [a + b for a, b in zip(merged, counts)]
    for row in summary.values():
        if row["type"] == "histogram" and row.get("bucket_counts"):
            for percentile in (50, 95, 99):
                row[f"p{percentile}"] = estimate_percentile(
                    row["bounds"], row["bucket_counts"], percentile,
                    lo=row.get("min"), hi=row.get("max"))
        row.pop("bounds", None)
        row.pop("bucket_counts", None)
    return [summary[key] for key in sorted(summary)]


def estimate_percentile(bounds, bucket_counts, percentile: float,
                        lo: Optional[float] = None,
                        hi: Optional[float] = None
                        ) -> Optional[float]:
    """Approximate a percentile from fixed histogram buckets.

    Walks the cumulative bucket counts to the target rank and
    interpolates linearly inside the containing bucket — the standard
    estimate for pre-bucketed data (exact values are gone).  ``lo`` /
    ``hi`` (the recorded min/max) clamp the first bucket's implicit
    lower edge and the overflow bucket's upper edge.
    """
    total = sum(bucket_counts)
    if total <= 0:
        return None
    target = percentile / 100.0 * total
    cumulative = 0
    for i, count in enumerate(bucket_counts):
        if count == 0:
            continue
        lower = bounds[i - 1] if i > 0 else 0
        upper = bounds[i] if i < len(bounds) else lower * 2
        # No observation lies outside [lo, hi], whichever bucket it
        # landed in — clamp the bucket edges to the recorded range.
        if lo is not None:
            lower = max(lower, lo)
        if hi is not None:
            upper = min(upper, hi)
        upper = max(upper, lower)
        if cumulative + count >= target:
            fraction = (target - cumulative) / count
            return lower + (upper - lower) * fraction
        cumulative += count
    return hi if hi is not None else float(bounds[-1])


def format_metrics_summary(rows: List[dict]) -> str:
    """Plain-text table for the ``repro metrics`` subcommand."""
    lines = [f"{'metric':32s} {'type':9s} {'cells':>5s}  value"]
    lines.append("-" * len(lines[0]))
    for row in rows:
        if row["type"] == "counter":
            value = f"total={row['total']:,}"
        elif row["type"] == "gauge":
            value = f"min={row['min']:,} max={row['max']:,}"
        else:
            mean = row["sum"] / row["count"] if row["count"] else 0.0
            value = (f"count={row['count']:,} sum={row['sum']:,} "
                     f"mean={mean:,.1f}")
            quantiles = " ".join(
                f"p{p}~{row[f'p{p}']:,.0f}" for p in (50, 95, 99)
                if row.get(f"p{p}") is not None)
            if quantiles:
                value += " " + quantiles
        lines.append(f"{row['name']:32s} {row['type']:9s} "
                     f"{row['cells']:>5d}  {value}")
    return "\n".join(lines)
