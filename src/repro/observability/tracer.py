"""Span/instant event tracing over simulated time.

The tracer is *lock-free in spirit*: every simulated thread appends to
its own buffer (the host is single-threaded, but the design mirrors a
per-thread ring buffer — no shared mutable state on the record path
beyond a monotonically increasing sequence number used to make the
export order total).  Records are plain tuples; nothing is formatted
until export.

Timestamps are **per-thread simulated cycle counts** — the same
virtualized clock PCL exposes to the paper's agents, read here at zero
simulated cost (the tracer observes the clock, it never charges it).
Each thread's timeline therefore starts at 0, exactly like the
per-thread hardware counters the paper virtualizes.

Record layout (one tuple per event)::

    (phase, name, category, tid, ts, dur, args, seq)

``phase`` uses the Chrome trace-event vocabulary: ``"X"`` complete
span, ``"B"``/``"E"`` nested span begin/end, ``"i"`` instant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Synthetic track id for events that belong to no simulated thread
#: (harness stages, VM lifecycle edges after the last thread dies).
HARNESS_TID = 0

TraceRecord = Tuple[str, str, str, int, int, int, Optional[dict], int]


class Tracer:
    """Per-thread event buffers for one VM run."""

    enabled = True

    def __init__(self):
        self._buffers: Dict[int, List[TraceRecord]] = {}
        self._seq = 0
        self.thread_names: Dict[int, str] = {HARNESS_TID: "harness"}

    # -- registration ---------------------------------------------------------

    def register_thread(self, tid: int, name: str) -> None:
        """Name a track (shown as the thread name in trace viewers)."""
        self.thread_names[tid] = name

    # -- recording ------------------------------------------------------------

    def _append(self, tid: int, record_head, ts: int, dur: int,
                args: Optional[dict]) -> None:
        buf = self._buffers.get(tid)
        if buf is None:
            buf = self._buffers[tid] = []
        self._seq += 1
        buf.append(record_head + (tid, ts, dur, args, self._seq))

    def complete(self, name: str, cat: str, tid: int, start: int,
                 end: int, args: Optional[dict] = None) -> None:
        """One finished span (``ph="X"``) from ``start`` to ``end``."""
        self._append(tid, ("X", name, cat), start, end - start, args)

    def begin(self, name: str, cat: str, tid: int, ts: int,
              args: Optional[dict] = None) -> None:
        """Open a nested span (``ph="B"``)."""
        self._append(tid, ("B", name, cat), ts, 0, args)

    def end(self, name: str, cat: str, tid: int, ts: int) -> None:
        """Close the innermost open span (``ph="E"``)."""
        self._append(tid, ("E", name, cat), ts, 0, None)

    def instant(self, name: str, cat: str, tid: int, ts: int,
                args: Optional[dict] = None) -> None:
        """A zero-duration marker (``ph="i"``)."""
        self._append(tid, ("i", name, cat), ts, 0, args)

    # -- export ---------------------------------------------------------------

    @property
    def event_count(self) -> int:
        return sum(len(buf) for buf in self._buffers.values())

    def events_in_order(self) -> List[TraceRecord]:
        """All records merged across threads, totally ordered.

        The order is ``(ts, seq)``: timestamp first, recording order as
        the tiebreak — deterministic because the simulation is.
        """
        merged: List[TraceRecord] = []
        for buf in self._buffers.values():
            merged.extend(buf)
        merged.sort(key=lambda record: (record[4], record[7]))
        return merged

    def as_doc_events(self) -> List[list]:
        """JSON-safe event list for a capture document."""
        return [[ph, name, cat, tid, ts, dur, args]
                for ph, name, cat, tid, ts, dur, args, _
                in self.events_in_order()]


class NullTracer:
    """The disabled tracer: every record call is a no-op.

    Hot paths check :attr:`enabled` before even snapshotting cycle
    counters, so an untraced run does not pay for argument assembly
    either.
    """

    enabled = False
    thread_names: Dict[int, str] = {}

    def register_thread(self, tid: int, name: str) -> None:
        pass

    def complete(self, name, cat, tid, start, end, args=None) -> None:
        pass

    def begin(self, name, cat, tid, ts, args=None) -> None:
        pass

    def end(self, name, cat, tid, ts) -> None:
        pass

    def instant(self, name, cat, tid, ts, args=None) -> None:
        pass

    @property
    def event_count(self) -> int:
        return 0

    def events_in_order(self) -> List[TraceRecord]:
        return []

    def as_doc_events(self) -> List[list]:
        return []


#: Shared no-op tracer (stateless, safe to alias everywhere).
NULL_TRACER = NullTracer()
