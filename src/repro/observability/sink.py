"""The observability sink a VM carries, and its picklable config.

Every :class:`~repro.jvm.machine.JavaVM` owns an ``obs`` attribute —
by default :data:`NULL_SINK`, whose tracer and metrics are shared
no-op singletons.  Hook sites across the interpreter, class loader,
JVMTI host, agents, and harness therefore never test for ``None``;
they call straight through (guarding only hot paths with
``obs.tracer.enabled``).

:class:`ObservabilityConfig` is the picklable request the harness
ships to worker processes (:mod:`repro.harness.parallel`); the worker
builds the live :class:`ObservabilitySink` on its side, and its
capture document travels back as a per-process JSON file merged in
fixed cell order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.observability.metrics import (
    NULL_METRICS,
    MetricsRegistry,
)
from repro.observability.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to record (picklable; carried by RunConfig and CellSpec)."""

    trace: bool = False
    metrics: bool = False

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics


class ObservabilitySink:
    """Tracer + metrics bundle for one VM run."""

    def __init__(self, config: Optional[ObservabilityConfig] = None):
        config = config or ObservabilityConfig()
        self.config = config
        self.tracer = Tracer() if config.trace else NULL_TRACER
        self.metrics = MetricsRegistry() if config.metrics \
            else NULL_METRICS

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def capture(self, labels: Optional[Dict] = None,
                clock_hz: int = 0) -> dict:
        """Freeze everything recorded into a JSON-safe document."""
        labels = dict(labels or {})
        return {
            "labels": labels,
            "clock_hz": clock_hz,
            "thread_names": {str(tid): name for tid, name
                             in sorted(self.tracer.thread_names.items())},
            "events": self.tracer.as_doc_events(),
            "metrics": self.metrics.as_records(labels),
        }


#: The do-nothing sink every VM starts with.
NULL_SINK = ObservabilitySink()


def merge_captures(captures: List[Optional[dict]]) -> List[dict]:
    """Drop missing cells (runs without observability) preserving order."""
    return [doc for doc in captures if doc]
