"""Run provenance: who produced a measurement, where, and when.

The paper's tables are only comparable because every number carries its
experimental context (machine, JVM, agent configuration).  This module
collects the reproduction's equivalent — git revision + dirty flag,
hostname, platform, Python version, UTC timestamp — as one JSON-safe
dictionary stamped into every run manifest (:mod:`~repro.observability.
ledger`) and into ``repro bench`` measurement documents.

Everything here is host-side bookkeeping gathered *outside* the
simulation: collecting provenance never touches cycle accounting.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import uuid
from datetime import datetime, timezone
from typing import Dict, Optional


def _git(args, cwd: Optional[str] = None) -> Optional[str]:
    """Run one git query; ``None`` when git or the repo is absent."""
    try:
        proc = subprocess.run(
            ["git"] + args, cwd=cwd, capture_output=True, text=True,
            timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip()


def git_info(cwd: Optional[str] = None) -> Dict:
    """``{"git_sha": str | None, "git_dirty": bool | None}``.

    ``git_sha`` is ``None`` outside a repository (or without a git
    binary); ``git_dirty`` is ``True`` when tracked files have
    uncommitted changes — the flag ``repro bench --compare`` and
    ``repro runs diff`` use to warn about apples-to-oranges baselines.
    """
    sha = _git(["rev-parse", "HEAD"], cwd=cwd)
    if sha is None:
        return {"git_sha": None, "git_dirty": None}
    status = _git(["status", "--porcelain", "--untracked-files=no"],
                  cwd=cwd)
    return {"git_sha": sha,
            "git_dirty": None if status is None else bool(status)}


def utc_timestamp() -> str:
    """ISO-8601 UTC with a trailing ``Z`` (second resolution)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def new_run_id() -> str:
    """Sortable run identifier: UTC compact timestamp + random suffix.

    Lexicographic order equals chronological order (down to one
    second); the suffix keeps ids from colliding within a second.
    """
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def collect_provenance(cwd: Optional[str] = None) -> Dict:
    """Everything a manifest records about the producing host."""
    info = {
        "timestamp_utc": utc_timestamp(),
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "pid": os.getpid(),
    }
    info.update(git_info(cwd))
    return info
