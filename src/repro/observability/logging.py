"""Structured logging for the CLI and harness workers.

The CLI's side-channel notices ("trace: 1,234 events -> t.json") used
to be ad-hoc ``print(..., file=sys.stderr)`` calls.  This module
replaces them with one leveled, structured layer:

* text mode (default): ``level=info event="trace written" path=t.json``
  — stable ``key=value`` pairs, greppable, still human-readable;
* JSON mode (``--log-json``): one JSON object per line, for machine
  consumers (CI annotations, log shippers);
* worker prefixes: under ``--jobs N`` each harness worker stamps its
  cell index onto every line (``worker=w03``), so interleaved stderr
  from a process pool stays attributable.

Everything goes to **stderr** — stdout carries only the measurement
output (tables, reports), preserving the byte-identity guarantees the
golden tests pin.  Logging is host-side bookkeeping: it never touches
simulated cycle accounting.

The configuration is process-global (``configure``) and picklable as a
plain tuple so :mod:`repro.harness.parallel` can re-apply it inside
spawn-started workers (fork-started workers inherit it for free).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

#: Level names in severity order.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30,
                          "error": 40}
LEVEL_NAMES = tuple(sorted(LEVELS, key=LEVELS.get))

#: Process-global config: (threshold, json_mode, worker_prefix).
_state = {"threshold": LEVELS["info"], "json": False, "worker": ""}


def configure(level: str = "info", json_mode: bool = False,
              worker: str = "") -> None:
    """Set the process-global logging configuration."""
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} "
                         f"(valid: {', '.join(LEVEL_NAMES)})")
    _state["threshold"] = LEVELS[level]
    _state["json"] = bool(json_mode)
    _state["worker"] = worker


def snapshot() -> Tuple[str, bool]:
    """Picklable ``(level, json_mode)`` of the current configuration,
    for shipping to spawn-started worker processes."""
    threshold = _state["threshold"]
    level = next(name for name in LEVEL_NAMES
                 if LEVELS[name] == threshold)
    return level, _state["json"]


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool) or value is None:
        return str(value).lower()
    text = str(value)
    if text == "" or any(c in text for c in ' "='):
        return json.dumps(text)
    return text


class Logger:
    """A named emitter of structured log lines."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def enabled_for(self, level: str) -> bool:
        return LEVELS[level] >= _state["threshold"]

    def log(self, level: str, event: str, **fields) -> None:
        if not self.enabled_for(level):
            return
        stream = sys.stderr
        if _state["json"]:
            record = {"level": level, "logger": self.name,
                      "event": event}
            if _state["worker"]:
                record["worker"] = _state["worker"]
            record.update(fields)
            line = json.dumps(record, sort_keys=True, default=str)
        else:
            parts = [f"level={level}", f"logger={self.name}",
                     f"event={_format_value(event)}"]
            if _state["worker"]:
                parts.insert(0, f"worker={_state['worker']}")
            parts.extend(f"{key}={_format_value(value)}"
                         for key, value in fields.items())
            line = " ".join(parts)
        try:
            stream.write(line + "\n")
        except (OSError, ValueError):
            pass  # a closed/broken stderr must never kill a run

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_loggers: Dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger


def add_arguments(parser) -> None:
    """Install ``--log-level``/``--log-json`` on the root parser."""
    parser.add_argument(
        "--log-level", choices=LEVEL_NAMES, default="info",
        help="stderr log verbosity (default: info)")
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log lines as JSON objects instead of key=value")


def configure_from_args(args) -> None:
    configure(level=getattr(args, "log_level", "info"),
              json_mode=getattr(args, "log_json", False))
