"""Observability: zero-perturbation tracing, metrics, flamegraphs.

The simulator measures where time goes at the bytecode/native boundary;
this package makes the *simulator itself* observable without touching
what it measures.  The hard rule, inherited from the cost-model work:
**simulated cycle accounting is bit-identical with tracing on, off, or
absent**.  Every hook in the VM, the agents, and the harness only
*peeks* at per-thread cycle counters (``SimThread.cycles_total``); it
never calls :meth:`~repro.pcl.counters.PCL.get_timestamp` and never
:meth:`~repro.jvm.threads.SimThread.charge`-s anything.  Tracing
observes the clock, it does not advance it.

Components:

* :mod:`~repro.observability.tracer` — per-thread span/instant event
  buffers over simulated time;
* :mod:`~repro.observability.chrome_trace` — Chrome trace-event JSON
  export (open the file in Perfetto / ``chrome://tracing``);
* :mod:`~repro.observability.metrics` — counters, gauges, histograms
  with JSONL export and host-side aggregation;
* :mod:`~repro.observability.flamegraph` — folded-stack export from
  the callchain agent's calling-context tree;
* :mod:`~repro.observability.sink` — the :class:`ObservabilitySink`
  bundle the VM carries (a no-op null sink by default) and the
  picklable :class:`ObservabilityConfig` the harness ships to worker
  processes;
* :mod:`~repro.observability.runinfo` — run provenance (git SHA +
  dirty flag, hostname, platform, UTC timestamps, run ids);
* :mod:`~repro.observability.ledger` — the append-only run-manifest
  ledger behind ``repro runs list/show/diff/trend``;
* :mod:`~repro.observability.report` — self-contained static HTML
  reports (tables, overhead bars, metrics, flamegraph, trends);
* :mod:`~repro.observability.logging` — the structured (key=value /
  JSON) leveled logging layer the CLI and harness workers share.

The ledger, reports, and logging obey the same hard rule as the
tracer and metrics: host-side bookkeeping only — simulated cycle
accounting and the rendered tables are bit-identical with all of it
on or off.
"""

from repro.observability.chrome_trace import (
    chrome_trace_doc,
    write_chrome_trace,
)
from repro.observability.flamegraph import folded_lines, write_folded
from repro.observability.ledger import Ledger, new_manifest
from repro.observability.metrics import (
    MetricsRegistry,
    read_metrics_jsonl,
    summarize_metrics,
    write_metrics_jsonl,
)
from repro.observability.runinfo import collect_provenance, git_info
from repro.observability.sink import (
    NULL_SINK,
    ObservabilityConfig,
    ObservabilitySink,
)
from repro.observability.tracer import NULL_TRACER, Tracer

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "Ledger",
    "new_manifest",
    "collect_provenance",
    "git_info",
    "MetricsRegistry",
    "ObservabilityConfig",
    "ObservabilitySink",
    "NULL_SINK",
    "chrome_trace_doc",
    "write_chrome_trace",
    "folded_lines",
    "write_folded",
    "read_metrics_jsonl",
    "summarize_metrics",
    "write_metrics_jsonl",
]
