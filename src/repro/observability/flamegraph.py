"""Folded-stack flamegraph export from the callchain CCT.

The callchain agent (the paper's Section VII future-work extension)
builds per-thread calling-context trees with *inclusive* cycle
attribution.  Flamegraph tooling (Brendan Gregg's ``flamegraph.pl``,
speedscope, Perfetto's import) expects *folded stacks*: one line per
calling context with its **self** weight — the inclusive time minus
the children's, so the tooling can re-derive inclusive totals by
summation.

Native frames are suffixed ``_[k]`` so standard flamegraph palettes
color them like kernel/native frames — the Java/native boundary the
paper is about stays visible in the rendered graph.
"""

from __future__ import annotations

from typing import Dict, List


#: The folded format's structural characters.  ``;`` separates frames
#: and a newline separates stacks, so neither may appear inside a
#: frame or thread name — a hostile class name like ``a;b`` would
#: otherwise split into two frames and corrupt every descendant stack.
_FRAME_SANITIZE = str.maketrans({";": ":", "\n": "_", "\r": "_"})


def _sanitize(name: str) -> str:
    return name.translate(_FRAME_SANITIZE)


def _self_cycles(node) -> int:
    inherited = sum(child.inclusive_cycles
                    for child in node.children.values())
    return max(0, node.inclusive_cycles - inherited)


def folded_lines(roots: Dict[str, object]) -> List[str]:
    """``thread;frame;frame weight`` lines, lexicographically sorted.

    ``roots`` maps thread name to the thread's CCT root (the shape of
    :attr:`repro.agents.callchain.CallChainAgent.roots`).  Frames with
    zero self time are folded away (their weight lives in descendants).
    """
    lines: List[str] = []
    for thread_name in sorted(roots):
        root = roots[thread_name]
        for chain, node in root.walk():
            weight = _self_cycles(node)
            if weight <= 0 or len(chain) < 2:
                continue  # skip the synthetic <thread> sentinel root
            frames = [_sanitize(thread_name)]
            frames.extend(
                _sanitize(frame) + ("_[k]" if is_native else "")
                for frame, is_native in _tag_chain(root, chain))
            lines.append(";".join(frames) + f" {weight}")
    lines.sort()
    return lines


def _tag_chain(root, chain):
    """Walk ``chain`` (which starts at the sentinel root) re-resolving
    each node so frames carry their Java/native tag."""
    node = root
    for frame in chain[1:]:
        node = node.children[frame]
        yield frame, node.is_native


def write_folded(path: str, roots: Dict[str, object]) -> int:
    """Write folded stacks; returns the number of lines."""
    lines = folded_lines(roots)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def _self_blocked(node) -> int:
    inherited = sum(getattr(child, "blocked_inclusive", 0)
                    for child in node.children.values())
    return max(0, getattr(node, "blocked_inclusive", 0) - inherited)


def wall_folded_lines(roots: Dict[str, object]) -> List[str]:
    """Wall-clock folded stacks: on-CPU *and* off-CPU weight.

    Same format as :func:`folded_lines`, but each context's blocked
    self time (device waits charged by blocking natives, DESIGN.md
    §13) is emitted as a synthetic leaf frame suffixed ``_[offcpu]``
    under the frame that blocked, so flamegraph tooling renders wall
    time with the off-CPU share visually distinct.  Summing every
    line's weight gives the thread's wall cycles.
    """
    lines: List[str] = []
    for thread_name in sorted(roots):
        root = roots[thread_name]
        for chain, node in root.walk():
            if len(chain) < 2:
                continue  # skip the synthetic <thread> sentinel root
            frames = [_sanitize(thread_name)]
            frames.extend(
                _sanitize(frame) + ("_[k]" if is_native else "")
                for frame, is_native in _tag_chain(root, chain))
            cpu_self = _self_cycles(node)
            if cpu_self > 0:
                lines.append(";".join(frames) + f" {cpu_self}")
            blocked_self = _self_blocked(node)
            if blocked_self > 0:
                leaf = _sanitize(chain[-1]) + "_[offcpu]"
                lines.append(";".join(frames + [leaf])
                             + f" {blocked_self}")
    lines.sort()
    return lines


def write_wall_folded(path: str, roots: Dict[str, object]) -> int:
    """Write wall-clock folded stacks; returns the number of lines."""
    lines = wall_folded_lines(roots)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)
