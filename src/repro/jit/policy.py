"""JIT policy knobs."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class JitPolicy:
    """Tunable compilation policy.

    ``enabled=False`` models ``-Xint``; the JVMTI layer additionally
    forces the JIT off for the whole run when an agent requests the
    method-entry/exit event capabilities (see
    :class:`repro.jvmti.capabilities.Capabilities`).
    """

    #: Master switch (the JVMTI capability veto is separate).
    enabled: bool = True
    #: Compile after this many invocations of a method.
    invoke_threshold: int = 40
    #: Compile after this many taken backward branches (the simulator's
    #: on-stack-replacement stand-in: the switched cost array takes
    #: effect on the next cost lookup).
    backedge_threshold: int = 1500
    #: Second execution tier: translate compiled methods to specialized
    #: Python (``repro.jit.template``).  Host-speed only — simulated
    #: cycle accounting is bit-identical with the tier off.
    template_tier: bool = True
    #: Drop a method's template after this many deoptimizations (the
    #: template keeps falling back to the interpreter, so it is not
    #: paying for itself).  The method stays JIT-*compiled* (cost
    #: arrays); only the host-speed template is discarded.
    template_deopt_disable_threshold: int = 50
    #: Methods longer than this many instructions are not translated
    #: (bail-out reason ``too_long``) — bounds generated-source size.
    template_code_limit: int = 2000
    #: On-stack replacement: transfer a live interpreter frame into the
    #: method's template at a hot loop backedge instead of waiting for
    #: the next invocation.  Host-speed only — cycle accounting is
    #: bit-identical with OSR off.
    osr: bool = True
    #: Polymorphic inline cache depth for invokevirtual sites: up to
    #: this many (class, method) pairs are cached per site before the
    #: site goes megamorphic (plain vtable lookup).  Depth 1 is the old
    #: monomorphic cache.
    pic_depth: int = 4
    #: Superinstruction fusion: combine hot adjacent opcode pairs into
    #: single handlers in generated template source.
    fusion: bool = True
    #: Maximum number of fused pairs per translated method.
    fusion_pairs: int = 8

    def copy(self) -> "JitPolicy":
        # dataclasses.replace copies every field by name; a field added
        # above can no longer be silently dropped here.
        return replace(self)
