"""JIT policy knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class JitPolicy:
    """Tunable compilation policy.

    ``enabled=False`` models ``-Xint``; the JVMTI layer additionally
    forces the JIT off for the whole run when an agent requests the
    method-entry/exit event capabilities (see
    :class:`repro.jvmti.capabilities.Capabilities`).
    """

    #: Master switch (the JVMTI capability veto is separate).
    enabled: bool = True
    #: Compile after this many invocations of a method.
    invoke_threshold: int = 40
    #: Compile after this many taken backward branches (the simulator's
    #: on-stack-replacement stand-in: the switched cost array takes
    #: effect on the next cost lookup).
    backedge_threshold: int = 1500
    #: Second execution tier: translate compiled methods to specialized
    #: Python (``repro.jit.template``).  Host-speed only — simulated
    #: cycle accounting is bit-identical with the tier off.
    template_tier: bool = True
    #: Drop a method's template after this many deoptimizations (the
    #: template keeps falling back to the interpreter, so it is not
    #: paying for itself).  The method stays JIT-*compiled* (cost
    #: arrays); only the host-speed template is discarded.
    template_deopt_disable_threshold: int = 50
    #: Methods longer than this many instructions are not translated
    #: (bail-out reason ``too_long``) — bounds generated-source size.
    template_code_limit: int = 2000

    def copy(self) -> "JitPolicy":
        return JitPolicy(self.enabled, self.invoke_threshold,
                         self.backedge_threshold, self.template_tier,
                         self.template_deopt_disable_threshold,
                         self.template_code_limit)
