"""JIT policy knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class JitPolicy:
    """Tunable compilation policy.

    ``enabled=False`` models ``-Xint``; the JVMTI layer additionally
    forces the JIT off for the whole run when an agent requests the
    method-entry/exit event capabilities (see
    :class:`repro.jvmti.capabilities.Capabilities`).
    """

    #: Master switch (the JVMTI capability veto is separate).
    enabled: bool = True
    #: Compile after this many invocations of a method.
    invoke_threshold: int = 40
    #: Compile after this many taken backward branches (the simulator's
    #: on-stack-replacement stand-in: the switched cost array takes
    #: effect on the next cost lookup).
    backedge_threshold: int = 1500

    def copy(self) -> "JitPolicy":
        return JitPolicy(self.enabled, self.invoke_threshold,
                         self.backedge_threshold)
