"""The JIT compiler: compilation decisions and accounting."""

from __future__ import annotations

from typing import Dict, List

from repro.jit.codecache import TemplateCodeCache
from repro.jit.policy import JitPolicy
from repro.jit.template import translate
from repro.jvm.costmodel import ChargeTag


class JitCompiler:
    """Per-VM JIT state.

    ``enabled`` combines the policy switch with the JVMTI veto: when any
    agent holds the ``can_generate_method_entry_events`` /
    ``can_generate_method_exit_events`` capabilities, compilation is off
    for the whole run — the behaviour the paper observed on HotSpot and
    the root cause of SPA's overhead.
    """

    def __init__(self, vm, policy: JitPolicy):
        self._vm = vm
        self.policy = policy
        self._vetoed = False
        self.methods_compiled: List = []
        # template tier (second execution tier) state
        self.code_cache = TemplateCodeCache()
        self.template_entries = 0
        #: on-stack replacements: live interpreter frames transferred
        #: into a template at a loop-header backedge
        self.osr_entries = 0
        #: fused superinstruction pattern -> number of emitted sites
        self.fusion_sites: Dict[str, int] = {}
        #: translator bail-out reason -> count (no silent fallback)
        self.template_bailouts: Dict[str, int] = {}
        #: runtime deopt reason -> count
        self.template_deopts: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.policy.enabled and not self._vetoed

    @property
    def vetoed(self) -> bool:
        return self._vetoed

    def veto(self, reason: str) -> None:
        """Disable compilation for the rest of the run (JVMTI method
        events requested)."""
        self._vetoed = True
        self._veto_reason = reason

    def compile(self, thread, method) -> None:
        """Compile ``method``: charge VM cycles and swap its cost array."""
        if method.compiled or method.info.code is None:
            return
        cost = (self._vm.cost_model.jit_compile_per_instruction
                * len(method.info.code))
        if thread is not None:
            thread.charge(cost, ChargeTag.VM)
        method.mark_compiled()
        self.methods_compiled.append(method)
        if self.policy.template_tier:
            self._translate(method)

    def _translate(self, method) -> None:
        """Second tier: install a specialized Python function.

        Translation is host-only work — it charges no simulated cycles
        (the compile charge above models the whole compilation)."""
        func, source, reason = translate(method, self._vm,
                                         policy=self.policy)
        if func is None:
            self.template_bailouts[reason] = \
                self.template_bailouts.get(reason, 0) + 1
            return
        for pattern in getattr(func, "fused_patterns", ()):
            self.fusion_sites[pattern] = \
                self.fusion_sites.get(pattern, 0) + 1
        self.code_cache.install(method, func, source)

    def note_deopt(self, method, reason: str) -> None:
        """Record a template deoptimization; drop templates that keep
        bouncing back to the interpreter."""
        self.template_deopts[reason] = \
            self.template_deopts.get(reason, 0) + 1
        method.template_deopt_count += 1
        if (method.template is not None
                and method.template_deopt_count
                >= self.policy.template_deopt_disable_threshold):
            self.code_cache.invalidate(method, reason)

    @property
    def compile_count(self) -> int:
        return len(self.methods_compiled)

    @property
    def templates_translated(self) -> int:
        return self.code_cache.installed
