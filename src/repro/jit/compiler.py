"""The JIT compiler: compilation decisions and accounting."""

from __future__ import annotations

from typing import List

from repro.jit.policy import JitPolicy
from repro.jvm.costmodel import ChargeTag


class JitCompiler:
    """Per-VM JIT state.

    ``enabled`` combines the policy switch with the JVMTI veto: when any
    agent holds the ``can_generate_method_entry_events`` /
    ``can_generate_method_exit_events`` capabilities, compilation is off
    for the whole run — the behaviour the paper observed on HotSpot and
    the root cause of SPA's overhead.
    """

    def __init__(self, vm, policy: JitPolicy):
        self._vm = vm
        self.policy = policy
        self._vetoed = False
        self.methods_compiled: List = []

    @property
    def enabled(self) -> bool:
        return self.policy.enabled and not self._vetoed

    @property
    def vetoed(self) -> bool:
        return self._vetoed

    def veto(self, reason: str) -> None:
        """Disable compilation for the rest of the run (JVMTI method
        events requested)."""
        self._vetoed = True
        self._veto_reason = reason

    def compile(self, thread, method) -> None:
        """Compile ``method``: charge VM cycles and swap its cost array."""
        if method.compiled or method.info.code is None:
            return
        cost = (self._vm.cost_model.jit_compile_per_instruction
                * len(method.info.code))
        if thread is not None:
            thread.charge(cost, ChargeTag.VM)
        method.mark_compiled()
        self.methods_compiled.append(method)

    @property
    def compile_count(self) -> int:
        return len(self.methods_compiled)
