"""The template-tier code cache.

Holds the specialized Python functions the translator produced, keyed
by :class:`~repro.jvm.classloader.LoadedMethod` (identity — methods are
per-VM objects).  The cache keeps the generated source next to each
function so failures are debuggable (``source_for``), and it is the
single place templates are *invalidated*: when a method keeps
deoptimizing past the policy threshold, :meth:`invalidate` detaches the
template (the method stays JIT-compiled — cost arrays are untouched —
it merely returns to the generic dispatch loop for good).

Nothing in here touches simulated cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class CacheEntry:
    """One installed template."""

    qualified_name: str
    source: str
    active: bool = True


class TemplateCodeCache:
    """Installed templates plus lifetime statistics."""

    def __init__(self):
        self._entries: Dict[object, CacheEntry] = {}
        self.installed = 0
        self.invalidated = 0
        #: reason -> count, for metrics export.
        self.invalidation_reasons: Dict[str, int] = {}

    def install(self, method, func, source: str) -> None:
        """Attach ``func`` as ``method``'s template."""
        method.template = func
        # the translator publishes the loop-header entry points it
        # generated as a function attribute (loop pc -> block id); an
        # empty/absent map means the template cannot be OSR-entered
        method.osr_map = getattr(func, "osr_map", None) or None
        self._entries[method] = CacheEntry(method.qualified_name, source)
        self.installed += 1

    def invalidate(self, method, reason: str) -> None:
        """Detach ``method``'s template (idempotent)."""
        if method.template is None:
            return
        method.template = None
        method.osr_map = None
        entry = self._entries.get(method)
        if entry is not None:
            entry.active = False
        self.invalidated += 1
        self.invalidation_reasons[reason] = \
            self.invalidation_reasons.get(reason, 0) + 1

    def source_for(self, method) -> Optional[str]:
        """Generated source of ``method``'s template (debugging aid)."""
        entry = self._entries.get(method)
        return entry.source if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)
