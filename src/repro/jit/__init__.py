"""JIT compilation model.

Models the HotSpot server compiler at the fidelity the paper needs:
hot methods (by invocation or backedge count) switch from interpreted to
compiled per-instruction costs, compilation itself costs VM cycles, and
— crucially — requesting the JVMTI ``MethodEntry``/``MethodExit``
capabilities disables compilation entirely, which is the mechanism
behind SPA's 1 500 % – 42 000 % overhead.

The template tier (``repro.jit.template``) additionally translates
compiled methods into specialized Python functions — a real second
execution tier for host throughput.  It is accounting-invariant by
construction: simulated cycle totals, charge boundaries, and event
sequences are bit-identical with the tier on or off.
"""

from repro.jit.codecache import TemplateCodeCache
from repro.jit.compiler import JitCompiler
from repro.jit.policy import JitPolicy
from repro.jit.template import translate

__all__ = ["JitPolicy", "JitCompiler", "TemplateCodeCache", "translate"]
