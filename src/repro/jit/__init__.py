"""JIT compilation model.

Models the HotSpot server compiler at the fidelity the paper needs:
hot methods (by invocation or backedge count) switch from interpreted to
compiled per-instruction costs, compilation itself costs VM cycles, and
— crucially — requesting the JVMTI ``MethodEntry``/``MethodExit``
capabilities disables compilation entirely, which is the mechanism
behind SPA's 1 500 % – 42 000 % overhead.
"""

from repro.jit.policy import JitPolicy
from repro.jit.compiler import JitCompiler

__all__ = ["JitPolicy", "JitCompiler"]
