"""Superinstruction fusion: selecting hot adjacent opcode windows.

Real threaded-code interpreters fuse frequently adjacent opcode pairs
into combined handlers ("superinstructions") to cut dispatch overhead.
Our template tier has no dispatch between straight-line instructions,
but every operand-stack slot it materializes is a Python assignment —
fusing a load with its consumer deletes those assignments from the
generated source, which is where the tier's host time goes.

This module does the *selection* only; the emitters live in
:mod:`repro.jit.template` (they own stack-slot naming and the
accounting helpers).  A fused window charges the sum of its
instructions' cycle costs in one accumulation — the template sums
per-instruction costs into per-segment constants anyway, so fusion
cannot perturb simulated accounting by construction.

Pair selection heuristic
------------------------

The profile data PR 2 collects (flamegraph CCT, per-method counters) is
per *method*, not per pc, and translation happens the moment a method
crosses a hot threshold — so the picker uses a static stand-in for
instruction heat that needs no warm-up: a candidate window inside a
loop body (covered by a reachable backward branch's ``[target, branch]``
span) is weighted 10x per covering loop, outer code weight 1.  The top
``JitPolicy.fusion_pairs`` non-overlapping windows win, longest pattern
first at any given pc, ties broken by lowest pc — fully deterministic,
so a method always translates to the same source.

A window is only fusible when every pc in it is reachable, none is a
deopt site, and no branch targets its interior (the interior pcs vanish
from the emitted source; only fallthrough from the window head may
reach them).  Exception handlers may still point into a fused window:
handler frames resume in the interpreter, never inside a template.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.opcodes import Op

_ILOAD = int(Op.ILOAD)
_ALOAD = int(Op.ALOAD)
_ICONST = int(Op.ICONST)
_ACONST_NULL = int(Op.ACONST_NULL)
_ISTORE = int(Op.ISTORE)
_ASTORE = int(Op.ASTORE)
_GETFIELD = int(Op.GETFIELD)
_GOTO = int(Op.GOTO)

#: Loads whose value the emitters can rebuild as a plain expression
#: (a local-variable subscript or a literal) — the precondition for
#: deleting the stack-slot assignment.
_INT_LOADS = frozenset({_ILOAD, _ICONST})
_REF_LOADS = frozenset({_ALOAD, _ACONST_NULL})
_LOADS = _INT_LOADS | _REF_LOADS

#: Type-polymorphic int arithmetic (wrap-checked fast path).
_ARITH = frozenset({int(Op.IADD), int(Op.ISUB), int(Op.IMUL)})


def _is_cond_branch(op: int) -> bool:
    return 0x50 <= op <= 0x60 and op != _GOTO


class FusedSite:
    """One selected superinstruction window in a method's code."""

    __slots__ = ("pattern", "pc", "length")

    def __init__(self, pattern: str, pc: int, length: int):
        self.pattern = pattern
        self.pc = pc
        self.length = length

    def __repr__(self):  # pragma: no cover - debug aid
        return f"<FusedSite {self.pattern}@{self.pc}+{self.length}>"


def _match(ops, code, pc: int, n: int) -> Optional[Tuple[str, int]]:
    """Match the longest catalog pattern starting at ``pc``."""
    op = ops[pc]
    if op not in _LOADS:
        return None
    if pc + 2 < n and op in _INT_LOADS and ops[pc + 1] in _INT_LOADS \
            and ops[pc + 2] in _ARITH:
        return "load_load_arith", 3
    if pc + 1 >= n:
        return None
    nxt = ops[pc + 1]
    if op == _ALOAD and nxt == _GETFIELD:
        # only fusible once the field site is quickened; a cold site
        # keeps the deopt-until-quickened guard and never fuses
        if code[pc + 1].quick is not None:
            return "aload_getfield", 2
        return None
    if op in _INT_LOADS and nxt in _ARITH:
        return "load_arith", 2
    if (op in _INT_LOADS and nxt == _ISTORE) or \
            (op in _REF_LOADS and nxt == _ASTORE):
        return "load_store", 2
    if _is_cond_branch(nxt):
        return "load_branch", 2
    return None


def plan_fusion(ops, operands, code, depth_at, deopt_only, targets,
                max_sites: int) -> Dict[int, FusedSite]:
    """Pick up to ``max_sites`` non-overlapping fusible windows.

    Returns ``{window head pc: FusedSite}``.  See the module docstring
    for the selection heuristic and the safety conditions.
    """
    if max_sites <= 0:
        return {}
    n = len(ops)
    # loop spans: [target, branch pc] of every reachable backward branch
    spans: List[Tuple[int, int]] = []
    for pc in range(n):
        if depth_at[pc] >= 0 and not deopt_only[pc] \
                and 0x50 <= ops[pc] <= 0x60:
            t = operands[pc]
            if t <= pc:
                spans.append((t, pc))

    candidates = []
    for pc in range(n - 1):
        if depth_at[pc] < 0 or deopt_only[pc]:
            continue
        m = _match(ops, code, pc, n)
        if m is None:
            continue
        pattern, length = m
        interior_ok = True
        for q in range(pc + 1, pc + length):
            if depth_at[q] < 0 or deopt_only[q] or q in targets:
                interior_ok = False
                break
        if not interior_ok:
            continue
        weight = 1 + 10 * sum(1 for lo, hi in spans if lo <= pc <= hi)
        candidates.append((-weight, pc, pattern, length))

    candidates.sort()
    plan: Dict[int, FusedSite] = {}
    covered = set()
    for _nw, pc, pattern, length in candidates:
        if len(plan) >= max_sites:
            break
        window = range(pc, pc + length)
        if any(q in covered for q in window):
            continue
        plan[pc] = FusedSite(pattern, pc, length)
        covered.update(window)
    return plan
