"""The template translator: bytecode -> specialized Python source.

This is the VM's second execution tier.  When :meth:`JitCompiler.compile`
fires for a hot method, :func:`translate` turns the method's pre-decoded
``ops``/``operands`` streams into one specialized Python function
(source generation + ``exec``): straight-line bytecode becomes
straight-line Python, operand-stack slots become named Python locals
(``s0``, ``s1``, ... — the depth at every pc is statically known for
verifiable code), and basic blocks become arms of a ``while 1`` dispatch
over a block index ``b``.

Accounting contract (the hard rule)
-----------------------------------

Simulated cycle accounting must be **bit-identical** to the dispatch
loop.  Per-instruction costs are summed at translation time into
per-segment constants (``p += C``/``n += K``) and flushed with exactly
the interpreter's boundaries: INVOKE*, GETSTATIC/PUTSTATIC, NEW,
LDC-of-string, RETURN*, and exception dispatch all ``charge`` pending
cycles / retire the instruction count at the same points, in the same
order (for exceptions: synthesize first, then flush — matching the
interpreter's ``_Throw`` handler).  Resolution work charges zero cycles
in the cost model, so binding quickened constants at translation time
cannot change any simulated number.

Deoptimization
--------------

A site the template cannot execute — an opcode in ``exclude_ops``, or a
constant-pool site not yet quickened when the method was translated —
deoptimizes: the template reconstructs ``frame.pc``/``frame.stack``,
flushes pending accounting, marks the frame ``deopted``, reports the
reason to :meth:`JitCompiler.note_deopt`, and returns to the dispatch
loop, which resumes interpreting the same activation at the same
instruction (its cost not yet accounted, so nothing is double-charged).
Cold constant-pool sites self-heal: the interpreter quickens the site
while finishing the activation, and later activations read the
quickened value at run time.  Exceptions raised *by* supported opcodes
never deoptimize — the template replicates the interpreter's throw
sequence inline and hands the exception object back to the dispatch
loop for unwinding, so JVMTI MethodExit events and handler resumption
are identical.

The template function protocol is
``template(interp, thread, frame) -> outcome`` where outcome is
``(0, has_result, result)`` for a return (accounting flushed, MethodExit
fired), ``(1,)`` for a deopt (frame reconstructed), or ``(2, exc)`` for
a thrown exception (``frame.pc`` synced, accounting flushed; the caller
runs exception dispatch).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.bytecode.opcodes import ArrayKind, Op, SPECS
from repro.classfile.constant_pool import CpMethodRef
from repro.classfile.members import arg_slot_count, returns_value
from repro.errors import DeadlockError, NoSuchFieldError
from repro.jit.fusion import plan_fusion
from repro.jvm.costmodel import ChargeTag
from repro.jvm.interpreter import Unwind
from repro.jvm.values import JArray, wrap_int32

_NPE = "java.lang.NullPointerException"
_AIOOBE = "java.lang.ArrayIndexOutOfBoundsException"
_ARITH = "java.lang.ArithmeticException"
_CCE = "java.lang.ClassCastException"
_NASE = "java.lang.NegativeArraySizeException"
_IMSE = "java.lang.IllegalMonitorStateException"

_NOP = int(Op.NOP)
_ICONST = int(Op.ICONST)
_LDC = int(Op.LDC)
_ACONST_NULL = int(Op.ACONST_NULL)
_ILOAD = int(Op.ILOAD)
_ISTORE = int(Op.ISTORE)
_ALOAD = int(Op.ALOAD)
_ASTORE = int(Op.ASTORE)
_IINC = int(Op.IINC)
_POP = int(Op.POP)
_DUP = int(Op.DUP)
_DUP_X1 = int(Op.DUP_X1)
_SWAP = int(Op.SWAP)
_IADD = int(Op.IADD)
_ISUB = int(Op.ISUB)
_IMUL = int(Op.IMUL)
_IDIV = int(Op.IDIV)
_IREM = int(Op.IREM)
_INEG = int(Op.INEG)
_ISHL = int(Op.ISHL)
_ISHR = int(Op.ISHR)
_IUSHR = int(Op.IUSHR)
_IAND = int(Op.IAND)
_IOR = int(Op.IOR)
_IXOR = int(Op.IXOR)
_FDIV = int(Op.FDIV)
_I2F = int(Op.I2F)
_F2I = int(Op.F2I)
_FCMP = int(Op.FCMP)
_GOTO = int(Op.GOTO)
_NEW = int(Op.NEW)
_GETFIELD = int(Op.GETFIELD)
_PUTFIELD = int(Op.PUTFIELD)
_GETSTATIC = int(Op.GETSTATIC)
_PUTSTATIC = int(Op.PUTSTATIC)
_INSTANCEOF = int(Op.INSTANCEOF)
_CHECKCAST = int(Op.CHECKCAST)
_NEWARRAY = int(Op.NEWARRAY)
_IALOAD = int(Op.IALOAD)
_IASTORE = int(Op.IASTORE)
_AALOAD = int(Op.AALOAD)
_AASTORE = int(Op.AASTORE)
_ARRAYLENGTH = int(Op.ARRAYLENGTH)
_INVOKESTATIC = int(Op.INVOKESTATIC)
_INVOKEVIRTUAL = int(Op.INVOKEVIRTUAL)
_INVOKESPECIAL = int(Op.INVOKESPECIAL)
_RETURN = int(Op.RETURN)
_IRETURN = int(Op.IRETURN)
_ARETURN = int(Op.ARETURN)
_ATHROW = int(Op.ATHROW)
_MONITORENTER = int(Op.MONITORENTER)
_MONITOREXIT = int(Op.MONITOREXIT)

#: The full ISA — every opcode has an emitter below.  Anything outside
#: this set (a future opcode) becomes a deopt site, never a wrong result.
_SUPPORTED = frozenset(int(op) for op in Op)

# conditional branches: condition template + pops
_COND = {
    int(Op.IFEQ): ("{a} == 0", 1),
    int(Op.IFNE): ("{a} != 0", 1),
    int(Op.IFLT): ("{a} < 0", 1),
    int(Op.IFLE): ("{a} <= 0", 1),
    int(Op.IFGT): ("{a} > 0", 1),
    int(Op.IFGE): ("{a} >= 0", 1),
    int(Op.IF_ICMPEQ): ("{a} == {b}", 2),
    int(Op.IF_ICMPNE): ("{a} != {b}", 2),
    int(Op.IF_ICMPLT): ("{a} < {b}", 2),
    int(Op.IF_ICMPLE): ("{a} <= {b}", 2),
    int(Op.IF_ICMPGT): ("{a} > {b}", 2),
    int(Op.IF_ICMPGE): ("{a} >= {b}", 2),
    int(Op.IFNULL): ("{a} is None", 1),
    int(Op.IFNONNULL): ("{a} is not None", 1),
    int(Op.IF_ACMPEQ): ("{a} is {b}", 2),
    int(Op.IF_ACMPNE): ("{a} is not {b}", 2),
}

# int32 overflow check + wrap of the temp ``_r`` (the interpreter's
# inlined fast path, verbatim)
_WRAP = ("if _r > 2147483647 or _r < -2147483648:",
         "    _r = (_r + 2147483648 & 4294967295) - 2147483648")

# binary ALU ops that wrap unconditionally (no int-type fast-path test)
_BIN_WRAP = {
    _IAND: "s{x} & s{y}",
    _IOR: "s{x} | s{y}",
    _IXOR: "s{x} ^ s{y}",
    _ISHL: "s{x} << (s{y} & 31)",
    _ISHR: "s{x} >> (s{y} & 31)",
}

# type-polymorphic arithmetic (int fast path with wrap, else host op)
_BIN_POLY = {_IADD: "+", _ISUB: "-", _IMUL: "*"}


class _Bail(Exception):
    """Translation abandoned; ``reason`` is the metrics key."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def translate(method, vm, policy=None, exclude_ops=frozenset()
              ) -> Tuple[Optional[object], Optional[str], Optional[str]]:
    """Translate ``method`` into a template function.

    Returns ``(func, source, None)`` on success or ``(None, None,
    reason)`` on bail-out.  ``exclude_ops`` (ints) forces deopt sites
    for those opcodes — used by tests to exercise the deopt machinery.
    """
    try:
        func, source = _translate(method, vm, policy,
                                  frozenset(int(o) for o in exclude_ops))
        return func, source, None
    except _Bail as bail:
        return None, None, bail.reason
    except Exception as exc:  # never let translation break execution
        return None, None, f"error:{type(exc).__name__}"


def _translate(method, vm, policy, exclude_ops):
    info = method.info
    code = info.code
    if not code:
        raise _Bail("no_code")
    limit = policy.template_code_limit if policy is not None else 2000
    n_ins = len(code)
    if n_ins > limit:
        raise _Bail("too_long")
    ops = method.ops
    operands = method.operands
    costs = method.compiled_cost_list
    cp = method.owner.constant_pool

    # -- dataflow: operand-stack depth at every pc reachable from entry.
    # Handler-reachable-only code is *not* translated: a frame resuming
    # at a handler has a non-empty stack and pc != 0, so the tier
    # dispatch never hands it to the template.
    depth_at = [-1] * n_ins
    deopt_only = [False] * n_ins
    invoke_effect = {}
    work = [(0, 0)]
    while work:
        pc, d = work.pop()
        if pc < 0 or pc >= n_ins:
            raise _Bail("fall_off_end")
        known = depth_at[pc]
        if known >= 0:
            if known != d:
                raise _Bail("stack_inconsistent")
            continue
        depth_at[pc] = d
        op = ops[pc]
        if op in exclude_ops or op not in _SUPPORTED:
            deopt_only[pc] = True
            continue  # terminal in the template: no successors
        if 0x90 <= op <= 0x92:  # INVOKE family: effect from the cp ref
            ref = cp.get_typed(operands[pc], CpMethodRef)
            np = arg_slot_count(ref.descriptor) \
                + (0 if op == _INVOKESTATIC else 1)
            rv = returns_value(ref.descriptor)
            invoke_effect[pc] = (np, rv, ref)
            pops, pushes = np, (1 if rv else 0)
        else:
            spec = SPECS[Op(op)]
            pops, pushes = spec.pops, spec.pushes
        if d < pops:
            raise _Bail("stack_inconsistent")
        nd = d - pops + pushes
        if op == _GOTO:
            work.append((operands[pc], nd))
        elif 0x50 <= op <= 0x60:
            work.append((operands[pc], nd))
            work.append((pc + 1, nd))
        elif 0x93 <= op <= 0x95 or op == _ATHROW:
            pass
        else:
            work.append((pc + 1, nd))

    # -- block structure: targets of reachable branches start blocks
    targets = set()
    back_targets = set()  # loop headers: targets of backward branches
    for pc in range(n_ins):
        if depth_at[pc] >= 0 and not deopt_only[pc] \
                and 0x50 <= ops[pc] <= 0x60:
            target = operands[pc]
            targets.add(target)
            if target <= pc:
                back_targets.add(target)
    leaders = sorted({0} | targets)
    bid = {pc: i for i, pc in enumerate(leaders)}
    # any branch target forces the dispatch-loop form — including a
    # lone target at pc 0 (a single-block loop), which the straight-line
    # form cannot express (`continue` needs the loop)
    multi = len(leaders) > 1 or bool(targets)

    # -- OSR entry points: every loop header gets an entry stub that
    # rebuilds the flattened stack slots from the live interpreter
    # frame and starts execution at the header's block (deopt frame
    # reconstruction run in reverse).  {header pc: stack depth} — the
    # interpreter matches the live frame's depth against this map
    # before entering.
    osr_map = {t: depth_at[t] for t in back_targets if depth_at[t] >= 0} \
        if (policy is None or policy.osr) else {}

    # -- superinstruction fusion: pick hot adjacent windows to emit as
    # combined handlers (selection lives in repro.jit.fusion; the
    # emitters are in emit_fused below)
    fusion_plan = plan_fusion(
        ops, operands, code, depth_at, deopt_only, targets,
        policy.fusion_pairs if policy is not None and policy.fusion
        else (8 if policy is None else 0))

    # -- source emission
    bindings = {
        "CT": ChargeTag.BYTECODE,
        "vm": vm,
        "heap": vm.heap,
        "loader": vm.loader,
        "jit": vm.jit,
        "jvmti": vm.jvmti,
        "method": method,
        "JArray": JArray,
        "wrap_int32": wrap_int32,
        "NoSuchFieldError": NoSuchFieldError,
        "DeadlockError": DeadlockError,
        "Unwind": Unwind,
        "AK_INT": ArrayKind.INT,
        "DEOPT": (1,),
        "RET_VOID": (0, False, None),
        "_nan": math.nan,
        "_inf": math.inf,
        "_ninf": -math.inf,
        "_cs": math.copysign,
    }

    def bind(name, value):
        bindings[name] = value

    lines = [
        "def template(interp, thread, frame, osr_pc=-1):",
        "    charge = thread.charge",
        "    l = frame.locals",
        "    frames = thread.frames",
        "    p = 0",
        "    n = 0",
    ]
    if multi:
        lines.append("    b = 0")
        if osr_map:
            # OSR entry stubs: rebuild s0..s{d-1} from the live frame's
            # operand stack and jump to the loop header's block.  Entry
            # is free on the simulated clock, exactly like a normal
            # template entry (the interpreter flushed at the backedge).
            lines.append("    if osr_pc != -1:")
            lines.append("        _st = frame.stack")
            kw = "if"
            for t in sorted(osr_map):
                lines.append(f"        {kw} osr_pc == {t}:")
                for i in range(depth_at[t]):
                    lines.append(f"            s{i} = _st[{i}]")
                lines.append(f"            b = {bid[t]}")
                kw = "elif"
            lines.append("        frame.stack = []")
        lines.append("    while 1:")
    op_indent = "            " if multi else "    "

    def out(rel, text):
        lines.append(op_indent + "    " * rel + text)

    seg = [0, 0]  # translation-time constant (cycles, instructions)

    def acc(pc):
        seg[0] += costs[pc]
        seg[1] += 1

    def spill(rel=0):
        if seg[1]:
            out(rel, f"p += {seg[0]}")
            out(rel, f"n += {seg[1]}")
            seg[0] = seg[1] = 0

    def flush(pc, rel=0, set_pc=True):
        # matches the interpreter: pending includes this op's cost
        # (>= 1), so the charge/retire are unconditional
        if set_pc:
            out(rel, f"frame.pc = {pc}")
        out(rel, "charge(p, CT)")
        out(rel, "p = 0")
        out(rel, "vm.instructions_retired += n")
        out(rel, "n = 0")

    def deopt(pc, d, reason, rel=0):
        slots = ", ".join(f"s{i}" for i in range(d))
        out(rel, f"frame.pc = {pc}")
        out(rel, f"frame.stack = [{slots}]")
        out(rel, "frame.deopted = True")
        out(rel, "if p:")
        out(rel + 1, "charge(p, CT)")
        out(rel, "if n:")
        out(rel + 1, "vm.instructions_retired += n")
        out(rel, f"jit.note_deopt(method, {reason!r})")
        out(rel, "return DEOPT")

    def throw(pc, cls, msg_expr, rel=0, flushed=False):
        pn = "0, 0" if flushed else "p, n"
        out(rel, f"return interp._template_throw(thread, frame, {pc}, "
                 f"{cls!r}, {msg_expr}, {pn})")

    def cold_guard(pc, d, cost):
        """Cold constant-pool site: deopt until the interpreter has
        quickened it, then read the quickened value at run time."""
        spill()
        bind(f"I{pc}", code[pc])
        out(0, f"_q = I{pc}.quick")
        out(0, "if _q is None:")
        deopt(pc, d, "cold_site", rel=1)
        out(0, f"p += {cost}")
        out(0, "n += 1")

    # preemptive scheduler (cores > 1): emit safepoint checks at
    # backedges and call boundaries.  Gated at translation time — at
    # cores=1 the emitted source carries no scheduler code at all.
    sched_on = vm.scheduler is not None
    if sched_on:
        bind("SP", vm.scheduler)

    # race sanitizer: emit the same shadow hooks the interpreter runs,
    # at the same points.  Gated at translation time — with --sanitize
    # off the emitted source is byte-identical to today's, and the
    # hooks are host-side only (no charge, no retire), so simulated
    # cycle accounting is untouched either way.
    san_on = vm.sanitizer is not None
    if san_on:
        bind("SAN", vm.sanitizer)

    def safepoint_backedge(target, rel):
        """Quantum check at a taken backward branch (pending charges
        still in ``p``, exactly the interpreter's check)."""
        out(rel, "if thread.cycles_total + p >= thread.preempt_at:")
        out(rel + 1, f"frame.pc = {target}")
        out(rel + 1, "charge(p, CT)")
        out(rel + 1, "p = 0")
        out(rel + 1, "vm.instructions_retired += n")
        out(rel + 1, "n = 0")
        out(rel + 1, "SP.preempt(thread)")

    def emit_op(pc, op, d):
        """Emit one instruction; returns True when it falls through."""
        cost = costs[pc]
        ins = code[pc]

        if deopt_only[pc]:
            spill()
            name = SPECS[Op(op)].mnemonic if op in _SUPPORTED \
                else f"0x{op:02x}"
            deopt(pc, d, f"unsupported_op:{name}")
            return False

        if op == _ICONST:
            acc(pc)
            out(0, f"s{d} = {operands[pc]!r}")
        elif op == _ILOAD or op == _ALOAD:
            acc(pc)
            out(0, f"s{d} = l[{operands[pc]}]")
        elif op == _ISTORE or op == _ASTORE:
            acc(pc)
            out(0, f"l[{operands[pc]}] = s{d - 1}")
        elif op == _ACONST_NULL:
            acc(pc)
            out(0, f"s{d} = None")
        elif op == _NOP:
            acc(pc)
        elif op == _IINC:
            acc(pc)
            idx, delta = operands[pc]
            out(0, f"_r = l[{idx}] + {delta}")
            out(0, "if type(_r) is int:")
            out(1, _WRAP[0])
            out(1, _WRAP[1])
            out(1, f"l[{idx}] = _r")
            out(0, "else:")
            out(1, f"l[{idx}] = wrap_int32(_r)")
        elif op == _POP:
            acc(pc)
        elif op == _DUP:
            acc(pc)
            out(0, f"s{d} = s{d - 1}")
        elif op == _DUP_X1:
            acc(pc)
            out(0, f"s{d - 2}, s{d - 1}, s{d} = "
                   f"s{d - 1}, s{d - 2}, s{d - 1}")
        elif op == _SWAP:
            acc(pc)
            out(0, f"s{d - 2}, s{d - 1} = s{d - 1}, s{d - 2}")
        elif op in _BIN_POLY:
            acc(pc)
            pyop = _BIN_POLY[op]
            out(0, f"_a = s{d - 2}")
            out(0, f"_b = s{d - 1}")
            out(0, "if type(_b) is int and type(_a) is int:")
            out(1, f"_r = _a {pyop} _b")
            out(1, _WRAP[0])
            out(1, _WRAP[1])
            out(1, f"s{d - 2} = _r")
            out(0, "else:")
            out(1, f"s{d - 2} = _a {pyop} _b")
        elif op in _BIN_WRAP:
            acc(pc)
            out(0, "_r = " + _BIN_WRAP[op].format(x=d - 2, y=d - 1))
            out(0, _WRAP[0])
            out(0, _WRAP[1])
            out(0, f"s{d - 2} = _r")
        elif op == _IUSHR:
            acc(pc)
            out(0, f"_r = (s{d - 2} & 4294967295) >> (s{d - 1} & 31)")
            out(0, "if _r > 2147483647:")
            out(1, "_r -= 4294967296")
            out(0, f"s{d - 2} = _r")
        elif op == _INEG:
            acc(pc)
            out(0, f"_v = s{d - 1}")
            out(0, "if type(_v) is int:")
            out(1, "_r = -_v")
            out(1, _WRAP[0])
            out(1, _WRAP[1])
            out(1, f"s{d - 1} = _r")
            out(0, "else:")
            out(1, f"s{d - 1} = -_v")
        elif op == _I2F:
            acc(pc)
            out(0, f"s{d - 1} = float(s{d - 1})")
        elif op == _F2I:
            acc(pc)
            out(0, f"_r = int(s{d - 1})")
            out(0, _WRAP[0])
            out(0, _WRAP[1])
            out(0, f"s{d - 1} = _r")
        elif op == _FCMP:
            acc(pc)
            out(0, f"_a = s{d - 2}")
            out(0, f"_b = s{d - 1}")
            out(0, f"s{d - 2} = -1 if _a < _b else (1 if _a > _b else 0)")
        elif op == _FDIV:
            acc(pc)
            out(0, f"_a = s{d - 2}")
            out(0, f"_b = s{d - 1}")
            out(0, "if _b == 0:")
            out(1, "if _a == 0:")
            out(2, f"s{d - 2} = _nan")
            out(1, "else:")
            out(2, "_r = _cs(1.0, float(_a)) * _cs(1.0, float(_b))")
            out(2, f"s{d - 2} = _inf if _r > 0 else _ninf")
            out(0, "else:")
            out(1, f"s{d - 2} = _a / _b")
        elif op == _IDIV or op == _IREM:
            acc(pc)
            spill()
            out(0, f"_b = s{d - 1}")
            out(0, f"_a = s{d - 2}")
            out(0, "if type(_a) is int and type(_b) is int:")
            out(1, "if _b == 0:")
            throw(pc, _ARITH, "'/ by zero'", rel=2)
            out(1, "_t = abs(_a) // abs(_b)")
            out(1, "if (_a < 0) != (_b < 0):")
            out(2, "_t = -_t")
            if op == _IDIV:
                out(1, "_r = _t")
            else:
                out(1, "_r = _a - _t * _b")
            out(1, _WRAP[0])
            out(1, _WRAP[1])
            out(1, f"s{d - 2} = _r")
            out(0, "else:")
            out(1, "if _b == 0:")
            throw(pc, _ARITH, "'/ by zero'", rel=2)
            if op == _IDIV:
                out(1, f"s{d - 2} = _a / _b")
            else:
                out(1, f"s{d - 2} = _a % _b")
        elif op == _GOTO:
            acc(pc)
            spill()
            if sched_on and operands[pc] <= pc:
                safepoint_backedge(operands[pc], rel=0)
            out(0, f"b = {bid[operands[pc]]}")
            out(0, "continue")
            return False
        elif op in _COND:
            acc(pc)
            spill()
            tmpl, pops = _COND[op]
            if pops == 1:
                cond = tmpl.format(a=f"s{d - 1}")
            else:
                cond = tmpl.format(a=f"s{d - 2}", b=f"s{d - 1}")
            out(0, f"if {cond}:")
            if sched_on and operands[pc] <= pc:
                safepoint_backedge(operands[pc], rel=1)
            out(1, f"b = {bid[operands[pc]]}")
            out(1, "continue")
        elif op == _GETFIELD:
            q = ins.quick
            if q is not None:
                acc(pc)
                spill()
                out(0, f"_o = s{d - 1}")
                out(0, "if _o is None:")
                throw(pc, _NPE, repr(f"getfield {q}"), rel=1)
                out(0, "try:")
                out(1, f"s{d - 1} = _o.fields[{q!r}]")
                out(0, "except (KeyError, AttributeError):")
                out(1, 'raise NoSuchFieldError(f"{_o!r} has no field '
                       f'{q}")')
                if san_on:
                    out(0, f"frame.pc = {pc}")
                    out(0, f"SAN.read_field(thread, _o, {q!r})")
            else:
                cold_guard(pc, d, cost)
                out(0, f"_o = s{d - 1}")
                out(0, "if _o is None:")
                throw(pc, _NPE, "'getfield ' + _q", rel=1)
                out(0, "try:")
                out(1, f"s{d - 1} = _o.fields[_q]")
                out(0, "except (KeyError, AttributeError):")
                out(1, 'raise NoSuchFieldError(f"{_o!r} has no field '
                       '{_q}")')
                if san_on:
                    out(0, f"frame.pc = {pc}")
                    out(0, "SAN.read_field(thread, _o, _q)")
        elif op == _PUTFIELD:
            q = ins.quick
            if q is not None:
                acc(pc)
                spill()
                out(0, f"_v = s{d - 1}")
                out(0, f"_o = s{d - 2}")
                out(0, "if _o is None:")
                throw(pc, _NPE, repr(f"putfield {q}"), rel=1)
                out(0, f"if {q!r} not in _o.fields:")
                out(1, 'raise NoSuchFieldError(f"{_o!r} has no field '
                       f'{q}")')
                out(0, f"_o.fields[{q!r}] = _v")
                if san_on:
                    out(0, f"frame.pc = {pc}")
                    out(0, f"SAN.write_field(thread, _o, {q!r})")
            else:
                cold_guard(pc, d, cost)
                out(0, f"_v = s{d - 1}")
                out(0, f"_o = s{d - 2}")
                out(0, "if _o is None:")
                throw(pc, _NPE, "'putfield ' + _q", rel=1)
                out(0, "if _q not in _o.fields:")
                out(1, 'raise NoSuchFieldError(f"{_o!r} has no field '
                       '{_q}")')
                out(0, "_o.fields[_q] = _v")
                if san_on:
                    out(0, f"frame.pc = {pc}")
                    out(0, "SAN.write_field(thread, _o, _q)")
        elif op == _GETSTATIC or op == _PUTSTATIC:
            q = ins.quick
            if q is not None:
                bind(f"D{pc}", q[0].statics)
                bind(f"N{pc}", q[1])
                if san_on:
                    bind(f"H{pc}", q[0])
                acc(pc)
                spill()
                flush(pc)
                if op == _GETSTATIC:
                    out(0, f"s{d} = D{pc}[N{pc}]")
                    if san_on:
                        out(0, f"SAN.read_static(thread, H{pc}, N{pc})")
                else:
                    out(0, f"D{pc}[N{pc}] = s{d - 1}")
                    if san_on:
                        out(0, f"SAN.write_static(thread, H{pc}, N{pc})")
            else:
                cold_guard(pc, d, cost)
                flush(pc)
                if op == _GETSTATIC:
                    out(0, f"s{d} = _q[0].statics[_q[1]]")
                    if san_on:
                        out(0, "SAN.read_static(thread, _q[0], _q[1])")
                else:
                    out(0, f"_q[0].statics[_q[1]] = s{d - 1}")
                    if san_on:
                        out(0, "SAN.write_static(thread, _q[0], _q[1])")
        elif op == _NEW:
            q = ins.quick
            if q is not None:
                bind(f"C{pc}", q)
                acc(pc)
                spill()
                flush(pc)
                out(0, f"s{d} = heap.alloc_object(C{pc})")
            else:
                cold_guard(pc, d, cost)
                flush(pc)
                out(0, f"s{d} = heap.alloc_object(_q)")
        elif op == _LDC:
            q = ins.quick
            if q is not None:
                if q[0]:  # string: interning was a VM boundary
                    bind(f"S{pc}", q[1])
                    acc(pc)
                    spill()
                    flush(pc)
                    out(0, f"s{d} = S{pc}")
                else:
                    bind(f"F{pc}", q[1])
                    acc(pc)
                    out(0, f"s{d} = F{pc}")
            else:
                cold_guard(pc, d, cost)
                out(0, "if _q[0]:")
                flush(pc, rel=1)
                out(0, f"s{d} = _q[1]")
        elif op == _INSTANCEOF:
            q = ins.quick
            if q is not None:
                acc(pc)
                out(0, f"_o = s{d - 1}")
                out(0, "if _o is None:")
                out(1, f"s{d - 1} = 0")
                out(0, "elif isinstance(_o, JArray):")
                out(1, f"s{d - 1} = {1 if q == 'java.lang.Object' else 0}")
                out(0, "else:")
                out(1, f"s{d - 1} = 1 if _o.jclass.is_subclass_of({q!r}) "
                       "else 0")
            else:
                cold_guard(pc, d, cost)
                out(0, f"_o = s{d - 1}")
                out(0, "if _o is None:")
                out(1, f"s{d - 1} = 0")
                out(0, "elif isinstance(_o, JArray):")
                out(1, f"s{d - 1} = 1 if _q == 'java.lang.Object' else 0")
                out(0, "else:")
                out(1, f"s{d - 1} = 1 if _o.jclass.is_subclass_of(_q) "
                       "else 0")
        elif op == _CHECKCAST:
            q = ins.quick
            if q is not None:
                acc(pc)
                spill()
                out(0, f"_o = s{d - 1}")
                out(0, "if _o is not None and not isinstance(_o, JArray) "
                       f"and not _o.jclass.is_subclass_of({q!r}):")
                throw(pc, _CCE, f"_o.class_name + {' -> ' + q!r}", rel=1)
            else:
                cold_guard(pc, d, cost)
                out(0, f"_o = s{d - 1}")
                out(0, "if _o is not None and not isinstance(_o, JArray) "
                       "and not _o.jclass.is_subclass_of(_q):")
                throw(pc, _CCE, "_o.class_name + ' -> ' + _q", rel=1)
        elif op == _NEWARRAY:
            acc(pc)
            spill()
            bind(f"A{pc}", operands[pc])
            out(0, f"_v = s{d - 1}")
            out(0, "if _v < 0:")
            throw(pc, _NASE, "str(_v)", rel=1)
            out(0, f"s{d - 1} = heap.alloc_array(A{pc}, _v)")
        elif op == _IALOAD or op == _AALOAD:
            acc(pc)
            spill()
            out(0, f"_i = s{d - 1}")
            out(0, f"_arr = s{d - 2}")
            out(0, "if _arr is None:")
            throw(pc, _NPE, "'array load'", rel=1)
            out(0, "_dt = _arr.data")
            out(0, "if _i < 0 or _i >= len(_dt):")
            throw(pc, _AIOOBE, "str(_i)", rel=1)
            out(0, f"s{d - 2} = _dt[_i]")
        elif op == _IASTORE or op == _AASTORE:
            acc(pc)
            spill()
            out(0, f"_v = s{d - 1}")
            out(0, f"_i = s{d - 2}")
            out(0, f"_arr = s{d - 3}")
            out(0, "if _arr is None:")
            throw(pc, _NPE, "'array store'", rel=1)
            out(0, "_dt = _arr.data")
            out(0, "if _i < 0 or _i >= len(_dt):")
            throw(pc, _AIOOBE, "str(_i)", rel=1)
            out(0, "if _arr.kind is AK_INT and type(_v) is int "
                   "and -2147483648 <= _v <= 2147483647:")
            out(1, "_dt[_i] = _v")
            out(0, "else:")
            out(1, "_dt[_i] = _arr.normalize(_v)")
        elif op == _ARRAYLENGTH:
            acc(pc)
            spill()
            out(0, f"_arr = s{d - 1}")
            out(0, "if _arr is None:")
            throw(pc, _NPE, "'arraylength'", rel=1)
            out(0, f"s{d - 1} = len(_arr.data)")
        elif op == _MONITORENTER:
            acc(pc)
            spill()
            out(0, f"_o = s{d - 1}")
            out(0, "if _o is None:")
            throw(pc, _NPE, "'monitorenter'", rel=1)
            out(0, "if _o.monitor_owner is None or "
                   "_o.monitor_owner is thread:")
            out(1, "_o.monitor_owner = thread")
            out(1, "_o.monitor_count += 1")
            if san_on:
                out(1, "SAN.on_acquire(thread, _o)")
            out(0, "else:")
            if sched_on:
                # contended: flush (the thread parks mid-opcode) and
                # block until ownership is handed over
                flush(pc, rel=1)
                out(1, "SP.acquire_contended(thread, _o)")
            else:
                out(1, "raise interp._sequential_monitor_deadlock("
                       "thread, _o)")
        elif op == _MONITOREXIT:
            acc(pc)
            spill()
            out(0, f"_o = s{d - 1}")
            out(0, "if _o is None:")
            throw(pc, _NPE, "'monitorexit'", rel=1)
            out(0, "if _o.monitor_owner is not thread or "
                   "_o.monitor_count <= 0:")
            throw(pc, _IMSE, "'not monitor owner'", rel=1)
            out(0, "_o.monitor_count -= 1")
            out(0, "if _o.monitor_count == 0:")
            out(1, "_o.monitor_owner = None")
            if san_on:
                out(1, "SAN.on_release(thread, _o)")
            if sched_on:
                out(1, "if _o.monitor_waiters:")
                out(2, "SP.release_monitor(thread, _o)")
        elif 0x93 <= op <= 0x95:  # RETURN / IRETURN / ARETURN
            acc(pc)
            spill()
            flush(pc, set_pc=False)
            # the flag is re-checked at run time (agents can toggle
            # events mid-run); inlining it just skips a call when off
            out(0, "if jvmti.method_exit_enabled:")
            out(1, "interp._exit_method_event(thread, method, False)")
            if op == _RETURN:
                out(0, "return RET_VOID")
            else:
                out(0, f"return (0, True, s{d - 1})")
            return False
        elif op == _ATHROW:
            acc(pc)
            spill()
            out(0, f"_e = s{d - 1}")
            out(0, "if _e is None:")
            throw(pc, _NPE, "'throw null'", rel=1)
            out(0, f"return interp._template_raise(thread, frame, {pc}, "
                   "_e, p, n)")
            return False
        elif 0x90 <= op <= 0x92:  # INVOKE family
            np, rv, ref = invoke_effect[pc]
            q = ins.quick
            if q is None:
                cold_guard(pc, d, cost)
                qref = "_q"
            else:
                bind(f"Q{pc}", q)
                qref = f"Q{pc}"
                acc(pc)
                spill()
            flush(pc)
            if sched_on:
                out(0, "if thread.cycles_total >= thread.preempt_at:")
                out(1, "SP.preempt(thread)")
            args = ", ".join(f"s{i}" for i in range(d - np, d))
            out(0, f"_a = [{args}]")
            if op != _INVOKESTATIC:
                out(0, f"if s{d - np} is None:")
                throw(pc, _NPE, repr(f"invoke {ref.method_name} on null"),
                      rel=1, flushed=True)
            if op == _INVOKEVIRTUAL:
                out(0, f"_rc = getattr(s{d - np}, 'jclass', None)")
                out(0, "if _rc is None:")
                out(1, "_rc = loader.load('java.lang.Object')")
                out(0, f"if _rc is {qref}[4]:")
                out(1, f"_m = {qref}[5]")
                out(1, "vm.ic_hits += 1")
                out(0, "else:")
                # PIC slow path: shared with the interpreter so cache
                # state and counters evolve identically across tiers
                out(1, f"_m = interp._pic_miss({qref}, _rc)")
            else:
                out(0, f"_m = {qref}[0]")
            out(0, "if _m.is_native:")
            out(1, "try:")
            out(2, "_res = interp._invoke_native(thread, _m, _a)")
            out(1, "except Unwind as _u:")
            out(2, "return (2, _u.jobject)")
            out(0, "else:")
            out(1, "interp._enter_bytecode_method(thread, _m, _a)")
            # template-to-template direct call: a fresh frame always
            # satisfies the tier-dispatch guard (pc 0, empty stack, not
            # deopted), so when the callee has a template we call it
            # here and skip _run's dispatch prologue entirely — the
            # dominant host cost of hot leaf calls.  Deopt and thrown
            # outcomes fall back to the interpreter via
            # _template_call_finish, which replays _run's own handling.
            out(1, "_t = _m.template")
            out(1, "if _t is not None:")
            out(2, "jit.template_entries += 1")
            out(2, "_out = _t(interp, thread, frames[-1])")
            out(2, "if _out[0] == 0:")
            out(3, "frames.pop()")
            out(3, "_res = _out[2]")
            out(2, "else:")
            out(3, "try:")
            out(4, "_res = interp._template_call_finish("
                   "thread, _out, len(frames) - 1)")
            out(3, "except Unwind as _u:")
            out(4, "return (2, _u.jobject)")
            out(1, "else:")
            out(2, "try:")
            out(3, "_res = interp._run(thread, len(frames) - 1)")
            out(2, "except Unwind as _u:")
            out(3, "return (2, _u.jobject)")
            if rv:
                out(0, f"s{d - np} = _res")
        else:  # pragma: no cover - _SUPPORTED is exhaustive over Op
            raise _Bail(f"unsupported_op:0x{op:02x}")
        return True

    def _load_expr(pc):
        """The value a fusible load pushes, as a plain expression."""
        op = ops[pc]
        if op == _ILOAD or op == _ALOAD:
            return f"l[{operands[pc]}]"
        if op == _ICONST:
            return repr(operands[pc])
        return "None"  # ACONST_NULL

    def emit_fused(site, d):
        """Emit one fused superinstruction window.

        Accounting: every instruction in the window is ``acc``-ed, so
        the segment constant carries the sum of their cycle costs — the
        window is one indivisible charge, identical in total to the
        unfused emission.  Throws and branches report the pc of the
        *consuming* instruction (the window's last), exactly where the
        interpreter would be when that instruction executes.  Always
        falls through (a fused branch falls through when not taken).
        """
        pc = site.pc
        last = pc + site.length - 1
        for k in range(pc, last + 1):
            acc(k)
        pattern = site.pattern
        if pattern == "load_load_arith":
            pyop = _BIN_POLY[ops[last]]
            out(0, f"_a = {_load_expr(pc)}")
            out(0, f"_b = {_load_expr(pc + 1)}")
            out(0, "if type(_b) is int and type(_a) is int:")
            out(1, f"_r = _a {pyop} _b")
            out(1, _WRAP[0])
            out(1, _WRAP[1])
            out(1, f"s{d} = _r")
            out(0, "else:")
            out(1, f"s{d} = _a {pyop} _b")
        elif pattern == "load_arith":
            pyop = _BIN_POLY[ops[last]]
            out(0, f"_a = s{d - 1}")
            out(0, f"_b = {_load_expr(pc)}")
            out(0, "if type(_b) is int and type(_a) is int:")
            out(1, f"_r = _a {pyop} _b")
            out(1, _WRAP[0])
            out(1, _WRAP[1])
            out(1, f"s{d - 1} = _r")
            out(0, "else:")
            out(1, f"s{d - 1} = _a {pyop} _b")
        elif pattern == "load_store":
            out(0, f"l[{operands[last]}] = {_load_expr(pc)}")
        elif pattern == "aload_getfield":
            q = code[last].quick
            spill()
            out(0, f"_o = l[{operands[pc]}]")
            out(0, "if _o is None:")
            throw(last, _NPE, repr(f"getfield {q}"), rel=1)
            out(0, "try:")
            out(1, f"s{d} = _o.fields[{q!r}]")
            out(0, "except (KeyError, AttributeError):")
            out(1, 'raise NoSuchFieldError(f"{_o!r} has no field '
                   f'{q}")')
            if san_on:
                out(0, f"frame.pc = {last}")
                out(0, f"SAN.read_field(thread, _o, {q!r})")
        else:  # load_branch
            spill()
            tmpl, pops = _COND[ops[last]]
            if pops == 1:
                cond = tmpl.format(a=_load_expr(pc))
            else:
                cond = tmpl.format(a=f"s{d - 1}", b=_load_expr(pc))
            target = operands[last]
            out(0, f"if {cond}:")
            if sched_on and target <= last:
                safepoint_backedge(target, rel=1)
            out(1, f"b = {bid[target]}")
            out(1, "continue")
        return True

    fallthrough = False
    first_arm = True
    skip_until = 0
    for pc in range(n_ins):
        if pc < skip_until:
            continue  # consumed by a fused window
        if depth_at[pc] < 0:
            continue  # unreachable from entry: never emitted
        if multi and pc in bid:
            if fallthrough:
                spill()
                out(0, f"b = {bid[pc]}")
                out(0, "continue")
            kw = "if" if first_arm else "elif"
            lines.append(f"        {kw} b == {bid[pc]}:")
            first_arm = False
        elif pc != 0 and not fallthrough:
            raise _Bail("emit_inconsistent")
        site = fusion_plan.get(pc)
        if site is not None:
            fallthrough = emit_fused(site, depth_at[pc])
            skip_until = pc + site.length
        else:
            fallthrough = emit_op(pc, ops[pc], depth_at[pc])
    if fallthrough:
        raise _Bail("fall_off_end")

    source = "\n".join(lines) + "\n"
    code_obj = compile(source, f"<template:{method.qualified_name}>",
                       "exec")
    namespace = dict(bindings)
    exec(code_obj, namespace)
    func = namespace["template"]
    # published for the code cache (OSR eligibility) and the compiler's
    # fusion statistics; translate()'s return shape is unchanged so
    # monkeypatching tests keep working
    func.osr_map = osr_map
    func.fused_patterns = tuple(fusion_plan[pc].pattern
                                for pc in sorted(fusion_plan))
    return func, source
