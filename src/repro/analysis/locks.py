"""Static lock-order graph and deadlock-potential detection.

Locks are abstracted to *class-granular* tokens: a MONITORENTER whose
operand is statically a single class ``C`` acquires the token ``C``
(any instance of ``C``).  Nested monitor regions — including nesting
across calls, via the interprocedural entry locksets computed by
:mod:`repro.analysis.races` — contribute ``held -> acquired`` edges;
a cycle among distinct tokens means two call paths acquire the same
pair of locks in opposite orders, the classic deadlock recipe that
PR 6's dynamic wait-for-graph detector can only catch once it has
already happened.

Self-edges (``C -> C``) are excluded from cycle detection: at class
granularity they are indistinguishable from benign re-entrant locking
of one object, which the monitor implementation permits.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import AnalysisReport, Finding, Severity

__all__ = ["LockOrderGraph"]


class LockOrderGraph:
    """Directed graph over class-granular lock tokens."""

    def __init__(self):
        #: src token -> dst token -> list of (method qname, pc) evidence
        self.edges: Dict[str, Dict[str, List[Tuple[str, int]]]] = \
            defaultdict(dict)

    def add_edge(self, held: str, acquired: str, method: str,
                 pc: int) -> None:
        """Record: ``method`` at ``pc`` acquires ``acquired`` while
        holding ``held``."""
        sites = self.edges[held].setdefault(acquired, [])
        if len(sites) < 8:  # cap evidence, not the edge itself
            sites.append((method, pc))

    def cycles(self) -> List[List[str]]:
        """Elementary cycles among distinct tokens, one representative
        per cyclic SCC, canonicalized (rotation to the smallest token)
        and deduplicated."""
        found: Set[Tuple[str, ...]] = set()
        ordered: List[List[str]] = []
        for start in sorted(self.edges):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(self.edges.get(node, ())):
                    if nxt == node:
                        continue  # re-entrant self-edge
                    if nxt == start and len(path) > 1:
                        lo = path.index(min(path))
                        key = tuple(path[lo:] + path[:lo])
                        if key not in found:
                            found.add(key)
                            ordered.append(list(key))
                    elif nxt not in path and len(path) < 8:
                        stack.append((nxt, path + [nxt]))
        return ordered

    def findings(self) -> AnalysisReport:
        """One ``deadlock-potential`` warning per cycle."""
        report = AnalysisReport()
        for cycle in self.cycles():
            rendering = " -> ".join(cycle + [cycle[0]])
            evidence = []
            for held, acquired in zip(cycle, cycle[1:] + [cycle[0]]):
                for method, pc in self.edges[held][acquired][:2]:
                    evidence.append(
                        f"{method}@{pc} takes {acquired} under {held}")
            _method, pc = self.edges[cycle[0]][cycle[1]][0]
            report.add(Finding(
                severity=Severity.WARNING,
                rule="deadlock-potential",
                class_name=cycle[0],
                method="",  # evidence sites are in the message
                message=(f"lock-order cycle {rendering}: "
                         + "; ".join(evidence)),
                pc=pc,
            ))
        return report

    def to_json(self) -> dict:
        return {
            "edges": [
                {"held": held, "acquired": acquired,
                 "sites": [{"method": m, "pc": pc} for m, pc in sites]}
                for held in sorted(self.edges)
                for acquired, sites in sorted(self.edges[held].items())
            ],
            "cycles": self.cycles(),
        }
