"""Class-hierarchy-analysis (CHA) call graph over class archives.

Builds a whole-program call graph for the app + runtime archives: every
``invoke*`` instruction becomes a :class:`CallSite`, and virtual sites
are expanded to the CHA cone — the statically resolved method plus every
override in subclasses of the static receiver type.  The ISA has no
interfaces, so single-parent subclassing is the whole hierarchy.

Entry points are the conventional roots of the simulated VM: every
static ``main`` method, every ``<clinit>`` (run at initialization), and
every ``run()V`` (started via ``Thread``).  Reachability from those
roots gives the live method set that the native-boundary analysis
(:mod:`repro.analysis.boundary`) slices for J2N edges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bytecode.opcodes import INVOKE_OPS, Op
from repro.classfile.classfile import ClassFile
from repro.classfile.constant_pool import CpMethodRef
from repro.classfile.members import MethodInfo
from repro.errors import ClassFileError, ConstantPoolError


def qualified_name(class_name: str, method: MethodInfo) -> str:
    """``class.name(descriptor)`` key, matching
    :attr:`LoadedMethod.qualified_name` in the VM."""
    return f"{class_name}.{method.name}{method.descriptor}"


class ClassHierarchy:
    """Name-indexed class set with subclass links and method resolution."""

    def __init__(self, classes: Iterable[ClassFile]):
        self.classes: Dict[str, ClassFile] = {}
        for cf in classes:
            # first definition wins, like a classpath search
            self.classes.setdefault(cf.name, cf)
        self._children: Dict[str, List[str]] = defaultdict(list)
        for cf in self.classes.values():
            if cf.super_name:
                self._children[cf.super_name].append(cf.name)

    def __contains__(self, name: str) -> bool:
        return name in self.classes

    def get(self, name: str) -> Optional[ClassFile]:
        return self.classes.get(name)

    def superclass_chain(self, name: str) -> List[ClassFile]:
        """``name`` and its superclasses, bottom-up (missing links stop
        the walk)."""
        chain = []
        cursor = self.classes.get(name)
        while cursor is not None:
            chain.append(cursor)
            cursor = (self.classes.get(cursor.super_name)
                      if cursor.super_name else None)
        return chain

    def subclasses(self, name: str) -> Set[str]:
        """All transitive subclasses of ``name`` (excluding itself)."""
        found: Set[str] = set()
        stack = list(self._children.get(name, ()))
        while stack:
            child = stack.pop()
            if child not in found:
                found.add(child)
                stack.extend(self._children.get(child, ()))
        return found

    def resolve(self, class_name: str, method_name: str,
                descriptor: str) -> Optional[Tuple[str, MethodInfo]]:
        """JVM-style resolution: search ``class_name`` then up the
        superclass chain."""
        for cf in self.superclass_chain(class_name):
            method = cf.find_method(method_name, descriptor)
            if method is not None:
                return cf.name, method
        return None

    def cha_targets(self, class_name: str, method_name: str,
                    descriptor: str) -> List[Tuple[str, MethodInfo]]:
        """CHA cone for a virtual dispatch: the resolved method plus
        every override declared in a subclass of the receiver type."""
        targets: List[Tuple[str, MethodInfo]] = []
        resolved = self.resolve(class_name, method_name, descriptor)
        if resolved is not None:
            targets.append(resolved)
        for sub in sorted(self.subclasses(class_name)):
            method = self.classes[sub].find_method(method_name, descriptor)
            if method is not None:
                targets.append((sub, method))
        return targets


class CallSite:
    """One ``invoke*`` instruction and its CHA-resolved targets."""

    __slots__ = ("caller", "pc", "op", "ref", "targets")

    def __init__(self, caller: str, pc: int, op: Op, ref: CpMethodRef,
                 targets: List[str]):
        self.caller = caller      # qualified caller
        self.pc = pc              # instruction index within the caller
        self.op = op
        self.ref = ref            # the symbolic reference as written
        self.targets = targets    # qualified CHA targets (may be empty)

    @property
    def symbolic(self) -> str:
        return (f"{self.ref.class_name}.{self.ref.method_name}"
                f"{self.ref.descriptor}")

    def to_json(self) -> dict:
        return {
            "caller": self.caller,
            "pc": self.pc,
            "op": self.op.name.lower(),
            "ref": self.symbolic,
            "targets": list(self.targets),
        }


class CallGraph:
    """Methods (nodes), CHA edges, call sites, and reachability."""

    def __init__(self, hierarchy: ClassHierarchy):
        self.hierarchy = hierarchy
        self.methods: Dict[str, MethodInfo] = {}
        self.owner: Dict[str, str] = {}          # qname -> class name
        self.edges: Dict[str, Set[str]] = defaultdict(set)
        self.call_sites: List[CallSite] = []
        self.unresolved: List[CallSite] = []
        self.entry_points: List[str] = []

    def reachable(self,
                  roots: Optional[Iterable[str]] = None) -> Set[str]:
        """Methods reachable from ``roots`` (default: the entry
        points) over CHA edges."""
        seen: Set[str] = set()
        stack = [r for r in (roots if roots is not None
                             else self.entry_points) if r in self.methods]
        seen.update(stack)
        while stack:
            for callee in self.edges.get(stack.pop(), ()):
                if callee in self.methods and callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def to_json(self) -> dict:
        return {
            "methods": sorted(self.methods),
            "entry_points": sorted(self.entry_points),
            "edges": {caller: sorted(callees)
                      for caller, callees in sorted(self.edges.items())},
            "call_sites": [site.to_json() for site in self.call_sites],
            "unresolved": [site.to_json() for site in self.unresolved],
        }


def _is_entry_point(method: MethodInfo) -> bool:
    if method.name == "main" and method.is_static:
        return True
    if method.name == "<clinit>":
        return True
    return method.name == "run" and method.descriptor == "()V"


def build_call_graph(hierarchy: ClassHierarchy) -> CallGraph:
    """Walk every method of every class and wire CHA edges."""
    graph = CallGraph(hierarchy)

    for cf in hierarchy.classes.values():
        for method in cf.methods:
            qname = qualified_name(cf.name, method)
            graph.methods[qname] = method
            graph.owner[qname] = cf.name
            if _is_entry_point(method):
                graph.entry_points.append(qname)

    for cf in hierarchy.classes.values():
        for method in cf.methods:
            if method.is_native or not method.code:
                continue
            caller = qualified_name(cf.name, method)
            for pc, ins in enumerate(method.code):
                if ins.op not in INVOKE_OPS:
                    continue
                try:
                    ref = cf.constant_pool.get_typed(ins.operand,
                                                     CpMethodRef)
                except (ConstantPoolError, ClassFileError):
                    continue  # the verifier reports this, not CHA
                if ins.op is Op.INVOKEVIRTUAL:
                    resolved = hierarchy.cha_targets(
                        ref.class_name, ref.method_name, ref.descriptor)
                else:  # static / special bind to exactly one method
                    one = hierarchy.resolve(
                        ref.class_name, ref.method_name, ref.descriptor)
                    resolved = [one] if one is not None else []
                targets = [qualified_name(owner, target)
                           for owner, target in resolved]
                site = CallSite(caller, pc, ins.op, ref, targets)
                graph.call_sites.append(site)
                if targets:
                    graph.edges[caller].update(targets)
                else:
                    graph.unresolved.append(site)

    return graph


def build_hierarchy(archives) -> ClassHierarchy:
    """Hierarchy over a sequence of :class:`ClassArchive` (classpath
    order: earlier archives shadow later ones)."""
    def iter_classes():
        for archive in archives:
            for cf in archive.classes():
                yield cf
    return ClassHierarchy(iter_classes())
