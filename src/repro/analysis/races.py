"""Static race prediction: thread-escape analysis + Eraser locksets.

Three cooperating passes over the PR-4 CHA call graph:

1. **Flow collection** — a light abstract interpretation of every
   reachable method.  Abstract values are sets of possible class names
   (plus the ``[]`` marker for arrays); locals start from the method
   descriptor's declared types, ``NEW``/``CHECKCAST`` refine, and
   ``GETFIELD`` reads flow through a global ``(declaring class, field)
   -> classes`` table computed to fixpoint.  The pass records which
   classes are stored into which containers (instance fields, statics,
   arrays) and, per pc, the receiver classes of every field access and
   monitor operation.

2. **Thread-escape** — a class reaches another thread if it is a
   started ``java.lang.Thread`` subclass, is stored into a static, or
   is stored into a field (or array) of an escaping class; least fixed
   point over the recorded flows.  A program that never instantiates a
   ``Thread`` subclass is single-threaded and trivially race-free.

3. **Eraser locksets** — per-method CFG dataflow tracking the multiset
   of class-granular monitor tokens held at every field access on a
   shared target, with *interprocedural* entry locksets (the
   intersection of locks held at every reachable call site, to a
   fixpoint — a callee only ever invoked under a lock inherits it).
   A shared field written outside its constructor whose candidate
   lockset (the intersection across all accesses) is empty becomes a
   ``race-warning`` with class/field/pc/lockset evidence.  Nested
   acquisitions feed the :class:`~repro.analysis.locks.LockOrderGraph`
   whose cycles become ``deadlock-potential`` warnings.

Known imprecision, by design (Eraser's, not ours): synchronization via
fork/join ordering or the scheduler's serialization is invisible to
locksets, so e.g. an accumulator handed from a worker (under its lock)
to the main thread (after ``join``, lockless) is reported.  That is the
safe direction: the harness cross-check (``--race-check``) only needs
the static set to be a *superset* of the dynamically confirmed races.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    ClassHierarchy,
    build_call_graph,
)
from repro.analysis.cfg import build_cfg
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.locks import LockOrderGraph
from repro.bytecode.opcodes import SPECS, Op
from repro.classfile.constant_pool import (
    CpClass,
    CpFieldRef,
    CpMethodRef,
)
from repro.classfile.members import parse_descriptor
from repro.errors import ClassFileError, ConstantPoolError

THREAD_CLASS = "java.lang.Thread"

#: Abstract array value / array container key.
ARRAY = "[]"
#: Container key for all static fields (always escaping).
STATIC = "<static>"

_EMPTY: FrozenSet[str] = frozenset()


@dataclass
class FieldKey:
    """Identity of an analyzed field: its *declaring* class (matching
    the dynamic sanitizer's resolution) and name."""

    class_name: str
    field_name: str
    static: bool


@dataclass
class _FieldStats:
    """Eraser state for one field."""

    candidate: Optional[FrozenSet[str]] = None  # running intersection
    writes_outside_init: int = 0
    thread_reachable: bool = False
    #: (method qname, pc, op, lockset) evidence, capped.
    accesses: List[Tuple[str, int, str, Tuple[str, ...]]] = \
        field(default_factory=list)

    def record(self, qname: str, pc: int, op: str,
               lockset: FrozenSet[str], in_thread: bool) -> None:
        self.candidate = (lockset if self.candidate is None
                          else self.candidate & lockset)
        if in_thread:
            self.thread_reachable = True
        if len(self.accesses) < 16:
            self.accesses.append(
                (qname, pc, op, tuple(sorted(lockset))))


@dataclass
class RaceAnalysis:
    """Everything the static side produced."""

    report: AnalysisReport
    #: Classes whose instances may be reached by more than one thread.
    shared_classes: Set[str]
    #: ``(declaring class, field)`` of every race-warning — the set the
    #: harness intersects dynamic races against.
    racy_fields: Set[Tuple[str, str]]
    lock_order: LockOrderGraph
    multithreaded: bool
    #: Unguarded accesses backing the warnings (metrics counter).
    lockset_violations: int = 0

    @property
    def race_warnings(self) -> int:
        return sum(1 for f in self.report.findings
                   if f.rule == "race-warning")

    @property
    def deadlock_potentials(self) -> int:
        return sum(1 for f in self.report.findings
                   if f.rule == "deadlock-potential")

    def to_json(self) -> dict:
        return {
            "multithreaded": self.multithreaded,
            "shared_classes": sorted(self.shared_classes),
            "race_warnings": self.race_warnings,
            "deadlock_potentials": self.deadlock_potentials,
            "lockset_violations": self.lockset_violations,
            "racy_fields": sorted(
                [c, f] for c, f in self.racy_fields),
            "lock_order": self.lock_order.to_json(),
            "findings": [f.to_json() for f in self.report.findings],
        }


# ---------------------------------------------------------------------------
# pass 1: flow collection (abstract interpretation)


class _Flows:
    """Global flow tables shared across methods, grown to fixpoint."""

    def __init__(self):
        #: (declaring class, field) -> classes stored there.
        self.field_contents: Dict[Tuple[str, str], Set[str]] = {}
        #: container (class name, ARRAY, or STATIC) -> stored classes.
        self.contains: Dict[str, Set[str]] = {}
        #: classes flowing out of arrays (single global array soup).
        self.array_contents: Set[str] = set()
        self.changed = False

    def store(self, container: str, values: FrozenSet[str]) -> None:
        if not values:
            return
        bucket = self.contains.setdefault(container, set())
        before = len(bucket)
        bucket.update(values)
        if len(bucket) != before:
            self.changed = True

    def put_field(self, key: Tuple[str, str],
                  values: FrozenSet[str]) -> None:
        if not values:
            return
        bucket = self.field_contents.setdefault(key, set())
        before = len(bucket)
        bucket.update(values)
        if len(bucket) != before:
            self.changed = True


class _Facts:
    """Per-method facts from the final interpretation pass."""

    def __init__(self):
        #: pc -> receiver/operand class set at MONITORENTER/EXIT.
        self.monitors: Dict[int, FrozenSet[str]] = {}
        #: pc -> (op, CpFieldRef, static?) for field accesses.
        self.accesses: Dict[int, Tuple[str, CpFieldRef, bool]] = {}


def _declared_set(type_str: str) -> FrozenSet[str]:
    if type_str.startswith("L"):
        return frozenset([type_str[1:-1]])
    if type_str.startswith("["):
        return frozenset([ARRAY])
    return _EMPTY


def _declaring(hierarchy: ClassHierarchy, class_name: str,
               field_name: str) -> str:
    """Resolve the class that declares ``field_name``, mirroring the
    VM's resolution (search up the superclass chain)."""
    for cf in hierarchy.superclass_chain(class_name):
        if cf.find_field(field_name) is not None:
            return cf.name
    return class_name


def _interpret(cf, method, qname: str, hierarchy: ClassHierarchy,
               flows: _Flows, facts: Optional[_Facts]) -> None:
    """One abstract-interpretation pass over ``method``."""
    code = method.code
    if not code:
        return
    try:
        cfg = build_cfg(code, method.exception_table)
    except Exception:
        return  # the verifier owns malformed code reporting
    params, _ret = parse_descriptor(method.descriptor)
    locals0: List[FrozenSet[str]] = []
    if not method.is_static:
        locals0.append(frozenset([cf.name]))
    for p in params:
        locals0.append(_declared_set(p))
    while len(locals0) < method.max_locals:
        locals0.append(_EMPTY)

    pool = cf.constant_pool
    n_blocks = len(cfg.blocks)
    in_states: List[Optional[Tuple[tuple, tuple]]] = [None] * n_blocks
    in_states[0] = (tuple(locals0), ())
    for block in cfg.blocks:
        if block.is_handler and in_states[block.index] is None:
            # handler entry: locals merged lazily below; stack is the
            # thrown exception (class unknown)
            in_states[block.index] = (tuple(locals0), (_EMPTY,))
    worklist = [0] + [b.index for b in cfg.blocks if b.is_handler]
    on_list = set(worklist)

    def merge_into(index: int, state: Tuple[tuple, tuple]) -> None:
        old = in_states[index]
        if old is None:
            in_states[index] = state
        else:
            old_l, old_s = old
            new_l, new_s = state
            if len(old_s) != len(new_s):
                return  # verifier territory; skip the merge
            merged_l = tuple(a | b for a, b in zip(old_l, new_l))
            merged_s = tuple(a | b for a, b in zip(old_s, new_s))
            merged = (merged_l, merged_s)
            if merged == old:
                return
            in_states[index] = merged
        if index not in on_list:
            worklist.append(index)
            on_list.add(index)

    while worklist:
        index = worklist.pop()
        on_list.discard(index)
        state = in_states[index]
        if state is None:
            continue
        block = cfg.blocks[index]
        locs = list(state[0])
        stack = list(state[1])
        ok = True
        for pc in range(block.start, block.end):
            ins = code[pc]
            op = ins.op
            spec = SPECS[op]
            try:
                if op is Op.NEW:
                    cname = pool.get_typed(ins.operand, CpClass).name
                    stack.append(frozenset([cname]))
                elif op is Op.CHECKCAST:
                    cname = pool.get_typed(ins.operand, CpClass).name
                    stack[-1] = frozenset([cname])
                elif op is Op.INSTANCEOF:
                    stack[-1] = _EMPTY
                elif op in (Op.ALOAD, Op.ILOAD):
                    stack.append(locs[ins.operand])
                elif op in (Op.ASTORE, Op.ISTORE):
                    locs[ins.operand] = stack.pop()
                elif op is Op.DUP:
                    stack.append(stack[-1])
                elif op is Op.DUP_X1:
                    stack.insert(-2, stack[-1])
                elif op is Op.SWAP:
                    stack[-1], stack[-2] = stack[-2], stack[-1]
                elif op is Op.NEWARRAY:
                    stack[-1] = frozenset([ARRAY])
                elif op is Op.AALOAD:
                    stack.pop()
                    stack.pop()
                    stack.append(frozenset(flows.array_contents))
                elif op is Op.AASTORE:
                    value = stack.pop()
                    stack.pop()
                    stack.pop()
                    flows.store(ARRAY, value)
                    before = len(flows.array_contents)
                    flows.array_contents.update(value)
                    if len(flows.array_contents) != before:
                        flows.changed = True
                elif op is Op.GETFIELD:
                    ref = pool.get_typed(ins.operand, CpFieldRef)
                    receivers = stack.pop()
                    key = (_declaring(hierarchy, ref.class_name,
                                      ref.field_name), ref.field_name)
                    stack.append(frozenset(
                        flows.field_contents.get(key, ())))
                    if facts is not None:
                        facts.accesses[pc] = ("read", ref, False)
                elif op is Op.PUTFIELD:
                    ref = pool.get_typed(ins.operand, CpFieldRef)
                    value = stack.pop()
                    receivers = stack.pop()
                    key = (_declaring(hierarchy, ref.class_name,
                                      ref.field_name), ref.field_name)
                    flows.put_field(key, value)
                    for container in (receivers or
                                      frozenset([ref.class_name])):
                        flows.store(container, value)
                    if facts is not None:
                        facts.accesses[pc] = ("write", ref, False)
                elif op is Op.GETSTATIC:
                    ref = pool.get_typed(ins.operand, CpFieldRef)
                    key = (_declaring(hierarchy, ref.class_name,
                                      ref.field_name), ref.field_name)
                    stack.append(frozenset(
                        flows.field_contents.get(key, ())))
                    if facts is not None:
                        facts.accesses[pc] = ("read", ref, True)
                elif op is Op.PUTSTATIC:
                    ref = pool.get_typed(ins.operand, CpFieldRef)
                    value = stack.pop()
                    key = (_declaring(hierarchy, ref.class_name,
                                      ref.field_name), ref.field_name)
                    flows.put_field(key, value)
                    flows.store(STATIC, value)
                    if facts is not None:
                        facts.accesses[pc] = ("write", ref, True)
                elif op in (Op.MONITORENTER, Op.MONITOREXIT):
                    operand = stack.pop()
                    if facts is not None:
                        facts.monitors[pc] = operand
                elif op in (Op.INVOKESTATIC, Op.INVOKEVIRTUAL,
                            Op.INVOKESPECIAL):
                    ref = pool.get_typed(ins.operand, CpMethodRef)
                    cparams, cret = parse_descriptor(ref.descriptor)
                    pops = len(cparams) + \
                        (0 if op is Op.INVOKESTATIC else 1)
                    del stack[len(stack) - pops:]
                    if cret != "V":
                        stack.append(_declared_set(cret))
                else:
                    # generic stack effect (arithmetic, branches, ...)
                    pops, pushes = spec.pops, spec.pushes
                    if pops:
                        del stack[len(stack) - pops:]
                    for _ in range(pushes):
                        stack.append(_EMPTY)
            except (IndexError, ConstantPoolError, ClassFileError):
                ok = False
                break
        if not ok:
            continue
        out = (tuple(locs), tuple(stack))
        for succ in block.successors:
            if cfg.blocks[succ].is_handler:
                # locals flow into the handler; its stack is fixed
                handler_state = in_states[succ]
                merged_l = tuple(
                    a | b for a, b in zip(handler_state[0], out[0]))
                if merged_l != handler_state[0]:
                    in_states[succ] = (merged_l, handler_state[1])
                    if succ not in on_list:
                        worklist.append(succ)
                        on_list.add(succ)
            else:
                merge_into(succ, out)


# ---------------------------------------------------------------------------
# pass 3: lockset dataflow


def _lockset_pass(method, facts: _Facts,
                  entry: FrozenSet[str]) -> Dict[int, FrozenSet[str]]:
    """Per-pc held locksets for the pcs in ``facts`` (field accesses,
    monitor enters, and call sites), given the method's interprocedural
    entry lockset."""
    code = method.code
    cfg = build_cfg(code, method.exception_table)
    entry_state = {token: 1 for token in entry}
    n_blocks = len(cfg.blocks)
    in_states: List[Optional[Dict[str, int]]] = [None] * n_blocks
    in_states[0] = dict(entry_state)
    for block in cfg.blocks:
        if block.is_handler:
            # conservative: a handler may be reached from anywhere in
            # the try range, so only the entry lockset is guaranteed
            in_states[block.index] = dict(entry_state)
    worklist = [b.index for b in cfg.blocks
                if in_states[b.index] is not None]
    on_list = set(worklist)
    held_at: Dict[int, FrozenSet[str]] = {}

    while worklist:
        index = worklist.pop()
        on_list.discard(index)
        state = in_states[index]
        if state is None:
            continue
        held = dict(state)
        block = cfg.blocks[index]
        for pc in range(block.start, block.end):
            ins = code[pc]
            op = ins.op
            if pc in facts.accesses or op in (
                    Op.INVOKESTATIC, Op.INVOKEVIRTUAL,
                    Op.INVOKESPECIAL):
                held_at[pc] = frozenset(
                    t for t, n in held.items() if n > 0)
            if op is Op.MONITORENTER:
                operand = facts.monitors.get(pc, _EMPTY)
                held_at.setdefault(pc, frozenset(
                    t for t, n in held.items() if n > 0))
                if len(operand) == 1:
                    token = next(iter(operand))
                    held[token] = held.get(token, 0) + 1
            elif op is Op.MONITOREXIT:
                operand = facts.monitors.get(pc, _EMPTY)
                if len(operand) == 1:
                    token = next(iter(operand))
                    if held.get(token, 0) > 0:
                        held[token] -= 1
        out = {t: n for t, n in held.items() if n > 0}
        for succ in block.successors:
            if cfg.blocks[succ].is_handler:
                continue  # pinned to the entry lockset
            old = in_states[succ]
            if old is None:
                in_states[succ] = dict(out)
                changed = True
            else:
                # intersection: a lock is held only if held on every
                # path (per-token minimum count)
                merged = {t: min(n, old[t]) for t, n in out.items()
                          if t in old and min(n, old[t]) > 0}
                changed = merged != old
                if changed:
                    in_states[succ] = merged
            if changed and succ not in on_list:
                worklist.append(succ)
                on_list.add(succ)
    return held_at


# ---------------------------------------------------------------------------
# driver


def analyze_races(hierarchy: ClassHierarchy,
                  graph: Optional[CallGraph] = None) -> RaceAnalysis:
    """Run escape + lockset + lock-order analysis over ``hierarchy``."""
    if graph is None:
        graph = build_call_graph(hierarchy)
    reachable = sorted(graph.reachable())
    report = AnalysisReport()
    lock_order = LockOrderGraph()

    # -- pass 1: flows, to fixpoint, then a facts-recording pass
    flows = _Flows()
    for _round in range(20):
        flows.changed = False
        for qname in reachable:
            method = graph.methods.get(qname)
            if method is None or method.is_native:
                continue
            cf = hierarchy.get(graph.owner[qname])
            _interpret(cf, method, qname, hierarchy, flows, None)
        if not flows.changed:
            break
    facts: Dict[str, _Facts] = {}
    for qname in reachable:
        method = graph.methods.get(qname)
        if method is None or method.is_native:
            continue
        f = _Facts()
        cf = hierarchy.get(graph.owner[qname])
        _interpret(cf, method, qname, hierarchy, flows, f)
        facts[qname] = f

    # -- pass 2: thread-escape
    thread_classes = {
        container for container in flows.contains
        if container not in (STATIC, ARRAY)
        and _is_thread_subclass(hierarchy, container)}
    # seeds must come from instantiation, not storage: collect NEW'd
    # Thread subclasses from the interpreted flow (any class stored
    # anywhere was NEW'd or loaded; check all classes seen)
    for qname in reachable:
        method = graph.methods.get(qname)
        if method is None or not method.code:
            continue
        cf = hierarchy.get(graph.owner[qname])
        for ins in method.code:
            if ins.op is Op.NEW:
                try:
                    cname = cf.constant_pool.get_typed(
                        ins.operand, CpClass).name
                except (ConstantPoolError, ClassFileError):
                    continue
                if _is_thread_subclass(hierarchy, cname):
                    thread_classes.add(cname)
    multithreaded = bool(thread_classes)
    if not multithreaded:
        return RaceAnalysis(report=report, shared_classes=set(),
                            racy_fields=set(), lock_order=lock_order,
                            multithreaded=False)

    shared: Set[str] = set(thread_classes)
    escaping_containers = {STATIC}
    while True:
        grew = False
        for container, values in flows.contains.items():
            if container in escaping_containers or container in shared:
                for v in values:
                    if v == ARRAY:
                        if ARRAY not in escaping_containers:
                            escaping_containers.add(ARRAY)
                            grew = True
                    elif v not in shared:
                        shared.add(v)
                        grew = True
        if ARRAY in escaping_containers:
            for v in flows.array_contents:
                if v != ARRAY and v not in shared:
                    shared.add(v)
                    grew = True
        if not grew:
            break

    # -- pass 3: interprocedural entry locksets, to fixpoint
    sites_by_caller: Dict[str, List] = {}
    for site in graph.call_sites:
        sites_by_caller.setdefault(site.caller, []).append(site)
    entry_locks: Dict[str, Optional[FrozenSet[str]]] = {}
    for qname in graph.entry_points:
        entry_locks[qname] = _EMPTY
    held_maps: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for _round in range(20):
        changed = False
        for qname in reachable:
            entry = entry_locks.get(qname)
            method = graph.methods.get(qname)
            if entry is None or method is None or not method.code:
                continue
            held_at = _lockset_pass(method, facts[qname], entry)
            held_maps[qname] = held_at
            for site in sites_by_caller.get(qname, ()):
                at_site = held_at.get(site.pc, _EMPTY)
                for target in site.targets:
                    old = entry_locks.get(target)
                    merged = at_site if old is None else old & at_site
                    if merged != old:
                        entry_locks[target] = merged
                        changed = True
        if not changed:
            break

    # thread-context reachability: accesses on a path from run()V can
    # execute concurrently with main (and with other instances)
    run_roots = [q for q in graph.entry_points
                 if q.endswith(".run()V")]
    thread_reachable = graph.reachable(roots=run_roots)

    # -- Eraser accumulation + lock-order edges
    stats: Dict[Tuple[str, str, bool], _FieldStats] = {}
    for qname in reachable:
        method = graph.methods.get(qname)
        f = facts.get(qname)
        held_at = held_maps.get(qname)
        if method is None or f is None or held_at is None:
            continue
        owner = graph.owner[qname]
        owner_chain = {c.name for c in
                       hierarchy.superclass_chain(owner)}
        in_thread = qname in thread_reachable
        for pc, (op, ref, is_static) in sorted(f.accesses.items()):
            declaring = _declaring(hierarchy, ref.class_name,
                                   ref.field_name)
            if method.name == "<init>" and not is_static and \
                    declaring in owner_chain:
                continue  # object under construction, not yet shared
            if method.name == "<clinit>" and is_static and \
                    declaring in owner_chain:
                continue  # class initialization is single-threaded
            if not is_static and not _shared_instance(
                    hierarchy, shared, declaring, ref.class_name):
                continue
            key = (declaring, ref.field_name, is_static)
            stat = stats.setdefault(key, _FieldStats())
            if op == "write":
                stat.writes_outside_init += 1
            stat.record(qname, pc, op, held_at.get(pc, _EMPTY),
                        in_thread)
        for pc, operand in sorted(f.monitors.items()):
            if method.code[pc].op is not Op.MONITORENTER:
                continue
            if len(operand) != 1:
                continue
            acquired = next(iter(operand))
            for held in held_at.get(pc, _EMPTY):
                if held != acquired:
                    lock_order.add_edge(held, acquired, qname, pc)

    # -- findings
    racy_fields: Set[Tuple[str, str]] = set()
    violations = 0
    for (declaring, field_name, is_static), stat in sorted(
            stats.items()):
        if stat.writes_outside_init == 0:
            continue
        if not stat.thread_reachable:
            continue
        if stat.candidate:
            continue  # consistently guarded by at least one lock
        racy_fields.add((declaring, field_name))
        unguarded = [a for a in stat.accesses if not a[3]]
        violations += len(unguarded)
        first_write = next(
            (a for a in stat.accesses if a[2] == "write"),
            stat.accesses[0])
        locksets = sorted({"{%s}" % ", ".join(a[3]) if a[3] else "{}"
                           for a in stat.accesses})
        where = "; ".join(
            f"{m}@{pc} {op} {{{', '.join(ls)}}}"
            for m, pc, op, ls in stat.accesses[:4])
        scope = "static " if is_static else ""
        report.add(Finding(
            severity=Severity.WARNING,
            rule="race-warning",
            class_name=declaring,
            method="",  # sites span methods; evidence in the message
            message=(f"{scope}field {field_name} accessed under "
                     f"inconsistent locksets {' vs '.join(locksets)}: "
                     f"{where}"),
            pc=first_write[1],
        ))
    report.merge(lock_order.findings())

    return RaceAnalysis(
        report=report,
        shared_classes=shared,
        racy_fields=racy_fields,
        lock_order=lock_order,
        multithreaded=True,
        lockset_violations=violations,
    )


def _is_thread_subclass(hierarchy: ClassHierarchy, name: str) -> bool:
    return any(cf.name == THREAD_CLASS
               for cf in hierarchy.superclass_chain(name))


def _shared_instance(hierarchy: ClassHierarchy, shared: Set[str],
                     declaring: str, ref_class: str) -> bool:
    """A field access is on a shared object if the declaring class, the
    static receiver type, or any subclass of it escapes (an escaped
    subclass instance carries its superclasses' fields)."""
    if declaring in shared or ref_class in shared:
        return True
    return bool(hierarchy.subclasses(ref_class) & shared)


class RaceCheck:
    """Harness cross-check: every dynamically confirmed race must have
    a static ``race-warning`` (dynamic ⊆ static), mirroring the
    native-boundary check.  A violation means the static analysis is
    unsound for this program — a bug worth failing the run for."""

    def __init__(self, static_fields: Set[Tuple[str, str]],
                 dynamic_races: List[dict]):
        self.static_fields = set(static_fields)
        self.confirmed: List[dict] = list(dynamic_races)
        self.violations: List[dict] = [
            race for race in self.confirmed
            if (race["class"], race["field"]) not in self.static_fields]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (f"race-check ok: {len(self.confirmed)} confirmed "
                    f"race(s), all statically predicted "
                    f"({len(self.static_fields)} static warning(s))")
        missing = ", ".join(
            f"{race['class']}.{race['field']}"
            for race in self.violations[:4])
        return (f"race-check FAILED: {len(self.violations)} confirmed "
                f"race(s) with no static warning: {missing}")

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "static_warnings": sorted(
                [c, f] for c, f in self.static_fields),
            "confirmed": self.confirmed,
            "violations": self.violations,
        }
