"""Findings: the common currency of the static analysis subsystem.

Every analysis pass (typed verifier, instrumentation linter, call-graph
builder) reports :class:`Finding` records — severity, rule, owning
class/method, instruction index, message — collected into an
:class:`AnalysisReport` that renders as text or JSON and folds into the
metrics registry.  Error-severity findings gate execution (``repro
analyze`` exits non-zero; the classloader's ``--verify typed`` raises);
warnings and infos are advisory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"      # the class must not run / the invariant is broken
    WARNING = "warning"  # suspicious but executable (e.g. unreachable code)
    INFO = "info"        # observation (e.g. unresolvable call target)


@dataclass(frozen=True)
class Finding:
    """One analysis result, anchored to a program point."""

    severity: Severity
    rule: str                 # machine-readable rule id, e.g. "type-confusion"
    class_name: str
    method: str               # name + descriptor ("" for class-level findings)
    message: str
    pc: Optional[int] = None  # instruction index, when instruction-level

    def location(self) -> str:
        where = self.class_name
        if self.method:
            where += f".{self.method}"
        if self.pc is not None:
            where += f" @ {self.pc}"
        return where

    def render(self) -> str:
        return (f"{self.severity.value:7s} [{self.rule}] "
                f"{self.location()}: {self.message}")

    def to_json(self) -> dict:
        return {
            "severity": self.severity.value,
            "rule": self.rule,
            "class": self.class_name,
            "method": self.method,
            "pc": self.pc,
            "message": self.message,
        }


@dataclass
class AnalysisReport:
    """An ordered collection of findings plus coverage counters."""

    findings: List[Finding] = field(default_factory=list)
    classes_analyzed: int = 0
    methods_analyzed: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        self.classes_analyzed += other.classes_analyzed
        self.methods_analyzed += other.methods_analyzed

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> Dict[str, int]:
        counts = {s.value: 0 for s in Severity}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    def format_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        counts = self.counts()
        lines.append(
            f"{self.classes_analyzed} classes, "
            f"{self.methods_analyzed} methods analyzed: "
            f"{counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} infos")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "classes_analyzed": self.classes_analyzed,
            "methods_analyzed": self.methods_analyzed,
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
        }
