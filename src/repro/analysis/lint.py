"""Instrumentation linter: validates the Figure-2 invariants.

Given a class that *should* carry static instrumentation, checks that
the wrapper transformation (:mod:`repro.instrument.wrapper_gen`) was
applied completely and exactly once:

* every ``native`` method is renamed with the prefix and kept native;
* every renamed native has a wrapper of the original name and the same
  descriptor, non-native, with matching static-ness;
* the wrapper opens with ``J2N_Begin``, calls the renamed native exactly
  once, and runs ``J2N_End`` immediately after it;
* a single catch-all exception-table row protects the native call and
  its handler runs ``J2N_End`` before rethrowing — the transition
  counters must balance even when the native throws;
* no double instrumentation (stacked prefixes, repeated ``J2N_Begin``);
* excluded classes (the agent runtime itself) carry no instrumentation.

A corrupted wrapper — e.g. the ``J2N_End`` after the native call edited
out — yields an error finding, which ``repro analyze
--check-instrumentation`` turns into a non-zero exit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.bytecode.opcodes import Op
from repro.classfile.classfile import ClassFile
from repro.classfile.constant_pool import CpMethodRef
from repro.classfile.members import MethodInfo
from repro.errors import ClassFileError, ConstantPoolError
from repro.instrument.wrapper_gen import InstrumentationConfig


class _Linter:
    def __init__(self, cf: ClassFile, config: InstrumentationConfig):
        self.cf = cf
        self.config = config
        self.findings: List[Finding] = []

    def _finding(self, severity: Severity, rule: str, method: str,
                 message: str, pc: Optional[int] = None) -> None:
        self.findings.append(Finding(
            severity=severity, rule=rule, class_name=self.cf.name,
            method=method, message=message, pc=pc))

    def _error(self, rule: str, method: str, message: str,
               pc: Optional[int] = None) -> None:
        self._finding(Severity.ERROR, rule, method, message, pc=pc)

    def _ref(self, cp_index) -> Optional[CpMethodRef]:
        try:
            return self.cf.constant_pool.get_typed(cp_index, CpMethodRef)
        except (ConstantPoolError, ClassFileError):
            return None

    def _is_runtime_call(self, ins, method_name: str) -> bool:
        if ins.op is not Op.INVOKESTATIC:
            return False
        ref = self._ref(ins.operand)
        return (ref is not None
                and ref.class_name == self.config.runtime_class
                and ref.method_name == method_name
                and ref.descriptor == "()V")

    # -- checks ---------------------------------------------------------------

    def run(self, require_instrumented: bool) -> List[Finding]:
        config = self.config
        cf = self.cf

        if config.is_excluded(cf.name):
            for method in cf.methods:
                if method.name.startswith(config.prefix):
                    self._error(
                        "excluded-class-instrumented",
                        f"{method.name}{method.descriptor}",
                        "excluded class carries an instrumentation "
                        "prefix")
            return self.findings

        for method in cf.methods:
            where = f"{method.name}{method.descriptor}"
            if method.name.startswith(config.prefix):
                self._check_renamed(method, where)
            elif method.is_native and require_instrumented:
                self._error(
                    "native-not-wrapped", where,
                    f"native method carries no {config.prefix!r} "
                    f"prefix — instrumentation missed it")
        return self.findings

    def _check_renamed(self, method: MethodInfo, where: str) -> None:
        config = self.config
        original = method.name[len(config.prefix):]
        if original.startswith(config.prefix):
            self._error("double-instrumentation", where,
                        "stacked instrumentation prefixes")
            return
        if not method.is_native:
            self._error("renamed-not-native", where,
                        "renamed method lost its native flag")
        wrapper = self.cf.find_method(original, method.descriptor)
        if wrapper is None:
            self._error(
                "missing-wrapper", where,
                f"no wrapper {original}{method.descriptor} for the "
                f"renamed native")
            return
        self._check_wrapper(wrapper, method)

    def _check_wrapper(self, wrapper: MethodInfo,
                       target: MethodInfo) -> None:
        config = self.config
        where = f"{wrapper.name}{wrapper.descriptor}"
        if wrapper.is_native:
            self._error("wrapper-native", where,
                        "wrapper is itself native")
            return
        if wrapper.is_static != target.is_static:
            self._error("wrapper-flags", where,
                        "wrapper and renamed native disagree on "
                        "static-ness")
        code = wrapper.code or []
        if not code or not self._is_runtime_call(code[0],
                                                 config.begin_method):
            self._error(
                "missing-begin", where,
                f"wrapper does not open with "
                f"{config.runtime_class}.{config.begin_method}", pc=0)

        begin_count = sum(
            1 for ins in code
            if self._is_runtime_call(ins, config.begin_method))
        if begin_count > 1:
            self._error("double-instrumentation", where,
                        f"{config.begin_method} invoked {begin_count} "
                        f"times — wrapper wrapped twice?")

        target_pcs = [
            pc for pc, ins in enumerate(code)
            if ins.op in (Op.INVOKESTATIC, Op.INVOKESPECIAL)
            and (ref := self._ref(ins.operand)) is not None
            and ref.class_name == self.cf.name
            and ref.method_name == target.name
            and ref.descriptor == target.descriptor]
        if not target_pcs:
            self._error("missing-target-call", where,
                        f"wrapper never invokes the renamed native "
                        f"{target.name}")
            return
        if len(target_pcs) > 1:
            self._error("double-instrumentation", where,
                        f"renamed native invoked {len(target_pcs)} "
                        f"times", pc=target_pcs[1])
        target_pc = target_pcs[0]

        end_pc = target_pc + 1
        if end_pc >= len(code) or not self._is_runtime_call(
                code[end_pc], config.end_method):
            self._error(
                "missing-end", where,
                f"{config.runtime_class}.{config.end_method} does not "
                f"immediately follow the native call", pc=target_pc)

        self._check_handler(wrapper, where, target_pc)

    def _check_handler(self, wrapper: MethodInfo, where: str,
                       target_pc: int) -> None:
        config = self.config
        code = wrapper.code or []
        rows = [entry for entry in wrapper.exception_table
                if entry.catch_type is None
                and entry.start <= target_pc < entry.end]
        if not rows:
            self._error(
                "missing-handler", where,
                "no catch-all exception-table row covers the native "
                "call — J2N_End is skipped when the native throws",
                pc=target_pc)
            return
        if len(rows) > 1:
            self._error("double-instrumentation", where,
                        f"{len(rows)} catch-all rows cover the native "
                        f"call", pc=target_pc)
        handler = rows[0].handler
        handler_runs_end = (
            isinstance(handler, int) and handler < len(code)
            and self._is_runtime_call(code[handler], config.end_method)
            and handler + 1 < len(code)
            and code[handler + 1].op is Op.ATHROW)
        if not handler_runs_end:
            self._error(
                "bad-handler", where,
                f"exception handler does not run {config.end_method} "
                f"and rethrow", pc=handler if isinstance(handler, int)
                else None)


def lint_classfile(cf: ClassFile,
                   config: Optional[InstrumentationConfig] = None,
                   require_instrumented: bool = True) -> List[Finding]:
    """Lint one class; returns findings (empty when the invariants
    hold).  ``require_instrumented`` also flags bare (unprefixed)
    native methods — set it ``False`` to lint archives that are only
    partially instrumented."""
    linter = _Linter(cf, config or InstrumentationConfig())
    return linter.run(require_instrumented)


def lint_archives(archives,
                  config: Optional[InstrumentationConfig] = None,
                  require_instrumented: bool = True) -> AnalysisReport:
    """Lint every class of every archive into one report."""
    report = AnalysisReport()
    for archive in archives:
        for cf in archive.classes():
            report.classes_analyzed += 1
            report.methods_analyzed += len(cf.methods)
            report.extend(lint_classfile(
                cf, config, require_instrumented=require_instrumented))
    return report
